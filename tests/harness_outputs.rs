//! Snapshot-style integration tests for the figure harness: every
//! table/figure generator must produce structurally complete output
//! (all apps, all variant columns, all platforms, failure markers where
//! the paper reports them).

use portability::write_csv;

#[test]
fn table1_text_lists_all_six_platforms() {
    let t = bench_harness::table1_text();
    for name in ["MI250X", "A100", "Max 1100", "Xeon", "Genoa-X", "Altra"] {
        assert!(t.contains(name), "missing {name} in:\n{t}");
    }
    assert!(t.contains("GB/s"));
}

#[test]
fn structured_figures_contain_every_app_and_variant() {
    use sycl_sim::PlatformId;
    for p in [PlatformId::A100, PlatformId::GenoaX] {
        let t = bench_harness::figure_structured_text(p);
        for app in sycl_sim::quirks::apps::STRUCTURED {
            assert!(t.contains(app), "{p:?}: missing {app}");
        }
        assert!(t.contains("DPC++ flat"));
        assert!(t.contains("OpenSYCL ndrange"));
    }
    // Genoa-X must show the "wrong" marker for CloverLeaf 2D.
    let genoa = bench_harness::figure_structured_text(sycl_sim::PlatformId::GenoaX);
    assert!(genoa.contains("wrong"), "{genoa}");
    // Altra must show n/a for DPC++.
    let altra = bench_harness::figure_structured_text(sycl_sim::PlatformId::Altra);
    assert!(altra.contains("n/a"), "{altra}");
}

#[test]
fn mgcfd_figures_contain_every_scheme_and_failures() {
    let t = bench_harness::figure_mgcfd_text(sycl_sim::PlatformId::Xeon8360Y);
    for scheme in ["atomics", "global", "hierarchical"] {
        assert!(t.contains(scheme), "missing {scheme}");
    }
    assert!(t.contains("ICE"), "OpenSYCL global must ICE on CPUs:\n{t}");
    assert!(t.contains("crash"), "DPC++ global must crash on CPUs:\n{t}");
}

#[test]
fn efficiency_figures_cover_all_platforms() {
    let f10 = bench_harness::figure10_text();
    let f11 = bench_harness::figure11_text();
    for label in ["a100", "mi250x", "max1100", "xeon8360y", "genoax", "altra"] {
        assert!(f10.contains(label), "fig10 missing {label}");
        assert!(f11.contains(label), "fig11 missing {label}");
    }
    assert!(f10.contains('%'));
}

#[test]
fn summary_text_reports_all_pp_metrics() {
    let s = bench_harness::summary_text();
    for needle in [
        "PP(DPC++ nd)",
        "PP(OpenSYCL nd)",
        "PP(DPC++ flat)",
        "PP(OpenSYCL flat)",
        "PP(MG-CFD OpenSYCL+atomics)",
        "paper: 0.49",
    ] {
        assert!(s.contains(needle), "missing {needle} in:\n{s}");
    }
}

#[test]
fn conclusions_split_gpu_and_cpu() {
    let c = bench_harness::conclusions_text();
    assert!(c.contains("GPUs"));
    assert!(c.contains("CPUs"));
    assert!(c.contains("62.7%"), "paper reference values must print");
}

#[test]
fn csv_export_covers_the_full_cross_product() {
    let mut all = bench_harness::all_structured();
    all.extend(bench_harness::all_mgcfd());
    let csv = write_csv(&all);
    let lines: Vec<&str> = csv.lines().collect();
    // 6 apps × (5+6+5+6+6+6 variants) + mgcfd × 3 schemes × variants.
    assert!(lines.len() > 250, "only {} csv rows", lines.len());
    assert!(lines[0].starts_with("app,platform,variant"));
    // Failures appear with their kinds.
    assert!(csv.contains("IncorrectResult"));
    assert!(csv.contains("Unsupported"));
    assert!(csv.contains("CompileError"));
    // Every row has the right column count.
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), 7, "bad row: {l}");
    }
}

#[test]
fn ablation_texts_are_complete() {
    let w = bench_harness::ablation::workgroup_sweep_text();
    assert!(w.contains("best") && w.contains("worst"));
    let c = bench_harness::ablation::cache_sweep_text();
    assert!(c.contains("208"), "must sweep up to the Max 1100's L2");
    let o = bench_harness::ablation::ordering_sweep_text();
    assert!(o.contains("locality 1.0") && o.contains("locality 0.1"));
    let b = bench_harness::ablation::block_size_sweep_text();
    assert!(b.contains("block    256") || b.contains("block  256") || b.contains("256"));
    let cons = bench_harness::ablation::consistency_text();
    assert!(cons.matches('%').count() >= 12);
}
