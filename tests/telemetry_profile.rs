//! Acceptance test for the telemetry subsystem end-to-end: profiling a
//! functional CloverLeaf 2D run must yield a valid Chrome-trace document
//! with one launch span per ledger record, a non-empty per-kernel
//! aggregate, and achieved-GB/s figures consistent with the footprints.

use machine_model::{KernelFootprint, Precision};
use miniapps::{App, CloverLeaf2d};
use sycl_sim::{PlatformId, Session, SessionConfig, Toolchain};
use telemetry::TelemetryConfig;

#[test]
fn profiling_cloverleaf2d_yields_a_complete_trace() {
    let app = CloverLeaf2d::test();
    let session = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app.name()),
    )
    .unwrap();

    TelemetryConfig::enabled().install();
    let before = telemetry::counters().snapshot();
    let run = app.run(&session);
    let delta = telemetry::counters().snapshot().since(&before);
    TelemetryConfig::disabled().install();
    let events = telemetry::flush();

    // The run did real work and the trace saw all of it: exactly one
    // launch span per ledger record, in the same order.
    let records = session.records();
    assert!(run.validation.is_finite());
    assert!(!records.is_empty());
    let launches: Vec<_> = events
        .iter()
        .filter(|e| e.kind == telemetry::SpanKind::Launch)
        .collect();
    assert_eq!(launches.len(), records.len());
    assert_eq!(delta.launches as usize, records.len());
    for (span, rec) in launches.iter().zip(records.iter()) {
        assert_eq!(span.name.as_str(), &*rec.name);
        assert_eq!(span.items, rec.items);
        assert_eq!(span.sim_secs.to_bits(), rec.time.total.to_bits());
        assert_eq!(span.bytes.to_bits(), rec.effective_bytes.to_bits());
    }
    // Flush ordering is the launch order (seq is strictly increasing).
    assert!(launches.windows(2).all(|w| w[0].seq < w[1].seq));

    // Engine spans rode along: pool regions and tree reductions.
    assert!(events.iter().any(|e| e.kind == telemetry::SpanKind::Region));
    assert!(events.iter().any(|e| e.kind == telemetry::SpanKind::Reduce));
    assert!(delta.pricing_cache_hits > 0);

    // The Chrome-trace document is valid JSON with one event per span.
    let doc = telemetry::export::chrome_trace(&events);
    telemetry::json::validate(&doc).unwrap();
    assert_eq!(doc.matches("\"ph\": \"X\"").count(), events.len());
    assert!(doc.contains("\"traceEvents\""));

    // The aggregate table covers every kernel, and its achieved-GB/s
    // column is exactly the footprint rule (bytes over priced seconds).
    let aggs = telemetry::export::aggregate(&events);
    assert!(!aggs.is_empty());
    let names: std::collections::HashSet<&str> = records.iter().map(|r| &*r.name).collect();
    assert_eq!(aggs.len(), names.len());
    let total: usize = aggs.iter().map(|a| a.count).sum();
    assert_eq!(total, records.len());
    for a in &aggs {
        let fp = KernelFootprint::streaming(a.name.clone(), 1, a.bytes, 0.0, Precision::F64);
        assert_eq!(
            a.sim_gbps().to_bits(),
            fp.achieved_gbps(a.sim_secs).to_bits(),
            "{}",
            a.name
        );
    }
}
