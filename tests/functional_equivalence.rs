//! Cross-crate functional tests: the *numerics* of every application must
//! be identical no matter which platform/toolchain session prices them —
//! the whole point of a portable programming model.

use miniapps::App;
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig, SyclVariant, Toolchain};

/// Sessions spanning GPU/CPU, native/SYCL, flat/nd_range.
fn sessions_for(app: &str) -> Vec<Session> {
    let mk =
        |p, tc, v: SyclVariant| Session::create(SessionConfig::new(p, tc).variant(v).app(app)).ok();
    [
        mk(PlatformId::A100, Toolchain::NativeCuda, SyclVariant::Flat),
        mk(
            PlatformId::Mi250x,
            Toolchain::Dpcpp,
            SyclVariant::NdRange([64, 4, 1]),
        ),
        mk(PlatformId::Xeon8360Y, Toolchain::Mpi, SyclVariant::Flat),
        mk(PlatformId::Altra, Toolchain::OpenSycl, SyclVariant::Flat),
    ]
    .into_iter()
    .flatten()
    .collect()
}

fn assert_validation_identical(app: &dyn App) {
    let mut reference: Option<f64> = None;
    for session in sessions_for(app.name()) {
        let run = app.run(&session);
        assert!(run.validation.is_finite(), "{}", app.name());
        match reference {
            None => reference = Some(run.validation),
            Some(r) => assert_eq!(
                r.to_bits(),
                run.validation.to_bits(),
                "{}: validation differs across sessions ({r} vs {})",
                app.name(),
                run.validation
            ),
        }
    }
}

#[test]
fn cloverleaf2d_numerics_are_platform_independent() {
    assert_validation_identical(&miniapps::CloverLeaf2d::test());
}

#[test]
fn cloverleaf3d_numerics_are_platform_independent() {
    assert_validation_identical(&miniapps::CloverLeaf3d::test());
}

#[test]
fn opensbli_numerics_are_platform_independent() {
    assert_validation_identical(&miniapps::OpenSbli::test(miniapps::SbliVariant::StoreAll));
    assert_validation_identical(&miniapps::OpenSbli::test(miniapps::SbliVariant::StoreNone));
}

#[test]
fn rtm_numerics_are_platform_independent() {
    assert_validation_identical(&miniapps::Rtm::test());
}

#[test]
fn acoustic_numerics_are_platform_independent() {
    assert_validation_identical(&miniapps::Acoustic::test());
}

#[test]
fn mgcfd_colouring_numerics_are_platform_independent() {
    // Colour-based schemes are deterministic, so the residual must be
    // bit-identical across sessions.
    let app = miniapps::Mgcfd::test();
    let mut reference: Option<f64> = None;
    for p in [PlatformId::A100, PlatformId::GenoaX] {
        let tc = if p.is_gpu() {
            Toolchain::Dpcpp
        } else {
            Toolchain::OpenSycl
        };
        let s = Session::create(
            SessionConfig::new(p, tc)
                .app("mgcfd")
                .scheme(Scheme::HierColor),
        )
        .unwrap();
        let run = app.run(&s);
        match reference {
            None => reference = Some(run.validation),
            Some(r) => assert_eq!(r.to_bits(), run.validation.to_bits()),
        }
    }
}

#[test]
fn timing_differs_even_when_numerics_agree() {
    // The other half of the contract: identical results, different
    // simulated clocks.
    let app = miniapps::Rtm::test();
    let mut times = Vec::new();
    for session in sessions_for(app.name()) {
        app.run(&session);
        times.push(session.elapsed());
    }
    times.sort_by(f64::total_cmp);
    assert!(
        times.last().unwrap() > &(times[0] * 1.05),
        "platforms must differ in simulated time: {times:?}"
    );
}

#[test]
fn dry_and_live_runs_price_identically() {
    // The analytic (dry) path must charge exactly the same simulated
    // time as the functional path — footprints depend only on sizes.
    let app = miniapps::CloverLeaf2d::test();
    let live = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app.name()),
    )
    .unwrap();
    let dry = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
            .app(app.name())
            .dry_run(),
    )
    .unwrap();
    let t_live = app.run(&live).elapsed;
    let t_dry = app.run(&dry).elapsed;
    assert!(
        ((t_live - t_dry) / t_live).abs() < 1e-12,
        "live {t_live} vs dry {t_dry}"
    );
    assert_eq!(live.records().len(), dry.records().len());
}

#[test]
fn pricing_cache_is_launch_for_launch_equivalent() {
    // The launch-pricing cache is a pure memoisation: a session with it
    // disabled must produce the identical ledger — every record's name,
    // time, and byte accounting, in the same order — and identical
    // numerics.
    let app = miniapps::CloverLeaf2d::test();
    let cached = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app.name()),
    )
    .unwrap();
    let uncached = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
            .app(app.name())
            .no_pricing_cache(),
    )
    .unwrap();
    let run_cached = app.run(&cached);
    let run_uncached = app.run(&uncached);
    assert_eq!(
        run_cached.validation.to_bits(),
        run_uncached.validation.to_bits()
    );
    {
        // `records()` borrows the ledger; both guards must drop before
        // `elapsed()` below takes the same locks again.
        let rc = cached.records();
        let ru = uncached.records();
        assert_eq!(rc.len(), ru.len());
        assert!(
            rc.len() > 50,
            "CloverLeaf must relaunch kernels enough to exercise the cache"
        );
        for (a, b) in rc.iter().zip(ru.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.items, b.items);
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(a.time.total.to_bits(), b.time.total.to_bits(), "{}", a.name);
            assert_eq!(
                a.effective_bytes.to_bits(),
                b.effective_bytes.to_bits(),
                "{}",
                a.name
            );
        }
    }
    assert_eq!(cached.elapsed().to_bits(), uncached.elapsed().to_bits());
}
