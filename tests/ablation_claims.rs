//! Integration tests over the ablation axes DESIGN.md §8 calls out:
//! the design choices must matter in the direction the paper says.

use bench_harness::ablation;
use miniapps::App;
use sycl_sim::{tune, PlatformId, Toolchain};

#[test]
fn workgroup_tuning_matters_most_on_the_max1100() {
    // §4.1: "the Max 1100 is more sensitive to the right choice of
    // workgroup shape" — its sweep spread must exceed the A100's.
    let kernel = ablation::rtm_wave_kernel();
    let spread = |p: PlatformId| {
        let sweep = tune::sweep(p, Toolchain::Dpcpp, &kernel);
        sweep.last().unwrap().1 / sweep.first().unwrap().1
    };
    let a100 = spread(PlatformId::A100);
    let max = spread(PlatformId::Max1100);
    assert!(max > a100, "Max spread {max:.1}x vs A100 {a100:.1}x");
    assert!(a100 > 1.5, "tuning must matter everywhere ({a100:.1}x)");
}

#[test]
fn autotuned_shapes_beat_the_flat_heuristics() {
    // The tuner must never lose to the runtime's flat choice.
    let kernel = ablation::rtm_wave_kernel();
    for (p, tc) in [
        (PlatformId::A100, Toolchain::Dpcpp),
        (PlatformId::Mi250x, Toolchain::OpenSycl),
        (PlatformId::Max1100, Toolchain::Dpcpp),
    ] {
        let best = tune::sweep(p, tc, &kernel)[0].1;
        // Time the flat heuristic shape through the same path.
        let mut flat_kernel = kernel.clone();
        flat_kernel.nd_shape = None;
        let platform = sycl_sim::Platform::get(p);
        let exec = tc.exec_profile(&platform, sycl_sim::SyclVariant::Flat, &flat_kernel);
        let flat = machine_model::predict(&platform, &flat_kernel.footprint, &exec).total;
        assert!(
            best <= flat * 1.001,
            "{p:?}: tuned {best:.2e} vs flat {flat:.2e}"
        );
    }
}

#[test]
fn mesh_ordering_sweep_is_monotone_on_gpu_and_cpu() {
    for p in [PlatformId::A100, PlatformId::Xeon8360Y] {
        let sweep = ablation::ordering_sweep(p);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 * 0.999,
                "{p:?}: worse ordering must not be faster: {pair:?}"
            );
        }
        let worst = sweep.last().unwrap().1;
        let best = sweep.first().unwrap().1;
        assert!(worst > 1.3 * best, "{p:?}: ordering must matter");
    }
}

#[test]
fn growing_the_mi250x_cache_recovers_stencil_efficiency() {
    let sweep = ablation::cache_sweep();
    let base = sweep.iter().find(|(s, _, _)| *s == 1.0).unwrap().2;
    let max_sized = sweep.last().unwrap().2;
    assert!(
        max_sized > 1.3 * base,
        "208 MB must help: {base:.2} -> {max_sized:.2}"
    );
}

#[test]
fn tiny_hierarchical_blocks_hurt_gpu_occupancy() {
    let sweep = ablation::block_size_sweep(PlatformId::A100);
    let tiny = sweep.iter().find(|(b, _)| *b == 32).unwrap().1;
    let tuned = sweep.iter().find(|(b, _)| *b == 256).unwrap().1;
    assert!(tiny > 1.5 * tuned, "32-item blocks must underfill CUs");
}

#[test]
fn rcm_renumbering_recovers_atomics_performance() {
    // End-to-end: scramble a mesh, renumber it, and verify the locality
    // (and therefore the modelled gather cost) recovers.
    use op2_dsl::mesh::{Mesh, Ordering};
    let scrambled = Mesh::grid(16, 16, 8, Ordering::Shuffled(99));
    let renumbered = op2_dsl::renumber_mesh(&scrambled);
    let cost = |locality: f64| {
        let session = sycl_sim::Session::create(
            sycl_sim::SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("mgcfd")
                .scheme(sycl_sim::Scheme::Atomics)
                .dry_run(),
        )
        .unwrap();
        let mut app = miniapps::Mgcfd::paper();
        app.finest.locality = locality;
        app.run(&session).elapsed
    };
    let before = cost(scrambled.stats().locality);
    let after = cost(renumbered.stats().locality);
    assert!(
        after < before,
        "renumbering must pay off: {before:.3}s -> {after:.3}s"
    );
}
