//! Figure-level integration tests: the paper's qualitative claims must
//! hold in the simulation. Each test cites the section it reproduces.
//!
//! These run the paper-sized problems through dry-run sessions, so they
//! exercise the full pipeline (apps → DSLs → toolchains → machine
//! models) without allocating paper-sized fields.

use portability::{measure_structured, variants_for, StudyVariant};
use sycl_sim::{PlatformId, Scheme, Toolchain};

fn runtime(app: &dyn miniapps::App, p: PlatformId, tc: Toolchain, nd: bool) -> Option<f64> {
    measure_structured(
        app,
        p,
        StudyVariant {
            toolchain: tc,
            nd_range: nd,
        },
    )
    .runtime
    .ok()
}

fn efficiency(app: &dyn miniapps::App, p: PlatformId, tc: Toolchain, nd: bool) -> Option<f64> {
    measure_structured(
        app,
        p,
        StudyVariant {
            toolchain: tc,
            nd_range: nd,
        },
    )
    .efficiency
}

#[test]
fn table1_bandwidths_are_within_10pct_of_the_paper() {
    let expect = [
        (PlatformId::Mi250x, 1290.0),
        (PlatformId::A100, 1310.0),
        (PlatformId::Max1100, 803.0),
        (PlatformId::Xeon8360Y, 296.0),
        (PlatformId::GenoaX, 561.0),
        (PlatformId::Altra, 167.0),
    ];
    let rows = bench_harness_rows();
    for (p, paper) in expect {
        let (_, _, got) = rows.iter().find(|(id, _, _)| *id == p).unwrap();
        assert!(
            (got - paper).abs() / paper < 0.10,
            "{p:?}: {got:.0} vs paper {paper:.0} GB/s"
        );
    }
}

fn bench_harness_rows() -> Vec<(PlatformId, Toolchain, f64)> {
    // Recompute Table 1 the same way the harness binary does.
    use babelstream::BabelStream;
    use sycl_sim::{Session, SessionConfig};
    [
        (PlatformId::Mi250x, Toolchain::NativeHip),
        (PlatformId::A100, Toolchain::NativeCuda),
        (PlatformId::Max1100, Toolchain::Dpcpp),
        (PlatformId::Xeon8360Y, Toolchain::MpiOpenMp),
        (PlatformId::GenoaX, Toolchain::MpiOpenMp),
        (PlatformId::Altra, Toolchain::OpenMp),
    ]
    .into_iter()
    .map(|(p, tc)| {
        let s = Session::create(SessionConfig::new(p, tc).app("babelstream").dry_run()).unwrap();
        let n = babelstream::table1_len(s.platform());
        (p, tc, BabelStream::triad_bandwidth(&s, n, 5) / 1e9)
    })
    .collect()
}

#[test]
fn fig2_a100_native_cuda_wins_but_sycl_ndrange_is_within_10pct() {
    // §4.1: "While the native CUDA does perform best, the SYCL nd_range
    // versions with both compilers are within 10%."
    for app in miniapps::paper_structured_apps() {
        let cuda = runtime(app.as_ref(), PlatformId::A100, Toolchain::NativeCuda, false).unwrap();
        for tc in [Toolchain::Dpcpp, Toolchain::OpenSycl] {
            let sycl = runtime(app.as_ref(), PlatformId::A100, tc, true).unwrap();
            assert!(
                sycl < cuda * 1.12,
                "{}: {} nd_range {sycl:.3}s vs CUDA {cuda:.3}s",
                app.name(),
                tc.label()
            );
        }
    }
}

#[test]
fn fig2_dpcpp_flat_is_pathological_on_cloverleaf2d() {
    // §4.1: "The DPC++ runtime chooses very poor workgroup sizes for a
    // few kernels, making the 2D version with the flat formulation
    // perform very poorly."
    let app = miniapps::CloverLeaf2d::paper();
    for gpu in [PlatformId::A100, PlatformId::Mi250x, PlatformId::Max1100] {
        let flat = runtime(&app, gpu, Toolchain::Dpcpp, false).unwrap();
        let nd = runtime(&app, gpu, Toolchain::Dpcpp, true).unwrap();
        assert!(flat > 2.0 * nd, "{gpu:?}: flat {flat:.2}s vs nd {nd:.2}s");
    }
}

#[test]
fn fig2_opensycl_flat_slows_cloverleaf3d_by_about_half() {
    // §4.1: "the OpenSYCL version chooses suboptimal workgroup sizes in
    // 3D, resulting in an almost 50% slowdown."
    let app = miniapps::CloverLeaf3d::paper();
    let flat = runtime(&app, PlatformId::A100, Toolchain::OpenSycl, false).unwrap();
    let nd = runtime(&app, PlatformId::A100, Toolchain::OpenSycl, true).unwrap();
    let slowdown = flat / nd;
    assert!(
        (1.3..3.0).contains(&slowdown),
        "OpenSYCL flat 3D slowdown = {slowdown:.2}"
    );
}

#[test]
fn fig2_dpcpp_outperforms_cuda_on_acoustic() {
    // §4.1: "SYCL compiled with DPC++ is highly competitive,
    // outperforming CUDA on Acoustic by 10%."
    let app = miniapps::Acoustic::paper();
    let cuda = runtime(&app, PlatformId::A100, Toolchain::NativeCuda, false).unwrap();
    let dpcpp = runtime(&app, PlatformId::A100, Toolchain::Dpcpp, true).unwrap();
    assert!(dpcpp < cuda, "DPC++ {dpcpp:.3}s vs CUDA {cuda:.3}s");
}

#[test]
fn fig3_mi250x_efficiency_is_consistently_below_the_a100() {
    // §4.1: "in contrast to the A100, the achieved architectural
    // efficiency is consistently lower" on the MI250X.
    for app in miniapps::paper_structured_apps() {
        let a100 = efficiency(app.as_ref(), PlatformId::A100, Toolchain::NativeCuda, false);
        let mi = efficiency(
            app.as_ref(),
            PlatformId::Mi250x,
            Toolchain::NativeHip,
            false,
        );
        assert!(
            mi.unwrap() < a100.unwrap() + 0.02,
            "{}: MI {:?} vs A100 {:?}",
            app.name(),
            mi,
            a100
        );
    }
}

#[test]
fn fig3_cray_offload_fails_only_cloverleaf3d() {
    // §4.1: OpenMP offload (Cray) is competitive "though failing on
    // CloverLeaf 3D".
    for app in miniapps::paper_structured_apps() {
        let r = measure_structured(
            app.as_ref(),
            PlatformId::Mi250x,
            StudyVariant {
                toolchain: Toolchain::OmpOffload,
                nd_range: false,
            },
        );
        if app.name() == "cloverleaf3d" {
            assert!(r.runtime.is_err());
        } else {
            assert!(r.runtime.is_ok(), "{} must run", app.name());
        }
    }
}

#[test]
fn fig4_max1100_sycl_ndrange_beats_omp_offload_by_about_30pct() {
    // §4.1: "On average, the DPC++ compiler with nd_range is 30.2%
    // faster than OpenMP offload."
    let mut ratios = Vec::new();
    for app in miniapps::paper_structured_apps() {
        let omp = runtime(
            app.as_ref(),
            PlatformId::Max1100,
            Toolchain::OmpOffload,
            false,
        )
        .unwrap();
        let dpcpp = runtime(app.as_ref(), PlatformId::Max1100, Toolchain::Dpcpp, true).unwrap();
        ratios.push(omp / dpcpp);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (1.15..1.8).contains(&avg),
        "Max 1100 offload/DPC++-nd ratio = {avg:.2}"
    );
}

#[test]
fn fig5_xeon_sycl_trails_native_on_cloverleaf_due_to_reductions() {
    // §4.2: reductions take 6-7x longer with SYCL on CPUs; CloverLeaf's
    // per-iteration dt reduction makes SYCL clearly slower there.
    let app = miniapps::CloverLeaf2d::paper();
    let native = runtime(&app, PlatformId::Xeon8360Y, Toolchain::MpiOpenMp, false).unwrap();
    for tc in [Toolchain::Dpcpp, Toolchain::OpenSycl] {
        let sycl = runtime(&app, PlatformId::Xeon8360Y, tc, true).unwrap();
        assert!(
            sycl > 1.3 * native,
            "{}: {sycl:.2}s vs native {native:.2}s",
            tc.label()
        );
    }
}

#[test]
fn fig6_genoax_cloverleaf2d_only_works_with_dpcpp_ndrange() {
    // §4.2 + §4.4.
    let app = miniapps::CloverLeaf2d::paper();
    let cases = [
        (Toolchain::Dpcpp, true, true),
        (Toolchain::Dpcpp, false, false),
        (Toolchain::OpenSycl, true, false),
        (Toolchain::OpenSycl, false, false),
    ];
    for (tc, nd, works) in cases {
        let m = measure_structured(
            &app,
            PlatformId::GenoaX,
            StudyVariant {
                toolchain: tc,
                nd_range: nd,
            },
        );
        assert_eq!(m.runtime.is_ok(), works, "{} nd={nd}", tc.label());
    }
}

#[test]
fn fig6_genoax_exceeds_100pct_efficiency_on_cloverleaf2d() {
    // §4.2: "Genoa-X achieves up to 107% efficiency on CloverLeaf 2D
    // thanks to its large L3 cache."
    let app = miniapps::CloverLeaf2d::paper();
    let best = [Toolchain::Mpi, Toolchain::MpiOpenMp]
        .into_iter()
        .filter_map(|tc| efficiency(&app, PlatformId::GenoaX, tc, false))
        .fold(0.0, f64::max);
    assert!(best > 0.95, "Genoa-X CloverLeaf 2D efficiency = {best:.2}");
}

#[test]
fn fig7_altra_has_no_dpcpp_and_sycl_acoustic_loses_vectorisation() {
    // §4.2.
    let app = miniapps::Acoustic::paper();
    let m = measure_structured(
        &app,
        PlatformId::Altra,
        StudyVariant {
            toolchain: Toolchain::Dpcpp,
            nd_range: true,
        },
    );
    assert!(m.runtime.is_err(), "oneAPI only supports x86");
    let omp = runtime(&app, PlatformId::Altra, Toolchain::OpenMp, false).unwrap();
    let sycl = runtime(&app, PlatformId::Altra, Toolchain::OpenSycl, true).unwrap();
    assert!(sycl > 1.2 * omp, "SYCL {sycl:.2}s vs OpenMP {omp:.2}s");
}

#[test]
fn fig8_gpu_scheme_ordering_atomics_beats_hierarchical_beats_global() {
    // §4.3: atomics (good ordering) fastest or tied, global colouring
    // far behind on every GPU.
    for gpu in [PlatformId::A100, PlatformId::Mi250x, PlatformId::Max1100] {
        let tc = match gpu {
            PlatformId::A100 => Toolchain::NativeCuda,
            PlatformId::Mi250x => Toolchain::NativeHip,
            _ => Toolchain::Dpcpp,
        };
        let t = |scheme| {
            portability::measure_mgcfd(
                gpu,
                StudyVariant {
                    toolchain: tc,
                    nd_range: true,
                },
                scheme,
            )
            .runtime
            .unwrap()
        };
        let atomics = t(Scheme::Atomics);
        let hier = t(Scheme::HierColor);
        let global = t(Scheme::GlobalColor);
        // §4.3: "Atomics throughput in the Max 1100 appears to be the
        // limiting factor" — there hierarchical may edge atomics out.
        let slack = if gpu == PlatformId::Max1100 {
            1.4
        } else {
            1.05
        };
        assert!(atomics <= hier * slack, "{gpu:?}");
        // Runtimes now include the staged H2D upload of the hierarchy,
        // a fixed cost both schemes pay — it compresses the ratio a
        // little, but global colouring must still be far behind.
        assert!(
            global > 1.4 * hier,
            "{gpu:?}: global {global:.2} hier {hier:.2}"
        );
    }
}

#[test]
fn fig8_mi250x_opensycl_atomics_suffer_from_safe_atomics() {
    // §4.3: OpenSYCL could not access the unsafe atomics on the MI250X.
    let hip = portability::measure_mgcfd(
        PlatformId::Mi250x,
        StudyVariant {
            toolchain: Toolchain::NativeHip,
            nd_range: true,
        },
        Scheme::Atomics,
    )
    .runtime
    .unwrap();
    let os = portability::measure_mgcfd(
        PlatformId::Mi250x,
        StudyVariant {
            toolchain: Toolchain::OpenSycl,
            nd_range: true,
        },
        Scheme::Atomics,
    )
    .runtime
    .unwrap();
    assert!(os > 1.5 * hip, "OpenSYCL {os:.2}s vs HIP {hip:.2}s");
}

#[test]
fn fig8_a100_opensycl_atomics_outperform_cuda() {
    // §4.3: "with OpenSYCL+atomics 18% faster than CUDA+atomics" on the
    // A100 (LLVM optimising the flux kernel harder).
    let cuda = portability::measure_mgcfd(
        PlatformId::A100,
        StudyVariant {
            toolchain: Toolchain::NativeCuda,
            nd_range: true,
        },
        Scheme::Atomics,
    )
    .runtime
    .unwrap();
    let os = portability::measure_mgcfd(
        PlatformId::A100,
        StudyVariant {
            toolchain: Toolchain::OpenSycl,
            nd_range: true,
        },
        Scheme::Atomics,
    )
    .runtime
    .unwrap();
    assert!(os < cuda, "OpenSYCL {os:.3}s vs CUDA {cuda:.3}s");
}

#[test]
fn fig9_cpu_mgcfd_mpi_beats_every_sycl_variant() {
    // §4.3/§4.4: auto-vectorising MPI is the best CPU implementation;
    // SYCL is 20-30%+ behind on every CPU platform.
    for cpu in [PlatformId::Xeon8360Y, PlatformId::GenoaX, PlatformId::Altra] {
        let mpi = portability::measure_mgcfd(
            cpu,
            StudyVariant {
                toolchain: Toolchain::Mpi,
                nd_range: false,
            },
            Scheme::Atomics,
        )
        .runtime
        .unwrap();
        for tc in [Toolchain::Dpcpp, Toolchain::OpenSycl] {
            for scheme in Scheme::all() {
                let m = portability::measure_mgcfd(
                    cpu,
                    StudyVariant {
                        toolchain: tc,
                        nd_range: true,
                    },
                    scheme,
                );
                if let Ok(t) = m.runtime {
                    assert!(
                        t > mpi,
                        "{cpu:?} {} {scheme:?}: {t:.2} vs MPI {mpi:.2}",
                        tc.label()
                    );
                }
            }
        }
    }
}

#[test]
fn section44_there_is_a_working_sycl_config_everywhere() {
    // §4.4: "there is at least one compiler and SYCL formulation that
    // works across all architectures and applications."
    for app in miniapps::paper_structured_apps() {
        for p in [
            PlatformId::A100,
            PlatformId::Mi250x,
            PlatformId::Max1100,
            PlatformId::Xeon8360Y,
            PlatformId::GenoaX,
            PlatformId::Altra,
        ] {
            let works = variants_for(p)
                .into_iter()
                .filter(|v| v.toolchain.is_sycl())
                .any(|v| measure_structured(app.as_ref(), p, v).runtime.is_ok());
            assert!(works, "{} on {p:?}", app.name());
        }
    }
}

#[test]
fn section44_nd_range_is_never_slower_than_flat() {
    // Tuned shapes can only help (the paper's iterative-development
    // recommendation rests on this).
    for app in miniapps::paper_structured_apps() {
        for p in [PlatformId::A100, PlatformId::Mi250x, PlatformId::Max1100] {
            for tc in [Toolchain::Dpcpp, Toolchain::OpenSycl] {
                let (Some(flat), Some(nd)) = (
                    runtime(app.as_ref(), p, tc, false),
                    runtime(app.as_ref(), p, tc, true),
                ) else {
                    continue;
                };
                assert!(
                    nd <= flat * 1.01,
                    "{} {} on {p:?}: nd {nd:.3} vs flat {flat:.3}",
                    app.name(),
                    tc.label()
                );
            }
        }
    }
}
