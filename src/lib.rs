//! # sycl-portability — a simulated reproduction of
//! *"Evaluating the performance portability of SYCL across CPUs and GPUs
//! on bandwidth-bound applications"* (Reguly, SC-W 2023)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`parkit`] — the parallel substrate (thread pool, deterministic
//!   reductions) that executes every kernel functionally;
//! * [`machine_model`] — calibrated analytic models of the six platforms
//!   (A100, MI250X, Max 1100, Xeon 8360Y, Genoa-X, Ampere Altra);
//! * [`sycl_sim`] — the SYCL-like portable programming model with
//!   toolchain simulations of DPC++ and OpenSYCL plus native baselines;
//! * [`ops_dsl`] / [`op2_dsl`] — the structured/unstructured mesh DSLs
//!   (the OPS and OP2 analogues);
//! * [`babelstream`] — the bandwidth yardstick behind Table 1;
//! * [`miniapps`] — CloverLeaf 2D/3D, OpenSBLI SA/SN, RTM, Acoustic and
//!   MG-CFD at the paper's problem sizes;
//! * [`portability`] — the study harness, efficiency accounting and the
//!   Pennycook–Sewall PP̄ metric.
//!
//! ## Quickstart
//!
//! ```
//! use sycl_portability::prelude::*;
//!
//! // "Compile" BabelStream with DPC++ for the A100 and run Triad.
//! let session = Session::create(
//!     SessionConfig::new(PlatformId::A100, Toolchain::Dpcpp).app("quickstart"),
//! )
//! .unwrap();
//! let mut stream = babelstream::BabelStream::new(1 << 20);
//! stream.run(&session, babelstream::StreamKernel::Triad);
//! assert!(session.elapsed() > 0.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `bench-harness` crate for the binaries that regenerate every table
//! and figure of the paper.

pub use babelstream;
pub use machine_model;
pub use miniapps;
pub use op2_dsl;
pub use ops_dsl;
pub use parkit;
pub use portability;
pub use sycl_sim;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use miniapps::{App, AppRun};
    pub use ops_dsl::prelude::*;
    pub use sycl_sim::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        let p = machine_model::Platform::get(machine_model::PlatformId::A100);
        assert_eq!(p.id.label(), "a100");
        assert!(parkit::global_pool().lanes() >= 1);
    }
}
