//! Enumerating and sharding the study's work units.
//!
//! A *unit* is one cell of the paper's cross-product: (app, platform,
//! variant[, scheme]). The enumeration order is a **determinism
//! guarantee**: it depends only on the fixed platform/app/variant
//! tables, never on timing, worker count or shard, so every process —
//! orchestrator, worker, a CI shard on another machine — derives the
//! same `index ↔ unit` mapping, and `--shard i/n` partitions by
//! `index % n` into disjoint, collectively-exhaustive slices.

use portability::{cpu_platforms, gpu_platforms, variants_for, StudyVariant};
use sycl_sim::{PlatformId, Scheme, Toolchain};

/// One cell of the study cross-product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyUnit {
    /// Position in the full (unsharded) enumeration of its scope.
    pub index: usize,
    /// App name as accepted by `bench_harness::make_app`.
    pub app: String,
    pub platform: PlatformId,
    pub variant: StudyVariant,
    /// `Some` for MG-CFD (the race-resolution scheme), `None` for the
    /// structured-mesh apps.
    pub scheme: Option<Scheme>,
}

impl StudyUnit {
    /// Stable human-readable id, unique within a scope — the journal
    /// and merge layers key on this.
    pub fn id(&self) -> String {
        let mut s = format!(
            "{}@{}/{}",
            self.app,
            self.platform.label(),
            self.variant.label()
        );
        if let Some(k) = self.scheme {
            s.push('#');
            s.push_str(k.label());
        }
        s
    }
}

/// Which slice of the cross-product a study covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The full paper cross-product: 7 apps × 6 platforms × variants
    /// (× schemes for MG-CFD).
    Paper,
    /// A CI-sized subset: CloverLeaf 2D + MG-CFD(atomics) on one GPU
    /// and one CPU.
    Smoke,
}

impl Scope {
    pub fn label(self) -> &'static str {
        match self {
            Scope::Paper => "paper",
            Scope::Smoke => "smoke",
        }
    }

    pub fn parse(s: &str) -> Option<Scope> {
        match s {
            "paper" => Some(Scope::Paper),
            "smoke" => Some(Scope::Smoke),
            _ => None,
        }
    }

    /// Enumerate the scope's units in canonical order.
    pub fn units(self) -> Vec<StudyUnit> {
        match self {
            Scope::Paper => paper_units(),
            Scope::Smoke => smoke_units(),
        }
    }
}

/// The structured-mesh app names, paper order (MG-CFD is enumerated
/// separately because its cells carry a scheme).
fn structured_app_names() -> Vec<&'static str> {
    bench_harness::APP_NAMES
        .into_iter()
        .filter(|&a| a != "mgcfd")
        .collect()
}

fn push_platform_units(
    out: &mut Vec<StudyUnit>,
    platform: PlatformId,
    apps: &[&str],
    mgcfd_schemes: &[Scheme],
) {
    for &app in apps {
        for variant in variants_for(platform) {
            let index = out.len();
            out.push(StudyUnit {
                index,
                app: app.to_owned(),
                platform,
                variant,
                scheme: None,
            });
        }
    }
    for variant in variants_for(platform) {
        for &scheme in mgcfd_schemes {
            let index = out.len();
            out.push(StudyUnit {
                index,
                app: "mgcfd".to_owned(),
                platform,
                variant,
                scheme: Some(scheme),
            });
        }
    }
}

/// The full paper cross-product, canonical order: GPUs then CPUs in
/// figure order; per platform the six structured apps × variants, then
/// MG-CFD × variants × schemes.
pub fn paper_units() -> Vec<StudyUnit> {
    let apps = structured_app_names();
    let mut out = Vec::new();
    for p in gpu_platforms().into_iter().chain(cpu_platforms()) {
        push_platform_units(&mut out, p, &apps, &Scheme::all());
    }
    out
}

/// The smoke subset: one GPU + one CPU, CloverLeaf 2D across variants
/// plus MG-CFD with atomics.
pub fn smoke_units() -> Vec<StudyUnit> {
    let mut out = Vec::new();
    for p in [PlatformId::A100, PlatformId::Xeon8360Y] {
        push_platform_units(&mut out, p, &["cloverleaf2d"], &[Scheme::Atomics]);
    }
    out
}

/// The `i/n` shard of `units` (1-based `i`): every unit whose canonical
/// index is ≡ i−1 (mod n). Shards are disjoint and cover the input.
pub fn shard(units: Vec<StudyUnit>, i: usize, n: usize) -> Vec<StudyUnit> {
    assert!(n >= 1 && (1..=n).contains(&i), "shard {i}/{n} out of range");
    units.into_iter().filter(|u| u.index % n == i - 1).collect()
}

/// Reconstruct a unit from its wire fields (the worker and merge sides
/// of the protocol). Returns `None` on any unknown label.
pub fn unit_from_wire(
    index: usize,
    app: &str,
    platform: &str,
    toolchain: &str,
    nd_range: bool,
    scheme: Option<&str>,
) -> Option<StudyUnit> {
    let scheme = match scheme {
        None => None,
        Some(s) => Some(Scheme::parse(s)?),
    };
    Some(StudyUnit {
        index,
        app: app.to_owned(),
        platform: PlatformId::parse(platform)?,
        variant: StudyVariant {
            toolchain: Toolchain::parse(toolchain)?,
            nd_range,
        },
        scheme,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_scope_covers_the_whole_cross_product() {
        let units = paper_units();
        // Variant columns per platform: 5+6+5+6+6+6 = 34. Structured:
        // 6 apps × 34; MG-CFD: 34 × 3 schemes.
        assert_eq!(units.len(), 6 * 34 + 34 * 3);
        let ids: HashSet<String> = units.iter().map(|u| u.id()).collect();
        assert_eq!(ids.len(), units.len(), "ids are unique");
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.index, i, "index mirrors enumeration order");
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        assert_eq!(paper_units(), paper_units());
        assert_eq!(smoke_units(), smoke_units());
    }

    #[test]
    fn shards_partition_the_scope() {
        let all = paper_units();
        let mut seen = HashSet::new();
        for i in 1..=3 {
            for u in shard(paper_units(), i, 3) {
                assert!(seen.insert(u.index), "shards overlap at {}", u.id());
            }
        }
        assert_eq!(seen.len(), all.len(), "shards cover the scope");
    }

    #[test]
    fn units_round_trip_through_wire_fields() {
        for u in smoke_units() {
            let back = unit_from_wire(
                u.index,
                &u.app,
                u.platform.label(),
                u.variant.toolchain.label(),
                u.variant.nd_range,
                u.scheme.map(|s| s.label()),
            )
            .unwrap();
            assert_eq!(back, u);
        }
        assert!(unit_from_wire(0, "x", "a100", "LLVM", false, None).is_none());
        assert!(unit_from_wire(0, "x", "p6000", "CUDA", false, None).is_none());
    }

    #[test]
    fn ids_name_the_cell_like_the_figures() {
        let units = smoke_units();
        assert!(units.iter().any(|u| u.id() == "cloverleaf2d@a100/CUDA"));
        assert!(units
            .iter()
            .any(|u| u.id() == "mgcfd@xeon8360y/DPC++ ndrange#atomics"));
    }
}
