//! The orchestrator↔worker pipe protocol.
//!
//! ## Frame layout
//!
//! Every message travels in one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SYF1"
//! 4       4     length u32, little-endian, bytes of payload
//! 8       len   payload: one UTF-8 JSON document
//! ```
//!
//! The magic makes desynchronisation loud (a stray `println!` in a
//! worker shows up as `BadMagic`, not as garbage fed to the JSON
//! parser), the length prefix lets the reader allocate exactly once,
//! and [`MAX_FRAME`] bounds that allocation so a corrupt length cannot
//! OOM the orchestrator. A frame cut short by a dying worker surfaces
//! as [`FrameError::Truncated`]; EOF *between* frames is the clean
//! shutdown signal (`Ok(None)`).
//!
//! ## Messages
//!
//! JSON objects tagged by a `"msg"` key. Orchestrator → worker:
//! `run`, `exit`. Worker → orchestrator: `hello`, `start`, `done`,
//! `bye`. `start` is sent *before* the unit executes, so after a crash
//! the orchestrator knows exactly which unit died and can retry it.
//! `bye` is the worker's exit frame (peak RSS and farewell); a worker
//! that dies never sends it, which is itself a signal.
//!
//! ## Versioning
//!
//! `hello` carries [`PROTO_VERSION`]. The orchestrator refuses to mix
//! protocol generations: a version mismatch fails the study with a
//! clear error instead of silently dropping fields a newer peer relies
//! on (trace ids, exit frames). A `hello` without a `proto` key parses
//! as version 0 — the pre-handshake generation.

use crate::record::UnitRecord;
use crate::unit::{unit_from_wire, StudyUnit};
use metrics::jsonv::{self, Json};
use std::fmt;
use std::io::{self, Read, Write};
use telemetry::json::JsonWriter;

/// Frame magic: **SY**cl-study **F**rame v**1**.
pub const MAGIC: [u8; 4] = *b"SYF1";

/// Message-schema generation spoken by this build. Bumped when a field
/// the orchestrator depends on is added (v2: trace ids + `bye` frames).
pub const PROTO_VERSION: u32 = 2;

/// Upper bound on a frame payload (16 MiB) — larger lengths are
/// treated as protocol corruption, not allocation requests.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    Io(io::Error),
    /// The stream is desynchronised (or not ours).
    BadMagic([u8; 4]),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// EOF inside a frame — the peer died mid-write.
    Truncated {
        expected: usize,
        got: usize,
    },
    /// The payload is not UTF-8.
    Utf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            FrameError::Truncated { expected, got } => {
                write!(f, "frame truncated: expected {expected} bytes, got {got}")
            }
            FrameError::Utf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame. `Ok(None)` is clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, FrameError> {
    let mut header = [0u8; 8];
    match read_exact_or_eof(r, &mut header).map_err(FrameError::Io)? {
        0 => return Ok(None),
        8 => {}
        got => return Err(FrameError::Truncated { expected: 8, got }),
    }
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload).map_err(FrameError::Io)? {
        n if n == len as usize => {}
        got => {
            return Err(FrameError::Truncated {
                expected: len as usize,
                got,
            })
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::Utf8)
}

/// Fill `buf` completely, or return how many bytes arrived before EOF.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker greeting (pid recorded for span attribution, `proto` for
    /// the version handshake).
    Hello { worker: u32, pid: u32, proto: u32 },
    /// Execute one unit. `trace` is the orchestrator-stamped causal
    /// trace id carried through spans, flight events, and manifests.
    Run {
        unit: StudyUnit,
        attempt: u32,
        reps: u32,
        /// Paper-size apps (vs CI test size).
        paper: bool,
        trace: u64,
    },
    /// The worker is about to execute `index` — the crash-retry anchor.
    Start {
        index: usize,
        worker: u32,
        attempt: u32,
        trace: u64,
    },
    /// The unit reached a terminal state.
    Done(UnitRecord),
    /// Worker exit frame: sent on orderly shutdown, never by a crash.
    Bye { worker: u32, peak_rss_kb: u64 },
    /// Orderly shutdown.
    Exit,
}

impl Msg {
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        match self {
            Msg::Hello { worker, pid, proto } => {
                w.begin_object();
                w.key("msg").string("hello");
                w.key("worker").int(*worker as u64);
                w.key("pid").int(*pid as u64);
                w.key("proto").int(*proto as u64);
                w.end_object();
            }
            Msg::Run {
                unit,
                attempt,
                reps,
                paper,
                trace,
            } => {
                w.begin_object();
                w.key("msg").string("run");
                w.key("index").int(unit.index as u64);
                w.key("app").string(&unit.app);
                w.key("platform").string(unit.platform.label());
                w.key("toolchain").string(unit.variant.toolchain.label());
                w.key("ndRange").bool(unit.variant.nd_range);
                if let Some(s) = unit.scheme {
                    w.key("scheme").string(s.label());
                }
                w.key("attempt").int(*attempt as u64);
                w.key("reps").int(*reps as u64);
                w.key("paper").bool(*paper);
                w.key("trace").int(*trace);
                w.end_object();
            }
            Msg::Start {
                index,
                worker,
                attempt,
                trace,
            } => {
                w.begin_object();
                w.key("msg").string("start");
                w.key("index").int(*index as u64);
                w.key("worker").int(*worker as u64);
                w.key("attempt").int(*attempt as u64);
                w.key("trace").int(*trace);
                w.end_object();
            }
            Msg::Done(rec) => {
                w.begin_object();
                w.key("msg").string("done");
                w.key("record");
                rec.write_json(&mut w);
                w.end_object();
            }
            Msg::Bye {
                worker,
                peak_rss_kb,
            } => {
                w.begin_object();
                w.key("msg").string("bye");
                w.key("worker").int(*worker as u64);
                w.key("peakRssKb").int(*peak_rss_kb);
                w.end_object();
            }
            Msg::Exit => {
                w.begin_object();
                w.key("msg").string("exit");
                w.end_object();
            }
        }
        w.finish()
    }

    pub fn parse(text: &str) -> Result<Msg, String> {
        let j = jsonv::parse(text).map_err(|e| e.to_string())?;
        let u32_of = |k: &str| -> Result<u32, String> {
            j.u64_of(k)
                .map(|v| v as u32)
                .ok_or(format!("missing '{k}'"))
        };
        match j.str_of("msg").ok_or("message missing 'msg' tag")? {
            "hello" => Ok(Msg::Hello {
                worker: u32_of("worker")?,
                pid: u32_of("pid")?,
                // Pre-handshake peers sent no version at all.
                proto: j.u64_of("proto").unwrap_or(0) as u32,
            }),
            "run" => {
                let unit = unit_from_wire(
                    j.u64_of("index").ok_or("run missing 'index'")? as usize,
                    j.str_of("app").ok_or("run missing 'app'")?,
                    j.str_of("platform").ok_or("run missing 'platform'")?,
                    j.str_of("toolchain").ok_or("run missing 'toolchain'")?,
                    matches!(j.get("ndRange"), Some(Json::Bool(true))),
                    j.str_of("scheme"),
                )
                .ok_or("run names unknown platform/toolchain/scheme")?;
                Ok(Msg::Run {
                    unit,
                    attempt: u32_of("attempt")?,
                    reps: u32_of("reps")?,
                    paper: matches!(j.get("paper"), Some(Json::Bool(true))),
                    trace: j.u64_of("trace").unwrap_or(0),
                })
            }
            "start" => Ok(Msg::Start {
                index: j.u64_of("index").ok_or("start missing 'index'")? as usize,
                worker: u32_of("worker")?,
                attempt: u32_of("attempt")?,
                trace: j.u64_of("trace").unwrap_or(0),
            }),
            "done" => {
                let rec = j.get("record").ok_or("done missing 'record'")?;
                Ok(Msg::Done(UnitRecord::from_json(rec)?))
            }
            "bye" => Ok(Msg::Bye {
                worker: u32_of("worker")?,
                peak_rss_kb: j.u64_of("peakRssKb").unwrap_or(0),
            }),
            "exit" => Ok(Msg::Exit),
            other => Err(format!("unknown message tag '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UnitStatus;
    use crate::unit::smoke_units;
    use std::io::Cursor;

    fn messages() -> Vec<Msg> {
        let unit = smoke_units().into_iter().next().unwrap();
        vec![
            Msg::Hello {
                worker: 1,
                pid: 42,
                proto: PROTO_VERSION,
            },
            Msg::Run {
                unit: unit.clone(),
                attempt: 2,
                reps: 3,
                paper: true,
                trace: 7,
            },
            Msg::Start {
                index: unit.index,
                worker: 1,
                attempt: 2,
                trace: 7,
            },
            Msg::Done(UnitRecord {
                unit,
                status: UnitStatus::Ok,
                note: None,
                worker: 1,
                attempt: 2,
                trace: 7,
                wall_secs: 0.25,
                samples: vec![0.1, 0.15],
                sim_secs: Some(1.0),
                efficiency: Some(0.5),
                gbps: Some(700.0),
            }),
            Msg::Bye {
                worker: 1,
                peak_rss_kb: 51_200,
            },
            Msg::Exit,
        ]
    }

    #[test]
    fn messages_round_trip_through_frames() {
        let mut pipe = Vec::new();
        for m in messages() {
            write_frame(&mut pipe, &m.to_json()).unwrap();
        }
        let mut r = Cursor::new(pipe);
        let mut back = Vec::new();
        while let Some(payload) = read_frame(&mut r).unwrap() {
            back.push(Msg::parse(&payload).unwrap());
        }
        assert_eq!(back, messages());
    }

    #[test]
    fn hello_without_proto_parses_as_version_zero() {
        // A pre-handshake worker never wrote a `proto` key; it must
        // parse (as generation 0) so the orchestrator can *name* the
        // mismatch instead of choking on the frame.
        let m = Msg::parse(r#"{"msg":"hello","worker":0,"pid":9}"#).unwrap();
        assert_eq!(
            m,
            Msg::Hello {
                worker: 0,
                pid: 9,
                proto: 0
            }
        );
    }

    #[test]
    fn eof_between_frames_is_clean_but_inside_is_truncation() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &Msg::Exit.to_json()).unwrap();
        // Cut the stream at every byte inside the frame.
        for cut in 1..pipe.len() {
            let err = {
                let mut r = Cursor::new(&pipe[..cut]);
                read_frame(&mut r).unwrap_err()
            };
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
        let mut r = Cursor::new(&pipe[..0]);
        assert!(read_frame(&mut r).unwrap().is_none(), "empty stream = EOF");
    }

    #[test]
    fn stray_output_and_corrupt_lengths_are_rejected() {
        let mut r = Cursor::new(b"thread 'main' panicked at".to_vec());
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            FrameError::BadMagic(_)
        ));

        let mut pipe = Vec::new();
        pipe.extend_from_slice(&MAGIC);
        pipe.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut r = Cursor::new(pipe);
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            FrameError::Oversized(_)
        ));

        let mut pipe = Vec::new();
        pipe.extend_from_slice(&MAGIC);
        pipe.extend_from_slice(&2u32.to_le_bytes());
        pipe.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Cursor::new(pipe);
        assert!(matches!(read_frame(&mut r).unwrap_err(), FrameError::Utf8));
    }
}
