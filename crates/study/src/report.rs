//! `STUDY.json`: the study-level artefact, and shard merging.
//!
//! One document (`schema: "sycl-study/v1"`) holds the terminal record
//! of every unit plus the fleet statistics; the dashboard's study
//! section and the PP̄ table are derived from it. CI runs shards
//! (`--shard 1/2`, `--shard 2/2`) in parallel jobs and merges their
//! documents — [`merge_docs`] verifies the shards are disjoint and
//! together cover the scope's full canonical enumeration, so a lost
//! shard can never silently shrink the study.

use crate::orchestrator::StudyStats;
use crate::record::{UnitRecord, UnitStatus};
use crate::unit::Scope;
use metrics::jsonv::{self, Json};
use portability::{cpu_platforms, gpu_platforms, pennycook};
use sycl_sim::{PlatformId, Scheme, Toolchain};
use telemetry::json::JsonWriter;

pub const SCHEMA: &str = "sycl-study/v1";

/// The study-level result document.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyDoc {
    pub scope: Scope,
    /// 1-based (index, count) when this document is one CI shard.
    pub shard: Option<(usize, usize)>,
    pub workers: u32,
    pub stats: StudyStats,
    /// Terminal records, canonical (unit-index) order.
    pub records: Vec<UnitRecord>,
}

impl StudyDoc {
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA);
        w.key("scope").string(self.scope.label());
        if let Some((i, n)) = self.shard {
            w.key("shardIndex").int(i as u64);
            w.key("shardCount").int(n as u64);
        }
        w.key("workers").int(self.workers as u64);
        w.key("stats").begin_object();
        w.key("elapsedSecs").number(self.stats.elapsed_secs);
        w.key("busySecs").number(self.stats.busy_secs);
        w.key("workers").int(self.stats.workers as u64);
        w.key("retries").int(self.stats.retries);
        w.key("restarts").int(self.stats.restarts);
        w.key("timeouts").int(self.stats.timeouts);
        w.key("resumed").int(self.stats.resumed as u64);
        w.key("peakRssKb").int(self.stats.peak_rss_kb);
        w.end_object();
        w.key("pp").begin_array();
        for (label, value) in pp_rows(&self.records) {
            w.begin_object();
            w.key("label").string(&label);
            w.key("value").number(value);
            w.end_object();
        }
        w.end_array();
        w.key("records").begin_array();
        for r in &self.records {
            r.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    pub fn parse(text: &str) -> Result<StudyDoc, String> {
        let j = jsonv::parse(text).map_err(|e| e.to_string())?;
        match j.str_of("schema") {
            Some(SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let scope = j
            .str_of("scope")
            .and_then(Scope::parse)
            .ok_or("document missing a known 'scope'")?;
        let shard = match (j.u64_of("shardIndex"), j.u64_of("shardCount")) {
            (Some(i), Some(n)) => Some((i as usize, n as usize)),
            (None, None) => None,
            _ => return Err("shardIndex/shardCount must appear together".into()),
        };
        let stats = j.get("stats").ok_or("document missing 'stats'")?;
        let stat_u64 = |k: &str| stats.u64_of(k).ok_or(format!("stats missing '{k}'"));
        let records = match j.get("records") {
            Some(Json::Arr(a)) => a
                .iter()
                .map(UnitRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("document missing 'records'".into()),
        };
        Ok(StudyDoc {
            scope,
            shard,
            workers: j.u64_of("workers").ok_or("document missing 'workers'")? as u32,
            stats: StudyStats {
                elapsed_secs: stats.f64_of("elapsedSecs").unwrap_or(0.0),
                busy_secs: stats.f64_of("busySecs").unwrap_or(0.0),
                workers: stat_u64("workers")? as u32,
                retries: stat_u64("retries")?,
                restarts: stat_u64("restarts")?,
                timeouts: stat_u64("timeouts")?,
                resumed: stat_u64("resumed")? as u32,
                // Older documents predate the exit frame.
                peak_rss_kb: stats.u64_of("peakRssKb").unwrap_or(0),
            },
            records,
        })
    }

    /// (ok, holes, crashed) counts.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.records {
            match r.status {
                UnitStatus::Ok => c.0 += 1,
                UnitStatus::Hole(_) => c.1 += 1,
                UnitStatus::Crashed => c.2 += 1,
            }
        }
        c
    }
}

/// Merge CI shards into one full-scope document, verifying that they
/// are pairwise disjoint and collectively cover the scope's canonical
/// enumeration exactly.
pub fn merge_docs(parts: &[StudyDoc]) -> Result<StudyDoc, String> {
    let first = parts.first().ok_or("no documents to merge")?;
    let scope = first.scope;
    let mut records: Vec<UnitRecord> = Vec::new();
    let mut stats = StudyStats::default();
    let mut workers = 0;
    for d in parts {
        if d.scope != scope {
            return Err(format!(
                "scope mismatch: {} vs {}",
                d.scope.label(),
                scope.label()
            ));
        }
        records.extend(d.records.iter().cloned());
        workers += d.workers;
        stats.elapsed_secs = stats.elapsed_secs.max(d.stats.elapsed_secs);
        stats.busy_secs += d.stats.busy_secs;
        stats.workers += d.stats.workers;
        stats.retries += d.stats.retries;
        stats.restarts += d.stats.restarts;
        stats.timeouts += d.stats.timeouts;
        stats.resumed += d.stats.resumed;
        stats.peak_rss_kb = stats.peak_rss_kb.max(d.stats.peak_rss_kb);
    }
    records.sort_by_key(|r| r.unit.index);
    let expected = scope.units();
    if records.len() != expected.len() {
        return Err(format!(
            "merged shards hold {} records, scope '{}' has {} units",
            records.len(),
            scope.label(),
            expected.len()
        ));
    }
    for (r, u) in records.iter().zip(&expected) {
        if r.unit != *u {
            return Err(format!(
                "record at index {} is {}, expected {} — shards overlap or a shard is missing",
                u.index,
                r.id(),
                u.id()
            ));
        }
    }
    Ok(StudyDoc {
        scope,
        shard: None,
        workers,
        stats,
        records,
    })
}

/// The Pennycook–Sewall PP̄ table over the merged study, computed the
/// way `bench_harness::summary_stats` does for the paper's §4.4 — but
/// from journaled records, so it covers exactly what this study ran.
pub fn pp_rows(records: &[UnitRecord]) -> Vec<(String, f64)> {
    let platforms: Vec<PlatformId> = gpu_platforms()
        .into_iter()
        .chain(cpu_platforms())
        .filter(|p| records.iter().any(|r| r.unit.platform == *p))
        .collect();
    let apps: Vec<&str> = {
        let mut v: Vec<&str> = records
            .iter()
            .filter(|r| r.unit.scheme.is_none())
            .map(|r| r.unit.app.as_str())
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let mut rows = Vec::new();
    for (tc, nd) in [
        (Toolchain::Dpcpp, true),
        (Toolchain::OpenSycl, true),
        (Toolchain::Dpcpp, false),
        (Toolchain::OpenSycl, false),
    ] {
        if apps.is_empty() {
            break;
        }
        let per_app: Vec<f64> = apps
            .iter()
            .map(|&app| {
                let es: Vec<Option<f64>> = platforms
                    .iter()
                    .map(|&p| {
                        records
                            .iter()
                            .find(|r| {
                                r.unit.scheme.is_none()
                                    && r.unit.app == app
                                    && r.unit.platform == p
                                    && r.unit.variant.toolchain == tc
                                    && r.unit.variant.nd_range == nd
                            })
                            .and_then(|r| r.efficiency)
                    })
                    .collect();
                pennycook(&es, true)
            })
            .collect();
        let label = format!(
            "structured {} {}",
            tc.label(),
            if nd { "ndrange" } else { "flat" }
        );
        rows.push((label, portability::mean(&per_app)));
    }
    let mgcfd_eff = |p: PlatformId, keep: &dyn Fn(&UnitRecord) -> bool| -> Option<f64> {
        records
            .iter()
            .filter(|r| r.unit.scheme.is_some() && r.unit.platform == p && keep(r))
            .filter_map(|r| r.efficiency)
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            })
    };
    if records.iter().any(|r| r.unit.scheme.is_some()) {
        let osa: Vec<Option<f64>> = platforms
            .iter()
            .map(|&p| {
                mgcfd_eff(p, &|r| {
                    r.unit.variant.toolchain == Toolchain::OpenSycl
                        && r.unit.scheme == Some(Scheme::Atomics)
                })
            })
            .collect();
        rows.push(("mgcfd OpenSYCL atomics".into(), pennycook(&osa, false)));
        let best: Vec<Option<f64>> = platforms
            .iter()
            .map(|&p| mgcfd_eff(p, &|r| r.unit.variant.toolchain.is_sycl()))
            .collect();
        rows.push(("mgcfd best SYCL".into(), pennycook(&best, false)));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{run_study, StudyConfig};
    use crate::unit::{shard, Scope};

    fn smoke_doc(shard_of: Option<(usize, usize)>) -> StudyDoc {
        let mut cfg = StudyConfig::new(Scope::Smoke);
        cfg.workers = 0;
        cfg.reps = 1;
        cfg.shard = shard_of;
        let out = run_study(&cfg).unwrap();
        StudyDoc {
            scope: Scope::Smoke,
            shard: shard_of,
            workers: 0,
            stats: out.stats,
            records: out.records,
        }
    }

    #[test]
    fn docs_round_trip() {
        let doc = smoke_doc(None);
        let back = StudyDoc::parse(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
        let (ok, holes, crashed) = back.status_counts();
        assert_eq!(ok + holes + crashed, back.records.len());
        assert!(ok > 0, "smoke scope measures something");
        assert_eq!(crashed, 0);
    }

    #[test]
    fn shard_merge_restores_the_full_scope() {
        let full = smoke_doc(None);
        let merged = merge_docs(&[smoke_doc(Some((1, 2))), smoke_doc(Some((2, 2)))]).unwrap();
        assert_eq!(merged.records.len(), full.records.len());
        for (a, b) in merged.records.iter().zip(&full.records) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.status, b.status);
            assert_eq!(a.sim_secs, b.sim_secs, "{}", a.id());
        }
        assert_eq!(merged.shard, None);
    }

    #[test]
    fn merge_rejects_overlap_and_gaps() {
        let s1 = smoke_doc(Some((1, 2)));
        let err = merge_docs(&[s1.clone(), s1.clone()]).unwrap_err();
        assert!(err.contains("units") || err.contains("overlap"), "{err}");
        let err = merge_docs(&[s1]).unwrap_err();
        assert!(err.contains("records"), "{err}");
    }

    #[test]
    fn pp_rows_cover_sycl_combos_and_mgcfd() {
        let doc = smoke_doc(None);
        let rows = pp_rows(&doc.records);
        let labels: Vec<&str> = rows.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"structured DPC++ ndrange"));
        assert!(labels.contains(&"mgcfd best SYCL"));
        for (label, v) in &rows {
            assert!(
                (0.0..=1.3).contains(v),
                "{label}: PP {v} outside sane range"
            );
        }
        // Smoke runs both DPC++-capable platforms, so the nd_range PP
        // over present platforms is nonzero.
        let (_, nd) = rows
            .iter()
            .find(|(l, _)| l == "structured DPC++ ndrange")
            .unwrap();
        assert!(*nd > 0.0);
    }

    #[test]
    fn shard_units_match_doc_shards() {
        // The shard in a doc and the unit::shard helper agree.
        let s2 = smoke_doc(Some((2, 2)));
        let expect = shard(Scope::Smoke.units(), 2, 2);
        assert_eq!(
            s2.records.iter().map(|r| r.unit.index).collect::<Vec<_>>(),
            expect.iter().map(|u| u.index).collect::<Vec<_>>()
        );
    }
}
