//! Executing one study unit (in whichever process it landed).
//!
//! The measurement itself is `portability::measure_structured` /
//! `measure_mgcfd` — the same dry-run pricing the figure binaries use —
//! repeated `reps` times so the merged manifest carries a wall-clock
//! distribution per cell. The *simulated* quantities (runtime,
//! efficiency, GB/s) are deterministic; only the wall-clock samples
//! vary between runs, which is exactly the "identical modulo timing
//! samples" determinism contract the merge layer tests.

use crate::record::{UnitRecord, UnitStatus};
use crate::unit::StudyUnit;
use portability::{measure_mgcfd, measure_structured, Measurement};
use std::time::Instant;

/// Run one unit to a terminal record (`Ok` or `Hole` — `Crashed` can
/// only be decided by the orchestrator, after retries are exhausted).
/// `trace` is the causal trace id stamped on the dispatch (0 when no
/// orchestrator is involved).
pub fn run_unit(
    unit: &StudyUnit,
    reps: u32,
    paper: bool,
    worker: u32,
    attempt: u32,
    trace: u64,
) -> UnitRecord {
    let started = Instant::now();
    let mut samples = Vec::with_capacity(reps.max(1) as usize);
    let mut last: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let rep_start = Instant::now();
        let m = match unit.scheme {
            Some(scheme) => measure_mgcfd(unit.platform, unit.variant, scheme),
            None => match bench_harness::make_app(&unit.app, paper) {
                Some(app) => measure_structured(app.as_ref(), unit.platform, unit.variant),
                None => {
                    return UnitRecord {
                        unit: unit.clone(),
                        status: UnitStatus::Crashed,
                        note: Some(format!("unknown app '{}'", unit.app)),
                        worker,
                        attempt,
                        trace,
                        wall_secs: started.elapsed().as_secs_f64(),
                        samples: vec![],
                        sim_secs: None,
                        efficiency: None,
                        gbps: None,
                    }
                }
            },
        };
        samples.push(rep_start.elapsed().as_secs_f64());
        last = Some(m);
    }
    let m = last.expect("reps >= 1");
    let (status, sim_secs) = match m.runtime {
        Ok(t) => (UnitStatus::Ok, Some(t)),
        Err(kind) => (UnitStatus::Hole(kind), None),
    };
    let stream_bw = sycl_sim::Platform::get(unit.platform).mem.stream_bw;
    UnitRecord {
        unit: unit.clone(),
        status,
        note: None,
        worker,
        attempt,
        trace,
        wall_secs: started.elapsed().as_secs_f64(),
        samples,
        sim_secs,
        efficiency: m.efficiency,
        gbps: m.efficiency.map(|e| e * stream_bw / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::smoke_units;
    use sycl_sim::{FailureKind, PlatformId, Toolchain};

    #[test]
    fn a_supported_unit_measures_ok() {
        let unit = smoke_units()
            .into_iter()
            .find(|u| u.id() == "cloverleaf2d@a100/CUDA")
            .unwrap();
        let rec = run_unit(&unit, 2, false, 1, 1, 3);
        assert_eq!(rec.trace, 3, "trace id rides through to the record");
        assert_eq!(rec.status, UnitStatus::Ok);
        assert_eq!(rec.samples.len(), 2);
        assert!(rec.sim_secs.unwrap() > 0.0);
        // Test-size problems undersaturate bandwidth, so only sanity
        // bounds here; paper-size efficiency is asserted in
        // `portability`'s own tests.
        let eff = rec.efficiency.unwrap();
        assert!(eff > 0.0 && eff < 1.3, "eff = {eff}");
        assert!(rec.gbps.unwrap() > 0.0);
    }

    #[test]
    fn an_unsupported_unit_is_a_hole_not_an_error() {
        let unit = StudyUnit {
            index: 0,
            app: "cloverleaf2d".into(),
            platform: PlatformId::Altra,
            variant: portability::StudyVariant {
                toolchain: Toolchain::Dpcpp,
                nd_range: true,
            },
            scheme: None,
        };
        let rec = run_unit(&unit, 1, false, 0, 1, 0);
        assert_eq!(rec.status, UnitStatus::Hole(FailureKind::Unsupported));
        assert!(rec.sim_secs.is_none() && rec.efficiency.is_none());
    }

    #[test]
    fn simulated_quantities_are_deterministic_across_runs() {
        let unit = smoke_units()
            .into_iter()
            .find(|u| u.scheme.is_some())
            .unwrap();
        let a = run_unit(&unit, 1, false, 0, 1, 1);
        let b = run_unit(&unit, 3, false, 5, 2, 2);
        assert_eq!(a.status, b.status);
        assert_eq!(a.sim_secs, b.sim_secs);
        assert_eq!(a.efficiency, b.efficiency);
        assert_eq!(a.gbps, b.gbps);
    }
}
