//! Fleet forensics: reconstructing what killed a study unit.
//!
//! The inputs are the two crash-surviving artefacts a study leaves
//! behind: the terminal-record journal (what the orchestrator knows)
//! and the per-process flight recordings (what each process was doing
//! when it last touched disk). This module joins them on the causal
//! trace id and answers the questions the journal alone cannot:
//!
//! * **Attribution** — for every `crashed` unit (including timeouts),
//!   which kernel or phase was the worker inside when it died? The
//!   deepest span still open in the worker's recording at the end of
//!   that dispatch's window is the answer; the worker flushed the unit
//!   span and `begin` mark before anything could kill the attempt, so
//!   the window always exists on disk.
//! * **Tail analysis** — among units that completed, which kernels
//!   dominate the p99 of unit wall time (the stragglers that set the
//!   fleet's critical path)?
//! * **Timeline** — one merged Chrome trace over every recording, on a
//!   shared unix-epoch clock, with flow arrows joining orchestrator
//!   dispatch → worker execution → result across pids.
//!
//! The `blackbox` binary drives this and writes `BLACKBOX_study.json`
//! (schema [`SCHEMA`]) plus `TRACE_study.json`.

use crate::orchestrator::ORCH_SLOT;
use crate::record::{UnitRecord, UnitStatus};
use std::collections::BTreeMap;
use std::path::Path;
use telemetry::export::{flow_finish, flow_start};
use telemetry::flight::TraceRole;
use telemetry::json::JsonWriter;
use telemetry::{FlightEvent, FlightRecording, SpanKind};

pub const SCHEMA: &str = "sycl-blackbox/v1";

/// Where a crashed (or timed-out) unit died.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    pub unit_id: String,
    pub index: u32,
    pub worker: u32,
    pub attempt: u32,
    pub trace: u64,
    /// The orchestrator's note ("timeout after 2s (attempt 3/3)", …).
    pub note: String,
    /// Deepest span open when the process last wrote — the kill site.
    /// `None` when no recording holds this dispatch (recorder off, or
    /// the worker died before its `begin` mark — which the worker's
    /// urgent-flush discipline makes effectively impossible).
    pub span_kind: Option<&'static str>,
    pub span_name: Option<String>,
    /// Seconds from that span's open to the recording's last event.
    pub in_span_secs: f64,
}

/// One kernel's share of the straggler (≥ p99 unit wall time) window.
#[derive(Debug, Clone, PartialEq)]
pub struct TailKernel {
    pub name: String,
    pub secs: f64,
    /// Fraction of all launch time inside straggler units.
    pub share: f64,
}

/// One flight recording, summarised for the fleet grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingSummary {
    pub worker: u32,
    pub pid: u32,
    pub label: String,
    pub events: usize,
    pub torn: bool,
    /// Last `peak_rss` record in the recording (0 = never written,
    /// i.e. the process did not shut down cleanly).
    pub peak_rss_kb: u64,
}

/// The full forensics document.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackboxDoc {
    pub units: usize,
    pub ok: usize,
    pub holes: usize,
    pub crashed: usize,
    pub attributions: Vec<Attribution>,
    /// Crashed units with no kill-site span — the CI gate requires 0.
    pub unattributed: usize,
    pub tail_p99_secs: f64,
    pub tail_units: Vec<String>,
    pub tail_kernels: Vec<TailKernel>,
    pub recordings: Vec<RecordingSummary>,
}

/// Read every `flight-*.bin` under `dir`, torn tails tolerated.
/// Unreadable files (alien magic, mid-header tears) are skipped — the
/// forensics must degrade, not die, on a corrupt recording.
pub fn load_flight_dir(dir: &Path) -> Vec<FlightRecording> {
    let mut recs = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return recs;
    };
    let mut paths: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".bin"))
        })
        .collect();
    paths.sort();
    for p in paths {
        if let Ok(r) = FlightRecording::read(&p) {
            recs.push(r);
        }
    }
    recs.sort_by_key(|r| (r.worker, r.start_unix_ns));
    recs
}

/// The event-index window `[begin, end)` of one dispatch inside `rec`:
/// from its `begin` trace mark to the next unit's `begin` (or the end
/// of the recording — the crash case).
fn dispatch_window(rec: &FlightRecording, r: &UnitRecord) -> Option<(usize, usize)> {
    let matches = |ev: &FlightEvent| -> bool {
        let FlightEvent::TraceMark {
            role: TraceRole::Begin,
            trace,
            unit,
            attempt,
            ..
        } = ev
        else {
            return false;
        };
        if r.trace != 0 {
            *trace == r.trace
        } else {
            *unit == r.unit.index as u32 && *attempt == r.attempt
        }
    };
    let begin = rec.events.iter().position(matches)?;
    let end = rec.events[begin + 1..]
        .iter()
        .position(|ev| {
            matches!(
                ev,
                FlightEvent::TraceMark {
                    role: TraceRole::Begin,
                    ..
                }
            )
        })
        .map(|i| begin + 1 + i)
        .unwrap_or(rec.events.len());
    Some((begin, end))
}

/// Replay the span stream of `rec.events[window]` and return the spans
/// still open at the window's end, outermost first.
fn open_at_window_end(rec: &FlightRecording, window: (usize, usize)) -> Vec<(SpanKind, &str, u64)> {
    let mut stack: Vec<(SpanKind, &str, u64)> = Vec::new();
    for ev in &rec.events[window.0..window.1] {
        match ev {
            FlightEvent::SpanOpen { t_ns, kind, name } => {
                stack.push((*kind, name.as_str(), *t_ns));
            }
            FlightEvent::SpanClose { kind, name, .. } => {
                if let Some(i) = stack
                    .iter()
                    .rposition(|(k, n, _)| k == kind && *n == name.as_str())
                {
                    stack.remove(i);
                }
            }
            _ => {}
        }
    }
    stack
}

/// Paired launch-span durations inside a window, summed per kernel.
fn launch_secs(rec: &FlightRecording, window: (usize, usize)) -> BTreeMap<String, f64> {
    let mut open: Vec<(&str, u64)> = Vec::new();
    let mut by_kernel: BTreeMap<String, f64> = BTreeMap::new();
    for ev in &rec.events[window.0..window.1] {
        match ev {
            FlightEvent::SpanOpen {
                t_ns,
                kind: SpanKind::Launch,
                name,
            } => open.push((name.as_str(), *t_ns)),
            FlightEvent::SpanClose {
                t_ns,
                kind: SpanKind::Launch,
                name,
            } => {
                if let Some(i) = open.iter().rposition(|(n, _)| *n == name.as_str()) {
                    let (n, t0) = open.remove(i);
                    *by_kernel.entry(n.to_string()).or_default() +=
                        t_ns.saturating_sub(t0) as f64 / 1e9;
                }
            }
            _ => {}
        }
    }
    by_kernel
}

/// Timestamp of the last event inside the window (the recording's last
/// breath, for a crash window that runs to the end).
fn window_last_ns(rec: &FlightRecording, window: (usize, usize)) -> u64 {
    rec.events[window.0..window.1]
        .iter()
        .map(FlightEvent::t_ns)
        .max()
        .unwrap_or(rec.start_unix_ns)
}

/// Join journal records with flight recordings into the forensics doc.
pub fn analyze(records: &[UnitRecord], recordings: &[FlightRecording]) -> BlackboxDoc {
    let (mut ok, mut holes, mut crashed) = (0usize, 0usize, 0usize);
    for r in records {
        match r.status {
            UnitStatus::Ok => ok += 1,
            UnitStatus::Hole(_) => holes += 1,
            UnitStatus::Crashed => crashed += 1,
        }
    }

    // --- crash attribution -------------------------------------------
    let mut attributions = Vec::new();
    let mut unattributed = 0usize;
    for r in records {
        if r.status != UnitStatus::Crashed {
            continue;
        }
        let found = recordings
            .iter()
            .find_map(|rec| dispatch_window(rec, r).map(|w| (rec, w)));
        let mut attr = Attribution {
            unit_id: r.id(),
            index: r.unit.index as u32,
            worker: r.worker,
            attempt: r.attempt,
            trace: r.trace,
            note: r.note.clone().unwrap_or_default(),
            span_kind: None,
            span_name: None,
            in_span_secs: 0.0,
        };
        if let Some((rec, w)) = found {
            if let Some(&(kind, name, t0)) = open_at_window_end(rec, w).last() {
                attr.span_kind = Some(kind.label());
                attr.span_name = Some(name.to_string());
                attr.in_span_secs = window_last_ns(rec, w).saturating_sub(t0) as f64 / 1e9;
            }
        }
        if attr.span_kind.is_none() {
            unattributed += 1;
        }
        attributions.push(attr);
    }

    // --- straggler / tail attribution --------------------------------
    let mut ok_walls: Vec<(f64, &UnitRecord)> = records
        .iter()
        .filter(|r| r.status == UnitStatus::Ok)
        .map(|r| (r.wall_secs, r))
        .collect();
    ok_walls.sort_by(|a, b| a.0.total_cmp(&b.0));
    let tail_p99_secs = if ok_walls.is_empty() {
        0.0
    } else {
        // Nearest-rank p99 over completed units.
        let idx = ((ok_walls.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
        ok_walls[idx].0
    };
    let stragglers: Vec<&UnitRecord> = ok_walls
        .iter()
        .filter(|(w, _)| *w >= tail_p99_secs && *w > 0.0)
        .map(|(_, r)| *r)
        .collect();
    let mut by_kernel: BTreeMap<String, f64> = BTreeMap::new();
    for r in &stragglers {
        for rec in recordings {
            if let Some(w) = dispatch_window(rec, r) {
                for (name, secs) in launch_secs(rec, w) {
                    *by_kernel.entry(name).or_default() += secs;
                }
                break;
            }
        }
    }
    let total: f64 = by_kernel.values().sum();
    let mut tail_kernels: Vec<TailKernel> = by_kernel
        .into_iter()
        .map(|(name, secs)| TailKernel {
            name,
            secs,
            share: if total > 0.0 { secs / total } else { 0.0 },
        })
        .collect();
    tail_kernels.sort_by(|a, b| b.secs.total_cmp(&a.secs));
    tail_kernels.truncate(8);

    // --- fleet grid ---------------------------------------------------
    let summaries = recordings
        .iter()
        .map(|rec| RecordingSummary {
            worker: rec.worker,
            pid: rec.pid,
            label: rec.label.clone(),
            events: rec.events.len(),
            torn: rec.torn,
            peak_rss_kb: rec
                .events
                .iter()
                .rev()
                .find_map(|ev| match ev {
                    FlightEvent::PeakRss { kb, .. } => Some(*kb),
                    _ => None,
                })
                .unwrap_or(0),
        })
        .collect();

    BlackboxDoc {
        units: records.len(),
        ok,
        holes,
        crashed,
        attributions,
        unattributed,
        tail_p99_secs,
        tail_units: stragglers.iter().map(|r| r.id()).collect(),
        tail_kernels,
        recordings: summaries,
    }
}

impl BlackboxDoc {
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA);
        w.key("units").int(self.units as u64);
        w.key("ok").int(self.ok as u64);
        w.key("holes").int(self.holes as u64);
        w.key("crashed").int(self.crashed as u64);
        w.key("unattributed").int(self.unattributed as u64);
        w.key("attributions").begin_array();
        for a in &self.attributions {
            w.begin_object();
            w.key("id").string(&a.unit_id);
            w.key("index").int(a.index as u64);
            w.key("worker").int(a.worker as u64);
            w.key("attempt").int(a.attempt as u64);
            w.key("trace").int(a.trace);
            w.key("note").string(&a.note);
            if let (Some(kind), Some(name)) = (a.span_kind, &a.span_name) {
                w.key("spanKind").string(kind);
                w.key("spanName").string(name);
                w.key("inSpanSecs").number(a.in_span_secs);
            }
            w.end_object();
        }
        w.end_array();
        w.key("tailP99Secs").number(self.tail_p99_secs);
        w.key("tailUnits").begin_array();
        for u in &self.tail_units {
            w.string(u);
        }
        w.end_array();
        w.key("tailKernels").begin_array();
        for k in &self.tail_kernels {
            w.begin_object();
            w.key("name").string(&k.name);
            w.key("secs").number(k.secs);
            w.key("share").number(k.share);
            w.end_object();
        }
        w.end_array();
        w.key("recordings").begin_array();
        for r in &self.recordings {
            w.begin_object();
            w.key("worker").int(if r.worker == ORCH_SLOT {
                // The sentinel would render as 4294967295; expose the
                // orchestrator row under a readable key instead.
                u64::MAX
            } else {
                r.worker as u64
            });
            w.key("orchestrator").bool(r.worker == ORCH_SLOT);
            w.key("pid").int(r.pid as u64);
            w.key("label").string(&r.label);
            w.key("events").int(r.events as u64);
            w.key("torn").bool(r.torn);
            w.key("peakRssKb").int(r.peak_rss_kb);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

// ----------------------------------------------------------- unit diff

/// One dispatch of a unit, reconstructed from flight recordings alone —
/// no journal needed. This is what `blackbox --diff` compares across
/// the retained run directories, where only the newest run's journal
/// survives on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchSummary {
    pub trace: u64,
    pub attempt: u32,
    pub worker: u32,
    /// The orchestrator's result-mark tag ("ok", "retry", "crashed",
    /// "hole: …"); `None` when the run died before recording one.
    pub result: Option<String>,
    /// Begin mark → result mark (or the recording's last breath).
    pub wall_secs: f64,
    /// Deepest span still open at the dispatch window's end — the kill
    /// site of an attempt that never completed.
    pub open_span: Option<String>,
}

/// Every dispatch of `unit_id` visible in `recordings`, in trace-id
/// (i.e. dispatch) order.
pub fn unit_history(recordings: &[FlightRecording], unit_id: &str) -> Vec<DispatchSummary> {
    // Result marks live on the orchestrator's side; index them by the
    // causal trace id so each worker-side begin finds its verdict.
    let mut results: BTreeMap<u64, (u64, String)> = BTreeMap::new();
    for rec in recordings {
        for ev in &rec.events {
            if let FlightEvent::TraceMark {
                role: TraceRole::Result,
                trace,
                t_ns,
                tag,
                ..
            } = ev
            {
                results.insert(*trace, (*t_ns, tag.clone()));
            }
        }
    }
    let mut out = Vec::new();
    for rec in recordings {
        for (i, ev) in rec.events.iter().enumerate() {
            let FlightEvent::TraceMark {
                role: TraceRole::Begin,
                trace,
                attempt,
                t_ns,
                tag,
                ..
            } = ev
            else {
                continue;
            };
            if tag != unit_id {
                continue;
            }
            let end = rec.events[i + 1..]
                .iter()
                .position(|e| {
                    matches!(
                        e,
                        FlightEvent::TraceMark {
                            role: TraceRole::Begin,
                            ..
                        }
                    )
                })
                .map(|j| i + 1 + j)
                .unwrap_or(rec.events.len());
            let window = (i, end);
            let open = open_at_window_end(rec, window)
                .last()
                .map(|&(kind, name, _)| format!("{} '{name}'", kind.label()));
            let (end_ns, result) = match results.get(trace) {
                Some((t, verdict)) => (*t, Some(verdict.clone())),
                None => (window_last_ns(rec, window), None),
            };
            out.push(DispatchSummary {
                trace: *trace,
                attempt: *attempt,
                worker: rec.worker,
                result,
                wall_secs: end_ns.saturating_sub(*t_ns) as f64 / 1e9,
                open_span: open,
            });
        }
    }
    out.sort_by_key(|d| d.trace);
    out
}

// ------------------------------------------------------------- timeline

/// The merged fleet timeline as a standalone Chrome-trace document.
///
/// Every recording becomes one process track (orchestrator = pid 0,
/// worker slot *w* = pid *w + 1*; respawned generations of a slot share
/// the pid but get their own thread row). Paired spans become `X`
/// slices; spans left open by a crash become slices running to the
/// recording's last event, flagged `unterminated`. Dispatch → begin
/// and unit-close → result are joined with flow arrows (`s`/`f`
/// events) so Perfetto draws the cross-process causality.
pub fn chrome_fleet_trace(recordings: &[FlightRecording]) -> String {
    let t0 = recordings
        .iter()
        .map(|r| r.start_unix_ns)
        .min()
        .unwrap_or(0);
    let us = |t_ns: u64| t_ns.saturating_sub(t0) as f64 / 1e3;
    let pid_of = |r: &FlightRecording| -> u32 {
        if r.worker == ORCH_SLOT {
            0
        } else {
            r.worker + 1
        }
    };

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();

    // Per-trace flow endpoints, filled while walking the recordings:
    // (dispatch ts/pid/tid, begin ts/pid/tid, unit-close ts/pid/tid,
    // result ts/pid/tid).
    type Point = (f64, u32, u32);
    #[derive(Default)]
    struct Flow {
        dispatch: Option<Point>,
        begin: Option<Point>,
        unit_close: Option<Point>,
        result: Option<Point>,
    }
    let mut flows: BTreeMap<u64, Flow> = BTreeMap::new();

    for (tid, rec) in recordings.iter().enumerate() {
        let tid = tid as u32;
        let pid = pid_of(rec);

        // Process/thread labels.
        w.begin_object();
        w.key("name").string("process_name");
        w.key("cat").string("meta");
        w.key("ph").string("M");
        w.key("pid").int(pid as u64);
        w.key("tid").int(tid as u64);
        w.key("args").begin_object();
        w.key("name")
            .string(&format!("{} (pid {})", rec.label, rec.pid));
        w.end_object();
        w.end_object();

        // Span slices: replay opens/closes, emit an X per pair.
        let last_ns = rec.last_event_ns();
        let mut stack: Vec<(SpanKind, &str, u64)> = Vec::new();
        let mut slice = |name: &str, kind: SpanKind, t_open: u64, t_close: u64, torn: bool| {
            w.begin_object();
            w.key("name").string(name);
            w.key("cat").string(kind.label());
            w.key("ph").string("X");
            w.key("ts").number(us(t_open));
            w.key("dur")
                .number((t_close.saturating_sub(t_open)) as f64 / 1e3);
            w.key("pid").int(pid as u64);
            w.key("tid").int(tid as u64);
            if torn {
                w.key("args").begin_object();
                w.key("unterminated").bool(true);
                w.end_object();
            }
            w.end_object();
        };
        for ev in &rec.events {
            match ev {
                FlightEvent::SpanOpen { t_ns, kind, name } => {
                    stack.push((*kind, name.as_str(), *t_ns));
                }
                FlightEvent::SpanClose { t_ns, kind, name } => {
                    if let Some(i) = stack
                        .iter()
                        .rposition(|(k, n, _)| k == kind && *n == name.as_str())
                    {
                        let (k, n, t_open) = stack.remove(i);
                        slice(n, k, t_open, *t_ns, false);
                        if k == SpanKind::Unit {
                            // The worker-side completion endpoint of the
                            // unit's second flow arrow.
                            if let Some(trace) = rec.events.iter().find_map(|e| match e {
                                FlightEvent::TraceMark {
                                    role: TraceRole::Begin,
                                    trace,
                                    tag,
                                    ..
                                } if tag == n => Some(*trace),
                                _ => None,
                            }) {
                                flows.entry(trace).or_default().unit_close =
                                    Some((us(*t_ns), pid, tid));
                            }
                        }
                    }
                }
                FlightEvent::TraceMark {
                    t_ns, role, trace, ..
                } => {
                    let f = flows.entry(*trace).or_default();
                    let point = Some((us(*t_ns), pid, tid));
                    match role {
                        TraceRole::Dispatch => f.dispatch = point,
                        TraceRole::Begin => f.begin = point,
                        TraceRole::Result => f.result = point,
                    }
                }
                _ => {}
            }
        }
        // Crash residue: whatever is still open ran to the last breath.
        for (k, n, t_open) in stack {
            slice(n, k, t_open, last_ns, true);
        }
    }

    // Flow arrows — emitted only when both endpoints exist (a crashed
    // unit has a dispatch and a begin, but no close/result pair).
    for (trace, f) in &flows {
        if let (Some((ts, dp, dt)), Some((te, bp, bt))) = (f.dispatch, f.begin) {
            let id = trace * 2;
            flow_start(&mut w, "dispatch", id, ts, dp, dt);
            flow_finish(&mut w, "dispatch", id, te.max(ts), bp, bt);
        }
        if let (Some((ts, cp, ct)), Some((te, rp, rt))) = (f.unit_close, f.result) {
            let id = trace * 2 + 1;
            flow_start(&mut w, "result", id, ts, cp, ct);
            flow_finish(&mut w, "result", id, te.max(ts), rp, rt);
        }
    }

    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::smoke_units;
    use metrics::jsonv::{self, Json};

    fn mark(role: TraceRole, trace: u64, unit: u32, t_ns: u64, tag: &str) -> FlightEvent {
        FlightEvent::TraceMark {
            t_ns,
            role,
            trace,
            unit,
            attempt: 1,
            tag: tag.to_string(),
        }
    }

    fn open(kind: SpanKind, name: &str, t_ns: u64) -> FlightEvent {
        FlightEvent::SpanOpen {
            t_ns,
            kind,
            name: name.to_string(),
        }
    }

    fn close(kind: SpanKind, name: &str, t_ns: u64) -> FlightEvent {
        FlightEvent::SpanClose {
            t_ns,
            kind,
            name: name.to_string(),
        }
    }

    fn recording(worker: u32, events: Vec<FlightEvent>) -> FlightRecording {
        FlightRecording {
            worker,
            pid: 1000 + worker,
            start_unix_ns: 0,
            label: format!("w{worker}"),
            events,
            torn: false,
        }
    }

    fn crashed_record(trace: u64) -> UnitRecord {
        let unit = smoke_units().into_iter().next().unwrap();
        UnitRecord {
            unit,
            status: UnitStatus::Crashed,
            note: Some("worker exited mid-unit (attempt 1/1)".into()),
            worker: 0,
            attempt: 1,
            trace,
            wall_secs: 0.0,
            samples: vec![],
            sim_secs: None,
            efficiency: None,
            gbps: None,
        }
    }

    #[test]
    fn a_crash_is_attributed_to_the_deepest_open_span() {
        let r = crashed_record(3);
        let id = r.id();
        let rec = recording(
            0,
            vec![
                mark(TraceRole::Begin, 3, r.unit.index as u32, 1_000, &id),
                open(SpanKind::Unit, &id, 1_100),
                open(SpanKind::Phase, "timestep", 1_200),
                open(SpanKind::Launch, "advec_cell", 1_500),
                close(SpanKind::Launch, "advec_cell", 2_000),
                open(SpanKind::Launch, "pdv", 2_500_000_000),
                // killed here: pdv never closes
            ],
        );
        let doc = analyze(&[r], &[rec]);
        assert_eq!(doc.crashed, 1);
        assert_eq!(doc.unattributed, 0);
        let a = &doc.attributions[0];
        assert_eq!(a.span_kind, Some("launch"));
        assert_eq!(a.span_name.as_deref(), Some("pdv"));
        assert!(a.in_span_secs.abs() < 1e-9, "pdv opened at the last event");
        let json = doc.to_json();
        telemetry::json::validate(&json).unwrap();
        assert!(json.contains("\"spanName\": \"pdv\""));
    }

    #[test]
    fn attribution_windows_do_not_leak_across_units() {
        // Worker ran unit A cleanly, then died inside unit B's window:
        // B must be attributed to B's open span, not A's history.
        let a = crashed_record(1); // reused only for ids/window shape
        let id_a = a.id();
        let mut b = crashed_record(2);
        b.unit = smoke_units().into_iter().nth(1).unwrap();
        let id_b = b.id();
        let rec = recording(
            0,
            vec![
                mark(TraceRole::Begin, 1, a.unit.index as u32, 1_000, &id_a),
                open(SpanKind::Unit, &id_a, 1_100),
                open(SpanKind::Launch, "tea_leaf", 1_200),
                close(SpanKind::Launch, "tea_leaf", 1_900),
                close(SpanKind::Unit, &id_a, 2_000),
                mark(TraceRole::Begin, 2, b.unit.index as u32, 3_000, &id_b),
                open(SpanKind::Unit, &id_b, 3_100),
            ],
        );
        let doc = analyze(&[b], &[rec]);
        let attr = &doc.attributions[0];
        assert_eq!(attr.span_kind, Some("unit"));
        assert_eq!(attr.span_name.as_deref(), Some(id_b.as_str()));
    }

    #[test]
    fn tail_kernels_aggregate_launches_of_straggler_units() {
        let unit = smoke_units().into_iter().next().unwrap();
        let id = unit.id();
        let ok = UnitRecord {
            unit,
            status: UnitStatus::Ok,
            note: None,
            worker: 0,
            attempt: 1,
            trace: 9,
            wall_secs: 4.0,
            samples: vec![4.0],
            sim_secs: Some(1.0),
            efficiency: Some(0.8),
            gbps: Some(100.0),
        };
        let rec = recording(
            0,
            vec![
                mark(TraceRole::Begin, 9, ok.unit.index as u32, 0, &id),
                open(SpanKind::Unit, &id, 0),
                open(SpanKind::Launch, "slow_kernel", 0),
                close(SpanKind::Launch, "slow_kernel", 3_000_000_000),
                open(SpanKind::Launch, "fast_kernel", 3_000_000_000),
                close(SpanKind::Launch, "fast_kernel", 3_500_000_000),
                close(SpanKind::Unit, &id, 4_000_000_000),
            ],
        );
        let doc = analyze(&[ok], &[rec]);
        assert_eq!(doc.tail_units, vec![id]);
        assert_eq!(doc.tail_kernels[0].name, "slow_kernel");
        assert!((doc.tail_kernels[0].secs - 3.0).abs() < 1e-9);
        assert!((doc.tail_kernels[0].share - 3.0 / 3.5).abs() < 1e-9);
    }

    #[test]
    fn fleet_trace_flow_events_are_well_formed_pairs() {
        // Orchestrator dispatches trace 5; worker runs it to completion;
        // orchestrator records the result. Plus a crashed trace 6 whose
        // result never lands — it must produce no dangling flow events.
        let unit = smoke_units().into_iter().next().unwrap();
        let id = unit.id();
        let orch = FlightRecording {
            worker: ORCH_SLOT,
            pid: 1,
            start_unix_ns: 0,
            label: "study-orchestrator".into(),
            events: vec![
                mark(TraceRole::Dispatch, 5, unit.index as u32, 1_000, &id),
                mark(TraceRole::Dispatch, 6, 99, 1_500, "doomed"),
                mark(TraceRole::Result, 5, unit.index as u32, 9_000, "ok"),
            ],
            torn: false,
        };
        let worker = recording(
            0,
            vec![
                mark(TraceRole::Begin, 5, unit.index as u32, 2_000, &id),
                open(SpanKind::Unit, &id, 2_100),
                close(SpanKind::Unit, &id, 8_000),
                mark(TraceRole::Begin, 6, 99, 8_500, "doomed"),
                open(SpanKind::Unit, "doomed", 8_600),
            ],
        );
        let doc = chrome_fleet_trace(&[orch, worker]);
        telemetry::json::validate(&doc).unwrap();

        let j = jsonv::parse(&doc).unwrap();
        let Some(Json::Arr(events)) = j.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        // Pair every flow id: exactly one "s" and one "f", s before f.
        let mut starts: BTreeMap<u64, f64> = BTreeMap::new();
        let mut finishes: BTreeMap<u64, f64> = BTreeMap::new();
        for e in events {
            match e.str_of("ph") {
                Some("s") => {
                    let id = e.u64_of("id").unwrap();
                    assert!(starts.insert(id, e.f64_of("ts").unwrap()).is_none());
                }
                Some("f") => {
                    let id = e.u64_of("id").unwrap();
                    assert_eq!(e.str_of("bp"), Some("e"), "flow binds enclosing slice");
                    assert!(finishes.insert(id, e.f64_of("ts").unwrap()).is_none());
                }
                _ => {}
            }
        }
        assert!(!starts.is_empty(), "completed trace 5 produced flows");
        assert_eq!(
            starts.keys().collect::<Vec<_>>(),
            finishes.keys().collect::<Vec<_>>(),
            "every flow start has exactly one finish"
        );
        for (id, ts) in &starts {
            assert!(finishes[id] >= *ts, "flow {id} ends after it starts");
        }
        // Trace 6 was dispatched and begun (arrow exists) but never
        // completed: its result flow must not dangle.
        assert!(starts.contains_key(&12), "dispatch→begin arrow survives");
        assert!(!starts.contains_key(&13), "no half-result arrow");
        // The crashed unit's open span became an unterminated slice.
        assert!(doc.contains("\"unterminated\": true"));
        // Both processes are labelled.
        assert_eq!(doc.matches("process_name").count(), 2);
    }

    #[test]
    fn unit_history_reconstructs_dispatches_without_a_journal() {
        let unit = smoke_units().into_iter().next().unwrap();
        let id = unit.id();
        let orch = FlightRecording {
            worker: ORCH_SLOT,
            pid: 1,
            start_unix_ns: 0,
            label: "study-orchestrator".into(),
            events: vec![
                mark(TraceRole::Dispatch, 7, unit.index as u32, 500, &id),
                mark(
                    TraceRole::Result,
                    7,
                    unit.index as u32,
                    4_000_000_000,
                    "retry",
                ),
                mark(
                    TraceRole::Dispatch,
                    8,
                    unit.index as u32,
                    4_100_000_000,
                    &id,
                ),
                mark(TraceRole::Result, 8, unit.index as u32, 6_000_000_000, "ok"),
            ],
            torn: false,
        };
        let worker = recording(
            0,
            vec![
                // Attempt 1 dies inside a launch; attempt 2 completes.
                mark(TraceRole::Begin, 7, unit.index as u32, 1_000_000_000, &id),
                open(SpanKind::Unit, &id, 1_000_000_000),
                open(SpanKind::Launch, "pdv", 2_000_000_000),
            ],
        );
        let worker2 = recording(
            1,
            vec![
                mark(TraceRole::Begin, 8, unit.index as u32, 4_500_000_000, &id),
                open(SpanKind::Unit, &id, 4_500_000_000),
                close(SpanKind::Unit, &id, 5_900_000_000),
            ],
        );
        let hist = unit_history(&[orch, worker, worker2], &id);
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].trace, 7);
        assert_eq!(hist[0].result.as_deref(), Some("retry"));
        assert_eq!(hist[0].open_span.as_deref(), Some("launch 'pdv'"));
        assert!((hist[0].wall_secs - 3.0).abs() < 1e-9);
        assert_eq!(hist[1].trace, 8);
        assert_eq!(hist[1].worker, 1);
        assert_eq!(hist[1].result.as_deref(), Some("ok"));
        assert!(hist[1].open_span.is_none());
        // A unit never dispatched has no history.
        assert!(unit_history(&[], &id).is_empty());
    }

    #[test]
    fn unattributed_crashes_are_counted_for_the_gate() {
        let doc = analyze(&[crashed_record(44)], &[]);
        assert_eq!(doc.crashed, 1);
        assert_eq!(doc.unattributed, 1);
        assert!(doc.attributions[0].span_kind.is_none());
    }
}
