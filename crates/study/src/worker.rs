//! The worker side of the protocol: a loop over stdin frames.
//!
//! A worker is this same binary re-executed with `--worker <id>` and
//! piped stdin/stdout. It greets with `hello` (carrying
//! [`PROTO_VERSION`] for the handshake), then serves `run` requests
//! until `exit` or EOF, and signs off with `bye` (peak RSS). Before
//! executing a unit it sends `start` — the crash anchor: if the
//! process dies after `start`, the orchestrator knows exactly which
//! (unit, attempt) to retry.
//!
//! When the orchestrator passes `--flight-dir`, the worker keeps a
//! crash-surviving flight recording there: the `begin` trace mark and
//! the `unit` span open are flushed to disk *before* the fault-
//! injection checks below, so even a unit that is killed or hangs
//! instantly leaves its attribution on disk for `blackbox`.
//!
//! Fault injection lives here too, behind flags the orchestrator (or a
//! test) passes on the worker command line:
//!
//! * `--chaos p --chaos-seed s` — die with exit code 101 after
//!   `start`, decided by a seeded hash of (unit id, attempt), so a
//!   given attempt either always or never dies: retries make progress
//!   and chaos runs are reproducible.
//! * `--hang-once <unit-id>` — hang (rather than die) on attempt 1 of
//!   one unit, to exercise the orchestrator's timeout path.
//! * `--proto-force v` — claim protocol version `v` in `hello`, to
//!   exercise the orchestrator's handshake rejection.

use crate::proto::{read_frame, write_frame, Msg, PROTO_VERSION};
use crate::runner::run_unit;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use telemetry::flight::{self, TraceRole};
use telemetry::SpanKind;

/// Worker behaviour flags (all from the command line).
#[derive(Debug, Clone, Default)]
pub struct WorkerOpts {
    pub id: u32,
    pub chaos: f64,
    pub chaos_seed: u64,
    pub hang_unit: Option<String>,
    /// Directory for the crash-surviving flight recording (none = off).
    pub flight_dir: Option<PathBuf>,
    /// Claim this protocol version in `hello` (testing the handshake).
    pub proto_force: Option<u32>,
}

/// Does chaos kill this (unit, attempt)? Deterministic in the seed:
/// a 64-bit mix of the unit id and attempt, compared against `p`.
pub fn chaos_strikes(seed: u64, unit_id: &str, attempt: u32, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in unit_id.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= attempt as u64;
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    ((h >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// This process's peak resident set size (VmHWM), in KiB. 0 when the
/// platform offers no `/proc/self/status` to read.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
                    return digits.parse().unwrap_or(0);
                }
            }
        }
    }
    0
}

/// Serve the worker loop over arbitrary streams (stdin/stdout in
/// production, in-memory pipes in tests). Returns the exit code.
pub fn serve(opts: &WorkerOpts, input: &mut impl Read, output: &mut impl Write) -> i32 {
    telemetry::set_process_ident(opts.id, &format!("study-worker-{}", opts.id));
    if let Some(dir) = &opts.flight_dir {
        let path = dir.join(format!("flight-w{}-p{}.bin", opts.id, std::process::id()));
        if let Err(e) = flight::start(&path, opts.id, &format!("study-worker-{}", opts.id)) {
            // Forensics are best-effort; losing them must not fail runs.
            eprintln!("worker {}: flight recorder unavailable: {e}", opts.id);
        }
    }
    let send = |output: &mut dyn Write, m: &Msg| write_frame(&mut { output }, &m.to_json()).is_ok();
    // Orderly shutdown: stamp peak RSS into the recording, close it,
    // and send the `bye` exit frame. A crashed worker reaches none of
    // this — the missing `bye` (and the open unit span on disk) is the
    // post-mortem signal.
    let finish = |output: &mut dyn Write, opts: &WorkerOpts| -> i32 {
        flight::peak_rss(peak_rss_kb());
        flight::stop();
        send(
            output,
            &Msg::Bye {
                worker: opts.id,
                peak_rss_kb: peak_rss_kb(),
            },
        );
        0
    };
    if !send(
        output,
        &Msg::Hello {
            worker: opts.id,
            pid: std::process::id(),
            proto: opts.proto_force.unwrap_or(PROTO_VERSION),
        },
    ) {
        return 1;
    }
    loop {
        let payload = match read_frame(input) {
            Ok(Some(p)) => p,
            Ok(None) => return finish(output, opts), // orchestrator closed our stdin
            Err(e) => {
                eprintln!("worker {}: {e}", opts.id);
                return 1;
            }
        };
        match Msg::parse(&payload) {
            Ok(Msg::Exit) => return finish(output, opts),
            Ok(Msg::Run {
                unit,
                attempt,
                reps,
                paper,
                trace,
            }) => {
                if !send(
                    output,
                    &Msg::Start {
                        index: unit.index,
                        worker: opts.id,
                        attempt,
                        trace,
                    },
                ) {
                    return 1;
                }
                let id = unit.id();
                // Attribution anchor: both the trace mark and the unit
                // span hit the disk (urgent flush) before any way this
                // attempt can die, so a kill mid-unit is attributable.
                flight::trace_mark(TraceRole::Begin, trace, unit.index as u32, attempt, &id);
                flight::span_open(SpanKind::Unit, &id);
                if attempt == 1 && opts.hang_unit.as_deref() == Some(id.as_str()) {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
                if chaos_strikes(opts.chaos_seed, &id, attempt, opts.chaos) {
                    // Simulated crash: abrupt, mid-protocol, nonzero.
                    std::process::exit(101);
                }
                let rec = run_unit(&unit, reps, paper, opts.id, attempt, trace);
                flight::span_close(SpanKind::Unit, &id);
                flight::counters_mark();
                flight::flush();
                if !send(output, &Msg::Done(rec)) {
                    return 1;
                }
            }
            Ok(other) => {
                eprintln!("worker {}: unexpected message {other:?}", opts.id);
                return 1;
            }
            Err(e) => {
                eprintln!("worker {}: bad message: {e}", opts.id);
                return 1;
            }
        }
    }
}

/// Entry point for a `--worker` invocation: parse worker flags from
/// `args` and serve stdin/stdout. Returns the process exit code.
pub fn worker_cli(args: &[String]) -> i32 {
    let mut opts = WorkerOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |what: &str| -> Option<&String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("--{what} needs a value");
            }
            v
        };
        match a.as_str() {
            "--worker" => match grab("worker").and_then(|v| v.parse().ok()) {
                Some(id) => opts.id = id,
                None => return 2,
            },
            "--chaos" => match grab("chaos").and_then(|v| v.parse().ok()) {
                Some(p) => opts.chaos = p,
                None => return 2,
            },
            "--chaos-seed" => match grab("chaos-seed").and_then(|v| v.parse().ok()) {
                Some(s) => opts.chaos_seed = s,
                None => return 2,
            },
            "--hang-once" => match grab("hang-once") {
                Some(id) => opts.hang_unit = Some(id.clone()),
                None => return 2,
            },
            "--flight-dir" => match grab("flight-dir") {
                Some(dir) => opts.flight_dir = Some(PathBuf::from(dir)),
                None => return 2,
            },
            "--proto-force" => match grab("proto-force").and_then(|v| v.parse().ok()) {
                Some(v) => opts.proto_force = Some(v),
                None => return 2,
            },
            _ => {}
        }
    }
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve(&opts, &mut stdin.lock(), &mut stdout.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UnitStatus;
    use crate::unit::smoke_units;
    use std::io::Cursor;

    #[test]
    fn chaos_is_deterministic_and_roughly_calibrated() {
        let units = crate::unit::paper_units();
        for p in [0.0, 0.2, 0.5] {
            let strikes = units
                .iter()
                .filter(|u| chaos_strikes(7, &u.id(), 1, p))
                .count();
            let expect = (units.len() as f64 * p) as isize;
            assert!(
                (strikes as isize - expect).abs() <= units.len() as isize / 5,
                "p={p}: {strikes}/{} strikes",
                units.len()
            );
            // Same seed, same verdicts.
            let again = units
                .iter()
                .filter(|u| chaos_strikes(7, &u.id(), 1, p))
                .count();
            assert_eq!(strikes, again);
        }
        // Attempts are hashed independently: a doomed attempt 1 does
        // not doom attempt 2 (checked over many units).
        let doomed: Vec<_> = units
            .iter()
            .filter(|u| chaos_strikes(7, &u.id(), 1, 0.5))
            .collect();
        assert!(doomed.iter().any(|u| !chaos_strikes(7, &u.id(), 2, 0.5)));
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "a running test process has a nonzero VmHWM");
        }
    }

    #[test]
    fn serve_executes_runs_and_exits_cleanly() {
        let unit = smoke_units().into_iter().next().unwrap();
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &Msg::Run {
                unit: unit.clone(),
                attempt: 1,
                reps: 1,
                paper: false,
                trace: 5,
            }
            .to_json(),
        )
        .unwrap();
        write_frame(&mut input, &Msg::Exit.to_json()).unwrap();

        let mut output = Vec::new();
        let code = serve(
            &WorkerOpts {
                id: 9,
                ..Default::default()
            },
            &mut Cursor::new(input),
            &mut output,
        );
        assert_eq!(code, 0);

        let mut r = Cursor::new(output);
        let mut msgs = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            msgs.push(Msg::parse(&p).unwrap());
        }
        assert!(matches!(
            msgs[0],
            Msg::Hello {
                worker: 9,
                proto: PROTO_VERSION,
                ..
            }
        ));
        assert!(matches!(
            msgs[1],
            Msg::Start {
                index,
                worker: 9,
                attempt: 1,
                trace: 5,
            } if index == unit.index
        ));
        match &msgs[2] {
            Msg::Done(rec) => {
                assert_eq!(rec.unit, unit);
                assert_eq!(rec.status, UnitStatus::Ok);
                assert_eq!(rec.worker, 9);
                assert_eq!(rec.trace, 5, "dispatch trace rides through");
            }
            other => panic!("expected done, got {other:?}"),
        }
        match &msgs[3] {
            Msg::Bye { worker, .. } => assert_eq!(*worker, 9),
            other => panic!("expected bye, got {other:?}"),
        }
        assert_eq!(msgs.len(), 4);
    }

    #[test]
    fn eof_on_stdin_is_a_clean_shutdown() {
        let mut output = Vec::new();
        let code = serve(
            &WorkerOpts::default(),
            &mut Cursor::new(Vec::new()),
            &mut output,
        );
        assert_eq!(code, 0);
        // Even with nothing to do, the worker greets and signs off.
        let mut r = Cursor::new(output);
        let mut msgs = Vec::new();
        while let Some(p) = read_frame(&mut r).unwrap() {
            msgs.push(Msg::parse(&p).unwrap());
        }
        assert!(matches!(msgs[0], Msg::Hello { .. }));
        assert!(matches!(msgs[1], Msg::Bye { .. }));
    }
}
