//! The orchestrator: a fleet of worker processes, driven to completion.
//!
//! One event loop owns everything. Per worker slot it keeps the child
//! process, its stdin, a *generation* counter, and the in-flight
//! (unit, attempt, deadline). A reader thread per child turns stdout
//! frames into events on one mpsc channel; the loop multiplexes those
//! against per-unit deadlines with `recv_timeout`.
//!
//! Crash tolerance is one invariant: **a unit leaves the system only
//! via a journaled terminal record** — measured (`ok`), a modelled
//! paper hole (`hole`), or exhausted retries (`crashed`). A worker
//! dying (EOF mid-unit), hanging (deadline expiry → kill), or exiting
//! nonzero all funnel into the same path: bump the attempt, requeue or
//! exhaust, respawn the slot. Generation counters make late events
//! from killed workers inert, so a unit can never be double-counted
//! against a stale process.
//!
//! The journal is an append-only JSONL of terminal records, flushed
//! per line; `resume` replays it, tolerating a torn final line (the
//! write that was in flight when the previous study died).

use crate::proto::{read_frame, write_frame, Msg, PROTO_VERSION};
use crate::record::{worker_manifest, UnitRecord, UnitStatus};
use crate::runner::run_unit;
use crate::unit::{shard, Scope, StudyUnit};
use metrics::{merge_manifests, RunManifest};
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use telemetry::flight::{self, TraceRole};

/// Worker-id sentinel the orchestrator uses for its own flight
/// recording (real slots are 0-based and small).
pub const ORCH_SLOT: u32 = u32::MAX;

/// Everything a study run needs to know.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub scope: Scope,
    /// `Some((i, n))`: run only the canonical `i/n` shard (1-based).
    pub shard: Option<(usize, usize)>,
    /// Worker processes; 0 runs every unit serially in-process.
    pub workers: usize,
    /// Timing repetitions per unit.
    pub reps: u32,
    /// Wall-clock budget per unit attempt.
    pub timeout: Duration,
    /// Attempts per unit before it is recorded `crashed`.
    pub max_attempts: u32,
    /// Probability a worker dies after `start` (fault injection).
    pub chaos: f64,
    pub chaos_seed: u64,
    /// Append-only terminal-record journal (JSONL).
    pub journal: Option<PathBuf>,
    /// Replay the journal and skip already-terminal units.
    pub resume: bool,
    /// Directory for crash-surviving flight recordings (orchestrator +
    /// every worker). `None` disables flight recording. Each run writes
    /// into its own `run-<seq>-<journal>` subdirectory so `blackbox`
    /// can diff a flaky unit across runs; see [`StudyConfig::retain`].
    pub flight_dir: Option<PathBuf>,
    /// How many runs' flight recordings to keep under `flight_dir`
    /// (rolling retention, newest first). Clamped to at least 1.
    pub retain: usize,
    /// Argv prefix used to spawn workers (the binary re-executes
    /// itself; tests point this at the test executable).
    pub worker_cmd: Vec<String>,
}

impl StudyConfig {
    pub fn new(scope: Scope) -> StudyConfig {
        StudyConfig {
            scope,
            shard: None,
            workers: 4,
            reps: 3,
            timeout: Duration::from_secs(120),
            max_attempts: 3,
            chaos: 0.0,
            chaos_seed: 0,
            journal: None,
            resume: false,
            flight_dir: None,
            retain: 3,
            worker_cmd: vec![],
        }
    }

    /// The units this run is responsible for.
    pub fn units(&self) -> Vec<StudyUnit> {
        let all = self.scope.units();
        match self.shard {
            Some((i, n)) => shard(all, i, n),
            None => all,
        }
    }

    /// Paper-size apps for the paper scope, test-size for smoke.
    pub fn paper_size(&self) -> bool {
        self.scope == Scope::Paper
    }
}

/// Counters the dashboard's study section reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StudyStats {
    pub elapsed_secs: f64,
    /// Sum of worker-side wall-clock across completed units — divided
    /// by `workers × elapsed` this is the fleet utilisation.
    pub busy_secs: f64,
    pub workers: u32,
    /// Unit attempts re-queued after a crash or timeout.
    pub retries: u64,
    /// Worker processes spawned beyond the initial fleet.
    pub restarts: u64,
    /// Deadline expiries (a subset of retries' causes).
    pub timeouts: u64,
    /// Units adopted from the journal instead of executed.
    pub resumed: u32,
    /// Largest peak RSS (VmHWM, KiB) any worker reported in its `bye`
    /// exit frame. 0 when no worker signed off (serial runs, crashes).
    pub peak_rss_kb: u64,
}

/// A completed study: every unit terminal, manifests merged.
#[derive(Debug)]
pub struct StudyOutcome {
    /// Terminal records in canonical (unit-index) order.
    pub records: Vec<UnitRecord>,
    /// The lossless merge of every worker's manifest rows.
    pub merged: RunManifest,
    pub stats: StudyStats,
}

/// Run a study to completion. Every unit in `cfg.units()` is terminal
/// in the outcome — this is the property the chaos tests pin down.
pub fn run_study(cfg: &StudyConfig) -> Result<StudyOutcome, String> {
    let units = cfg.units();
    let started = Instant::now();
    let mut stats = StudyStats {
        workers: cfg.workers as u32,
        ..Default::default()
    };
    let mut done: BTreeMap<usize, UnitRecord> = BTreeMap::new();

    if cfg.resume {
        if let Some(path) = &cfg.journal {
            for rec in read_journal(path) {
                let known = units
                    .iter()
                    .any(|u| u.index == rec.unit.index && *u == rec.unit);
                if known {
                    done.insert(rec.unit.index, rec);
                }
            }
            stats.resumed = done.len() as u32;
        }
    }

    let mut journal = match &cfg.journal {
        Some(path) if cfg.resume => Some(open_journal(path, true)?),
        Some(path) => Some(open_journal(path, false)?),
        None => None,
    };
    let mut record_done = |rec: &UnitRecord, stats: &mut StudyStats| -> Result<(), String> {
        stats.busy_secs += rec.wall_secs;
        if let Some(j) = &mut journal {
            writeln!(j, "{}", rec.to_json()).map_err(|e| format!("journal write: {e}"))?;
            j.flush().map_err(|e| format!("journal flush: {e}"))?;
        }
        Ok(())
    };

    let pending: VecDeque<(StudyUnit, u32)> = units
        .iter()
        .filter(|u| !done.contains_key(&u.index))
        .map(|u| (u.clone(), 1))
        .collect();

    // The orchestrator keeps its own flight recording next to the
    // workers': dispatch/result trace marks on this side, begin marks
    // and unit spans on theirs, joined by the trace id. Each run gets
    // its own `run-<seq>-<journal>` subdirectory — `blackbox` never
    // mixes two runs, and the newest `cfg.retain` runs survive so a
    // flaky unit can be diffed across them. A resumed run re-enters the
    // newest matching run dir — its recordings are the crash evidence.
    let flight_on = cfg.flight_dir.is_some();
    let mut flight_run_dir: Option<PathBuf> = None;
    if let Some(dir) = &cfg.flight_dir {
        let run_dir = prepare_flight_run_dir(dir, cfg.journal.as_deref(), cfg.resume, cfg.retain)?;
        let path = run_dir.join(format!("flight-orch-p{}.bin", std::process::id()));
        if let Err(e) = flight::start(&path, ORCH_SLOT, "study-orchestrator") {
            eprintln!("study: flight recorder unavailable: {e}");
        }
        flight_run_dir = Some(run_dir);
    }

    let result = if cfg.workers == 0 {
        let mut next_trace = 0u64;
        let serial = || -> Result<(), String> {
            for (unit, attempt) in pending {
                next_trace += 1;
                let id = unit.id();
                flight::trace_mark(
                    TraceRole::Dispatch,
                    next_trace,
                    unit.index as u32,
                    attempt,
                    &id,
                );
                flight::trace_mark(
                    TraceRole::Begin,
                    next_trace,
                    unit.index as u32,
                    attempt,
                    &id,
                );
                flight::span_open(telemetry::SpanKind::Unit, &id);
                let rec = run_unit(&unit, cfg.reps, cfg.paper_size(), 0, attempt, next_trace);
                flight::span_close(telemetry::SpanKind::Unit, &id);
                flight::trace_mark(
                    TraceRole::Result,
                    next_trace,
                    unit.index as u32,
                    attempt,
                    rec.status.label(),
                );
                record_done(&rec, &mut stats)?;
                done.insert(unit.index, rec);
            }
            Ok(())
        };
        serial()
    } else {
        run_fleet(
            cfg,
            flight_run_dir.as_deref(),
            &units,
            pending,
            &mut done,
            &mut stats,
            &mut |rec, st| record_done(rec, st),
        )
    };
    if flight_on {
        flight::peak_rss(crate::worker::peak_rss_kb());
        flight::stop();
    }
    result?;

    stats.elapsed_secs = started.elapsed().as_secs_f64();
    debug_assert_eq!(done.len(), units.len());
    let records: Vec<UnitRecord> = done.into_values().collect();
    let mut merged = merged_manifest("study", &records);
    merged.threads = cfg.workers.max(1) as u32;
    Ok(StudyOutcome {
        records,
        merged,
        stats,
    })
}

/// Merge per-worker manifest parts losslessly, then order kernels by
/// canonical unit index so the result is independent of completion
/// order and worker count.
pub fn merged_manifest(name: &str, records: &[UnitRecord]) -> RunManifest {
    let mut by_worker: BTreeMap<u32, Vec<&UnitRecord>> = BTreeMap::new();
    for r in records {
        by_worker.entry(r.worker).or_default().push(r);
    }
    let parts: Vec<RunManifest> = by_worker
        .iter()
        .map(|(&w, recs)| worker_manifest(name, w, recs))
        .collect();
    let mut merged = merge_manifests(name, &parts);
    let order: BTreeMap<String, usize> = records
        .iter()
        .map(|r| (format!("study/{}", r.id()), r.unit.index))
        .collect();
    merged
        .kernels
        .sort_by_key(|k| order.get(&k.name).copied().unwrap_or(usize::MAX));
    merged
}

// ---------------------------------------------------------------- fleet

enum Ev {
    Msg(usize, u64, Msg),
    Eof(usize, u64),
}

struct Inflight {
    unit: StudyUnit,
    attempt: u32,
    /// Causal trace id stamped on this dispatch.
    trace: u64,
    deadline: Instant,
}

#[derive(Default)]
struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    gen: u64,
    inflight: Option<Inflight>,
}

fn run_fleet(
    cfg: &StudyConfig,
    flight_run_dir: Option<&Path>,
    units: &[StudyUnit],
    mut pending: VecDeque<(StudyUnit, u32)>,
    done: &mut BTreeMap<usize, UnitRecord>,
    stats: &mut StudyStats,
    record_done: &mut dyn FnMut(&UnitRecord, &mut StudyStats) -> Result<(), String>,
) -> Result<(), String> {
    if cfg.worker_cmd.is_empty() {
        return Err("no worker command configured".into());
    }
    if pending.is_empty() {
        return Ok(());
    }
    let (tx, rx): (Sender<Ev>, Receiver<Ev>) = channel();
    let fleet = cfg.workers.min(pending.len().max(1));
    let mut slots: Vec<Slot> = (0..fleet).map(|_| Slot::default()).collect();
    // Backstop against a worker binary that can never make progress
    // (fails at spawn, dies before `hello`, …): generous, then fatal.
    let mut spawn_budget = units.len() * cfg.max_attempts as usize + fleet * 2 + 8;

    let mut spawn = |s: usize,
                     slots: &mut Vec<Slot>,
                     stats: &mut StudyStats|
     -> Result<(), String> {
        if spawn_budget == 0 {
            return Err("worker restart budget exhausted — workers are dying faster than they complete units".into());
        }
        spawn_budget -= 1;
        let slot = &mut slots[s];
        slot.gen += 1;
        let gen = slot.gen;
        let mut cmd = Command::new(&cfg.worker_cmd[0]);
        cmd.args(&cfg.worker_cmd[1..])
            .arg("--worker")
            .arg(s.to_string());
        if cfg.chaos > 0.0 {
            cmd.args(["--chaos", &cfg.chaos.to_string()])
                .args(["--chaos-seed", &cfg.chaos_seed.to_string()]);
        }
        if let Some(dir) = flight_run_dir {
            cmd.arg("--flight-dir").arg(dir);
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn worker: {e}"))?;
        slot.stdin = child.stdin.take();
        let mut stdout = child.stdout.take().expect("stdout piped");
        slot.child = Some(child);
        if gen > 1 {
            stats.restarts += 1;
        }
        let tx = tx.clone();
        std::thread::spawn(move || {
            while let Ok(Some(payload)) = read_frame(&mut stdout) {
                let Ok(msg) = Msg::parse(&payload) else { break };
                if tx.send(Ev::Msg(s, gen, msg)).is_err() {
                    return;
                }
            }
            let _ = tx.send(Ev::Eof(s, gen));
        });
        Ok(())
    };

    // Hand the next pending unit to an idle slot (or retire the worker
    // with `exit` when the queue is dry). The handed unit becomes the
    // slot's in-flight with a fresh deadline and a fresh trace id —
    // every dispatch (including a retry of the same unit) gets its own
    // id, so flight recordings never conflate two attempts.
    fn assign(
        cfg: &StudyConfig,
        slot: &mut Slot,
        pending: &mut VecDeque<(StudyUnit, u32)>,
        next_trace: &mut u64,
    ) {
        let Some(stdin) = &mut slot.stdin else { return };
        match pending.pop_front() {
            Some((unit, attempt)) => {
                *next_trace += 1;
                let trace = *next_trace;
                let msg = Msg::Run {
                    unit: unit.clone(),
                    attempt,
                    reps: cfg.reps,
                    paper: cfg.paper_size(),
                    trace,
                };
                if write_frame(stdin, &msg.to_json()).is_ok() {
                    flight::trace_mark(
                        TraceRole::Dispatch,
                        trace,
                        unit.index as u32,
                        attempt,
                        &unit.id(),
                    );
                    slot.inflight = Some(Inflight {
                        unit,
                        attempt,
                        trace,
                        deadline: Instant::now() + cfg.timeout,
                    });
                } else {
                    // Dead child: requeue untouched; its EOF event
                    // respawns the slot and re-assigns.
                    pending.push_front((unit, attempt));
                    slot.stdin = None;
                }
            }
            None => {
                let _ = write_frame(stdin, &Msg::Exit.to_json());
                slot.stdin = None; // EOF doubles as shutdown
            }
        }
    }

    // One failed attempt: requeue with the next attempt number, or
    // exhaust into a terminal `crashed` record.
    let exhaust_or_requeue =
        |inf: Inflight,
         slot_id: usize,
         why: &str,
         pending: &mut VecDeque<(StudyUnit, u32)>,
         done: &mut BTreeMap<usize, UnitRecord>,
         stats: &mut StudyStats,
         record_done: &mut dyn FnMut(&UnitRecord, &mut StudyStats) -> Result<(), String>|
         -> Result<(), String> {
            if inf.attempt >= cfg.max_attempts {
                flight::trace_mark(
                    TraceRole::Result,
                    inf.trace,
                    inf.unit.index as u32,
                    inf.attempt,
                    "crashed",
                );
                let rec = UnitRecord {
                    unit: inf.unit.clone(),
                    status: UnitStatus::Crashed,
                    note: Some(format!(
                        "{why} (attempt {}/{})",
                        inf.attempt, cfg.max_attempts
                    )),
                    worker: slot_id as u32,
                    attempt: inf.attempt,
                    trace: inf.trace,
                    wall_secs: 0.0,
                    samples: vec![],
                    sim_secs: None,
                    efficiency: None,
                    gbps: None,
                };
                record_done(&rec, stats)?;
                done.insert(rec.unit.index, rec);
            } else {
                flight::trace_mark(
                    TraceRole::Result,
                    inf.trace,
                    inf.unit.index as u32,
                    inf.attempt,
                    "retry",
                );
                stats.retries += 1;
                pending.push_front((inf.unit, inf.attempt + 1));
            }
            Ok(())
        };

    let mut next_trace = 0u64;
    for s in 0..fleet {
        spawn(s, &mut slots, stats)?;
        assign(cfg, &mut slots[s], &mut pending, &mut next_trace);
    }

    while done.len() < units.len() {
        let now = Instant::now();
        let next_deadline = slots
            .iter()
            .filter_map(|sl| sl.inflight.as_ref().map(|i| i.deadline))
            .min();
        let wait = next_deadline
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(500))
            .min(Duration::from_millis(500));

        match rx.recv_timeout(wait) {
            // `start` is informational here; it matters after a crash,
            // when the *absence* of `done` for a started unit is what
            // triggers the retry.
            Ok(Ev::Msg(s, gen, msg)) if slots[s].gen == gen => match msg {
                Msg::Hello { proto, .. } if proto != PROTO_VERSION => {
                    return Err(format!(
                        "worker {s} speaks protocol v{proto}, orchestrator requires \
                         v{PROTO_VERSION} — the worker command runs a stale binary"
                    ));
                }
                Msg::Done(rec) => {
                    if slots[s]
                        .inflight
                        .as_ref()
                        .is_some_and(|i| i.unit.index == rec.unit.index)
                    {
                        slots[s].inflight = None;
                    }
                    flight::trace_mark(
                        TraceRole::Result,
                        rec.trace,
                        rec.unit.index as u32,
                        rec.attempt,
                        rec.status.label(),
                    );
                    record_done(&rec, stats)?;
                    done.insert(rec.unit.index, rec);
                    assign(cfg, &mut slots[s], &mut pending, &mut next_trace);
                }
                Msg::Bye { peak_rss_kb, .. } => {
                    stats.peak_rss_kb = stats.peak_rss_kb.max(peak_rss_kb);
                }
                _ => {}
            },
            Ok(Ev::Msg(..)) => {} // stale generation: killed worker
            Ok(Ev::Eof(s, gen)) if slots[s].gen == gen => {
                let had = slots[s].inflight.take();
                reap(&mut slots[s]);
                if let Some(inf) = had {
                    exhaust_or_requeue(
                        inf,
                        s,
                        "worker exited mid-unit",
                        &mut pending,
                        done,
                        stats,
                        record_done,
                    )?;
                }
                if !pending.is_empty() {
                    spawn(s, &mut slots, stats)?;
                    assign(cfg, &mut slots[s], &mut pending, &mut next_trace);
                }
            }
            Ok(Ev::Eof(..)) => {}
            Err(RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                for s in 0..fleet {
                    let expired = slots[s]
                        .inflight
                        .as_ref()
                        .is_some_and(|i| i.deadline <= now);
                    if !expired {
                        continue;
                    }
                    stats.timeouts += 1;
                    let inf = slots[s].inflight.take().expect("checked above");
                    kill(&mut slots[s]); // gen bump makes the EOF inert
                    exhaust_or_requeue(
                        inf,
                        s,
                        &format!("timeout after {:?}", cfg.timeout),
                        &mut pending,
                        done,
                        stats,
                        record_done,
                    )?;
                    if !pending.is_empty() {
                        spawn(s, &mut slots, stats)?;
                        assign(cfg, &mut slots[s], &mut pending, &mut next_trace);
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err("all worker readers disconnected with units outstanding".into())
            }
        }
    }

    // Retire the fleet: closing stdin tells each worker to exit, and
    // an orderly worker answers with a `bye` exit frame (peak RSS)
    // before dying. Collect those farewells — bounded, because a
    // worker wedged at shutdown must not wedge the study.
    let mut live = 0usize;
    for slot in &mut slots {
        if let Some(stdin) = &mut slot.stdin {
            let _ = write_frame(stdin, &Msg::Exit.to_json());
        }
        slot.stdin = None;
        if slot.child.is_some() {
            live += 1;
        }
    }
    let goodbye = Instant::now() + Duration::from_secs(5);
    while live > 0 && Instant::now() < goodbye {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Ev::Msg(s, gen, Msg::Bye { peak_rss_kb, .. })) if slots[s].gen == gen => {
                stats.peak_rss_kb = stats.peak_rss_kb.max(peak_rss_kb);
            }
            Ok(Ev::Eof(s, gen)) if slots[s].gen == gen && slots[s].child.is_some() => {
                reap(&mut slots[s]);
                live -= 1;
            }
            Ok(_) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    for slot in &mut slots {
        reap(slot);
    }
    Ok(())
}

/// Bump the generation (so pending events from this child are stale)
/// and kill it.
fn kill(slot: &mut Slot) {
    slot.gen += 1;
    slot.stdin = None;
    if let Some(child) = &mut slot.child {
        let _ = child.kill();
    }
    reap(slot);
}

fn reap(slot: &mut Slot) {
    if let Some(mut child) = slot.child.take() {
        let _ = child.wait();
    }
}

// ------------------------------------------------------- flight layout

/// Parse a `run-<seq>-<tag>` directory name into its sequence number.
fn run_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("run-")?;
    let (seq, _tag) = rest.split_once('-')?;
    seq.parse().ok()
}

/// Per-run flight subdirectories under `dir`, oldest → newest.
pub fn flight_run_dirs(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return vec![];
    };
    let mut runs: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter(|e| e.path().is_dir())
        .filter_map(|e| run_seq(&e.file_name().to_string_lossy()).map(|seq| (seq, e.path())))
        .collect();
    runs.sort();
    runs
}

/// The directory `blackbox` reads by default: the newest run
/// subdirectory, or `dir` itself when no run subdirectory exists (the
/// pre-retention flat layout).
pub fn latest_flight_run(dir: &Path) -> PathBuf {
    flight_run_dirs(dir)
        .pop()
        .map(|(_, p)| p)
        .unwrap_or_else(|| dir.to_path_buf())
}

/// The run tag: the journal's file stem, sanitised for a path segment.
/// Two studies with different journals never share a retention window.
fn journal_tag(journal: Option<&Path>) -> String {
    let stem = journal
        .and_then(|p| p.file_stem())
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tag: String = stem
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if tag.is_empty() {
        "adhoc".into()
    } else {
        tag
    }
}

/// Create (or, on resume, re-enter) this run's flight subdirectory and
/// prune the rolling window to the newest `retain` runs. Legacy flat
/// `flight-*.bin` files at the top level (the pre-retention layout)
/// are removed on a fresh run.
fn prepare_flight_run_dir(
    dir: &Path,
    journal: Option<&Path>,
    resume: bool,
    retain: usize,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("flight dir: {e}"))?;
    let tag = journal_tag(journal);
    let runs = flight_run_dirs(dir);
    if resume {
        // The newest run carrying this journal's tag holds the crash
        // evidence of the interrupted run — append to it.
        let newest_same_tag = runs.iter().rev().find(|(_, p)| {
            p.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("run-"))
                .and_then(|r| r.split_once('-'))
                .is_some_and(|(_, t)| t == tag)
        });
        if let Some((_, path)) = newest_same_tag {
            return Ok(path.clone());
        }
        // Nothing to resume into: fall through to a fresh run dir.
    } else if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("flight-") && name.ends_with(".bin") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    let seq = runs.last().map(|(s, _)| s + 1).unwrap_or(1);
    let run_dir = dir.join(format!("run-{seq:04}-{tag}"));
    std::fs::create_dir_all(&run_dir).map_err(|e| format!("flight run dir: {e}"))?;
    // Rolling retention — the new run counts against the window.
    let mut runs = flight_run_dirs(dir);
    while runs.len() > retain.max(1) {
        let (_, old) = runs.remove(0);
        let _ = std::fs::remove_dir_all(&old);
    }
    Ok(run_dir)
}

// -------------------------------------------------------------- journal

fn open_journal(path: &Path, append: bool) -> Result<BufWriter<File>, String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("journal dir: {e}"))?;
        }
    }
    let file = OpenOptions::new()
        .create(true)
        .append(append)
        .write(true)
        .truncate(!append)
        .open(path)
        .map_err(|e| format!("journal open {}: {e}", path.display()))?;
    Ok(BufWriter::new(file))
}

/// Replay a journal, tolerating a torn trailing line (and, defensively,
/// any other unparseable line — a journal is a recovery aid, not a
/// source of truth the run must die over).
pub fn read_journal(path: &Path) -> Vec<UnitRecord> {
    let Ok(file) = File::open(path) else {
        return vec![];
    };
    BufReader::new(file)
        .lines()
        .map_while(Result::ok)
        .filter_map(|line| UnitRecord::parse(line.trim()).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UnitStatus;

    /// Serial mode exercises journal/merge plumbing without processes
    /// (the multi-process paths live in `tests/study_proc.rs`).
    #[test]
    fn serial_study_completes_every_unit() {
        let mut cfg = StudyConfig::new(Scope::Smoke);
        cfg.workers = 0;
        cfg.reps = 1;
        let out = run_study(&cfg).unwrap();
        let units = cfg.units();
        assert_eq!(out.records.len(), units.len());
        for (r, u) in out.records.iter().zip(&units) {
            assert_eq!(&r.unit, u, "records in canonical order");
            assert!(!matches!(r.status, UnitStatus::Crashed));
        }
        assert_eq!(out.merged.kernels.len(), units.len());
        assert!(out.stats.busy_secs > 0.0);
    }

    #[test]
    fn serial_journal_resume_skips_done_units() {
        let dir = std::env::temp_dir().join(format!("study-orch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");

        let mut cfg = StudyConfig::new(Scope::Smoke);
        cfg.workers = 0;
        cfg.reps = 1;
        cfg.journal = Some(journal.clone());
        let first = run_study(&cfg).unwrap();

        // Tear the journal: drop the last full line, leave half a line.
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let keep = lines.len() - 2;
        let mut torn: String = lines[..keep].join("\n");
        torn.push('\n');
        torn.push_str(&lines[keep][..lines[keep].len() / 2]);
        std::fs::write(&journal, torn).unwrap();

        cfg.resume = true;
        let second = run_study(&cfg).unwrap();
        assert_eq!(second.stats.resumed as usize, keep);
        assert_eq!(second.records.len(), first.records.len());
        // Simulated quantities agree with the uninterrupted run.
        for (a, b) in first.records.iter().zip(&second.records) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.status, b.status);
            assert_eq!(a.sim_secs, b.sim_secs);
            assert_eq!(a.efficiency, b.efficiency);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flight_retention_keeps_the_newest_runs_and_resume_reenters() {
        let dir = std::env::temp_dir().join(format!("study-flight-retain-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // A legacy flat-layout recording to migrate away.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("flight-orch-p1.bin"), b"stale").unwrap();
        let journal = Some(dir.join("study.journal"));

        for seq in 1..=4u64 {
            let run = prepare_flight_run_dir(&dir, journal.as_deref(), false, 3).unwrap();
            assert_eq!(
                run.file_name().unwrap().to_str().unwrap(),
                format!("run-{seq:04}-study")
            );
        }
        assert!(
            !dir.join("flight-orch-p1.bin").exists(),
            "legacy flat recordings are cleared"
        );
        let runs = flight_run_dirs(&dir);
        assert_eq!(
            runs.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "retain=3 keeps the newest three runs"
        );
        assert_eq!(latest_flight_run(&dir), dir.join("run-0004-study"));

        // Resume re-enters the newest run with the same journal tag…
        let resumed = prepare_flight_run_dir(&dir, journal.as_deref(), true, 3).unwrap();
        assert_eq!(resumed, dir.join("run-0004-study"));
        // …while a different journal starts its own run (tag differs).
        let other = Some(dir.join("study_shard1of2.journal"));
        let fresh = prepare_flight_run_dir(&dir, other.as_deref(), true, 3).unwrap();
        assert_eq!(fresh, dir.join("run-0005-study_shard1of2"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_manifest_is_ordered_by_unit_index() {
        let mut cfg = StudyConfig::new(Scope::Smoke);
        cfg.workers = 0;
        cfg.reps = 1;
        let out = run_study(&cfg).unwrap();
        let names: Vec<&str> = out.merged.kernels.iter().map(|k| k.name.as_str()).collect();
        let expected: Vec<String> = cfg
            .units()
            .iter()
            .map(|u| format!("study/{}", u.id()))
            .collect();
        assert_eq!(
            names,
            expected.iter().map(|s| s.as_str()).collect::<Vec<_>>()
        );
    }
}
