//! # sycl-study — the paper's full cross-product as one command
//!
//! The repo's other crates *can* measure any (app, platform, variant
//! [, scheme]) cell; this crate runs **all** of them — 7 apps × 6
//! platforms × per-platform variant columns (× 3 race-resolution
//! schemes for MG-CFD) — as one reproducible, parallel,
//! crash-tolerant job, the way a real portability study is executed
//! on a cluster.
//!
//! The moving parts, bottom-up:
//!
//! * [`unit`] — the canonical enumeration of the cross-product. Unit
//!   indices depend only on the fixed platform/app/variant tables, so
//!   every process (and every CI shard) agrees on `index ↔ cell`;
//!   `--shard i/n` partitions by `index % n`.
//! * [`proto`] — the length-prefixed framed pipe protocol (magic
//!   `SYF1` + u32 length + JSON) between the orchestrator and its
//!   worker processes, with typed messages (`hello`/`run`/`start`/
//!   `done`/`exit`).
//! * [`runner`] — executes one unit via the same
//!   `portability::measure_*` calls the figure binaries use.
//! * [`worker`] — the `--worker` mode this binary re-executes itself
//!   into, plus the fault-injection hooks (`--chaos`, `--hang-once`)
//!   that prove the recovery paths.
//! * [`orchestrator`] — the event loop: per-unit deadlines, bounded
//!   retries, worker respawn with generation counters, an append-only
//!   resume journal, and the lossless merge of every worker's
//!   manifest rows (with [`metrics::Provenance`] of which worker and
//!   attempt produced each cell).
//! * [`report`] — `results/STUDY.json` (status per cell, fleet stats,
//!   the PP̄ table over the merged study) and shard merging for CI.
//! * [`forensics`] — post-mortem reconstruction from the resume
//!   journal plus the crash-surviving flight recordings every process
//!   keeps (`telemetry::flight`): kill-site attribution for every
//!   crashed/timed-out unit, straggler/tail kernel analysis, and a
//!   merged cross-process Chrome trace with causal flow arrows. The
//!   `blackbox` binary is its CLI.
//!
//! The hard invariant, proven by the process-level tests in
//! `tests/study_proc.rs`: **every unit ends terminal** — measured, a
//! modelled paper hole, or `crashed` after bounded retries — even
//! under `--chaos 0.2` worker kills, and the merged manifest accounts
//! for all of them.

pub mod forensics;
pub mod orchestrator;
pub mod proto;
pub mod record;
pub mod report;
pub mod runner;
pub mod unit;
pub mod worker;

pub use forensics::{analyze, chrome_fleet_trace, load_flight_dir, BlackboxDoc};
pub use orchestrator::{merged_manifest, run_study, StudyConfig, StudyOutcome, StudyStats};
pub use record::{UnitRecord, UnitStatus};
pub use report::StudyDoc;
pub use unit::{paper_units, shard, smoke_units, Scope, StudyUnit};
pub use worker::{worker_cli, WorkerOpts};
