//! `blackbox` — fleet forensics over a study's crash artefacts.
//!
//! ```text
//! blackbox                             # results/study.journal + results/flight/
//! blackbox --journal J --flight DIR    # explicit inputs
//! blackbox --out results               # where the artefacts land
//! blackbox --gate                      # nonzero exit if any crashed
//!                                      # unit lacks a kill-site span
//! blackbox --runs                      # list the retained run dirs
//! blackbox --run run-0002-study        # forensics over one older run
//! blackbox --diff cloverleaf2d/a100/sycl-usm
//!                                      # one unit's dispatches across
//!                                      # every retained run
//! ```
//!
//! The study keeps the last N runs' recordings in `run-<seq>-<journal>`
//! subdirectories under the flight dir (`study --retain`, default 3).
//! `blackbox` reads the newest run by default; `--run` selects an
//! older one and `--diff` compares a flaky unit across all of them.
//!
//! Reads the resume journal and every per-process flight recording,
//! attributes each crashed/timed-out unit to the span it died in,
//! runs the straggler/tail analysis, and writes:
//!
//! * `<out>/BLACKBOX_study.json` — the forensics document
//!   (`schema: "sycl-blackbox/v1"`), rendered by the dashboard's
//!   "Fleet forensics" section.
//! * `<out>/TRACE_study.json` — the merged cross-process Chrome trace
//!   (open in Perfetto; flow arrows join dispatch → execution →
//!   result across pids).

use std::path::PathBuf;
use std::process::ExitCode;
use study::forensics::{analyze, chrome_fleet_trace, load_flight_dir, unit_history};
use study::orchestrator::{flight_run_dirs, latest_flight_run, read_journal};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("blackbox: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut journal = PathBuf::from("results/study.journal");
    let mut flight = PathBuf::from("results/flight");
    let mut out_dir = PathBuf::from("results");
    let mut gate = false;
    let mut list_runs = false;
    let mut run_name: Option<String> = None;
    let mut diff_unit: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match a.as_str() {
            "--journal" => journal = PathBuf::from(val("--journal")?),
            "--flight" => flight = PathBuf::from(val("--flight")?),
            "--out" => out_dir = PathBuf::from(val("--out")?),
            "--gate" => gate = true,
            "--runs" => list_runs = true,
            "--run" => run_name = Some(val("--run")?.clone()),
            "--diff" => diff_unit = Some(val("--diff")?.clone()),
            other => return Err(format!("unknown flag '{other}' (see crate docs)")),
        }
    }

    let retained = flight_run_dirs(&flight);
    if list_runs {
        if retained.is_empty() {
            println!("no retained runs under {} (flat layout?)", flight.display());
        }
        for (_, path) in &retained {
            let n = load_flight_dir(path).len();
            println!(
                "{}  ({n} recording(s))",
                path.file_name().unwrap_or_default().to_string_lossy()
            );
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(unit_id) = diff_unit {
        return diff_across_runs(&flight, &retained, &unit_id);
    }

    // The newest retained run is the default subject; `--run` picks an
    // older one; a dir with no run subdirectories is read as-is.
    let flight = match run_name {
        Some(name) => {
            let dir = flight.join(&name);
            if !dir.is_dir() {
                return Err(format!("no run '{name}' under {}", flight.display()));
            }
            dir
        }
        None => latest_flight_run(&flight),
    };

    let records = read_journal(&journal);
    if records.is_empty() {
        return Err(format!(
            "no terminal records in {} — run a study first",
            journal.display()
        ));
    }
    let recordings = load_flight_dir(&flight);
    let doc = analyze(&records, &recordings);

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let doc_path = out_dir.join("BLACKBOX_study.json");
    std::fs::write(&doc_path, doc.to_json()).map_err(|e| e.to_string())?;
    let trace_path = out_dir.join("TRACE_study.json");
    std::fs::write(&trace_path, chrome_fleet_trace(&recordings)).map_err(|e| e.to_string())?;

    println!(
        "blackbox: {} units ({} ok, {} holes, {} crashed) over {} recording(s)",
        doc.units,
        doc.ok,
        doc.holes,
        doc.crashed,
        doc.recordings.len()
    );
    for a in &doc.attributions {
        match (&a.span_kind, &a.span_name) {
            (Some(kind), Some(name)) => println!(
                "  {} (worker {}, attempt {}, trace {}): died in {kind} '{name}' after {:.3}s — {}",
                a.unit_id, a.worker, a.attempt, a.trace, a.in_span_secs, a.note
            ),
            _ => println!(
                "  {} (worker {}, attempt {}, trace {}): NO ATTRIBUTION — {}",
                a.unit_id, a.worker, a.attempt, a.trace, a.note
            ),
        }
    }
    if !doc.tail_kernels.is_empty() {
        println!(
            "stragglers (unit wall >= p99 = {:.3}s): {}",
            doc.tail_p99_secs,
            doc.tail_units.join(", ")
        );
        for k in &doc.tail_kernels {
            println!("  {:24} {:8.3}s  {:5.1}%", k.name, k.secs, k.share * 100.0);
        }
    }
    println!("wrote {} and {}", doc_path.display(), trace_path.display());

    if gate && doc.unattributed > 0 {
        eprintln!(
            "blackbox --gate: {} crashed unit(s) without kill-site attribution",
            doc.unattributed
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// `--diff`: one unit's dispatch history in every retained run — the
/// view that separates "flaky unit" (dies in different places, or only
/// under one scheduler mix) from "deterministic crash" (same kill site
/// every run). Needs no journal; verdicts come from the orchestrator's
/// result marks inside each run's own recordings.
fn diff_across_runs(
    flight: &std::path::Path,
    retained: &[(u64, PathBuf)],
    unit_id: &str,
) -> Result<ExitCode, String> {
    // Flat legacy layout: treat the flight dir itself as the only run.
    let runs: Vec<PathBuf> = if retained.is_empty() {
        vec![flight.to_path_buf()]
    } else {
        retained.iter().map(|(_, p)| p.clone()).collect()
    };
    let mut seen = 0usize;
    for dir in &runs {
        let name = dir.file_name().unwrap_or_default().to_string_lossy();
        let hist = unit_history(&load_flight_dir(dir), unit_id);
        if hist.is_empty() {
            println!("{name}: unit not dispatched");
            continue;
        }
        seen += 1;
        println!("{name}:");
        for d in hist {
            let verdict = d.result.as_deref().unwrap_or("no result (run died)");
            let site = match &d.open_span {
                Some(span) => format!("  [open at end: {span}]"),
                None => String::new(),
            };
            let worker = if d.worker == study::orchestrator::ORCH_SLOT {
                "orch".to_owned()
            } else {
                d.worker.to_string()
            };
            println!(
                "  trace {:>4}  attempt {}  worker {:>4}  {:>9.3}s  {verdict}{site}",
                d.trace, d.attempt, worker, d.wall_secs
            );
        }
    }
    if seen == 0 {
        return Err(format!(
            "unit '{unit_id}' appears in no retained run under {}",
            flight.display()
        ));
    }
    Ok(ExitCode::SUCCESS)
}
