//! `blackbox` — fleet forensics over a study's crash artefacts.
//!
//! ```text
//! blackbox                             # results/study.journal + results/flight/
//! blackbox --journal J --flight DIR    # explicit inputs
//! blackbox --out results               # where the artefacts land
//! blackbox --gate                      # nonzero exit if any crashed
//!                                      # unit lacks a kill-site span
//! ```
//!
//! Reads the resume journal and every per-process flight recording,
//! attributes each crashed/timed-out unit to the span it died in,
//! runs the straggler/tail analysis, and writes:
//!
//! * `<out>/BLACKBOX_study.json` — the forensics document
//!   (`schema: "sycl-blackbox/v1"`), rendered by the dashboard's
//!   "Fleet forensics" section.
//! * `<out>/TRACE_study.json` — the merged cross-process Chrome trace
//!   (open in Perfetto; flow arrows join dispatch → execution →
//!   result across pids).

use std::path::PathBuf;
use std::process::ExitCode;
use study::forensics::{analyze, chrome_fleet_trace, load_flight_dir};
use study::orchestrator::read_journal;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("blackbox: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut journal = PathBuf::from("results/study.journal");
    let mut flight = PathBuf::from("results/flight");
    let mut out_dir = PathBuf::from("results");
    let mut gate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match a.as_str() {
            "--journal" => journal = PathBuf::from(val("--journal")?),
            "--flight" => flight = PathBuf::from(val("--flight")?),
            "--out" => out_dir = PathBuf::from(val("--out")?),
            "--gate" => gate = true,
            other => return Err(format!("unknown flag '{other}' (see crate docs)")),
        }
    }

    let records = read_journal(&journal);
    if records.is_empty() {
        return Err(format!(
            "no terminal records in {} — run a study first",
            journal.display()
        ));
    }
    let recordings = load_flight_dir(&flight);
    let doc = analyze(&records, &recordings);

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let doc_path = out_dir.join("BLACKBOX_study.json");
    std::fs::write(&doc_path, doc.to_json()).map_err(|e| e.to_string())?;
    let trace_path = out_dir.join("TRACE_study.json");
    std::fs::write(&trace_path, chrome_fleet_trace(&recordings)).map_err(|e| e.to_string())?;

    println!(
        "blackbox: {} units ({} ok, {} holes, {} crashed) over {} recording(s)",
        doc.units,
        doc.ok,
        doc.holes,
        doc.crashed,
        doc.recordings.len()
    );
    for a in &doc.attributions {
        match (&a.span_kind, &a.span_name) {
            (Some(kind), Some(name)) => println!(
                "  {} (worker {}, attempt {}, trace {}): died in {kind} '{name}' after {:.3}s — {}",
                a.unit_id, a.worker, a.attempt, a.trace, a.in_span_secs, a.note
            ),
            _ => println!(
                "  {} (worker {}, attempt {}, trace {}): NO ATTRIBUTION — {}",
                a.unit_id, a.worker, a.attempt, a.trace, a.note
            ),
        }
    }
    if !doc.tail_kernels.is_empty() {
        println!(
            "stragglers (unit wall >= p99 = {:.3}s): {}",
            doc.tail_p99_secs,
            doc.tail_units.join(", ")
        );
        for k in &doc.tail_kernels {
            println!("  {:24} {:8.3}s  {:5.1}%", k.name, k.secs, k.share * 100.0);
        }
    }
    println!("wrote {} and {}", doc_path.display(), trace_path.display());

    if gate && doc.unattributed > 0 {
        eprintln!(
            "blackbox --gate: {} crashed unit(s) without kill-site attribution",
            doc.unattributed
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
