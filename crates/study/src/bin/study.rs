//! `study` — run the paper's cross-product as one command.
//!
//! ```text
//! study --paper --workers 4            # the full study, 4 processes
//! study --smoke                        # CI-sized subset
//! study --paper --shard 1/2            # one CI shard
//! study --paper --resume               # continue an interrupted run
//! study --chaos 0.2 --chaos-seed 7     # fault-injected run
//! study --merge OUT.json A.json B.json # merge shard documents
//! study --no-flight                    # disable flight recordings
//! study --retain 5                     # keep 5 runs' recordings
//! ```
//!
//! Fleet runs keep crash-surviving flight recordings under
//! `<out>/flight/` by default (`--flight-dir` moves them), one
//! `run-<seq>-<journal>` subdirectory per run with the newest
//! `--retain` runs kept (default 3) so `blackbox --diff` can compare a
//! flaky unit across runs; run the `blackbox` binary afterwards to
//! reconstruct crashes and stragglers.
//!
//! Writes `<out>/STUDY[_shard<i>of<n>].json` (the study document) and
//! `<out>/BENCH_study[_shard<i>of<n>].json` (the merged manifest) and
//! prints the per-status counts, fleet stats and PP̄ table.
//!
//! `--worker <id>` is the internal mode the orchestrator re-executes
//! this binary into; it speaks the framed protocol on stdin/stdout.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use study::orchestrator::{run_study, StudyConfig};
use study::report::{merge_docs, pp_rows, StudyDoc};
use study::unit::Scope;
use study::{merged_manifest, worker_cli, UnitStatus};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        return ExitCode::from(worker_cli(&args) as u8);
    }
    if args.first().map(String::as_str) == Some("--merge") {
        return match merge_cli(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("study --merge: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match study_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("study: {e}");
            ExitCode::FAILURE
        }
    }
}

fn study_cli(args: &[String]) -> Result<(), String> {
    let mut cfg = StudyConfig::new(Scope::Smoke);
    let mut out_dir = PathBuf::from("results");
    let mut no_flight = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match a.as_str() {
            "--paper" => cfg.scope = Scope::Paper,
            "--smoke" => cfg.scope = Scope::Smoke,
            "--workers" => cfg.workers = parse(val("--workers")?)?,
            "--reps" => cfg.reps = parse(val("--reps")?)?,
            "--shard" => {
                let v = val("--shard")?;
                let (i, n) = v
                    .split_once('/')
                    .ok_or_else(|| format!("--shard wants i/n, got '{v}'"))?;
                let (i, n) = (parse::<usize>(i)?, parse::<usize>(n)?);
                if n == 0 || i == 0 || i > n {
                    return Err(format!("--shard {i}/{n} out of range"));
                }
                cfg.shard = Some((i, n));
            }
            "--chaos" => cfg.chaos = parse(val("--chaos")?)?,
            "--chaos-seed" => cfg.chaos_seed = parse(val("--chaos-seed")?)?,
            "--timeout-secs" => cfg.timeout = Duration::from_secs(parse(val("--timeout-secs")?)?),
            "--max-attempts" => cfg.max_attempts = parse::<u32>(val("--max-attempts")?)?.max(1),
            "--journal" => cfg.journal = Some(PathBuf::from(val("--journal")?)),
            "--resume" => cfg.resume = true,
            "--flight-dir" => cfg.flight_dir = Some(PathBuf::from(val("--flight-dir")?)),
            "--no-flight" => no_flight = true,
            "--retain" => cfg.retain = parse::<usize>(val("--retain")?)?.max(1),
            "--out" => out_dir = PathBuf::from(val("--out")?),
            other => return Err(format!("unknown flag '{other}' (see crate docs)")),
        }
    }
    let suffix = match cfg.shard {
        Some((i, n)) => format!("_shard{i}of{n}"),
        None => String::new(),
    };
    if cfg.journal.is_none() {
        cfg.journal = Some(out_dir.join(format!("study{suffix}.journal")));
    }
    // Flight recordings are on by default for fleet runs — they are
    // what `blackbox` reconstructs crashes from — and live next to the
    // other artefacts unless pointed elsewhere.
    if no_flight {
        cfg.flight_dir = None;
    } else if cfg.flight_dir.is_none() && cfg.workers > 0 {
        cfg.flight_dir = Some(out_dir.join("flight"));
    }
    if cfg.workers > 0 {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        cfg.worker_cmd = vec![exe.to_string_lossy().into_owned()];
    }

    let outcome = run_study(&cfg)?;
    let doc = StudyDoc {
        scope: cfg.scope,
        shard: cfg.shard,
        workers: cfg.workers as u32,
        stats: outcome.stats,
        records: outcome.records,
    };
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let study_path = out_dir.join(format!("STUDY{suffix}.json"));
    std::fs::write(&study_path, doc.to_json()).map_err(|e| e.to_string())?;
    let manifest_path = out_dir.join(format!("BENCH_study{suffix}.json"));
    std::fs::write(&manifest_path, outcome.merged.to_json()).map_err(|e| e.to_string())?;

    print_summary(&doc);
    println!(
        "\nwrote {} and {}",
        study_path.display(),
        manifest_path.display()
    );
    let (_, _, crashed) = doc.status_counts();
    if crashed > 0 {
        println!("note: {crashed} unit(s) crashed after bounded retries — see 'crashed' records");
    }
    Ok(())
}

fn merge_cli(args: &[String]) -> Result<(), String> {
    let (out, inputs) = args
        .split_first()
        .ok_or("usage: study --merge OUT.json SHARD.json...")?;
    if inputs.is_empty() {
        return Err("usage: study --merge OUT.json SHARD.json...".into());
    }
    let docs = inputs
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            StudyDoc::parse(&text).map_err(|e| format!("{p}: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let merged = merge_docs(&docs)?;
    let manifest = merged_manifest("study", &merged.records);
    std::fs::write(out, merged.to_json()).map_err(|e| format!("{out}: {e}"))?;
    let manifest_out = PathBuf::from(out)
        .with_file_name("BENCH_study.json")
        .to_string_lossy()
        .into_owned();
    std::fs::write(&manifest_out, manifest.to_json())
        .map_err(|e| format!("{manifest_out}: {e}"))?;
    print_summary(&merged);
    println!("\nwrote {out} and {manifest_out}");
    Ok(())
}

fn print_summary(doc: &StudyDoc) {
    let (ok, holes, crashed) = doc.status_counts();
    let shard = match doc.shard {
        Some((i, n)) => format!(" shard {i}/{n}"),
        None => String::new(),
    };
    println!(
        "study scope={}{} units={} ok={} holes={} crashed={}",
        doc.scope.label(),
        shard,
        doc.records.len(),
        ok,
        holes,
        crashed
    );
    let s = &doc.stats;
    let util = if s.workers > 0 && s.elapsed_secs > 0.0 {
        s.busy_secs / (s.workers as f64 * s.elapsed_secs)
    } else {
        0.0
    };
    println!(
        "fleet: workers={} elapsed={:.2}s busy={:.2}s utilisation={:.0}% retries={} restarts={} timeouts={} resumed={}",
        s.workers, s.elapsed_secs, s.busy_secs, util * 100.0, s.retries, s.restarts, s.timeouts, s.resumed
    );
    if s.peak_rss_kb > 0 {
        println!(
            "memory: peak worker RSS {:.1} MiB",
            s.peak_rss_kb as f64 / 1024.0
        );
    }
    let max_attempt = doc.records.iter().map(|r| r.attempt).max().unwrap_or(1);
    if max_attempt > 1 {
        let retried = doc.records.iter().filter(|r| r.attempt > 1).count();
        println!(
            "recovery: {retried} unit(s) completed on attempt > 1 (max attempt {max_attempt})"
        );
    }
    println!("\nPP̄ over the merged study (harmonic mean of efficiencies):");
    for (label, value) in pp_rows(&doc.records) {
        println!("  {label:28} {value:.2}");
    }
    let crashed_ids: Vec<String> = doc
        .records
        .iter()
        .filter(|r| matches!(r.status, UnitStatus::Crashed))
        .map(|r| r.id())
        .collect();
    if !crashed_ids.is_empty() {
        println!("\ncrashed units: {}", crashed_ids.join(", "));
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{s}'"))
}
