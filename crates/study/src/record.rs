//! The terminal result of one study unit, as journaled and merged.
//!
//! A [`UnitRecord`] is the unit of crash-tolerance: it is written to
//! the journal the moment it becomes terminal (measured, a paper hole,
//! or exhausted after bounded retries), it is what a resumed study
//! skips, and it is the row from which the merged [`RunManifest`] is
//! rebuilt — carrying [`Provenance`] of which worker and attempt
//! produced it.

use crate::unit::{unit_from_wire, StudyUnit};
use metrics::jsonv::{self, Json};
use metrics::{Histogram, KernelSummary, Provenance, RunManifest};
use sycl_sim::FailureKind;
use telemetry::json::JsonWriter;

/// Why a unit is terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitStatus {
    /// Measured successfully.
    Ok,
    /// The configuration fails *by design* — one of the paper's missing
    /// bars (unsupported toolchain, modelled compile error, …).
    Hole(FailureKind),
    /// The worker executing it died or hung on every allowed attempt.
    Crashed,
}

impl UnitStatus {
    pub fn label(self) -> &'static str {
        match self {
            UnitStatus::Ok => "ok",
            UnitStatus::Hole(_) => "hole",
            UnitStatus::Crashed => "crashed",
        }
    }
}

/// Wire-stable code for a [`FailureKind`].
pub fn failure_code(k: FailureKind) -> &'static str {
    match k {
        FailureKind::Unsupported => "unsupported",
        FailureKind::CompileError => "compile-error",
        FailureKind::RuntimeCrash => "runtime-crash",
        FailureKind::IncorrectResult => "incorrect-result",
        FailureKind::VerificationFailed => "verification-failed",
    }
}

fn failure_parse(s: &str) -> Option<FailureKind> {
    [
        FailureKind::Unsupported,
        FailureKind::CompileError,
        FailureKind::RuntimeCrash,
        FailureKind::IncorrectResult,
        FailureKind::VerificationFailed,
    ]
    .into_iter()
    .find(|&k| failure_code(k) == s)
}

/// One terminal study-unit result.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    pub unit: StudyUnit,
    pub status: UnitStatus,
    /// Free-text context for `Crashed` records ("timeout after 2s", …).
    pub note: Option<String>,
    /// Worker slot that produced (or last attempted) the unit.
    pub worker: u32,
    /// 1-based attempt that became terminal.
    pub attempt: u32,
    /// Causal trace id of the dispatch that became terminal (0 for
    /// serial runs and journals written before tracing existed).
    pub trace: u64,
    /// Worker-side wall-clock spent on the successful attempt, seconds.
    pub wall_secs: f64,
    /// Per-repetition wall-clock samples (the non-deterministic part).
    pub samples: Vec<f64>,
    /// Simulated runtime, when measured.
    pub sim_secs: Option<f64>,
    /// Achieved architectural efficiency, when measured.
    pub efficiency: Option<f64>,
    /// Achieved bandwidth (efficiency × STREAM), GB/s, when measured.
    pub gbps: Option<f64>,
}

impl UnitRecord {
    /// The unit's stable id (journal/merge key).
    pub fn id(&self) -> String {
        self.unit.id()
    }

    /// Serialize as a single JSON object (one journal line).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("index").int(self.unit.index as u64);
        w.key("id").string(&self.id());
        w.key("app").string(&self.unit.app);
        w.key("platform").string(self.unit.platform.label());
        w.key("toolchain")
            .string(self.unit.variant.toolchain.label());
        w.key("ndRange").bool(self.unit.variant.nd_range);
        if let Some(s) = self.unit.scheme {
            w.key("scheme").string(s.label());
        }
        w.key("status").string(self.status.label());
        if let UnitStatus::Hole(k) = self.status {
            w.key("failure").string(failure_code(k));
        }
        if let Some(n) = &self.note {
            w.key("note").string(n);
        }
        w.key("worker").int(self.worker as u64);
        w.key("attempt").int(self.attempt as u64);
        w.key("trace").int(self.trace);
        w.key("wallSecs").number(self.wall_secs);
        w.key("samples").begin_array();
        for &s in &self.samples {
            w.number(s);
        }
        w.end_array();
        if let Some(v) = self.sim_secs {
            w.key("simSecs").number(v);
        }
        if let Some(v) = self.efficiency {
            w.key("efficiency").number(v);
        }
        if let Some(v) = self.gbps {
            w.key("gbps").number(v);
        }
        w.end_object();
    }

    /// Parse one record object.
    pub fn parse(text: &str) -> Result<UnitRecord, String> {
        let j = jsonv::parse(text).map_err(|e| e.to_string())?;
        UnitRecord::from_json(&j)
    }

    pub(crate) fn from_json(j: &Json) -> Result<UnitRecord, String> {
        let need =
            |k: &str| -> Result<&Json, String> { j.get(k).ok_or(format!("record missing '{k}'")) };
        let unit = unit_from_wire(
            j.u64_of("index").ok_or("record missing 'index'")? as usize,
            need("app")?.as_str().ok_or("'app' not a string")?,
            j.str_of("platform").ok_or("record missing 'platform'")?,
            j.str_of("toolchain").ok_or("record missing 'toolchain'")?,
            matches!(j.get("ndRange"), Some(Json::Bool(true))),
            j.str_of("scheme"),
        )
        .ok_or("record names unknown platform/toolchain/scheme")?;
        let status = match j.str_of("status").ok_or("record missing 'status'")? {
            "ok" => UnitStatus::Ok,
            "hole" => {
                let code = j.str_of("failure").ok_or("hole record missing 'failure'")?;
                UnitStatus::Hole(failure_parse(code).ok_or("unknown failure code")?)
            }
            "crashed" => UnitStatus::Crashed,
            other => return Err(format!("unknown status '{other}'")),
        };
        let samples = match j.get("samples") {
            Some(Json::Arr(a)) => a
                .iter()
                .map(|v| v.as_f64().ok_or("non-numeric sample"))
                .collect::<Result<Vec<f64>, _>>()?,
            _ => return Err("record missing 'samples'".into()),
        };
        Ok(UnitRecord {
            unit,
            status,
            note: j.str_of("note").map(str::to_owned),
            worker: j.u64_of("worker").ok_or("record missing 'worker'")? as u32,
            attempt: j.u64_of("attempt").ok_or("record missing 'attempt'")? as u32,
            trace: j.u64_of("trace").unwrap_or(0),
            wall_secs: j.f64_of("wallSecs").ok_or("record missing 'wallSecs'")?,
            samples,
            sim_secs: j.f64_of("simSecs"),
            efficiency: j.f64_of("efficiency"),
            gbps: j.f64_of("gbps"),
        })
    }

    /// The manifest row this record contributes: kernel `study/<id>`
    /// with the wall-clock samples (empty for holes/crashes, so *every*
    /// unit is accounted for in the merged manifest) and the worker/
    /// attempt provenance.
    pub fn kernel_summary(&self) -> KernelSummary {
        let mut h = Histogram::new();
        for &s in &self.samples {
            h.record(s);
        }
        KernelSummary {
            name: format!("study/{}", self.id()),
            wall: h.summary(),
            samples: self.samples.clone(),
            sim_secs: self.sim_secs.unwrap_or(0.0),
            bytes: 0.0,
            gbps: self.gbps.unwrap_or(0.0),
            origin: Some(Provenance {
                worker: self.worker,
                attempt: self.attempt,
                trace: self.trace,
            }),
        }
    }
}

/// Build one worker's partial manifest from the records it produced.
pub fn worker_manifest(study_name: &str, worker: u32, records: &[&UnitRecord]) -> RunManifest {
    let reps = records.iter().map(|r| r.samples.len()).max().unwrap_or(0);
    RunManifest {
        name: format!("{study_name}-w{worker}"),
        git_rev: metrics::manifest::git_rev(),
        platform: "cross-product".into(),
        threads: 1,
        repetitions: reps as u32,
        created_unix_secs: now_unix(),
        kernels: records.iter().map(|r| r.kernel_summary()).collect(),
        counters: Default::default(),
    }
}

pub(crate) fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::smoke_units;

    fn sample_record() -> UnitRecord {
        let unit = smoke_units().into_iter().next().unwrap();
        UnitRecord {
            unit,
            status: UnitStatus::Ok,
            note: None,
            worker: 2,
            attempt: 3,
            trace: 11,
            wall_secs: 0.5,
            samples: vec![0.2, 0.3],
            sim_secs: Some(1.5),
            efficiency: Some(0.61),
            gbps: Some(900.0),
        }
    }

    #[test]
    fn records_round_trip() {
        let r = sample_record();
        assert_eq!(UnitRecord::parse(&r.to_json()).unwrap(), r);

        let hole = UnitRecord {
            status: UnitStatus::Hole(FailureKind::CompileError),
            sim_secs: None,
            efficiency: None,
            gbps: None,
            samples: vec![],
            ..sample_record()
        };
        assert_eq!(UnitRecord::parse(&hole.to_json()).unwrap(), hole);

        let crashed = UnitRecord {
            status: UnitStatus::Crashed,
            note: Some("timeout after 2s".into()),
            ..hole.clone()
        };
        assert_eq!(UnitRecord::parse(&crashed.to_json()).unwrap(), crashed);
    }

    #[test]
    fn kernel_summary_carries_provenance_and_accounts_for_holes() {
        let r = sample_record();
        let k = r.kernel_summary();
        assert_eq!(k.name, format!("study/{}", r.id()));
        assert_eq!(
            k.origin,
            Some(Provenance {
                worker: 2,
                attempt: 3,
                trace: 11,
            })
        );
        assert_eq!(k.wall.count, 2);

        let hole = UnitRecord {
            status: UnitStatus::Hole(FailureKind::Unsupported),
            samples: vec![],
            ..sample_record()
        };
        let k = hole.kernel_summary();
        assert_eq!(k.wall.count, 0, "holes still appear, with empty walls");
    }

    #[test]
    fn worker_manifests_group_rows() {
        let a = sample_record();
        let m = worker_manifest("study", 2, &[&a]);
        assert_eq!(m.name, "study-w2");
        assert_eq!(m.kernels.len(), 1);
        let back = RunManifest::parse(&m.to_json()).unwrap();
        assert_eq!(
            back.kernels[0].origin,
            Some(Provenance {
                worker: 2,
                attempt: 3,
                trace: 11,
            })
        );
    }
}
