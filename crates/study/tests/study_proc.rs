//! Process-level study tests: real forked workers, real crashes.
//!
//! `harness = false`: this binary doubles as the worker executable.
//! When the orchestrator under test spawns `current_exe() --worker N`,
//! `main` routes straight into `worker_cli` — the same re-exec trick
//! the production `study` binary uses.

use std::path::PathBuf;
use std::time::Duration;
use study::forensics::{analyze, chrome_fleet_trace, load_flight_dir};
use study::orchestrator::{latest_flight_run, run_study, StudyConfig, StudyOutcome, ORCH_SLOT};
use study::record::UnitStatus;
use study::unit::{smoke_units, Scope};
use study::worker_cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        std::process::exit(worker_cli(&args));
    }
    // `cargo test` passes filter/format flags; this binary ignores
    // them and always runs its full (fast) suite.
    parallel_study_matches_serial_modulo_timing();
    println!("test parallel_study_matches_serial_modulo_timing ... ok");
    chaos_kills_are_recovered_and_every_unit_is_accounted_for();
    println!("test chaos_kills_are_recovered_and_every_unit_is_accounted_for ... ok");
    resume_skips_journaled_units_and_tolerates_torn_lines();
    println!("test resume_skips_journaled_units_and_tolerates_torn_lines ... ok");
    hung_workers_hit_the_deadline_and_the_unit_is_retried();
    println!("test hung_workers_hit_the_deadline_and_the_unit_is_retried ... ok");
    crashed_units_are_attributed_to_their_kill_site();
    println!("test crashed_units_are_attributed_to_their_kill_site ... ok");
    stale_worker_binaries_are_rejected_at_hello();
    println!("test stale_worker_binaries_are_rejected_at_hello ... ok");
    println!("study_proc: 6 passed");
}

fn base_config() -> StudyConfig {
    let mut cfg = StudyConfig::new(Scope::Smoke);
    cfg.reps = 1;
    cfg.timeout = Duration::from_secs(60);
    cfg.worker_cmd = vec![std::env::current_exe()
        .expect("own path")
        .to_string_lossy()
        .into_owned()];
    cfg
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("study-proc-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The seeded determinism contract: N workers produce the same merged
/// study as a serial in-process run — identical units, statuses,
/// simulated quantities and manifest rows; only wall-clock samples
/// and worker/attempt provenance may differ.
fn assert_equivalent_modulo_timing(par: &StudyOutcome, ser: &StudyOutcome) {
    assert_eq!(par.records.len(), ser.records.len());
    for (a, b) in par.records.iter().zip(&ser.records) {
        assert_eq!(a.unit, b.unit);
        assert_eq!(a.status, b.status, "{}", a.id());
        assert_eq!(a.sim_secs, b.sim_secs, "{}", a.id());
        assert_eq!(a.efficiency, b.efficiency, "{}", a.id());
        assert_eq!(a.gbps, b.gbps, "{}", a.id());
    }
    assert_eq!(par.merged.kernels.len(), ser.merged.kernels.len());
    for (a, b) in par.merged.kernels.iter().zip(&ser.merged.kernels) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.sim_secs, b.sim_secs, "{}", a.name);
        assert_eq!(a.gbps, b.gbps, "{}", a.name);
        assert_eq!(a.wall.count, b.wall.count, "{}: sample count", a.name);
    }
}

fn parallel_study_matches_serial_modulo_timing() {
    let mut serial = base_config();
    serial.workers = 0;
    let ser = run_study(&serial).expect("serial study");

    let mut parallel = base_config();
    parallel.workers = 3;
    let par = run_study(&parallel).expect("parallel study");

    assert_equivalent_modulo_timing(&par, &ser);
    assert_eq!(par.stats.retries, 0);
    assert_eq!(par.stats.restarts, 0);
    // Workers report VmHWM in their `bye` exit frame.
    if cfg!(target_os = "linux") {
        assert!(par.stats.peak_rss_kb > 0, "no worker reported peak RSS");
    }
    // Work actually spread across processes.
    let workers: std::collections::HashSet<u32> = par.records.iter().map(|r| r.worker).collect();
    assert!(workers.len() > 1, "only worker(s) {workers:?} did any work");
}

fn chaos_kills_are_recovered_and_every_unit_is_accounted_for() {
    let mut cfg = base_config();
    cfg.workers = 3;
    cfg.chaos = 0.35;
    cfg.chaos_seed = 7;
    cfg.max_attempts = 5;
    let out = run_study(&cfg).expect("chaos study");

    // Every unit of the scope is terminal, in canonical order.
    let units = cfg.units();
    assert_eq!(out.records.len(), units.len());
    for (r, u) in out.records.iter().zip(&units) {
        assert_eq!(&r.unit, u);
    }
    // The merged manifest accounts for every unit too.
    assert_eq!(out.merged.kernels.len(), units.len());

    // With p=0.35 over the smoke scope some attempt-1 kills are
    // certain; the decision is a seeded hash, so this is stable, not
    // flaky.
    let retried = out.records.iter().filter(|r| r.attempt > 1).count();
    assert!(retried >= 1, "chaos killed nobody — injection is broken");
    assert!(out.stats.retries >= retried as u64);
    assert!(out.stats.restarts >= 1, "no worker was ever respawned");

    // Any exhausted unit must carry the full attempt budget.
    for r in &out.records {
        match r.status {
            UnitStatus::Crashed => assert_eq!(r.attempt, cfg.max_attempts, "{}", r.id()),
            _ => assert!(r.attempt <= cfg.max_attempts),
        }
    }

    // And the surviving measurements agree with a chaos-free serial
    // run — crashes never corrupt data, they only cost retries.
    let mut serial = base_config();
    serial.workers = 0;
    let ser = run_study(&serial).expect("serial study");
    for (a, b) in out.records.iter().zip(&ser.records) {
        if !matches!(a.status, UnitStatus::Crashed) {
            assert_eq!(a.status, b.status, "{}", a.id());
            assert_eq!(a.sim_secs, b.sim_secs, "{}", a.id());
        }
    }
}

fn resume_skips_journaled_units_and_tolerates_torn_lines() {
    let dir = tmp_dir("resume");
    let journal = dir.join("study.journal");

    let mut cfg = base_config();
    cfg.workers = 2;
    cfg.journal = Some(journal.clone());
    let first = run_study(&cfg).expect("first study");

    // Tear the journal as a crash would: keep K full lines, then half
    // of the next one.
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let mut torn: String = lines[..keep].join("\n");
    torn.push('\n');
    torn.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&journal, torn).expect("tear journal");

    cfg.resume = true;
    let second = run_study(&cfg).expect("resumed study");
    assert_eq!(second.stats.resumed as usize, keep, "torn line discarded");
    assert_equivalent_modulo_timing(&second, &first);

    std::fs::remove_dir_all(&dir).ok();
}

/// The blackbox contract, end to end: run a fleet under chaos with no
/// retry budget so kills become terminal `crashed` records, then
/// reconstruct the run from the journal records plus the flight
/// recordings the SIGKILL'd workers left behind. Every crashed unit
/// must be attributed to the span it died in — the worker flushes its
/// `begin` mark and unit-span open *before* the chaos check, so the
/// evidence is on disk before the process can die.
fn crashed_units_are_attributed_to_their_kill_site() {
    let dir = tmp_dir("blackbox");
    let flight = dir.join("flight");

    let mut cfg = base_config();
    cfg.workers = 3;
    cfg.chaos = 0.35;
    cfg.chaos_seed = 7;
    cfg.max_attempts = 1;
    cfg.flight_dir = Some(flight.clone());
    let out = run_study(&cfg).expect("chaos study");

    let crashed: Vec<_> = out
        .records
        .iter()
        .filter(|r| matches!(r.status, UnitStatus::Crashed))
        .collect();
    assert!(
        !crashed.is_empty(),
        "seeded chaos with max_attempts=1 must leave terminal crashes"
    );
    // Every dispatch got a distinct causal trace id.
    let traces: std::collections::HashSet<u64> = out.records.iter().map(|r| r.trace).collect();
    assert_eq!(traces.len(), out.records.len(), "trace ids not unique");
    assert!(!traces.contains(&0), "a record missed its trace stamp");

    // Recordings land in this run's retention subdirectory, not flat
    // in the flight dir; `latest_flight_run` resolves it the same way
    // the `blackbox` binary does.
    let run_dir = latest_flight_run(&flight);
    assert_ne!(run_dir, flight, "run got its own subdirectory");
    assert!(
        load_flight_dir(&flight).is_empty(),
        "flight dir root is flat-file free"
    );
    // Orchestrator + three workers recorded; chaos respawns add more
    // (each generation is its own file), but a worker killed with no
    // pending work left is not respawned, so 4 is the firm floor.
    let recordings = load_flight_dir(&run_dir);
    assert!(
        recordings.iter().any(|r| r.worker == ORCH_SLOT),
        "orchestrator recording missing"
    );
    assert!(
        recordings.len() >= 4,
        "expected fleet recordings, got {}",
        recordings.len()
    );

    let doc = analyze(&out.records, &recordings);
    assert_eq!(doc.units, out.records.len());
    assert_eq!(doc.crashed, crashed.len());
    assert_eq!(doc.attributions.len(), crashed.len());
    assert_eq!(
        doc.unattributed, 0,
        "a crashed unit has no kill-site span: {:?}",
        doc.attributions
    );
    for a in &doc.attributions {
        assert!(a.span_name.is_some(), "{}: no span name", a.unit_id);
        assert!(a.trace > 0, "{}: untraced attribution", a.unit_id);
    }

    // The merged fleet trace is valid JSON with causal flow arrows.
    let trace = chrome_fleet_trace(&recordings);
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\": \"s\""), "no flow-start events");
    assert!(trace.contains("\"ph\": \"f\""), "no flow-finish events");

    std::fs::remove_dir_all(&dir).ok();
}

/// A worker built from a stale checkout announces an old protocol
/// version in its `hello`; the orchestrator must refuse to run the
/// study rather than mis-frame messages mid-flight.
fn stale_worker_binaries_are_rejected_at_hello() {
    let mut cfg = base_config();
    cfg.workers = 2;
    cfg.worker_cmd.extend(["--proto-force".into(), "1".into()]);
    let err = run_study(&cfg).expect_err("version skew must be fatal");
    assert!(
        err.contains("protocol"),
        "error should name the protocol mismatch: {err}"
    );
}

fn hung_workers_hit_the_deadline_and_the_unit_is_retried() {
    let hang_id = smoke_units()
        .into_iter()
        .find(|u| u.scheme.is_none())
        .unwrap()
        .id();
    let mut cfg = base_config();
    cfg.workers = 2;
    cfg.timeout = Duration::from_secs(3);
    // Every worker gets the flag, but only attempt 1 of this unit
    // hangs — the retry after the deadline kill measures it normally.
    cfg.worker_cmd
        .extend(["--hang-once".into(), hang_id.clone()]);
    let out = run_study(&cfg).expect("study with a hung worker");

    assert_eq!(out.stats.timeouts, 1, "exactly one deadline expiry");
    assert!(out.stats.retries >= 1);
    let rec = out
        .records
        .iter()
        .find(|r| r.id() == hang_id)
        .expect("hung unit is terminal");
    assert_eq!(rec.attempt, 2, "completed on the retry");
    assert!(
        !matches!(rec.status, UnitStatus::Crashed),
        "retry measured the unit"
    );
}
