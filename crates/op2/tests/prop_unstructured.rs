//! Property-style tests over generated unstructured meshes: colouring
//! validity, renumbering, partition balance, and scheme equivalence.
//! Inputs come from deterministic parameter sweeps (no external
//! property-test framework: the workspace builds offline with the
//! standard library alone).

use op2_dsl::color::{GlobalColoring, HierColoring};
use op2_dsl::mesh::{Mesh, Ordering};
use op2_dsl::partition::Partition;
use op2_dsl::renumber::{rcm_permutation, renumber_mesh};
use op2_dsl::DatU;

/// Deterministic xorshift64* stream for test inputs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn int(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

fn arb_mesh(ni: usize, nj: usize, nk: usize, seed: u64) -> Mesh {
    let ordering = if seed.is_multiple_of(2) {
        Ordering::Natural
    } else {
        Ordering::Shuffled(seed)
    };
    Mesh::grid(ni, nj, nk, ordering)
}

#[test]
fn global_coloring_valid_on_random_meshes() {
    let mut rng = XorShift::new(3);
    for _ in 0..32 {
        let ni = rng.int(2, 12);
        let nj = rng.int(2, 12);
        let nk = rng.int(1, 8);
        let seed = rng.int(0, 1000) as u64;
        let mesh = arb_mesh(ni, nj, nk, seed);
        let c = GlobalColoring::build(&mesh.edges);
        assert!(c.is_valid(&mesh.edges));
        let covered: usize = c.by_color.iter().map(|g| g.len()).sum();
        assert_eq!(covered, mesh.n_edges());
    }
}

#[test]
fn hier_coloring_valid_on_random_meshes() {
    let mut rng = XorShift::new(5);
    for _ in 0..32 {
        let ni = rng.int(2, 10);
        let nj = rng.int(2, 10);
        let nk = rng.int(1, 6);
        let seed = rng.int(0, 1000) as u64;
        let block = rng.int(1, 512);
        let mesh = arb_mesh(ni, nj, nk, seed);
        let h = HierColoring::build(&mesh.edges, block);
        assert!(h.is_valid(&mesh.edges));
    }
}

#[test]
fn rcm_always_permutes() {
    let mut rng = XorShift::new(7);
    for _ in 0..32 {
        let ni = rng.int(2, 10);
        let nj = rng.int(2, 10);
        let nk = rng.int(1, 6);
        let seed = rng.int(0, 1000) as u64;
        let mesh = arb_mesh(ni, nj, nk, seed);
        let perm = rcm_permutation(&mesh.edges);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &p)| i as u32 == p));
        let renum = renumber_mesh(&mesh);
        assert_eq!(renum.n_edges(), mesh.n_edges());
        assert!(renum.stats().locality >= mesh.stats().locality - 0.15);
    }
}

#[test]
fn rcb_balance_holds() {
    let mut rng = XorShift::new(11);
    for _ in 0..32 {
        let ni = rng.int(4, 14);
        let nj = rng.int(4, 14);
        let nk = rng.int(1, 6);
        let parts = rng.int(1, 24);
        let mesh = Mesh::grid(ni, nj, nk, Ordering::Natural);
        let p = Partition::rcb(&mesh, parts);
        // The discretisation bound: no part exceeds ceil(n/parts).
        let n = mesh.n_vertices as f64;
        let bound = (n / parts as f64).ceil() / (n / parts as f64) - 1.0;
        assert!(
            p.imbalance() <= bound + 1e-9,
            "imbalance {} > bound {bound}",
            p.imbalance()
        );
        assert_eq!(p.loads().iter().sum::<usize>(), mesh.n_vertices);
    }
}

#[test]
fn colored_scatter_equals_serial() {
    let mut rng = XorShift::new(13);
    for _ in 0..24 {
        let ni = rng.int(2, 8);
        let nj = rng.int(2, 8);
        let nk = rng.int(1, 5);
        let seed = rng.int(0, 100) as u64;
        let block = rng.int(8, 128);
        let mesh = arb_mesh(ni, nj, nk, seed);
        // Serial reference: vertex degrees.
        let mut reference = vec![0.0f64; mesh.n_vertices];
        for e in 0..mesh.n_edges() {
            reference[mesh.edges.at(e, 0)] += 1.0;
            reference[mesh.edges.at(e, 1)] += 1.0;
        }
        // Parallel, via hierarchical colouring ordering (plain adds).
        let h = HierColoring::build(&mesh.edges, block);
        let mut out = DatU::<f64>::zeroed("deg", mesh.n_vertices, 1);
        {
            let acc = out.accum(false);
            let pool = parkit::ThreadPool::new(4);
            for group in &h.blocks_by_color {
                pool.run_region(group.len(), |_lane, gi| {
                    let (lo, hi) = h.block_range(group[gi] as usize, mesh.n_edges());
                    for e in lo..hi {
                        acc.add(mesh.edges.at(e, 0), 0, 1.0);
                        acc.add(mesh.edges.at(e, 1), 0, 1.0);
                    }
                });
            }
        }
        for (v, &expect) in reference.iter().enumerate() {
            assert_eq!(out.at(v, 0), expect, "vertex {v}");
        }
    }
}

#[test]
fn stats_invariants() {
    let mut rng = XorShift::new(17);
    for _ in 0..32 {
        let ni = rng.int(2, 12);
        let nj = rng.int(2, 12);
        let nk = rng.int(1, 6);
        let seed = rng.int(0, 50) as u64;
        let factor = rng.int(2, 16);
        let mesh = arb_mesh(ni, nj, nk, seed);
        let stats = mesh.stats();
        assert!((0.0..=1.0).contains(&stats.locality));
        let coarse = stats.coarsen(factor);
        assert!(coarse.n_vertices <= stats.n_vertices);
        assert!(coarse.n_edges <= stats.n_edges);
        assert!(coarse.n_vertices >= 1);
    }
}
