//! Property-based tests over random unstructured meshes: colouring
//! validity, renumbering, partition balance, and scheme equivalence.

use op2_dsl::color::{GlobalColoring, HierColoring};
use op2_dsl::mesh::{Mesh, Ordering};
use op2_dsl::partition::Partition;
use op2_dsl::renumber::{rcm_permutation, renumber_mesh};
use op2_dsl::DatU;
use proptest::prelude::*;

fn arb_mesh(ni: usize, nj: usize, nk: usize, seed: u64) -> Mesh {
    let ordering = if seed.is_multiple_of(2) {
        Ordering::Natural
    } else {
        Ordering::Shuffled(seed)
    };
    Mesh::grid(ni, nj, nk, ordering)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Global colouring is valid on arbitrary grid meshes, shuffled or not.
    #[test]
    fn global_coloring_valid_on_random_meshes(
        ni in 2usize..12, nj in 2usize..12, nk in 1usize..8, seed in 0u64..1000,
    ) {
        let mesh = arb_mesh(ni, nj, nk, seed);
        let c = GlobalColoring::build(&mesh.edges);
        prop_assert!(c.is_valid(&mesh.edges));
        let covered: usize = c.by_color.iter().map(|g| g.len()).sum();
        prop_assert_eq!(covered, mesh.n_edges());
    }

    /// Hierarchical colouring is valid for any block size.
    #[test]
    fn hier_coloring_valid_on_random_meshes(
        ni in 2usize..10, nj in 2usize..10, nk in 1usize..6,
        seed in 0u64..1000, block in 1usize..512,
    ) {
        let mesh = arb_mesh(ni, nj, nk, seed);
        let h = HierColoring::build(&mesh.edges, block);
        prop_assert!(h.is_valid(&mesh.edges));
    }

    /// RCM always yields a permutation and never worsens locality much.
    #[test]
    fn rcm_always_permutes(
        ni in 2usize..10, nj in 2usize..10, nk in 1usize..6, seed in 0u64..1000,
    ) {
        let mesh = arb_mesh(ni, nj, nk, seed);
        let perm = rcm_permutation(&mesh.edges);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert!(sorted.iter().enumerate().all(|(i, &p)| i as u32 == p));
        let renum = renumber_mesh(&mesh);
        prop_assert_eq!(renum.n_edges(), mesh.n_edges());
        prop_assert!(renum.stats().locality >= mesh.stats().locality - 0.15);
    }

    /// RCB partitions are balanced for any part count.
    #[test]
    fn rcb_balance_holds(
        ni in 4usize..14, nj in 4usize..14, nk in 1usize..6,
        parts in 1usize..24,
    ) {
        let mesh = Mesh::grid(ni, nj, nk, Ordering::Natural);
        let p = Partition::rcb(&mesh, parts);
        // The discretisation bound: no part exceeds ceil(n/parts).
        let n = mesh.n_vertices as f64;
        let bound = (n / parts as f64).ceil() / (n / parts as f64) - 1.0;
        prop_assert!(
            p.imbalance() <= bound + 1e-9,
            "imbalance {} > bound {bound}",
            p.imbalance()
        );
        prop_assert_eq!(p.loads().iter().sum::<usize>(), mesh.n_vertices);
    }

    /// Scatter-add through any colouring equals the serial result.
    #[test]
    fn colored_scatter_equals_serial(
        ni in 2usize..8, nj in 2usize..8, nk in 1usize..5, seed in 0u64..100,
        block in 8usize..128,
    ) {
        let mesh = arb_mesh(ni, nj, nk, seed);
        // Serial reference: vertex degrees.
        let mut reference = vec![0.0f64; mesh.n_vertices];
        for e in 0..mesh.n_edges() {
            reference[mesh.edges.at(e, 0)] += 1.0;
            reference[mesh.edges.at(e, 1)] += 1.0;
        }
        // Parallel, via hierarchical colouring ordering (plain adds).
        let h = HierColoring::build(&mesh.edges, block);
        let mut out = DatU::<f64>::zeroed("deg", mesh.n_vertices, 1);
        {
            let acc = out.accum(false);
            let pool = parkit::ThreadPool::new(4);
            for group in &h.blocks_by_color {
                pool.run_region(group.len(), |_lane, gi| {
                    let (lo, hi) = h.block_range(group[gi] as usize, mesh.n_edges());
                    for e in lo..hi {
                        acc.add(mesh.edges.at(e, 0), 0, 1.0);
                        acc.add(mesh.edges.at(e, 1), 0, 1.0);
                    }
                });
            }
        }
        for (v, &expect) in reference.iter().enumerate() {
            prop_assert_eq!(out.at(v, 0), expect, "vertex {}", v);
        }
    }

    /// Map locality is always in [0, 1] and coarsening stats shrink.
    #[test]
    fn stats_invariants(
        ni in 2usize..12, nj in 2usize..12, nk in 1usize..6, seed in 0u64..50,
        factor in 2usize..16,
    ) {
        let mesh = arb_mesh(ni, nj, nk, seed);
        let stats = mesh.stats();
        prop_assert!((0.0..=1.0).contains(&stats.locality));
        let coarse = stats.coarsen(factor);
        prop_assert!(coarse.n_vertices <= stats.n_vertices);
        prop_assert!(coarse.n_edges <= stats.n_edges);
        prop_assert!(coarse.n_vertices >= 1);
    }
}
