//! OP2 parallel loops: direct loops over a set, and indirect loops over
//! edges with the three race-resolution schemes.

use crate::color::{GlobalColoring, HierColoring};
use crate::mesh::{Mesh, MeshStats};
use parkit::{global_pool, tree_combine, DisjointSlices};
use std::sync::Arc;
use sycl_sim::{
    AccessProfile, AtomicKind, AtomicProfile, GraphBuilder, IndirectProfile, Kernel,
    KernelFootprint, KernelTraits, LaunchMeta, Precision, Scheme, Session,
};
use telemetry::shadow;

/// Scheme label carried in shadow traces (telemetry sits below
/// `sycl-sim` in the crate DAG, so it gets a string, not the enum).
fn scheme_label(s: Scheme) -> &'static str {
    match s {
        Scheme::Atomics => "atomics",
        Scheme::GlobalColor => "global",
        Scheme::HierColor => "hier",
    }
}

/// Estimated colour counts when no real mesh is attached (hex meshes:
/// 6 edge directions ⇒ ~8 global colours; block graphs colour in ~4).
const EST_GLOBAL_COLORS: usize = 8;
const EST_BLOCK_COLORS: usize = 4;

/// Chunk size for functional parallel execution.
const EXEC_CHUNK: usize = 2048;

/// A loop over the edge set that indirectly increments vertex data.
#[derive(Debug, Clone)]
pub struct EdgeLoop {
    name: String,
    stats: MeshStats,
    scheme: Scheme,
    precision: Precision,
    /// Work-group/block size (paper: 256 on GPUs, 4096 on CPUs).
    block_size: usize,
    direct_bytes: f64,
    indirect_bytes: f64,
    gathered_per_edge: f64,
    inc_components_per_edge: usize,
    flops_pp: f64,
    transc_pp: f64,
    /// Declaration defects the builder saturated over (zero-dim args);
    /// surfaced as `Error` diagnostics by the verifier.
    defects: Vec<String>,
}

impl EdgeLoop {
    /// Start an edge loop. `stats` gives set sizes and ordering quality;
    /// `scheme` picks the race-resolution strategy.
    pub fn new(name: &str, stats: MeshStats, scheme: Scheme, precision: Precision) -> Self {
        EdgeLoop {
            name: name.to_owned(),
            stats,
            scheme,
            precision,
            block_size: 256,
            direct_bytes: 0.0,
            indirect_bytes: 0.0,
            gathered_per_edge: 0.0,
            inc_components_per_edge: 0,
            flops_pp: 0.0,
            transc_pp: 0.0,
            defects: Vec::new(),
        }
    }

    /// A zero-dim arg would silently price 0 bytes — saturate it to one
    /// component and record the defect for the verifier.
    fn check_dim(&mut self, dim: usize, what: &str) -> usize {
        if dim == 0 {
            self.defects
                .push(format!("{}: {what}(0) declares no components; saturated to 1 so the footprint is not silently zero", self.name));
            1
        } else {
            dim
        }
    }

    /// Set the hierarchical block / work-group size.
    pub fn block_size(mut self, b: usize) -> Self {
        self.block_size = b.max(1);
        self
    }

    /// A `dim`-component dataset on the edge set, read directly.
    pub fn edge_read(mut self, dim: usize) -> Self {
        let dim = self.check_dim(dim, "edge_read");
        self.direct_bytes += self.stats.n_edges as f64 * dim as f64 * self.precision.bytes();
        self
    }

    /// A `dim`-component vertex dataset gathered through the map.
    pub fn vertex_read(mut self, dim: usize) -> Self {
        let dim = self.check_dim(dim, "vertex_read");
        let elem = self.precision.bytes();
        self.indirect_bytes += self.stats.n_vertices as f64 * dim as f64 * elem;
        self.gathered_per_edge += 2.0 * dim as f64 * elem;
        self
    }

    /// A `dim`-component vertex dataset incremented through the map
    /// (read-modify-write: counted twice, as the paper does).
    pub fn vertex_inc(mut self, dim: usize) -> Self {
        let dim = self.check_dim(dim, "vertex_inc");
        let elem = self.precision.bytes();
        self.indirect_bytes += 2.0 * self.stats.n_vertices as f64 * dim as f64 * elem;
        self.gathered_per_edge += 2.0 * dim as f64 * elem;
        self.inc_components_per_edge += 2 * dim;
        self
    }

    /// Declaration defects the builder saturated over.
    pub fn defects(&self) -> &[String] {
        &self.defects
    }

    /// FLOPs per edge.
    pub fn flops(mut self, per_edge: f64) -> Self {
        self.flops_pp = per_edge;
        self
    }

    /// Transcendentals per edge.
    pub fn transcendentals(mut self, per_edge: f64) -> Self {
        self.transc_pp = per_edge;
        self
    }

    /// Does the functional body need atomic accumulation?
    pub fn uses_atomics(&self) -> bool {
        self.scheme == Scheme::Atomics
    }

    /// The paper's §4.3 profiler view: DRAM bytes gathered per 64-item
    /// wave, under this scheme's execution-order locality. On the
    /// MI250X the paper reports 3 500 B/wave for atomics, 8 600 for
    /// hierarchical and 39 000 for global colouring — the same ordering
    /// this model produces.
    pub fn bytes_per_wave(&self, line_bytes: f64) -> f64 {
        const WAVE: f64 = 64.0;
        let q = self.scheme_locality();
        let elem = self.precision.bytes();
        let line_elems = (line_bytes / elem).max(1.0);
        // Each gathered element pulls a whole line; locality q makes
        // consecutive gathers share lines.
        let utilisation = q + (1.0 - q) / line_elems;
        let gathered = self.gathered_per_edge + 2.0 * 4.0;
        WAVE * gathered / utilisation.max(1.0 / line_elems)
    }

    /// The execution-order locality each scheme preserves: atomics keep
    /// the mesh ordering; hierarchical keeps it within blocks; global
    /// colouring destroys it (paper §4.3's bytes-per-wave analysis).
    fn scheme_locality(&self) -> f64 {
        match self.scheme {
            Scheme::Atomics => self.stats.locality,
            Scheme::HierColor => 0.15 + 0.65 * self.stats.locality,
            Scheme::GlobalColor => 0.03,
        }
    }

    /// Number of sequential colour passes (launches) the scheme needs.
    fn passes(&self, mesh: Option<&ColoredMesh>) -> usize {
        match self.scheme {
            Scheme::Atomics => 1,
            Scheme::GlobalColor => mesh
                .and_then(|m| m.global.as_ref())
                .map(|g| g.n_colors())
                .unwrap_or(EST_GLOBAL_COLORS),
            Scheme::HierColor => mesh
                .and_then(|m| m.hier.as_ref())
                .map(|h| h.n_colors())
                .unwrap_or(EST_BLOCK_COLORS),
        }
    }

    /// Build the kernel description for one colour pass covering a
    /// `fraction` of the edges.
    fn pass_kernel(&self, fraction: f64) -> Kernel {
        let n_edges = self.stats.n_edges as f64;
        let map_bytes = n_edges * 2.0 * 4.0;
        let fp = KernelFootprint {
            name: self.name.clone(),
            items: (n_edges * fraction).round().max(1.0) as u64,
            effective_bytes: (self.direct_bytes + self.indirect_bytes + map_bytes) * fraction,
            flops: self.flops_pp * n_edges * fraction,
            transcendentals: self.transc_pp * n_edges * fraction,
            precision: self.precision,
            access: AccessProfile::Indirect(IndirectProfile {
                from_size: (n_edges * fraction) as usize,
                to_size: self.stats.n_vertices,
                arity: 2.0,
                locality: self.scheme_locality(),
                indirect_bytes_per_item: self.gathered_per_edge + 2.0 * 4.0,
            }),
            atomics: if self.scheme == Scheme::Atomics && self.inc_components_per_edge > 0 {
                Some(AtomicProfile {
                    updates: (n_edges * fraction) as u64 * self.inc_components_per_edge as u64,
                    kind: AtomicKind::NativeFp, // session may downgrade
                })
            } else {
                None
            },
            reductions: 0,
        };
        Kernel::new(fp)
            .with_traits(KernelTraits {
                stride_one_inner: true,
                indirect_writes: true,
                complex_body: true,
                hard_on_neon: false,
            })
            .with_nd_shape([self.block_size, 1, 1])
    }

    /// Price the loop on `session` and execute `body(edge)` functionally
    /// under the scheme's ordering guarantees.
    ///
    /// With `mesh = None`, the loop is priced analytically (colour counts
    /// estimated) and the body is not run — the dry-run path used for
    /// paper-sized problems.
    pub fn run(self, session: &Session, mesh: Option<&ColoredMesh>, body: impl Fn(usize) + Sync) {
        let passes = self.passes(mesh);
        let fraction = 1.0 / passes as f64;
        let kernel = self.pass_kernel(fraction);
        metrics::registry().record_labelled(
            "op2.bytes_per_wave",
            scheme_label(self.scheme),
            self.bytes_per_wave(64.0),
        );
        let execute = session.executes() && mesh.is_some();
        let shadowing = shadow::shadow_on() && execute;
        if shadowing {
            self.begin_shadow_loop(mesh.unwrap());
        }

        match self.scheme {
            Scheme::Atomics => {
                session.launch(&kernel, || {
                    if execute {
                        let n = mesh.unwrap().mesh.n_edges();
                        global_pool().for_range(n, EXEC_CHUNK, |lo, hi| {
                            shadow::begin_unit();
                            for e in lo..hi {
                                body(e);
                            }
                            shadow::end_unit();
                        });
                    }
                });
            }
            Scheme::GlobalColor => {
                if execute {
                    let colored = mesh.unwrap();
                    let coloring = colored
                        .global
                        .as_ref()
                        .expect("ColoredMesh::prepare builds the global colouring");
                    for (pass, group) in coloring.by_color.iter().enumerate() {
                        if shadowing && pass > 0 {
                            // Colour groups launch back-to-back: overlap
                            // *across* them is the point of the scheme.
                            shadow::next_phase();
                        }
                        session.launch(&kernel, || {
                            global_pool().for_range(group.len(), EXEC_CHUNK, |lo, hi| {
                                shadow::begin_unit();
                                for &e in &group[lo..hi] {
                                    body(e as usize);
                                }
                                shadow::end_unit();
                            });
                        });
                    }
                } else {
                    for _ in 0..passes {
                        session.launch(&kernel, || ());
                    }
                }
            }
            Scheme::HierColor => {
                if execute {
                    let colored = mesh.unwrap();
                    let hier = colored
                        .hier
                        .as_ref()
                        .expect("ColoredMesh::prepare builds the hierarchical colouring");
                    let n_edges = colored.mesh.n_edges();
                    for (pass, group) in hier.blocks_by_color.iter().enumerate() {
                        if shadowing && pass > 0 {
                            shadow::next_phase();
                        }
                        session.launch(&kernel, || {
                            global_pool().run_region(group.len(), |_lane, gi| {
                                let (lo, hi) = hier.block_range(group[gi] as usize, n_edges);
                                // Blocks run serially inside — the
                                // intra-block colouring orders the edges.
                                shadow::begin_unit();
                                for e in lo..hi {
                                    body(e);
                                }
                                shadow::end_unit();
                            });
                        });
                    }
                } else {
                    for _ in 0..passes {
                        session.launch(&kernel, || ());
                    }
                }
            }
        }
        if shadowing {
            shadow::end_loop();
        }
    }

    /// Open the shadow trace for this loop: declaration, builder
    /// defects, and an up-front proof of the colouring plan (the plan
    /// validator part of `sycl-verify`).
    fn begin_shadow_loop(&self, colored: &ColoredMesh) {
        shadow::begin_loop(shadow::LoopDecl {
            kernel: self.name.clone(),
            structured: false,
            lo: [0; 3],
            hi: [0; 3],
            args: Vec::new(),
            flops_pp: self.flops_pp,
            transc_pp: self.transc_pp,
            scheme: Some(scheme_label(self.scheme)),
        });
        for d in &self.defects {
            shadow::note(shadow::NoteKind::DeclDefect, d.clone());
        }
        let map = &colored.mesh.edges;
        if let Some(g) = &colored.global {
            if let Some((a, b, v)) = g.first_conflict(map) {
                shadow::note(
                    shadow::NoteKind::PlanViolation,
                    format!(
                        "global colouring invalid: edges {a} and {b} share colour {} and vertex {v}",
                        g.color[a as usize]
                    ),
                );
            }
        }
        if let Some(h) = &colored.hier {
            if let Some((a, b, v)) = h.first_block_conflict(map) {
                shadow::note(
                    shadow::NoteKind::PlanViolation,
                    format!(
                        "hierarchical colouring invalid: blocks {a} and {b} share colour {} and vertex {v}",
                        h.block_color[a as usize]
                    ),
                );
            } else if let Some((a, b, v)) = h.first_intra_conflict(map) {
                shadow::note(
                    shadow::NoteKind::PlanViolation,
                    format!(
                        "hierarchical intra-block colouring invalid: edges {a} and {b} share colour {} and vertex {v}",
                        h.intra_color[a as usize]
                    ),
                );
            }
        }
    }

    /// Record this loop into a launch graph instead of launching it; the
    /// replay mirror of [`EdgeLoop::run`].
    ///
    /// Colour schemes record one launch node per colour pass (the same
    /// launch sequence the eager path issues), so the replayed ledger is
    /// bit-identical to an eager run. The colour structure is captured at
    /// record time — re-record if the mesh or its colouring changes.
    /// Shadow bracketing is evaluated at replay time inside the recorded
    /// bodies, in the same order as the eager path.
    pub fn record<'a>(
        self,
        g: &mut GraphBuilder<'a>,
        mesh: Option<&'a ColoredMesh>,
        body: impl Fn(usize) + Send + Sync + 'a,
    ) {
        let passes = self.passes(mesh);
        let fraction = 1.0 / passes as f64;
        let kernel = self.pass_kernel(fraction);
        metrics::registry().record_labelled(
            "op2.bytes_per_wave",
            scheme_label(self.scheme),
            self.bytes_per_wave(64.0),
        );
        let scheme = self.scheme;
        let lp = Arc::new(self);
        let body = Arc::new(body);

        match scheme {
            Scheme::Atomics => {
                let lp = Arc::clone(&lp);
                let body = Arc::clone(&body);
                // Indirect loops have anonymous args: the meta is opaque
                // (no dat-level dataflow), but carries the scheme label
                // for the per-platform legality lint.
                let meta = LaunchMeta::opaque().with_scheme(scheme_label(scheme));
                g.launch_with_meta(&kernel, meta, move |executes| {
                    let execute = executes && mesh.is_some();
                    let shadowing = shadow::shadow_on() && execute;
                    if shadowing {
                        lp.begin_shadow_loop(mesh.unwrap());
                    }
                    if execute {
                        let n = mesh.unwrap().mesh.n_edges();
                        global_pool().for_range(n, EXEC_CHUNK, |lo, hi| {
                            shadow::begin_unit();
                            for e in lo..hi {
                                body(e);
                            }
                            shadow::end_unit();
                        });
                    }
                    if shadowing {
                        shadow::end_loop();
                    }
                });
            }
            Scheme::GlobalColor => {
                for pass in 0..passes {
                    let lp = Arc::clone(&lp);
                    let body = Arc::clone(&body);
                    g.launch(&kernel, move |executes| {
                        let execute = executes && mesh.is_some();
                        let shadowing = shadow::shadow_on() && execute;
                        if shadowing {
                            if pass == 0 {
                                lp.begin_shadow_loop(mesh.unwrap());
                            } else {
                                shadow::next_phase();
                            }
                        }
                        if execute {
                            let coloring = mesh
                                .unwrap()
                                .global
                                .as_ref()
                                .expect("ColoredMesh::prepare builds the global colouring");
                            let group = &coloring.by_color[pass];
                            global_pool().for_range(group.len(), EXEC_CHUNK, |lo, hi| {
                                shadow::begin_unit();
                                for &e in &group[lo..hi] {
                                    body(e as usize);
                                }
                                shadow::end_unit();
                            });
                        }
                        if shadowing && pass == passes - 1 {
                            shadow::end_loop();
                        }
                    });
                }
            }
            Scheme::HierColor => {
                for pass in 0..passes {
                    let lp = Arc::clone(&lp);
                    let body = Arc::clone(&body);
                    g.launch(&kernel, move |executes| {
                        let execute = executes && mesh.is_some();
                        let shadowing = shadow::shadow_on() && execute;
                        if shadowing {
                            if pass == 0 {
                                lp.begin_shadow_loop(mesh.unwrap());
                            } else {
                                shadow::next_phase();
                            }
                        }
                        if execute {
                            let colored = mesh.unwrap();
                            let hier = colored
                                .hier
                                .as_ref()
                                .expect("ColoredMesh::prepare builds the hierarchical colouring");
                            let n_edges = colored.mesh.n_edges();
                            let group = &hier.blocks_by_color[pass];
                            global_pool().run_region(group.len(), |_lane, gi| {
                                let (lo, hi) = hier.block_range(group[gi] as usize, n_edges);
                                shadow::begin_unit();
                                for e in lo..hi {
                                    body(e);
                                }
                                shadow::end_unit();
                            });
                        }
                        if shadowing && pass == passes - 1 {
                            shadow::end_loop();
                        }
                    });
                }
            }
        }
    }
}

/// A mesh together with the colourings the schemes need.
#[derive(Debug, Clone)]
pub struct ColoredMesh {
    pub mesh: Mesh,
    pub global: Option<GlobalColoring>,
    pub hier: Option<HierColoring>,
}

impl ColoredMesh {
    /// Build the colourings needed by `scheme`.
    pub fn prepare(mesh: Mesh, scheme: Scheme, block_size: usize) -> ColoredMesh {
        let global = (scheme == Scheme::GlobalColor).then(|| GlobalColoring::build(&mesh.edges));
        let hier =
            (scheme == Scheme::HierColor).then(|| HierColoring::build(&mesh.edges, block_size));
        // Colour-count histograms per level for the scheduler-health
        // dashboard: a level whose colour count drifts up is a mesh
        // whose conflict structure is degrading.
        let reg = metrics::registry();
        if let Some(gc) = &global {
            reg.record_labelled("op2.colors", "global", gc.n_colors() as f64);
        }
        if let Some(hc) = &hier {
            reg.record_labelled("op2.colors", "hier-block", hc.n_colors() as f64);
            reg.record_labelled("op2.colors", "hier-intra", hc.max_intra_colors as f64);
        }
        ColoredMesh { mesh, global, hier }
    }
}

/// A direct loop over a set (vertex updates, residuals, reductions).
#[derive(Debug, Clone)]
pub struct VertexLoop {
    name: String,
    set_size: usize,
    precision: Precision,
    bytes: f64,
    flops_pp: f64,
    transc_pp: f64,
    defects: Vec<String>,
}

impl VertexLoop {
    /// Start a direct loop over `set_size` elements.
    pub fn new(name: &str, set_size: usize, precision: Precision) -> Self {
        VertexLoop {
            name: name.to_owned(),
            set_size,
            precision,
            bytes: 0.0,
            flops_pp: 0.0,
            transc_pp: 0.0,
            defects: Vec::new(),
        }
    }

    /// As [`EdgeLoop`]: saturate a zero-dim arg and record the defect.
    fn check_dim(&mut self, dim: usize, what: &str) -> usize {
        if dim == 0 {
            self.defects
                .push(format!("{}: {what}(0) declares no components; saturated to 1 so the footprint is not silently zero", self.name));
            1
        } else {
            dim
        }
    }

    /// A `dim`-component dataset read or written once.
    pub fn arg(mut self, dim: usize) -> Self {
        let dim = self.check_dim(dim, "arg");
        self.bytes += self.set_size as f64 * dim as f64 * self.precision.bytes();
        self
    }

    /// A `dim`-component read-write dataset (counted twice).
    pub fn arg_rw(mut self, dim: usize) -> Self {
        let dim = self.check_dim(dim, "arg_rw");
        self.bytes += 2.0 * self.set_size as f64 * dim as f64 * self.precision.bytes();
        self
    }

    /// Declaration defects the builder saturated over.
    pub fn defects(&self) -> &[String] {
        &self.defects
    }

    /// FLOPs per element.
    pub fn flops(mut self, per_elem: f64) -> Self {
        self.flops_pp = per_elem;
        self
    }

    /// Transcendentals per element.
    pub fn transcendentals(mut self, per_elem: f64) -> Self {
        self.transc_pp = per_elem;
        self
    }

    fn kernel(&self, reductions: usize) -> Kernel {
        Kernel::new(KernelFootprint {
            name: self.name.clone(),
            items: self.set_size as u64,
            effective_bytes: self.bytes,
            flops: self.flops_pp * self.set_size as f64,
            transcendentals: self.transc_pp * self.set_size as f64,
            precision: self.precision,
            access: AccessProfile::Streamed,
            atomics: None,
            reductions,
        })
    }

    /// Open the shadow trace for a direct loop.
    fn begin_shadow_loop(&self) {
        shadow::begin_loop(shadow::LoopDecl {
            kernel: self.name.clone(),
            structured: false,
            lo: [0; 3],
            hi: [0; 3],
            args: Vec::new(),
            flops_pp: self.flops_pp,
            transc_pp: self.transc_pp,
            scheme: None,
        });
        for d in &self.defects {
            shadow::note(shadow::NoteKind::DeclDefect, d.clone());
        }
    }

    /// Price and run the loop body over element chunks.
    pub fn run(self, session: &Session, body: impl Fn(usize, usize) + Sync) {
        let n = self.set_size;
        let kernel = self.kernel(0);
        let shadowing = shadow::shadow_on() && session.executes();
        if shadowing {
            self.begin_shadow_loop();
        }
        session.launch(&kernel, || {
            if session.executes() {
                global_pool().for_range(n, EXEC_CHUNK, |lo, hi| {
                    shadow::begin_unit();
                    body(lo, hi);
                    shadow::end_unit();
                });
            }
        });
        if shadowing {
            shadow::end_loop();
        }
    }

    /// Price and run with a deterministic tree reduction.
    pub fn run_reduce<A>(
        self,
        session: &Session,
        identity: A,
        combine: impl Fn(A, A) -> A + Sync,
        body: impl Fn(usize, usize) -> A + Sync,
    ) -> A
    where
        A: Send + Clone,
    {
        let n = self.set_size;
        let kernel = self.kernel(1);
        let bytes = kernel.footprint.effective_bytes;
        let shadowing = shadow::shadow_on() && session.executes();
        if shadowing {
            self.begin_shadow_loop();
        }
        let name = self.name;
        let out = session.launch(&kernel, || {
            if !session.executes() {
                return identity.clone();
            }
            let span = telemetry::SpanTimer::start();
            let chunks = n.div_ceil(EXEC_CHUNK);
            let mut partials: Vec<Option<A>> = (0..chunks).map(|_| None).collect();
            let slots = DisjointSlices::new(&mut partials);
            global_pool().run_region(chunks, |_lane, c| {
                let lo = c * EXEC_CHUNK;
                let hi = (lo + EXEC_CHUNK).min(n);
                shadow::begin_unit();
                let partial = body(lo, hi);
                shadow::end_unit();
                // SAFETY: each chunk index visited exactly once.
                unsafe { slots.write(c, Some(partial)) };
            });
            let out = tree_combine(
                partials.into_iter().map(|p| p.expect("chunk ran")),
                identity,
                &combine,
            );
            if let Some(t) = span {
                let label: std::sync::Arc<str> = format!("{name}.reduce").into();
                t.finish(telemetry::SpanKind::Reduce, label, chunks as u64, bytes);
            }
            out
        });
        if shadowing {
            shadow::end_loop();
        }
        out
    }

    /// Record this loop into a launch graph; the replay mirror of
    /// [`VertexLoop::run`].
    pub fn record<'a>(self, g: &mut GraphBuilder<'a>, body: impl Fn(usize, usize) + Sync + 'a) {
        let n = self.set_size;
        let kernel = self.kernel(0);
        g.launch(&kernel, move |executes| {
            let shadowing = shadow::shadow_on() && executes;
            if shadowing {
                self.begin_shadow_loop();
            }
            if executes {
                global_pool().for_range(n, EXEC_CHUNK, |lo, hi| {
                    shadow::begin_unit();
                    body(lo, hi);
                    shadow::end_unit();
                });
            }
            if shadowing {
                shadow::end_loop();
            }
        });
    }

    /// Record a reducing loop into a launch graph; the replay mirror of
    /// [`VertexLoop::run_reduce`]. The reduction result is delivered to
    /// `sink` on every replay (the identity when the session does not
    /// execute, exactly as the eager path returns it).
    pub fn record_reduce<'a, A>(
        self,
        g: &mut GraphBuilder<'a>,
        identity: A,
        combine: impl Fn(A, A) -> A + Sync + 'a,
        body: impl Fn(usize, usize) -> A + Sync + 'a,
        sink: impl Fn(A) + Sync + 'a,
    ) where
        A: Send + Sync + Clone + 'a,
    {
        let n = self.set_size;
        let kernel = self.kernel(1);
        let bytes = kernel.footprint.effective_bytes;
        g.launch(&kernel, move |executes| {
            let shadowing = shadow::shadow_on() && executes;
            if shadowing {
                self.begin_shadow_loop();
            }
            if !executes {
                sink(identity.clone());
            } else {
                let span = telemetry::SpanTimer::start();
                let chunks = n.div_ceil(EXEC_CHUNK);
                let mut partials: Vec<Option<A>> = (0..chunks).map(|_| None).collect();
                let slots = DisjointSlices::new(&mut partials);
                global_pool().run_region(chunks, |_lane, c| {
                    let lo = c * EXEC_CHUNK;
                    let hi = (lo + EXEC_CHUNK).min(n);
                    shadow::begin_unit();
                    let partial = body(lo, hi);
                    shadow::end_unit();
                    // SAFETY: each chunk index visited exactly once.
                    unsafe { slots.write(c, Some(partial)) };
                });
                let out = tree_combine(
                    partials.into_iter().map(|p| p.expect("chunk ran")),
                    identity.clone(),
                    &combine,
                );
                if let Some(t) = span {
                    let label: std::sync::Arc<str> = format!("{}.reduce", self.name).into();
                    t.finish(telemetry::SpanKind::Reduce, label, chunks as u64, bytes);
                }
                sink(out);
            }
            if shadowing {
                shadow::end_loop();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dat::DatU;
    use crate::mesh::Ordering;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    fn session() -> Session {
        Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("op2-test"))
            .unwrap()
    }

    /// Run the canonical "scatter 1 to both endpoints" kernel under a
    /// scheme and return the per-vertex counts (= vertex degrees).
    fn degree_under(scheme: Scheme) -> Vec<f64> {
        let s = session();
        let mesh = Mesh::grid(8, 8, 4, Ordering::Natural);
        let n_v = mesh.n_vertices;
        let stats = mesh.stats();
        let colored = ColoredMesh::prepare(mesh, scheme, 64);
        let mut deg = DatU::<f64>::zeroed("deg", n_v, 1);
        let lp = EdgeLoop::new("degree", stats, scheme, Precision::F64)
            .vertex_inc(1)
            .flops(2.0)
            .block_size(64);
        let acc = deg.accum(lp.uses_atomics());
        let edges = colored.mesh.edges.clone();
        lp.run(&s, Some(&colored), |e| {
            acc.add(edges.at(e, 0), 0, 1.0);
            acc.add(edges.at(e, 1), 0, 1.0);
        });
        deg.host().to_vec()
    }

    #[test]
    fn all_three_schemes_compute_identical_degrees() {
        let a = degree_under(Scheme::Atomics);
        let g = degree_under(Scheme::GlobalColor);
        let h = degree_under(Scheme::HierColor);
        assert_eq!(a, g, "atomics vs global colouring");
        assert_eq!(g, h, "global vs hierarchical colouring");
        // Spot-check: an interior vertex of an 8×8×4 grid has degree 6.
        let total: f64 = a.iter().sum();
        let mesh = Mesh::grid(8, 8, 4, Ordering::Natural);
        assert_eq!(total, 2.0 * mesh.n_edges() as f64);
    }

    #[test]
    fn colouring_schemes_issue_multiple_passes() {
        let s = session();
        let mesh = Mesh::grid(8, 8, 4, Ordering::Natural);
        let stats = mesh.stats();
        let colored = ColoredMesh::prepare(mesh, Scheme::GlobalColor, 64);
        EdgeLoop::new("nop", stats, Scheme::GlobalColor, Precision::F64)
            .vertex_inc(1)
            .run(&s, Some(&colored), |_| {});
        assert!(
            s.records().len() >= 2,
            "global colouring runs one launch per colour"
        );
    }

    #[test]
    fn atomics_scheme_reports_atomic_updates() {
        let stats = MeshStats {
            n_vertices: 1000,
            n_edges: 3000,
            locality: 0.9,
        };
        let k = EdgeLoop::new("flux", stats, Scheme::Atomics, Precision::F64)
            .vertex_inc(5)
            .pass_kernel(1.0);
        let atomics = k.footprint.atomics.expect("atomics profile");
        assert_eq!(atomics.updates, 3000 * 10);
        let k = EdgeLoop::new("flux", stats, Scheme::HierColor, Precision::F64)
            .vertex_inc(5)
            .pass_kernel(0.25);
        assert!(k.footprint.atomics.is_none());
    }

    #[test]
    fn effective_bytes_include_map_tables() {
        let stats = MeshStats {
            n_vertices: 100,
            n_edges: 300,
            locality: 1.0,
        };
        let k = EdgeLoop::new("k", stats, Scheme::Atomics, Precision::F64)
            .edge_read(1)
            .vertex_read(2)
            .vertex_inc(1)
            .pass_kernel(1.0);
        // edges 300*8 + vertices read 100*2*8 + inc 2*100*8 + map 300*2*4.
        let expect = 300.0 * 8.0 + 1600.0 + 1600.0 + 2400.0;
        assert!((k.footprint.effective_bytes - expect).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_wave_reproduces_the_papers_profiler_ordering() {
        // §4.3 on the MI250X (64-byte lines): atomics 3 500 B/wave,
        // hierarchical 8 600, global colouring 39 000.
        let stats = MeshStats::rotor37();
        let bpw = |s: Scheme| {
            EdgeLoop::new("flux", stats, s, Precision::F64)
                .vertex_read(5)
                .vertex_inc(5)
                .bytes_per_wave(64.0)
        };
        let atomics = bpw(Scheme::Atomics);
        let hier = bpw(Scheme::HierColor);
        let global = bpw(Scheme::GlobalColor);
        assert!(atomics < hier && hier < global, "{atomics} {hier} {global}");
        // Within a factor ~2 of the paper's measured values.
        assert!((5_000.0..25_000.0).contains(&atomics), "atomics {atomics}");
        assert!((10_000.0..40_000.0).contains(&hier), "hier {hier}");
        assert!((39_000.0..160_000.0).contains(&global), "global {global}");
        // And the global/atomics ratio matches the paper's ~11x within 2x.
        let ratio = global / atomics;
        assert!((4.0..22.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scheme_locality_ordering_matches_the_papers_profile() {
        let stats = MeshStats {
            n_vertices: 100,
            n_edges: 300,
            locality: 0.9,
        };
        let loc = |s: Scheme| EdgeLoop::new("k", stats, s, Precision::F64).scheme_locality();
        // §4.3 bytes/wave: atomics 3500 (best), hier 8600, global 39000.
        assert!(loc(Scheme::Atomics) > loc(Scheme::HierColor));
        assert!(loc(Scheme::HierColor) > loc(Scheme::GlobalColor));
    }

    #[test]
    fn zero_dim_args_saturate_and_record_a_defect() {
        let stats = MeshStats {
            n_vertices: 100,
            n_edges: 300,
            locality: 1.0,
        };
        let el = EdgeLoop::new("flux", stats, Scheme::Atomics, Precision::F64).vertex_read(0);
        assert_eq!(el.defects().len(), 1);
        assert!(
            el.defects()[0].contains("vertex_read(0)"),
            "{:?}",
            el.defects()
        );
        // Saturated to one component, so the footprint is not zero.
        let k = el.pass_kernel(1.0);
        assert!(k.footprint.effective_bytes > 300.0 * 2.0 * 4.0);

        let vl = VertexLoop::new("update", 100, Precision::F64).arg_rw(0);
        assert_eq!(vl.defects().len(), 1);
        assert!(vl.defects()[0].contains("arg_rw(0)"), "{:?}", vl.defects());
    }

    #[test]
    fn dry_run_prices_without_executing() {
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("op2-dry")
                .dry_run(),
        )
        .unwrap();
        let stats = MeshStats::rotor37();
        let hit = std::sync::atomic::AtomicUsize::new(0);
        EdgeLoop::new("flux", stats, Scheme::Atomics, Precision::F64)
            .vertex_inc(5)
            .flops(100.0)
            .run(&s, None, |_| {
                hit.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        assert_eq!(hit.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert!(s.elapsed() > 0.0);
    }

    #[test]
    fn recorded_edge_loops_replay_bit_identically_under_every_scheme() {
        for scheme in [Scheme::Atomics, Scheme::GlobalColor, Scheme::HierColor] {
            let run_once = |s: &Session, colored: &ColoredMesh, deg: &mut DatU<f64>| {
                let lp = EdgeLoop::new("degree", colored.mesh.stats(), scheme, Precision::F64)
                    .vertex_inc(1)
                    .flops(2.0)
                    .block_size(64);
                let acc = deg.accum(lp.uses_atomics());
                let edges = &colored.mesh.edges;
                lp.run(s, Some(colored), |e| {
                    acc.add(edges.at(e, 0), 0, 1.0);
                    acc.add(edges.at(e, 1), 0, 1.0);
                });
            };

            let mesh = Mesh::grid(6, 6, 3, Ordering::Natural);
            let n_v = mesh.n_vertices;
            let colored = ColoredMesh::prepare(mesh, scheme, 64);

            let eager = session();
            let mut deg_e = DatU::<f64>::zeroed("deg", n_v, 1);
            for _ in 0..3 {
                run_once(&eager, &colored, &mut deg_e);
            }

            let replayed = session();
            let mut deg_r = DatU::<f64>::zeroed("deg", n_v, 1);
            let lp = EdgeLoop::new("degree", colored.mesh.stats(), scheme, Precision::F64)
                .vertex_inc(1)
                .flops(2.0)
                .block_size(64);
            let acc = deg_r.accum(lp.uses_atomics());
            let edges = &colored.mesh.edges;
            let mut g = replayed.record();
            lp.record(&mut g, Some(&colored), |e| {
                acc.add(edges.at(e, 0), 0, 1.0);
                acc.add(edges.at(e, 1), 0, 1.0);
            });
            let graph = g.finish();
            for _ in 0..3 {
                graph.replay(&replayed);
            }
            drop(graph);

            assert_eq!(
                eager.ledger_digest(),
                replayed.ledger_digest(),
                "scheme {scheme:?}: eager and replayed ledgers must be bit-identical"
            );
            assert_eq!(deg_e.host(), deg_r.host(), "scheme {scheme:?}: results");
        }
    }

    #[test]
    fn vertex_loop_runs_and_reduces() {
        let s = session();
        let mut q = DatU::<f64>::zeroed("q", 1000, 1);
        q.fill_with(|e, _| e as f64);
        let r = q.reader();
        let sum = VertexLoop::new("norm", 1000, Precision::F64)
            .arg(1)
            .flops(1.0)
            .run_reduce(
                &s,
                0.0,
                |a, b| a + b,
                |lo, hi| (lo..hi).map(|e| r.at(e, 0)).sum::<f64>(),
            );
        assert_eq!(sum, 999.0 * 1000.0 / 2.0);

        let mut out = DatU::<f64>::zeroed("out", 1000, 1);
        let w = out.writer();
        VertexLoop::new("scale", 1000, Precision::F64)
            .arg(1)
            .arg(1)
            .run(&s, |lo, hi| {
                for e in lo..hi {
                    w.set(e, 0, 2.0 * r.at(e, 0));
                }
            });
        assert_eq!(out.at(10, 0), 20.0);
    }
}
