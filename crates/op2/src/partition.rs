//! Recursive-coordinate-bisection partitioning (the PT-Scotch stand-in).
//!
//! MPI execution of OP2 apps partitions the mesh across ranks with an
//! owner-compute rule; what the performance model needs from the
//! partition is balance (rank loads) and the halo volume (cut edges).

use crate::mesh::Mesh;

/// A vertex partition into `n_parts` parts.
#[derive(Debug, Clone)]
pub struct Partition {
    pub n_parts: usize,
    /// Part of each vertex.
    pub part: Vec<u32>,
}

impl Partition {
    /// Recursive coordinate bisection on vertex coordinates.
    pub fn rcb(mesh: &Mesh, n_parts: usize) -> Partition {
        let n_parts = n_parts.max(1);
        let mut part = vec![0u32; mesh.n_vertices];
        let mut idx: Vec<u32> = (0..mesh.n_vertices as u32).collect();
        rcb_rec(&mesh.coords, &mut idx, 0, n_parts, 0, &mut part);
        Partition { n_parts, part }
    }

    /// Number of edges whose endpoints live in different parts.
    pub fn cut_edges(&self, mesh: &Mesh) -> usize {
        (0..mesh.n_edges())
            .filter(|&e| {
                let a = mesh.edges.at(e, 0);
                let b = mesh.edges.at(e, 1);
                self.part[a] != self.part[b]
            })
            .count()
    }

    /// Vertices per part.
    pub fn loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.n_parts];
        for &p in &self.part {
            loads[p as usize] += 1;
        }
        loads
    }

    /// Load imbalance: max/mean − 1.
    pub fn imbalance(&self) -> f64 {
        let loads = self.loads();
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = self.part.len() as f64 / self.n_parts as f64;
        if mean > 0.0 {
            max / mean - 1.0
        } else {
            0.0
        }
    }
}

/// Recursively split `idx` (vertex ids) into `parts` parts by median
/// bisection along the widest coordinate axis.
fn rcb_rec(
    coords: &[[f32; 3]],
    idx: &mut [u32],
    first_part: usize,
    parts: usize,
    depth: usize,
    out: &mut [u32],
) {
    if parts == 1 || idx.len() <= 1 {
        for &v in idx.iter() {
            out[v as usize] = first_part as u32;
        }
        return;
    }
    // Pick the widest axis (cycling by depth on ties keeps cuts varied).
    let mut best_axis = depth % 3;
    let mut best_span = -1.0f32;
    for a in 0..3 {
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in idx.iter() {
            let x = coords[v as usize][a];
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if hi - lo > best_span {
            best_span = hi - lo;
            best_axis = a;
        }
    }
    let left_parts = parts / 2;
    let split = idx.len() * left_parts / parts;
    idx.select_nth_unstable_by(split.min(idx.len() - 1), |&a, &b| {
        coords[a as usize][best_axis]
            .partial_cmp(&coords[b as usize][best_axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let (left, right) = idx.split_at_mut(split);
    rcb_rec(coords, left, first_part, left_parts, depth + 1, out);
    rcb_rec(
        coords,
        right,
        first_part + left_parts,
        parts - left_parts,
        depth + 1,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Ordering;

    #[test]
    fn partition_is_balanced() {
        let m = Mesh::grid(16, 16, 8, Ordering::Natural);
        for parts in [2usize, 4, 7, 16] {
            let p = Partition::rcb(&m, parts);
            assert!(
                p.imbalance() < 0.05,
                "parts={parts}: imbalance {}",
                p.imbalance()
            );
            assert_eq!(p.loads().iter().sum::<usize>(), m.n_vertices);
        }
    }

    #[test]
    fn rcb_cuts_far_fewer_edges_than_random_assignment() {
        let m = Mesh::grid(16, 16, 16, Ordering::Natural);
        let p = Partition::rcb(&m, 8);
        let rcb_cut = p.cut_edges(&m);
        // Random assignment cuts ~ (1 - 1/8) of edges.
        let random_cut = m.n_edges() * 7 / 8;
        assert!(
            rcb_cut * 4 < random_cut,
            "rcb {rcb_cut} vs random {random_cut}"
        );
    }

    #[test]
    fn single_part_cuts_nothing() {
        let m = Mesh::grid(8, 8, 2, Ordering::Natural);
        let p = Partition::rcb(&m, 1);
        assert_eq!(p.cut_edges(&m), 0);
        assert_eq!(p.imbalance(), 0.0);
    }

    #[test]
    fn parts_are_contiguous_in_space() {
        // Every vertex's part id must be within range.
        let m = Mesh::grid(10, 10, 1, Ordering::Shuffled(1));
        let p = Partition::rcb(&m, 5);
        assert!(p.part.iter().all(|&x| (x as usize) < 5));
    }
}
