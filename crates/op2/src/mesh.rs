//! Synthetic unstructured meshes (the NASA Rotor37 stand-in) and the
//! multigrid hierarchy MG-CFD runs on.
//!
//! The paper's MG-CFD case is an 8M-vertex turbomachinery mesh. Its
//! performance-relevant properties are the set sizes, the edge→vertex
//! arity, the ordering quality (which the atomics scheme depends on),
//! and the coarsening ratio between multigrid levels. We generate a
//! structured-connectivity mesh treated as fully unstructured (vertex
//! coordinates and mapping tables only), with controllable ordering.

use crate::map::Map;

/// Seeded xorshift64* generator driving the deterministic shuffle below
/// (replaces an external RNG crate; the exact stream only needs to be
/// stable across runs, not match any published generator).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift((z ^ (z >> 31)).max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Fisher–Yates shuffle with the seeded generator above.
fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = XorShift::new(seed);
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Vertex/edge numbering quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Lexicographic numbering — the "good ordering" the paper's
    /// atomics variant exploits (adjacent edges touch adjacent vertices).
    Natural,
    /// Randomly permuted numbering (ablation: destroys locality).
    Shuffled(u64),
}

/// An unstructured mesh: an edge→vertex map plus coordinates.
#[derive(Debug, Clone)]
pub struct Mesh {
    pub n_vertices: usize,
    /// Edge → 2 vertices.
    pub edges: Map,
    /// Vertex coordinates (for the RCB partitioner).
    pub coords: Vec<[f32; 3]>,
}

impl Mesh {
    /// A hexahedral grid of `ni × nj × nk` vertices, connected along the
    /// three axes, treated as unstructured.
    pub fn grid(ni: usize, nj: usize, nk: usize, ordering: Ordering) -> Mesh {
        assert!(ni >= 2 && nj >= 2 && nk >= 1);
        let n_vertices = ni * nj * nk;

        // Vertex permutation implementing the ordering.
        let perm: Vec<u32> = match ordering {
            Ordering::Natural => (0..n_vertices as u32).collect(),
            Ordering::Shuffled(seed) => {
                let mut p: Vec<u32> = (0..n_vertices as u32).collect();
                seeded_shuffle(&mut p, seed);
                p
            }
        };

        let vid = |i: usize, j: usize, k: usize| perm[(k * nj + j) * ni + i];
        let mut table: Vec<u32> = Vec::new();
        let mut coords = vec![[0.0f32; 3]; n_vertices];
        for k in 0..nk {
            for j in 0..nj {
                for i in 0..ni {
                    let v = vid(i, j, k) as usize;
                    coords[v] = [i as f32, j as f32, k as f32];
                    if i + 1 < ni {
                        table.extend_from_slice(&[vid(i, j, k), vid(i + 1, j, k)]);
                    }
                    if j + 1 < nj {
                        table.extend_from_slice(&[vid(i, j, k), vid(i, j + 1, k)]);
                    }
                    if k + 1 < nk {
                        table.extend_from_slice(&[vid(i, j, k), vid(i, j, k + 1)]);
                    }
                }
            }
        }
        let n_edges = table.len() / 2;
        Mesh {
            n_vertices,
            edges: Map::new("edge2vertex", n_edges, n_vertices, 2, table),
            coords,
        }
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.from_size()
    }

    /// Build the cell→vertex map of the underlying hex grid (arity 8).
    /// Requires a `Natural`-ordered mesh of known grid dims; used by
    /// cell-based kernels (volumes, gradients) and to exercise
    /// higher-arity indirection in the DSL.
    pub fn hex_cells(ni: usize, nj: usize, nk: usize) -> Map {
        assert!(ni >= 2 && nj >= 2 && nk >= 2);
        let vid = |i: usize, j: usize, k: usize| ((k * nj + j) * ni + i) as u32;
        let mut table = Vec::with_capacity((ni - 1) * (nj - 1) * (nk - 1) * 8);
        for k in 0..nk - 1 {
            for j in 0..nj - 1 {
                for i in 0..ni - 1 {
                    for (di, dj, dk) in [
                        (0, 0, 0),
                        (1, 0, 0),
                        (0, 1, 0),
                        (1, 1, 0),
                        (0, 0, 1),
                        (1, 0, 1),
                        (0, 1, 1),
                        (1, 1, 1),
                    ] {
                        table.push(vid(i + di, j + dj, k + dk));
                    }
                }
            }
        }
        let n_cells = table.len() / 8;
        Map::new("cell2vertex", n_cells, ni * nj * nk, 8, table)
    }

    /// Size/locality summary used for analytic (dry-run) pricing.
    pub fn stats(&self) -> MeshStats {
        MeshStats {
            n_vertices: self.n_vertices,
            n_edges: self.n_edges(),
            locality: self.edges.locality(),
        }
    }
}

/// Sizes and locality of a mesh — all the performance model needs.
#[derive(Debug, Clone, Copy)]
pub struct MeshStats {
    pub n_vertices: usize,
    pub n_edges: usize,
    /// Ordering-locality score in [0, 1] (see [`Map::locality`]).
    pub locality: f64,
}

impl MeshStats {
    /// The paper's Rotor37 case: 8M vertices, well ordered. Edge count
    /// follows the ~3 edges/vertex of a hex mesh.
    pub fn rotor37() -> MeshStats {
        MeshStats {
            n_vertices: 8_000_000,
            n_edges: 24_000_000,
            locality: 0.9,
        }
    }

    /// Estimated edges cut by an `ranks`-way balanced partition: each
    /// part's surface scales as (V/R)^(2/3) with ~3 edges per surface
    /// vertex (hex connectivity), counted once per cut.
    pub fn estimated_cut_edges(&self, ranks: usize) -> usize {
        if ranks <= 1 {
            return 0;
        }
        let per_part = self.n_vertices as f64 / ranks as f64;
        (ranks as f64 * 3.0 * per_part.powf(2.0 / 3.0) / 2.0) as usize
    }

    /// Coarsen by a factor (multigrid level construction).
    pub fn coarsen(&self, factor: usize) -> MeshStats {
        MeshStats {
            n_vertices: (self.n_vertices / factor).max(1),
            n_edges: (self.n_edges / factor).max(1),
            locality: self.locality,
        }
    }
}

/// A multigrid hierarchy: level 0 is finest; each level knows its mesh
/// stats, and optionally holds a real mesh for functional execution.
#[derive(Debug, Clone)]
pub struct MgHierarchy {
    pub levels: Vec<MeshStats>,
    pub meshes: Option<Vec<Mesh>>,
}

impl MgHierarchy {
    /// Analytic hierarchy from a finest-level spec (dry runs).
    pub fn analytic(finest: MeshStats, n_levels: usize) -> MgHierarchy {
        // The MG-CFD proxy coarsens roughly 8× (2× per dimension).
        let levels = (0..n_levels.max(1))
            .map(|l| finest.coarsen(8usize.pow(l as u32)))
            .collect();
        MgHierarchy {
            levels,
            meshes: None,
        }
    }

    /// Real meshes (functional runs) built by grid coarsening.
    pub fn build(ni: usize, nj: usize, nk: usize, n_levels: usize, ordering: Ordering) -> Self {
        let mut meshes = Vec::new();
        let mut levels = Vec::new();
        let (mut i, mut j, mut k) = (ni, nj, nk);
        for _ in 0..n_levels.max(1) {
            let m = Mesh::grid(i.max(2), j.max(2), k.max(1), ordering);
            levels.push(m.stats());
            meshes.push(m);
            i /= 2;
            j /= 2;
            k = (k / 2).max(1);
        }
        MgHierarchy {
            levels,
            meshes: Some(meshes),
        }
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_mesh_counts() {
        let m = Mesh::grid(4, 4, 4, Ordering::Natural);
        assert_eq!(m.n_vertices, 64);
        // 3 * n*n*(n-1) axis edges.
        assert_eq!(m.n_edges(), 3 * 4 * 4 * 3);
        assert_eq!(m.coords.len(), 64);
    }

    #[test]
    fn natural_ordering_has_high_locality_shuffled_low() {
        let good = Mesh::grid(16, 16, 8, Ordering::Natural);
        let bad = Mesh::grid(16, 16, 8, Ordering::Shuffled(7));
        // Natural ordering turns gathers into sequential streams (~1.0).
        // Shuffled meshes keep only the same-source-vertex temporal reuse
        // (~0.5): the spatial half of the locality is destroyed.
        assert!(good.stats().locality > 0.95, "{}", good.stats().locality);
        assert!(bad.stats().locality < 0.65, "{}", bad.stats().locality);
        assert!(good.stats().locality > bad.stats().locality + 0.3);
    }

    #[test]
    fn rotor37_stats_match_the_paper() {
        let s = MeshStats::rotor37();
        assert_eq!(s.n_vertices, 8_000_000);
        assert!(s.n_edges as f64 / s.n_vertices as f64 > 2.5);
    }

    #[test]
    fn hex_cell_map_has_correct_shape_and_valid_targets() {
        let cells = Mesh::hex_cells(4, 4, 4);
        assert_eq!(cells.from_size(), 27);
        assert_eq!(cells.arity(), 8);
        assert_eq!(cells.to_size(), 64);
        for c in 0..cells.from_size() {
            let row = cells.row(c);
            let mut uniq = row.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 8, "cell {c} repeats vertices");
        }
    }

    #[test]
    fn hex_cells_can_be_coloured() {
        // Adjacent cells share up to 4 vertices; greedy colouring must
        // stay under the 64-colour budget and be valid.
        let cells = Mesh::hex_cells(6, 6, 4);
        let c = crate::color::GlobalColoring::build(&cells);
        assert!(c.is_valid(&cells));
        assert!(c.n_colors() <= 16, "{} colours", c.n_colors());
    }

    #[test]
    fn cut_edge_estimate_scales_sublinearly() {
        let s = MeshStats::rotor37();
        assert_eq!(s.estimated_cut_edges(1), 0);
        let c2 = s.estimated_cut_edges(2);
        let c64 = s.estimated_cut_edges(64);
        assert!(c2 > 0);
        assert!(c64 > c2, "more ranks cut more edges");
        // But far sublinearly: 32x the ranks is ~32^(1/3) = 3.2x the cut.
        assert!((c64 as f64) < 8.0 * c2 as f64);
        // And the cut is a small fraction of all edges.
        assert!(c64 < s.n_edges / 4);
    }

    #[test]
    fn analytic_hierarchy_coarsens_8x() {
        let h = MgHierarchy::analytic(MeshStats::rotor37(), 4);
        assert_eq!(h.n_levels(), 4);
        assert_eq!(h.levels[1].n_vertices, 1_000_000);
        assert_eq!(h.levels[3].n_vertices, 8_000_000 / 512);
        assert!(h.meshes.is_none());
    }

    #[test]
    fn built_hierarchy_has_real_meshes() {
        let h = MgHierarchy::build(8, 8, 4, 3, Ordering::Natural);
        let meshes = h.meshes.as_ref().unwrap();
        assert_eq!(meshes.len(), 3);
        assert!(meshes[0].n_vertices > meshes[1].n_vertices);
        assert!(meshes[1].n_vertices > meshes[2].n_vertices);
    }

    #[test]
    fn edges_reference_valid_vertices() {
        let m = Mesh::grid(5, 3, 2, Ordering::Shuffled(3));
        for e in 0..m.n_edges() {
            for &t in m.edges.row(e) {
                assert!((t as usize) < m.n_vertices);
            }
        }
    }
}
