//! Mapping tables between sets.

/// A fixed-arity mapping from one set to another (e.g. edge → 2 vertices).
#[derive(Debug, Clone)]
pub struct Map {
    name: String,
    from_size: usize,
    to_size: usize,
    arity: usize,
    /// Row-major table: entry `e * arity + a`.
    table: Vec<u32>,
}

impl Map {
    /// Build a map; panics if the table shape or entries are invalid.
    pub fn new(
        name: &str,
        from_size: usize,
        to_size: usize,
        arity: usize,
        table: Vec<u32>,
    ) -> Self {
        assert_eq!(table.len(), from_size * arity, "map table shape mismatch");
        debug_assert!(
            table.iter().all(|&t| (t as usize) < to_size),
            "map entry out of range"
        );
        Map {
            name: name.to_owned(),
            from_size,
            to_size,
            arity,
            table,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn from_size(&self) -> usize {
        self.from_size
    }

    pub fn to_size(&self) -> usize {
        self.to_size
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The `a`-th target of element `e`.
    #[inline]
    pub fn at(&self, e: usize, a: usize) -> usize {
        self.table[e * self.arity + a] as usize
    }

    /// All targets of element `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[u32] {
        &self.table[e * self.arity..(e + 1) * self.arity]
    }

    /// Bytes of this table (part of the paper's effective-bytes rule).
    pub fn bytes(&self) -> f64 {
        (self.table.len() * std::mem::size_of::<u32>()) as f64
    }

    /// Ordering-locality score in [0, 1]: the fraction of map targets
    /// that continue a *recent access stream* — i.e. lie within one cache
    /// line (8 entries) of a target gathered in the previous few
    /// elements. A renumbered mesh turns its gathers into a handful of
    /// sequential streams and scores near 1; a shuffled mesh gathers
    /// randomly and scores near 0.
    pub fn locality(&self) -> f64 {
        if self.from_size < 2 {
            return 1.0;
        }
        const WINDOW_ELEMS: usize = 4;
        let window = WINDOW_ELEMS * self.arity;
        let mut recent: Vec<i64> = Vec::with_capacity(window);
        let mut close = 0usize;
        let mut total = 0usize;
        for e in 0..self.from_size {
            for a in 0..self.arity {
                let t = self.at(e, a) as i64;
                if e > 0 {
                    total += 1;
                    if recent.iter().any(|&r| (r - t).abs() <= 8) {
                        close += 1;
                    }
                }
                if recent.len() == window {
                    recent.remove(0);
                }
                recent.push(t);
            }
        }
        if total == 0 {
            1.0
        } else {
            close as f64 / total as f64
        }
    }

    /// Maximum number of from-elements touching a single target (the
    /// degree bound that controls colour counts).
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0u32; self.to_size];
        for &t in &self.table {
            deg[t as usize] += 1;
        }
        deg.into_iter().max().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_map(n: usize) -> Map {
        // Edges of a path graph: edge e connects vertices e and e+1.
        let table: Vec<u32> = (0..n).flat_map(|e| [e as u32, e as u32 + 1]).collect();
        Map::new("edge2v", n, n + 1, 2, table)
    }

    #[test]
    fn accessors() {
        let m = path_map(10);
        assert_eq!(m.from_size(), 10);
        assert_eq!(m.to_size(), 11);
        assert_eq!(m.arity(), 2);
        assert_eq!(m.at(3, 0), 3);
        assert_eq!(m.at(3, 1), 4);
        assert_eq!(m.row(5), &[5, 6]);
        assert_eq!(m.bytes(), 80.0);
    }

    #[test]
    fn locality_distinguishes_ordered_from_shuffled() {
        let ordered = path_map(1000);
        assert!(ordered.locality() > 0.95);

        // Shuffle edge order deterministically.
        let mut table = Vec::with_capacity(2000);
        let mut idx: Vec<usize> = (0..1000).collect();
        // Simple LCG shuffle.
        let mut s = 12345u64;
        for i in (1..idx.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        for e in idx {
            table.extend_from_slice(&[e as u32, e as u32 + 1]);
        }
        let shuffled = Map::new("edge2v", 1000, 1001, 2, table);
        // Path edges keep intra-edge line sharing (the (e, e+1) pair),
        // so a shuffled order floors near 0.5 rather than 0.
        assert!(shuffled.locality() < 0.7);
        assert!(ordered.locality() > shuffled.locality() + 0.25);
    }

    #[test]
    fn max_degree_on_a_path_is_two() {
        assert_eq!(path_map(10).max_degree(), 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_table_shape_panics() {
        let _ = Map::new("bad", 3, 4, 2, vec![0, 1, 2]);
    }
}
