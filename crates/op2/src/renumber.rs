//! Mesh renumbering: reverse Cuthill–McKee (RCM).
//!
//! The paper's atomics results depend on "a good ordering of the mesh"
//! (§4.3). Real OP2 deployments renumber meshes with PT-Scotch/GPS-style
//! bandwidth-reducing permutations; we provide RCM, which restores
//! locality to arbitrarily scrambled meshes — and makes the ordering an
//! ablatable axis (see the `ablation_ordering` bench).

use crate::map::Map;
use crate::mesh::Mesh;

/// Compute a reverse Cuthill–McKee permutation of the *target* set of a
/// map (vertices, for an edge→vertex map). `perm[old] = new`.
pub fn rcm_permutation(map: &Map) -> Vec<u32> {
    let n = map.to_size();
    // Build adjacency from the map (targets sharing an element are
    // neighbours).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in 0..map.from_size() {
        let row = map.row(e);
        for (i, &a) in row.iter().enumerate() {
            for &b in &row[i + 1..] {
                if a != b {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
    }
    for list in adj.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }

    let degree = |v: usize| adj[v].len();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);

    // BFS from a minimum-degree vertex of each component, neighbours in
    // increasing-degree order (classic CM), reversed at the end.
    while let Some(start) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree(v)) {
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start as u32]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<u32> = adj[v as usize]
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            nbrs.sort_unstable_by_key(|&u| degree(u as usize));
            for u in nbrs {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();

    // order[k] = old id placed at position k  ⇒  perm[old] = k.
    let mut perm = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    perm
}

/// Apply an RCM renumbering to a mesh: permutes vertices, rewrites the
/// edge table, and sorts edges by their (new) first endpoint so the
/// iteration order follows the numbering.
pub fn renumber_mesh(mesh: &Mesh) -> Mesh {
    let perm = rcm_permutation(&mesh.edges);
    let n_vertices = mesh.n_vertices;

    let mut coords = vec![[0.0f32; 3]; n_vertices];
    for old in 0..n_vertices {
        coords[perm[old] as usize] = mesh.coords[old];
    }

    let mut edges: Vec<[u32; 2]> = (0..mesh.n_edges())
        .map(|e| {
            let a = perm[mesh.edges.at(e, 0)];
            let b = perm[mesh.edges.at(e, 1)];
            [a.min(b), a.max(b)]
        })
        .collect();
    edges.sort_unstable();

    let table: Vec<u32> = edges.into_iter().flatten().collect();
    Mesh {
        n_vertices,
        edges: Map::new("edge2vertex_rcm", table.len() / 2, n_vertices, 2, table),
        coords,
    }
}

/// Graph bandwidth of a map: max |new(a) − new(b)| over rows — the
/// quantity RCM minimises.
pub fn bandwidth(map: &Map) -> usize {
    (0..map.from_size())
        .map(|e| {
            let row = map.row(e);
            let max = row.iter().max().copied().unwrap_or(0) as i64;
            let min = row.iter().min().copied().unwrap_or(0) as i64;
            (max - min) as usize
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Ordering;

    #[test]
    fn rcm_is_a_permutation() {
        let mesh = Mesh::grid(8, 8, 4, Ordering::Shuffled(3));
        let perm = rcm_permutation(&mesh.edges);
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(!seen[p as usize], "duplicate target {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_restores_locality_of_a_scrambled_mesh() {
        let scrambled = Mesh::grid(12, 12, 6, Ordering::Shuffled(42));
        let renumbered = renumber_mesh(&scrambled);
        let before = scrambled.stats().locality;
        let after = renumbered.stats().locality;
        assert!(
            after > before + 0.2,
            "RCM must improve locality: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn rcm_reduces_graph_bandwidth() {
        let scrambled = Mesh::grid(12, 12, 6, Ordering::Shuffled(7));
        let renumbered = renumber_mesh(&scrambled);
        let before = bandwidth(&scrambled.edges);
        let after = bandwidth(&renumbered.edges);
        assert!(
            after * 3 < before,
            "bandwidth must drop: {before} -> {after}"
        );
    }

    #[test]
    fn renumbered_mesh_preserves_topology() {
        let mesh = Mesh::grid(6, 6, 3, Ordering::Shuffled(11));
        let renum = renumber_mesh(&mesh);
        assert_eq!(renum.n_vertices, mesh.n_vertices);
        assert_eq!(renum.n_edges(), mesh.n_edges());
        // Degree multiset must be unchanged.
        let degrees = |m: &Mesh| {
            let mut d = vec![0usize; m.n_vertices];
            for e in 0..m.n_edges() {
                d[m.edges.at(e, 0)] += 1;
                d[m.edges.at(e, 1)] += 1;
            }
            d.sort_unstable();
            d
        };
        assert_eq!(degrees(&mesh), degrees(&renum));
    }

    #[test]
    fn rcm_on_an_already_good_mesh_is_not_harmful() {
        let mesh = Mesh::grid(10, 10, 4, Ordering::Natural);
        let renum = renumber_mesh(&mesh);
        assert!(renum.stats().locality > 0.8);
    }
}
