//! Unstructured datasets: multi-component fields over a set.

use sycl_sim::Real;
use telemetry::shadow;

/// A field with `dim` components per set element.
#[derive(Debug, Clone)]
pub struct DatU<T> {
    name: String,
    set_size: usize,
    dim: usize,
    data: Vec<T>,
    /// Shadow-registry id (0 when shadow recording was off at creation).
    sid: u32,
}

impl<T: Real> DatU<T> {
    /// Allocate a zeroed field.
    pub fn zeroed(name: &str, set_size: usize, dim: usize) -> Self {
        let sid = shadow::register_dat(
            name,
            T::BYTES,
            shadow::DatGeom::Set {
                size: set_size,
                dim,
            },
        );
        DatU {
            name: name.to_owned(),
            set_size,
            dim,
            data: vec![T::zero(); set_size * dim],
            sid,
        }
    }

    /// Fill from an (element, component) function.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> T) {
        for e in 0..self.set_size {
            for c in 0..self.dim {
                self.data[e * self.dim + c] = f(e, c);
            }
        }
        shadow::mark_all_init(self.sid);
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_size(&self) -> usize {
        self.set_size
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Dataset bytes (the effective-bytes rule counts whole datasets).
    pub fn bytes(&self) -> f64 {
        (self.data.len()) as f64 * T::BYTES
    }

    /// Value of component `c` of element `e`.
    #[inline]
    pub fn at(&self, e: usize, c: usize) -> T {
        self.data[e * self.dim + c]
    }

    /// Mutable host access for setup/validation.
    pub fn host_mut(&mut self) -> &mut [T] {
        shadow::mark_all_init(self.sid);
        &mut self.data
    }

    /// Host access for validation.
    pub fn host(&self) -> &[T] {
        &self.data
    }

    /// Sum of all components (conservation checks).
    pub fn total(&self) -> f64 {
        self.data.iter().map(|v| v.to_f64()).sum()
    }

    /// Shared read view for kernels.
    pub fn reader(&self) -> UReadView<'_, T> {
        UReadView {
            ptr: self.data.as_ptr(),
            dim: self.dim,
            len: self.data.len(),
            sid: self.sid,
            _marker: std::marker::PhantomData,
        }
    }

    /// Exclusive write view (one writer per element; disjoint by the
    /// loop's iteration contract).
    pub fn writer(&mut self) -> UWriteView<'_, T> {
        UWriteView {
            ptr: self.data.as_mut_ptr(),
            dim: self.dim,
            len: self.data.len(),
            sid: self.sid,
            _marker: std::marker::PhantomData,
        }
    }

    /// Accumulation view for indirect increments. `atomic` chooses the
    /// CAS path (atomics scheme) vs plain adds (colour-serialised
    /// schemes, where the colouring invariant makes races impossible).
    pub fn accum(&mut self, atomic: bool) -> Accum<'_, T> {
        Accum {
            ptr: self.data.as_mut_ptr(),
            dim: self.dim,
            len: self.data.len(),
            atomic,
            sid: self.sid,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Shared read view; `Copy` so kernel closures can capture it.
pub struct UReadView<'a, T> {
    ptr: *const T,
    dim: usize,
    len: usize,
    sid: u32,
    _marker: std::marker::PhantomData<&'a [T]>,
}

impl<T> Copy for UReadView<'_, T> {}
impl<T> Clone for UReadView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
// SAFETY: read-only aliasing of an immutable borrow.
unsafe impl<T: Sync> Send for UReadView<'_, T> {}
unsafe impl<T: Sync> Sync for UReadView<'_, T> {}

impl<T: Real> UReadView<'_, T> {
    /// Component `c` of element `e`.
    #[inline]
    pub fn at(&self, e: usize, c: usize) -> T {
        let idx = e * self.dim + c;
        debug_assert!(idx < self.len);
        if self.sid != 0 {
            shadow::record_read(self.sid, idx, self.len);
        }
        // SAFETY: bounds guaranteed by set sizes (debug-checked).
        unsafe { *self.ptr.add(idx) }
    }
}

/// Exclusive write view; disjoint element writes per the loop contract.
pub struct UWriteView<'a, T> {
    ptr: *mut T,
    dim: usize,
    len: usize,
    sid: u32,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> Copy for UWriteView<'_, T> {}
impl<T> Clone for UWriteView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
// SAFETY: disjoint-write contract as in ops-dsl views.
unsafe impl<T: Send> Send for UWriteView<'_, T> {}
unsafe impl<T: Send> Sync for UWriteView<'_, T> {}

impl<'a, T: Real> UWriteView<'a, T> {
    /// Store component `c` of element `e`.
    #[inline]
    pub fn set(&self, e: usize, c: usize, v: T) {
        let idx = e * self.dim + c;
        debug_assert!(idx < self.len);
        if self.sid != 0 {
            shadow::record_write(self.sid, idx, self.len);
        }
        // SAFETY: sole writer of element `e` per the loop contract.
        unsafe { *self.ptr.add(idx) = v };
    }

    /// Read back component `c` of element `e` (read-write args).
    #[inline]
    pub fn get(&self, e: usize, c: usize) -> T {
        let idx = e * self.dim + c;
        debug_assert!(idx < self.len);
        if self.sid != 0 {
            shadow::record_read(self.sid, idx, self.len);
        }
        // SAFETY: as `set`.
        unsafe { *self.ptr.add(idx) }
    }

    /// Convert into an accumulation view over the same dat. Lets a graph
    /// capture one exclusive view per dat and use it both for direct
    /// writes and indirect increments across recorded loops (a second
    /// `DatU::accum` borrow would conflict with the live writer).
    pub fn to_accum(self, atomic: bool) -> Accum<'a, T> {
        Accum {
            ptr: self.ptr,
            dim: self.dim,
            len: self.len,
            atomic,
            sid: self.sid,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Indirect-increment view: `add` resolves races either atomically or by
/// relying on a colouring invariant.
pub struct Accum<'a, T> {
    ptr: *mut T,
    dim: usize,
    len: usize,
    atomic: bool,
    sid: u32,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> Copy for Accum<'_, T> {}
impl<T> Clone for Accum<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
// SAFETY: atomic mode is race-free by construction; plain mode relies on
// the colouring invariant enforced (and property-tested) by `color`.
unsafe impl<T: Send> Send for Accum<'_, T> {}
unsafe impl<T: Send> Sync for Accum<'_, T> {}

impl<T: Real> Accum<'_, T> {
    /// `data[e][c] += v`.
    #[inline]
    pub fn add(&self, e: usize, c: usize, v: T) {
        let idx = e * self.dim + c;
        debug_assert!(idx < self.len);
        if self.sid != 0 {
            if self.atomic {
                shadow::record_atomic(self.sid, idx, self.len);
            } else {
                // A plain increment is a read-modify-write: record both
                // sides so overlap between concurrent units surfaces.
                shadow::record_read(self.sid, idx, self.len);
                shadow::record_write(self.sid, idx, self.len);
            }
        }
        if self.atomic {
            // SAFETY: all concurrent accesses in atomic mode go through
            // `atomic_add`.
            unsafe { T::atomic_add(self.ptr.add(idx), v) };
        } else {
            // SAFETY: colouring guarantees no two concurrent adds touch
            // the same element.
            unsafe { *self.ptr.add(idx) = *self.ptr.add(idx) + v };
        }
    }

    /// Whether this view uses atomics.
    pub fn is_atomic(&self) -> bool {
        self.atomic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parkit::ThreadPool;

    #[test]
    fn construction_and_access() {
        let mut d = DatU::<f64>::zeroed("q", 10, 4);
        assert_eq!(d.set_size(), 10);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.bytes(), 320.0);
        d.fill_with(|e, c| (e * 10 + c) as f64);
        assert_eq!(d.at(3, 2), 32.0);
        assert_eq!(d.reader().at(3, 2), 32.0);
    }

    #[test]
    fn write_view_sets_values() {
        let mut d = DatU::<f32>::zeroed("r", 8, 2);
        {
            let w = d.writer();
            w.set(5, 1, 2.5);
            assert_eq!(w.get(5, 1), 2.5);
        }
        assert_eq!(d.at(5, 1), 2.5);
    }

    #[test]
    fn atomic_accum_is_correct_under_contention() {
        let mut d = DatU::<f64>::zeroed("acc", 4, 1);
        let pool = ThreadPool::new(4);
        {
            let acc = d.accum(true);
            assert!(acc.is_atomic());
            // 1000 chunks all incrementing the same 4 elements.
            pool.run_region(1000, |_l, _c| {
                for e in 0..4 {
                    acc.add(e, 0, 1.0);
                }
            });
        }
        for e in 0..4 {
            assert_eq!(d.at(e, 0), 1000.0);
        }
    }

    #[test]
    fn plain_accum_works_single_threaded() {
        let mut d = DatU::<f64>::zeroed("acc", 2, 2);
        {
            let acc = d.accum(false);
            for _ in 0..10 {
                acc.add(1, 1, 0.5);
            }
        }
        assert_eq!(d.at(1, 1), 5.0);
        assert_eq!(d.total(), 5.0);
    }
}
