//! Edge colouring: the two colour-based race-resolution schemes.

use crate::map::Map;

/// Global greedy colouring: no two edges of one colour share a target.
#[derive(Debug, Clone)]
pub struct GlobalColoring {
    /// Colour of each from-element.
    pub color: Vec<u32>,
    /// Element indices grouped by colour.
    pub by_color: Vec<Vec<u32>>,
}

impl GlobalColoring {
    /// Greedy first-fit colouring over the map's conflict graph.
    pub fn build(map: &Map) -> Self {
        // For each target, a bitmask of colours already used by incident
        // elements (greedy needs ≤ max_degree·arity colours ≤ 64 for all
        // our meshes).
        let mut used: Vec<u64> = vec![0; map.to_size()];
        let mut color = vec![0u32; map.from_size()];
        let mut n_colors = 0usize;
        for e in 0..map.from_size() {
            let mut mask = 0u64;
            for &t in map.row(e) {
                mask |= used[t as usize];
            }
            let c = (!mask).trailing_zeros();
            assert!(c < 64, "colouring overflow: degree too high");
            color[e] = c;
            n_colors = n_colors.max(c as usize + 1);
            for &t in map.row(e) {
                used[t as usize] |= 1 << c;
            }
        }
        let mut by_color = vec![Vec::new(); n_colors];
        for (e, &c) in color.iter().enumerate() {
            by_color[c as usize].push(e as u32);
        }
        GlobalColoring { color, by_color }
    }

    /// Number of colours used.
    pub fn n_colors(&self) -> usize {
        self.by_color.len()
    }

    /// Validate the colouring invariant against a map.
    pub fn is_valid(&self, map: &Map) -> bool {
        self.first_conflict(map).is_none()
    }

    /// First invariant violation: two same-colour edges sharing a
    /// vertex, as `(edge_a, edge_b, shared_vertex)`.
    pub fn first_conflict(&self, map: &Map) -> Option<(u32, u32, u32)> {
        // seen[t] = last same-colour edge incident to target t.
        let mut seen: Vec<i64> = vec![-1; map.to_size()];
        for group in &self.by_color {
            for &t in group.iter().flat_map(|&e| map.row(e as usize)) {
                seen[t as usize] = -1;
            }
            for &e in group {
                for &t in map.row(e as usize) {
                    let prev = seen[t as usize];
                    if prev >= 0 {
                        return Some((prev as u32, e, t));
                    }
                    seen[t as usize] = e as i64;
                }
            }
        }
        None
    }
}

/// Hierarchical colouring: consecutive elements form blocks; blocks are
/// coloured against each other; elements are coloured within blocks.
#[derive(Debug, Clone)]
pub struct HierColoring {
    /// Elements per block.
    pub block_size: usize,
    /// Colour of each block.
    pub block_color: Vec<u32>,
    /// Blocks grouped by colour.
    pub blocks_by_color: Vec<Vec<u32>>,
    /// Intra-block colour of each element (execution order inside a
    /// block follows these colours).
    pub intra_color: Vec<u32>,
    /// Max intra-block colours over all blocks.
    pub max_intra_colors: usize,
}

impl HierColoring {
    /// Build with the given block size (paper: 256 on GPUs, 4096 on CPUs).
    pub fn build(map: &Map, block_size: usize) -> Self {
        let block_size = block_size.max(1);
        let n_blocks = map.from_size().div_ceil(block_size);

        // Colour blocks greedily via target → colours-used bitmask.
        let mut used: Vec<u64> = vec![0; map.to_size()];
        let mut block_color = vec![0u32; n_blocks];
        let mut n_colors = 0usize;
        for b in 0..n_blocks {
            let lo = b * block_size;
            let hi = ((b + 1) * block_size).min(map.from_size());
            let mut mask = 0u64;
            for e in lo..hi {
                for &t in map.row(e) {
                    mask |= used[t as usize];
                }
            }
            let c = (!mask).trailing_zeros();
            assert!(c < 64, "block colouring overflow");
            block_color[b] = c;
            n_colors = n_colors.max(c as usize + 1);
            for e in lo..hi {
                for &t in map.row(e) {
                    used[t as usize] |= 1 << c;
                }
            }
        }
        let mut blocks_by_color = vec![Vec::new(); n_colors];
        for (b, &c) in block_color.iter().enumerate() {
            blocks_by_color[c as usize].push(b as u32);
        }

        // Intra-block greedy colouring (fresh bitmask per block).
        let mut intra_color = vec![0u32; map.from_size()];
        let mut max_intra = 0usize;
        let mut intra_used: Vec<u64> = vec![0; map.to_size()];
        for b in 0..n_blocks {
            let lo = b * block_size;
            let hi = ((b + 1) * block_size).min(map.from_size());
            for e in lo..hi {
                let mut mask = 0u64;
                for &t in map.row(e) {
                    mask |= intra_used[t as usize];
                }
                let c = (!mask).trailing_zeros();
                assert!(c < 64, "intra colouring overflow");
                intra_color[e] = c;
                max_intra = max_intra.max(c as usize + 1);
                for &t in map.row(e) {
                    intra_used[t as usize] |= 1 << c;
                }
            }
            // Reset the marks this block made.
            for e in lo..hi {
                for &t in map.row(e) {
                    intra_used[t as usize] = 0;
                }
            }
        }

        HierColoring {
            block_size,
            block_color,
            blocks_by_color,
            intra_color,
            max_intra_colors: max_intra,
        }
    }

    /// Number of block colours.
    pub fn n_colors(&self) -> usize {
        self.blocks_by_color.len()
    }

    /// Element range of block `b` for a map of `from_size` elements.
    pub fn block_range(&self, b: usize, from_size: usize) -> (usize, usize) {
        let lo = b * self.block_size;
        (lo, (lo + self.block_size).min(from_size))
    }

    /// Validate: no two same-colour blocks share a target.
    pub fn is_valid(&self, map: &Map) -> bool {
        self.first_block_conflict(map).is_none()
    }

    /// First block-level violation: two same-colour blocks sharing a
    /// vertex, as `(block_a, block_b, shared_vertex)`.
    pub fn first_block_conflict(&self, map: &Map) -> Option<(u32, u32, u32)> {
        for group in &self.blocks_by_color {
            // seen[t] = earlier same-colour block incident to target t.
            let mut seen: Vec<i64> = vec![-1; map.to_size()];
            for &b in group {
                let (lo, hi) = self.block_range(b as usize, map.from_size());
                for e in lo..hi {
                    for &t in map.row(e) {
                        let prev = seen[t as usize];
                        if prev >= 0 && prev != b as i64 {
                            return Some((prev as u32, b, t));
                        }
                    }
                }
                // Mark after checking the whole block (intra-block
                // sharing is fine — blocks run serially inside).
                for e in lo..hi {
                    for &t in map.row(e) {
                        seen[t as usize] = b as i64;
                    }
                }
            }
        }
        None
    }

    /// Validate the intra-block colours (block-local serial phases): no
    /// two elements of one block with the same intra colour may share a
    /// vertex.
    pub fn is_valid_intra(&self, map: &Map) -> bool {
        self.first_intra_conflict(map).is_none()
    }

    /// First intra-block violation as `(edge_a, edge_b, shared_vertex)`.
    pub fn first_intra_conflict(&self, map: &Map) -> Option<(u32, u32, u32)> {
        let n_blocks = map.from_size().div_ceil(self.block_size);
        let mut touches: Vec<(u32, u32, u32)> = Vec::new();
        for b in 0..n_blocks {
            let (lo, hi) = self.block_range(b, map.from_size());
            touches.clear();
            for e in lo..hi {
                for &t in map.row(e) {
                    touches.push((t, self.intra_color[e], e as u32));
                }
            }
            // Same (vertex, colour) twice within a block = two edges of
            // one serial phase sharing the vertex.
            touches.sort_unstable();
            for pair in touches.windows(2) {
                if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 {
                    return Some((pair[0].2, pair[1].2, pair[0].0));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, Ordering};

    fn grid_map() -> Map {
        Mesh::grid(8, 8, 4, Ordering::Natural).edges
    }

    #[test]
    fn global_coloring_is_valid_and_small() {
        let m = grid_map();
        let c = GlobalColoring::build(&m);
        assert!(c.is_valid(&m));
        // Grid edges 3 directions × 2 parity ⇒ around 6-8 colours.
        assert!(c.n_colors() >= 2 && c.n_colors() <= 12, "{}", c.n_colors());
        let total: usize = c.by_color.iter().map(|g| g.len()).sum();
        assert_eq!(total, m.from_size());
    }

    #[test]
    fn hierarchical_coloring_is_valid() {
        let m = grid_map();
        let h = HierColoring::build(&m, 64);
        assert!(h.is_valid(&m));
        assert!(h.n_colors() >= 2);
        assert!(h.max_intra_colors >= 2);
        let blocks: usize = h.blocks_by_color.iter().map(|g| g.len()).sum();
        assert_eq!(blocks, m.from_size().div_ceil(64));
    }

    #[test]
    fn adjacent_edges_get_different_global_colors() {
        let m = grid_map();
        let c = GlobalColoring::build(&m);
        // Exhaustive: any two edges sharing a vertex differ in colour.
        let mut by_vertex: Vec<Vec<u32>> = vec![Vec::new(); m.to_size()];
        for e in 0..m.from_size() {
            for &t in m.row(e) {
                by_vertex[t as usize].push(e as u32);
            }
        }
        for edges in &by_vertex {
            for (i, &a) in edges.iter().enumerate() {
                for &b in &edges[i + 1..] {
                    assert_ne!(c.color[a as usize], c.color[b as usize]);
                }
            }
        }
    }

    #[test]
    fn block_ranges_cover_the_set() {
        let m = grid_map();
        let h = HierColoring::build(&m, 100);
        let n_blocks = m.from_size().div_ceil(100);
        let mut covered = 0;
        for b in 0..n_blocks {
            let (lo, hi) = h.block_range(b, m.from_size());
            covered += hi - lo;
        }
        assert_eq!(covered, m.from_size());
    }
}
