//! # op2-dsl — an unstructured-mesh DSL (the OP2 analogue)
//!
//! OP2 describes computations over unstructured meshes as parallel loops
//! over *sets* (edges, vertices, cells) whose arguments reach other sets
//! through *mapping tables*. Loops that indirectly increment shared data
//! race under shared-memory parallelism; OP2 — and this crate — offers the
//! paper's three resolution schemes (Figure 1):
//!
//! * **atomics** — every edge runs concurrently, updates go through
//!   atomic adds (hardware FP atomics on GPUs, CAS loops on CPUs);
//! * **global colouring** — edges are coloured so no two edges of one
//!   colour share a vertex; colours execute as separate, race-free
//!   passes. Simple, but adjacent edges land in different colours, so
//!   spatial/temporal locality is destroyed;
//! * **hierarchical colouring** — consecutive edges form blocks; blocks
//!   are coloured against each other, and edges are coloured within each
//!   block. Blocks of one colour run in parallel, each block serially —
//!   data re-use survives inside a block.
//!
//! The crate also provides a synthetic mesh generator (the stand-in for
//! the NASA Rotor37 case), a recursive-coordinate-bisection partitioner
//! (the PT-Scotch substitute), and reverse-Cuthill-McKee-style
//! renumbering — so the "good mesh ordering" the paper's atomics variant
//! depends on is reproducible and ablatable.

// Kernel bodies index several parallel arrays by the same element id —
// the HPC idiom clippy's needless_range_loop lint dislikes.
#![allow(clippy::needless_range_loop)]

pub mod color;
pub mod dat;
pub mod map;
pub mod mesh;
pub mod parloop;
pub mod partition;
pub mod renumber;

pub use color::{GlobalColoring, HierColoring};
pub use dat::{Accum, DatU, UReadView, UWriteView};
pub use map::Map;
pub use mesh::{Mesh, MeshStats, MgHierarchy, Ordering};
pub use parloop::{EdgeLoop, VertexLoop};
pub use partition::Partition;
pub use renumber::{bandwidth, rcm_permutation, renumber_mesh};

/// Convenience prelude for applications.
pub mod prelude {
    pub use crate::{DatU, EdgeLoop, Map, Mesh, MeshStats, MgHierarchy, Ordering, VertexLoop};
    pub use sycl_sim::Scheme;
}
