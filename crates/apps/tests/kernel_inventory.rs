//! Kernel-inventory tests: each application must launch exactly the
//! kernels its real counterpart is known for, with sensible per-kernel
//! cost ordering (interior sweeps dominate, boundary loops are flagged).

use miniapps::App;
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig, Toolchain};

fn dry(app: &str, scheme: Option<Scheme>) -> Session {
    let mut cfg = SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
        .app(app)
        .dry_run();
    if let Some(s) = scheme {
        cfg = cfg.scheme(s);
    }
    Session::create(cfg).unwrap()
}

fn kernel_names(session: &Session) -> Vec<String> {
    session
        .kernel_summary()
        .into_iter()
        .map(|(n, _, _)| n)
        .collect()
}

#[test]
fn cloverleaf2d_launches_the_hydro_kernel_chain() {
    let s = dry("cloverleaf2d", None);
    miniapps::CloverLeaf2d::paper().run(&s);
    let names = kernel_names(&s);
    for expect in [
        "ideal_gas",
        "viscosity",
        "update_halo",
        "calc_dt",
        "accelerate",
        "flux_calc",
        "advec_cell",
        "advec_mom",
        "pdv",
        "field_summary",
    ] {
        assert!(
            names.iter().any(|n| n == expect),
            "missing {expect}: {names:?}"
        );
    }
    // update_halo launches: 4 faces × 3 fields × 2 calls × 50 iters.
    let (_, _, halo_launches) = s
        .kernel_summary()
        .into_iter()
        .find(|(n, _, _)| n == "update_halo")
        .unwrap();
    assert_eq!(halo_launches, 4 * 3 * 2 * 50);
}

#[test]
fn cloverleaf3d_has_six_face_halo_updates() {
    let s = dry("cloverleaf3d", None);
    miniapps::CloverLeaf3d::paper().run(&s);
    let (_, _, halo_launches) = s
        .kernel_summary()
        .into_iter()
        .find(|(n, _, _)| n == "update_halo")
        .unwrap();
    assert_eq!(halo_launches, 6 * 3 * 2 * 50);
}

#[test]
fn opensbli_variants_have_their_signature_kernels() {
    let sa = dry("opensbli_sa", None);
    miniapps::OpenSbli::paper(miniapps::SbliVariant::StoreAll).run(&sa);
    let names = kernel_names(&sa);
    assert!(names.iter().any(|n| n == "sa_deriv"));
    assert!(names.iter().any(|n| n == "sa_rk_update"));
    assert!(!names.iter().any(|n| n == "sn_fused"));

    let sn = dry("opensbli_sn", None);
    miniapps::OpenSbli::paper(miniapps::SbliVariant::StoreNone).run(&sn);
    let names = kernel_names(&sn);
    assert!(names.iter().any(|n| n == "sn_fused"));
    assert!(!names.iter().any(|n| n == "sa_deriv"));
    // SA launches far more kernels (15 derivative sweeps per stage).
    assert!(sa.records().len() > sn.records().len());
}

#[test]
fn wave_apps_are_dominated_by_their_stencil_kernel() {
    for (app, main_kernel) in [("rtm", "wave_step"), ("acoustic", "acoustic_step")] {
        let s = dry(app, None);
        match app {
            "rtm" => {
                miniapps::Rtm::paper().run(&s);
            }
            _ => {
                miniapps::Acoustic::paper().run(&s);
            }
        }
        let summary = s.kernel_summary();
        assert_eq!(summary[0].0, main_kernel, "{app}: {summary:?}");
        // Dominance among *kernels*: staging/halo traffic is priced
        // into elapsed now, so compare against compute time only.
        let kernel_time = s.elapsed() - s.comm_time();
        assert!(
            summary[0].1 > 0.8 * kernel_time,
            "{app}: the wave kernel must dominate"
        );
    }
}

#[test]
fn mgcfd_visits_every_level_every_iteration() {
    let s = dry("mgcfd", Some(Scheme::Atomics));
    let app = miniapps::Mgcfd::paper();
    app.run(&s);
    let flux = s
        .kernel_summary()
        .into_iter()
        .find(|(n, _, _)| n == "compute_flux")
        .unwrap();
    assert_eq!(
        flux.2,
        app.iterations * app.levels,
        "one flux per level per iter"
    );
    let names = kernel_names(&s);
    for expect in ["time_step", "restrict", "residual_norm"] {
        assert!(names.iter().any(|n| n == expect), "missing {expect}");
    }
}

#[test]
fn explain_output_shows_the_costliest_kernel_first() {
    let s = dry("cloverleaf2d", None);
    miniapps::CloverLeaf2d::paper().run(&s);
    let text = s.explain();
    assert!(text.contains("update_halo"));
    assert!(text.contains("%"));
    // First data row is the top kernel by time.
    let top = s.kernel_summary()[0].0.clone();
    let first_data_line = text.lines().nth(2).unwrap();
    assert!(
        first_data_line.starts_with(&top),
        "explain must sort by cost: {first_data_line}"
    );
}

#[test]
fn every_app_prices_identically_across_repeat_runs() {
    // Determinism of the whole pricing pipeline.
    for app in miniapps::paper_structured_apps() {
        let t1 = {
            let s = dry(app.name(), None);
            app.run(&s).elapsed
        };
        let t2 = {
            let s = dry(app.name(), None);
            app.run(&s).elapsed
        };
        assert_eq!(t1.to_bits(), t2.to_bits(), "{}", app.name());
    }
}
