//! Bit-identity invariants of the priced-transfer model: turning the
//! interconnect pricing on must not perturb a single kernel record —
//! only the clock (comm time) may move. The per-app eager-vs-replay
//! digest tests live with each app; these cover priced-vs-free.

use miniapps::App;
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig, Toolchain};

fn config(app: &str) -> SessionConfig {
    SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app)
}

#[test]
fn cloverleaf2d_kernel_records_are_identical_with_pricing_on_or_off() {
    let app = miniapps::CloverLeaf2d::test();
    let priced = Session::create(config("cloverleaf2d")).unwrap();
    let free = Session::create(config("cloverleaf2d").eager_transfers()).unwrap();
    let a = app.run(&priced);
    let b = app.run(&free);
    // The launch digest covers every record (name, time, bytes) but not
    // the clock: transfer pricing must be invisible to kernel pricing.
    assert_eq!(priced.launch_digest(), free.launch_digest());
    assert_eq!(a.validation.to_bits(), b.validation.to_bits());
    // But the priced session's clock includes the staged uploads, the
    // readback, and the single-rank halo copies the legacy model gave
    // away for free.
    assert!(
        priced.elapsed() > free.elapsed(),
        "priced {} vs free {}",
        priced.elapsed(),
        free.elapsed()
    );
    assert!(priced.comm_time() > 0.0);
}

#[test]
fn mgcfd_kernel_records_are_identical_with_pricing_on_or_off() {
    for scheme in Scheme::all() {
        let app = miniapps::Mgcfd::test();
        let priced = Session::create(config("mgcfd").scheme(scheme)).unwrap();
        let free = Session::create(config("mgcfd").scheme(scheme).eager_transfers()).unwrap();
        let a = app.run(&priced);
        let b = app.run(&free);
        assert_eq!(
            priced.launch_digest(),
            free.launch_digest(),
            "{scheme:?}: kernel records diverge"
        );
        assert_eq!(a.validation.to_bits(), b.validation.to_bits());
        assert!(priced.elapsed() > free.elapsed(), "{scheme:?}");
    }
}

#[test]
fn priced_replay_and_priced_eager_agree_on_the_full_ledger() {
    // Eager-vs-replay bit-identity must survive the residency tracker:
    // both paths consult it in recorded order, so even comm time (and
    // the elision decisions behind it) matches bit-for-bit.
    let app = miniapps::CloverLeaf2d::test();
    let replayed = Session::create(config("cloverleaf2d")).unwrap();
    let eager = Session::create(config("cloverleaf2d").eager_launches()).unwrap();
    app.run(&replayed);
    app.run(&eager);
    assert_eq!(replayed.ledger_digest(), eager.ledger_digest());
    assert_eq!(replayed.elapsed().to_bits(), eager.elapsed().to_bits());
    assert_eq!(replayed.comm_time().to_bits(), eager.comm_time().to_bits());
    assert_eq!(replayed.transfer_stats(), eager.transfer_stats());
}

#[test]
fn transfers_and_exchanges_are_nonzero_on_every_platform() {
    // The acceptance bar for the interconnect model: no platform rides
    // for free any more — CPUs pay an in-package copy for staging.
    let toolchain_for = |p: PlatformId| match p {
        PlatformId::A100 => Toolchain::NativeCuda,
        PlatformId::Mi250x => Toolchain::NativeHip,
        PlatformId::Max1100 => Toolchain::Dpcpp,
        _ => Toolchain::OpenMp,
    };
    for p in [
        PlatformId::A100,
        PlatformId::Mi250x,
        PlatformId::Max1100,
        PlatformId::Xeon8360Y,
        PlatformId::GenoaX,
        PlatformId::Altra,
    ] {
        let s = Session::create(
            SessionConfig::new(p, toolchain_for(p))
                .app("cloverleaf2d")
                .dry_run(),
        )
        .unwrap();
        miniapps::CloverLeaf2d::paper().run(&s);
        assert!(s.comm_time() > 0.0, "{p:?}: staging/halos must be priced");
        let stats = s.transfer_stats();
        assert!(stats.real > 0, "{p:?}: no real transfer recorded");
    }
}
