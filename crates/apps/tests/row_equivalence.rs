//! The row-sliced fast path must be *bit-identical* to per-point
//! execution: same points, same arithmetic, same reduction partial
//! order. These tests run the hottest CloverLeaf/RTM kernel bodies both
//! ways (per-point reference written out inline, row-sliced port as the
//! apps now ship it) and compare every interior value by bits.

use ops_dsl::prelude::*;
use sycl_sim::{PlatformId, Session, SessionConfig, Toolchain};

const GAMMA: f64 = 1.4;

/// 8th-order central second-derivative coefficients (h=1), as in RTM.
const LAP8: [f64; 5] = [
    -205.0 / 72.0,
    8.0 / 5.0,
    -1.0 / 5.0,
    8.0 / 315.0,
    -1.0 / 560.0,
];

fn session(app: &str) -> Session {
    Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app)).unwrap()
}

fn f64_meta() -> ops_dsl::DatMeta {
    ops_dsl::DatMeta::anon(8.0)
}

fn f32_meta() -> ops_dsl::DatMeta {
    ops_dsl::DatMeta::anon(4.0)
}

#[test]
fn cloverleaf_ideal_gas_rows_match_per_point_bitwise() {
    let s = session("cloverleaf2d");
    let b = Block::new_2d(53, 39, 2);
    let mut density = Dat::<f64>::zeroed(&b, "density");
    let mut energy = Dat::<f64>::zeroed(&b, "energy");
    density.fill_with(|i, j, _| 1.0 + 0.1 * (((i * 7 + j * 3) % 17) as f64));
    energy.fill_with(|i, j, _| 1.0 + 0.07 * (((i * 5 + j * 11) % 13) as f64));
    let interior = b.interior();

    let mut p_ref = Dat::<f64>::zeroed(&b, "p_ref");
    let mut c_ref = Dat::<f64>::zeroed(&b, "c_ref");
    let mut p_row = Dat::<f64>::zeroed(&b, "p_row");
    let mut c_row = Dat::<f64>::zeroed(&b, "c_row");

    let d = density.reader();
    let e = energy.reader();
    {
        // Per-point reference: the body cloverleaf2d shipped before the
        // row port.
        let (pm, cm) = (p_ref.meta(), c_ref.meta());
        let p = p_ref.writer();
        let c = c_ref.writer();
        ParLoop::new("ideal_gas", interior)
            .read(density.meta(), Stencil::point())
            .read(energy.meta(), Stencil::point())
            .write(pm)
            .write(cm)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    let rho = d.at(i, j, k).max(1e-12);
                    let pr = (GAMMA - 1.0) * rho * e.at(i, j, k).max(0.0);
                    p.set(i, j, k, pr);
                    c.set(i, j, k, (GAMMA * pr / rho).sqrt());
                }
            });
    }
    {
        // Row-sliced port, exactly as cloverleaf2d.rs executes it.
        let (pm, cm) = (p_row.meta(), c_row.meta());
        let p = p_row.writer();
        let c = c_row.writer();
        ParLoop::new("ideal_gas", interior)
            .read(density.meta(), Stencil::point())
            .read(energy.meta(), Stencil::point())
            .write(pm)
            .write(cm)
            .run_rows(&s, |row| {
                let dr = d.row(row);
                let er = e.row(row);
                let pr = p.row_mut(row);
                let cr = c.row_mut(row);
                for x in 0..row.len() {
                    let rho = dr[x].max(1e-12);
                    let pv = (GAMMA - 1.0) * rho * er[x].max(0.0);
                    pr[x] = pv;
                    cr[x] = (GAMMA * pv / rho).sqrt();
                }
            });
    }
    for (i, j, k) in interior.iter() {
        assert_eq!(p_ref.at(i, j, k).to_bits(), p_row.at(i, j, k).to_bits());
        assert_eq!(c_ref.at(i, j, k).to_bits(), c_row.at(i, j, k).to_bits());
    }
}

#[test]
fn cloverleaf_viscosity_rows_match_per_point_bitwise() {
    let s = session("cloverleaf2d");
    let b = Block::new_2d(47, 31, 2);
    let mut density = Dat::<f64>::zeroed(&b, "density");
    let mut xvel = Dat::<f64>::zeroed(&b, "xvel");
    let mut yvel = Dat::<f64>::zeroed(&b, "yvel");
    density.fill_with(|i, j, _| 1.0 + 0.2 * (((i + 2 * j) % 7) as f64));
    xvel.fill_with(|i, j, _| 0.05 * ((i as f64 * 0.3).sin() + (j as f64 * 0.2).cos()));
    yvel.fill_with(|i, j, _| -0.04 * ((i as f64 * 0.25).cos() * (j as f64 * 0.15).sin()));
    let interior = b.interior();

    let mut q_ref = Dat::<f64>::zeroed(&b, "q_ref");
    let mut q_row = Dat::<f64>::zeroed(&b, "q_row");
    let d = density.reader();
    let u = xvel.reader();
    let v = yvel.reader();
    {
        let qm = q_ref.meta();
        let q = q_ref.writer();
        ParLoop::new("viscosity", interior)
            .read(density.meta(), Stencil::point())
            .read(xvel.meta(), Stencil::star_2d(1))
            .read(yvel.meta(), Stencil::star_2d(1))
            .write(qm)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    let div = u.at(i + 1, j, k) - u.at(i - 1, j, k) + v.at(i, j + 1, k)
                        - v.at(i, j - 1, k);
                    let qv = if div < 0.0 {
                        2.0 * d.at(i, j, k) * div * div
                    } else {
                        0.0
                    };
                    q.set(i, j, k, qv);
                }
            });
    }
    {
        let qm = q_row.meta();
        let q = q_row.writer();
        ParLoop::new("viscosity", interior)
            .read(density.meta(), Stencil::point())
            .read(xvel.meta(), Stencil::star_2d(1))
            .read(yvel.meta(), Stencil::star_2d(1))
            .write(qm)
            .run_rows(&s, |row| {
                let dr = d.row(row);
                let uc = u.row(row.grow_x(1));
                let vn = v.row(row.shift(0, 1, 0));
                let vs = v.row(row.shift(0, -1, 0));
                let qr = q.row_mut(row);
                for x in 0..row.len() {
                    let div = uc[x + 2] - uc[x] + vn[x] - vs[x];
                    qr[x] = if div < 0.0 {
                        2.0 * dr[x] * div * div
                    } else {
                        0.0
                    };
                }
            });
    }
    for (i, j, k) in interior.iter() {
        assert_eq!(
            q_ref.at(i, j, k).to_bits(),
            q_row.at(i, j, k).to_bits(),
            "viscosity mismatch at ({i},{j},{k})"
        );
    }
}

#[test]
fn rtm_wave_step_rows_match_per_point_bitwise() {
    let s = session("rtm");
    let b = Block::new_3d(22, 18, 14, 4);
    let mut field = Dat::<f32>::zeroed(&b, "p");
    let mut vel = Dat::<f32>::zeroed(&b, "vel2");
    field.fill_with(|i, j, k| 0.01 * (((i * 3 + j * 5 + k * 7) % 23) as f32 - 11.0));
    vel.fill_with(|_, _, k| 1.0 + 0.5 * (k.max(0) as f32 / 14.0));
    let interior = b.interior();
    let c2dt2 = 0.1f32;

    let mut out_ref = Dat::<f32>::zeroed(&b, "out_ref");
    let mut out_row = Dat::<f32>::zeroed(&b, "out_row");
    // Seed both outputs with the same "previous" wavefield so the
    // read-write leap-frog term is exercised.
    out_ref.fill_with(|i, j, k| 0.005 * (((i + j * 2 + k * 3) % 11) as f32));
    out_row.fill_with(|i, j, k| 0.005 * (((i + j * 2 + k * 3) % 11) as f32));

    let p = field.reader();
    let v = vel.reader();
    {
        let w = out_ref.writer();
        ParLoop::new("wave_step", interior)
            .read(f32_meta(), Stencil::star_3d(4))
            .read(f32_meta(), Stencil::point())
            .read_write(f32_meta())
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    let mut lap = 3.0 * LAP8[0] as f32 * p.at(i, j, k);
                    for (sh, &cf) in LAP8.iter().enumerate().skip(1) {
                        let sh = sh as i64;
                        lap += cf as f32
                            * (p.at(i + sh, j, k)
                                + p.at(i - sh, j, k)
                                + p.at(i, j + sh, k)
                                + p.at(i, j - sh, k)
                                + p.at(i, j, k + sh)
                                + p.at(i, j, k - sh));
                    }
                    let next = 2.0 * p.at(i, j, k) - w.get(i, j, k) + c2dt2 * v.at(i, j, k) * lap;
                    w.set(i, j, k, next);
                }
            });
    }
    {
        let w = out_row.writer();
        ParLoop::new("wave_step", interior)
            .read(f32_meta(), Stencil::star_3d(4))
            .read(f32_meta(), Stencil::point())
            .read_write(f32_meta())
            .run_rows(&s, |row| {
                let pc = p.row(row.grow_x(4));
                let pyn: [&[f32]; 4] =
                    std::array::from_fn(|sh| p.row(row.shift(0, sh as i64 + 1, 0)));
                let pys: [&[f32]; 4] =
                    std::array::from_fn(|sh| p.row(row.shift(0, -(sh as i64) - 1, 0)));
                let pzn: [&[f32]; 4] =
                    std::array::from_fn(|sh| p.row(row.shift(0, 0, sh as i64 + 1)));
                let pzs: [&[f32]; 4] =
                    std::array::from_fn(|sh| p.row(row.shift(0, 0, -(sh as i64) - 1)));
                let vr = v.row(row);
                let wr = w.row_mut(row);
                for x in 0..row.len() {
                    let mut lap = 3.0 * LAP8[0] as f32 * pc[x + 4];
                    for (sh, &cf) in LAP8.iter().enumerate().skip(1) {
                        lap += cf as f32
                            * (pc[x + 4 + sh]
                                + pc[x + 4 - sh]
                                + pyn[sh - 1][x]
                                + pys[sh - 1][x]
                                + pzn[sh - 1][x]
                                + pzs[sh - 1][x]);
                    }
                    let next = 2.0 * pc[x + 4] - wr[x] + c2dt2 * vr[x] * lap;
                    wr[x] = next;
                }
            });
    }
    for (i, j, k) in interior.iter() {
        assert_eq!(
            out_ref.at(i, j, k).to_bits(),
            out_row.at(i, j, k).to_bits(),
            "wave_step mismatch at ({i},{j},{k})"
        );
    }
}

#[test]
fn cloverleaf_cfl_reduction_rows_match_per_point_bitwise() {
    let s = session("cloverleaf2d");
    let b = Block::new_2d(61, 43, 2);
    let mut ssp = Dat::<f64>::zeroed(&b, "soundspeed");
    let mut xvel = Dat::<f64>::zeroed(&b, "xvel");
    let mut yvel = Dat::<f64>::zeroed(&b, "yvel");
    ssp.fill_with(|i, j, _| 1.0 + 0.3 * (((i * 3 + j) % 19) as f64 / 19.0));
    xvel.fill_with(|i, j, _| 0.05 * ((i as f64 * 0.21).sin() - (j as f64 * 0.17).cos()));
    yvel.fill_with(|i, j, _| 0.03 * ((i as f64 * 0.11).cos() + (j as f64 * 0.23).sin()));
    let interior = b.interior();
    let dx = 1.0 / 61.0;

    let ss = ssp.reader();
    let u = xvel.reader();
    let v = yvel.reader();
    let mk = || {
        ParLoop::new("calc_dt", interior)
            .read(ssp.meta(), Stencil::point())
            .read(xvel.meta(), Stencil::point())
            .read(yvel.meta(), Stencil::point())
            .read(f64_meta(), Stencil::point())
    };
    let by_point = mk().run_reduce(&s, f64::INFINITY, f64::min, |tile| {
        let mut m = f64::INFINITY;
        for (i, j, k) in tile.iter() {
            let w = ss.at(i, j, k) + u.at(i, j, k).abs() + v.at(i, j, k).abs();
            m = m.min(dx / w.max(1e-12));
        }
        m
    });
    let by_row = mk().run_rows_reduce(&s, f64::INFINITY, f64::min, |acc, row| {
        let sr = ss.row(row);
        let ur = u.row(row);
        let vr = v.row(row);
        let mut m = acc;
        for x in 0..row.len() {
            let w = sr[x] + ur[x].abs() + vr[x].abs();
            m = m.min(dx / w.max(1e-12));
        }
        m
    });
    assert_eq!(by_point.to_bits(), by_row.to_bits());
    assert!(by_point.is_finite());
}
