//! CloverLeaf 3D — the 408³ variant of the hydro benchmark.
//!
//! Structurally like [`crate::cloverleaf2d`] with 3-D stencils and six
//! boundary faces; the paper reports it spending far more time in
//! boundary loops (7.8 % on the A100, 11.1 % on the MI250X) because the
//! face-to-volume ratio is higher at 408³ than at 7680².

use crate::common::{alloc_block, phase_span, read_back, stage_uploads, summarise, App, AppRun};
use ops_dsl::prelude::*;
use ops_dsl::{DatMeta, WriteView};
use sycl_sim::{quirks::apps, Session};

const GAMMA: f64 = 1.4;

/// CloverLeaf 3D instance.
#[derive(Debug, Clone, Copy)]
pub struct CloverLeaf3d {
    pub n: usize,
    pub iterations: usize,
}

impl CloverLeaf3d {
    /// Paper configuration: 408³, 50 iterations.
    pub fn paper() -> Self {
        CloverLeaf3d {
            n: 408,
            iterations: 50,
        }
    }

    /// Reduced size for functional validation.
    pub fn test() -> Self {
        CloverLeaf3d {
            n: 20,
            iterations: 5,
        }
    }

    fn logical_block(&self) -> Block {
        Block::new_3d(self.n, self.n, self.n, 2)
    }
}

struct State {
    density: ops_dsl::Dat<f64>,
    energy: ops_dsl::Dat<f64>,
    pressure: ops_dsl::Dat<f64>,
    soundspeed: ops_dsl::Dat<f64>,
    vel: [ops_dsl::Dat<f64>; 3],
    flux: [ops_dsl::Dat<f64>; 3],
}

impl State {
    fn new(b: &Block) -> State {
        let mut density = ops_dsl::Dat::zeroed(b, "density");
        let mut energy = ops_dsl::Dat::zeroed(b, "energy");
        let n = b.dims[0] as f64;
        density.fill_with(|i, j, k| {
            if (i as f64) < 0.3 * n && (j as f64) < 0.3 * n && (k as f64) < 0.3 * n {
                2.0
            } else {
                1.0
            }
        });
        energy.fill_with(|_, _, _| 1.0);
        let mut vel = [
            ops_dsl::Dat::zeroed(b, "xvel"),
            ops_dsl::Dat::zeroed(b, "yvel"),
            ops_dsl::Dat::zeroed(b, "zvel"),
        ];
        for (d, v) in vel.iter_mut().enumerate() {
            v.fill_with(|i, j, k| {
                let t = (i + 2 * j + 3 * k) as f64 / n;
                0.03 * (t * std::f64::consts::TAU + d as f64).sin()
            });
        }
        State {
            density,
            energy,
            pressure: ops_dsl::Dat::zeroed(b, "pressure"),
            soundspeed: ops_dsl::Dat::zeroed(b, "soundspeed"),
            vel,
            flux: [
                ops_dsl::Dat::zeroed(b, "flux_x"),
                ops_dsl::Dat::zeroed(b, "flux_y"),
                ops_dsl::Dat::zeroed(b, "flux_z"),
            ],
        }
    }
}

impl App for CloverLeaf3d {
    fn name(&self) -> &'static str {
        apps::CLOVERLEAF3D
    }

    fn nd_shape(&self) -> [usize; 3] {
        [64, 4, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let logical = self.logical_block();
        let ab = alloc_block(session, logical);
        let mut st = State::new(&ab);
        let interior = logical.interior();
        let n = logical.dims[0] as i64;
        let dx = 1.0 / n as f64;
        let halo = HaloPlan::for_session(&logical, session, 2, 8.0);
        let nd = self.nd_shape();

        // The CFL timestep crosses launch boundaries within a replay via
        // this bit-cell (stored by the reduction sink, loaded by flux
        // and pdv bodies).
        let dt_bits = std::sync::atomic::AtomicU64::new(0.01f64.to_bits());
        let load_dt = || f64::from_bits(dt_bits.load(std::sync::atomic::Ordering::Relaxed));

        // Stage the initial uploads of all ten fields (see the 2-D
        // variant for the rationale).
        stage_uploads(
            session,
            &logical,
            &[
                st.density.meta(),
                st.energy.meta(),
                st.pressure.meta(),
                st.soundspeed.meta(),
                st.vel[0].meta(),
                st.vel[1].meta(),
                st.vel[2].meta(),
                st.flux[0].meta(),
                st.flux[1].meta(),
                st.flux[2].meta(),
            ],
        );

        // Record one timestep, replay it `iterations` times.
        {
            let dm = st.density.meta();
            let em = st.energy.meta();
            let pm = st.pressure.meta();
            let sm = st.soundspeed.meta();
            let vms = [st.vel[0].meta(), st.vel[1].meta(), st.vel[2].meta()];
            let fms = [st.flux[0].meta(), st.flux[1].meta(), st.flux[2].meta()];
            let d = st.density.writer();
            let e = st.energy.writer();
            let p = st.pressure.writer();
            let ss = st.soundspeed.writer();
            // Velocities are never written by the 3-D step: plain readers.
            let [v0, v1, v2] = &st.vel;
            let vel = [v0.reader(), v1.reader(), v2.reader()];
            let [f0, f1, f2] = &mut st.flux;
            let flux = [f0.writer(), f1.writer(), f2.writer()];
            let dt_bits = &dt_bits;
            let load_dt = &load_dt;

            let mut g = session.record();

            // ideal_gas
            g.phase("ideal_gas");
            ParLoop::new("ideal_gas", interior)
                .read(dm, Stencil::point())
                .read(em, Stencil::point())
                .write(pm)
                .write(sm)
                .flops(8.0)
                .transcendentals(1.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    for (i, j, k) in tile.iter() {
                        let rho = d.get(i, j, k).max(1e-12);
                        let pr = (GAMMA - 1.0) * rho * e.get(i, j, k).max(0.0);
                        p.set(i, j, k, pr);
                        ss.set(i, j, k, (GAMMA * pr / rho).sqrt());
                    }
                });
            g.end_phase();

            // update_halo: six faces.
            g.phase("update_halo");
            record_update_halo(&mut g, &logical, [(d, dm), (e, em), (p, pm)], nd);
            // Seven exchanged fields: the stencil-read-after-write set
            // (density + the three face fluxes) plus the state fields
            // the real CloverLeaf refreshes alongside them.
            halo.record_exchange_for(&mut g, &[dm, em, pm, sm, fms[0], fms[1], fms[2]]);
            g.end_phase();

            // calc_dt
            g.phase("calc_dt");
            let u0 = vel[0];
            ParLoop::new("calc_dt", interior)
                .read(sm, Stencil::point())
                .read(vms[0], Stencil::point())
                .flops(10.0)
                .nd_shape(nd)
                .record_reduce(
                    &mut g,
                    f64::INFINITY,
                    f64::min,
                    move |tile| {
                        let mut m = f64::INFINITY;
                        for (i, j, k) in tile.iter() {
                            let w = ss.get(i, j, k) + u0.at(i, j, k).abs();
                            m = m.min(dx / w.max(1e-12));
                        }
                        m
                    },
                    move |local| {
                        let dt = (0.2 * local).clamp(1e-9, 0.01);
                        dt_bits.store(dt.to_bits(), std::sync::atomic::Ordering::Relaxed);
                    },
                );
            g.end_phase();

            // flux_calc per direction (faces interior to the domain only
            // ⇒ wall fluxes stay zero ⇒ exact conservation).
            g.phase("flux_calc");
            for dir in 0..3 {
                let v = vel[dir];
                let f = flux[dir];
                let mut hi = [n, n, n];
                hi[dir] = n - 1;
                let face_range = Range3::new_3d(0, hi[0], 0, hi[1], 0, hi[2]);
                let off: [i64; 3] = std::array::from_fn(|a| (a == dir) as i64);
                ParLoop::new("flux_calc", face_range)
                    .read(dm, Stencil::star_3d(1))
                    .read(vms[dir], Stencil::star_3d(1))
                    .write(fms[dir])
                    .flops(8.0)
                    .nd_shape(nd)
                    .record(&mut g, move |tile| {
                        let dt = load_dt();
                        for (i, j, k) in tile.iter() {
                            let un =
                                0.5 * (v.at(i, j, k) + v.at(i + off[0], j + off[1], k + off[2]));
                            let up = if un > 0.0 {
                                d.get(i, j, k)
                            } else {
                                d.get(i + off[0], j + off[1], k + off[2])
                            };
                            f.set(i, j, k, dt * un * up / dx);
                        }
                    });
            }
            g.end_phase();

            // Post-flux halo refresh (as the real CloverLeaf does).
            g.phase("update_halo");
            record_update_halo(&mut g, &logical, [(d, dm), (e, em), (p, pm)], nd);
            g.end_phase();

            // advec_cell: conservative density update.
            g.phase("advec_cell");
            let [fx, fy, fz] = flux;
            ParLoop::new("advec_cell", interior)
                .read(fms[0], Stencil::star_3d(1))
                .read(fms[1], Stencil::star_3d(1))
                .read(fms[2], Stencil::star_3d(1))
                .read_write(dm)
                .flops(12.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    for (i, j, k) in tile.iter() {
                        let div = fx.get(i - 1, j, k) - fx.get(i, j, k) + fy.get(i, j - 1, k)
                            - fy.get(i, j, k)
                            + fz.get(i, j, k - 1)
                            - fz.get(i, j, k);
                        d.set(i, j, k, d.get(i, j, k) + div);
                    }
                });
            g.end_phase();

            // pdv: compression work on energy.
            g.phase("pdv");
            let [u, v, w] = vel;
            ParLoop::new("pdv", interior)
                .read(pm, Stencil::point())
                .read(dm, Stencil::point())
                .read(vms[0], Stencil::star_3d(1))
                .read(vms[1], Stencil::star_3d(1))
                .read(vms[2], Stencil::star_3d(1))
                .read_write(em)
                .flops(22.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    let dt = load_dt();
                    for (i, j, k) in tile.iter() {
                        let div = (u.at(i + 1, j, k) - u.at(i - 1, j, k) + v.at(i, j + 1, k)
                            - v.at(i, j - 1, k)
                            + w.at(i, j, k + 1)
                            - w.at(i, j, k - 1))
                            / (2.0 * dx);
                        let rho = d.get(i, j, k).max(1e-12);
                        let de = -p.get(i, j, k) * div * dt / rho;
                        e.set(i, j, k, (e.get(i, j, k) + de).max(1e-9));
                    }
                });
            g.end_phase();

            let g = g.finish();
            for _ in 0..self.iterations {
                g.replay(session);
            }
        }

        // Read the summarised field back before the host-side reduce.
        read_back(session, &logical, &[st.density.meta()]);

        let mut validation = f64::NAN;

        // field_summary
        let _p = phase_span("field_summary");
        if session.executes() {
            let d = st.density.reader();
            validation = ParLoop::new("field_summary", interior)
                .read(st.density.meta(), Stencil::point())
                .flops(2.0)
                .nd_shape(nd)
                .run_reduce(
                    session,
                    0.0,
                    |a, b| a + b,
                    |tile| {
                        let mut s = 0.0;
                        for (i, j, k) in tile.iter() {
                            s += d.at(i, j, k);
                        }
                        s
                    },
                );
        } else {
            ParLoop::new("field_summary", interior)
                .read(st.density.meta(), Stencil::point())
                .flops(2.0)
                .nd_shape(nd)
                .run_reduce(session, 0.0, |a, b| a + b, |_| 0.0);
        }

        summarise(session, validation)
    }
}

/// Record the six reflective boundary faces; one launch per
/// (face × field), as the real code generator emits.
fn record_update_halo<'a>(
    g: &mut sycl_sim::GraphBuilder<'a>,
    block: &Block,
    fields: [(WriteView<'a, f64>, DatMeta); 3],
    nd: [usize; 3],
) {
    let n = block.dims[0] as i64;
    for dim in 0..3usize {
        for side in [-1i64, 1] {
            let range = block.face(dim, side, 2);
            // A depth-2 reflective face reads its mirror up to 3 cells
            // past the face range in the face dimension.
            let mirror = Stencil::offset_1d(dim, 3);
            for (w, meta) in fields {
                ParLoop::new("update_halo", range)
                    .read_write_stencil(meta, mirror)
                    .nd_shape(nd)
                    .record(g, move |tile| {
                        for (i, j, k) in tile.iter() {
                            let mut m = [i, j, k];
                            m[dim] = if side < 0 {
                                -1 - m[dim]
                            } else {
                                2 * n - 1 - m[dim]
                            };
                            let inb = |x: i64| (-2..n + 2).contains(&x);
                            if inb(m[0]) && inb(m[1]) && inb(m[2]) {
                                w.set(i, j, k, w.get(m[0], m[1], m[2]));
                            }
                        }
                    });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    #[test]
    fn mass_is_conserved_in_3d() {
        let app = CloverLeaf3d::test();
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(apps::CLOVERLEAF3D),
        )
        .unwrap();
        let b = app.logical_block();
        let mass0 = State::new(&b).density.interior_sum(&b);
        let run = app.run(&s);
        assert!(
            (run.validation - mass0).abs() / mass0 < 1e-9,
            "mass {mass0} -> {}",
            run.validation
        );
    }

    #[test]
    fn boundary_fraction_exceeds_the_2d_case_on_gpus() {
        // §4.1: 7.8 % vs 1.5 % on the A100 — the 3-D case is boundary-
        // heavier. Compare at paper sizes via dry runs.
        let mk = |app: &str| {
            Session::create(
                SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                    .app(app)
                    .dry_run(),
            )
            .unwrap()
        };
        let s3 = mk(apps::CLOVERLEAF3D);
        let r3 = CloverLeaf3d::paper().run(&s3);
        let s2 = mk(apps::CLOVERLEAF2D);
        let r2 = crate::CloverLeaf2d::paper().run(&s2);
        assert!(
            r3.boundary_fraction > r2.boundary_fraction,
            "3D {} vs 2D {}",
            r3.boundary_fraction,
            r2.boundary_fraction
        );
    }
}
