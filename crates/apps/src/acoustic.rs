//! Acoustic — high-order acoustic wave propagation, 1000³, f32.
//!
//! Structurally the same 8th-order leap-frog propagator as RTM but at the
//! paper's much larger 1000³ size with 30 iterations, a continuous
//! source term, and a density-weighted Laplacian that makes the kernel
//! body long enough that OpenSYCL's CPU pipeline fails to vectorise it
//! on the Ampere Altra (§4.2: "auto-vectorization did not work for SYCL
//! - but it did for MPI/OpenMP").

use crate::common::{alloc_block, phase_span, read_back, stage_uploads, summarise, App, AppRun};
use crate::rtm::LAP8;
use ops_dsl::prelude::*;
use ops_dsl::{DatMeta, ReadView, WriteView};
use sycl_sim::{quirks::apps, KernelTraits, Session};

/// An acoustic-propagation instance.
#[derive(Debug, Clone, Copy)]
pub struct Acoustic {
    pub n: usize,
    pub iterations: usize,
}

impl Acoustic {
    /// Paper configuration: 1000³, 30 iterations.
    pub fn paper() -> Self {
        Acoustic {
            n: 1000,
            iterations: 30,
        }
    }

    /// Reduced size for functional validation.
    pub fn test() -> Self {
        Acoustic {
            n: 24,
            iterations: 6,
        }
    }

    fn logical_block(&self) -> Block {
        Block::new_3d(self.n, self.n, self.n, 4)
    }
}

impl App for Acoustic {
    fn name(&self) -> &'static str {
        apps::ACOUSTIC
    }

    fn nd_shape(&self) -> [usize; 3] {
        [32, 8, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let logical = self.logical_block();
        let ab = alloc_block(session, logical);
        let interior = logical.interior();
        let nd = self.nd_shape();
        let halo = HaloPlan::for_session(&logical, session, 4, 4.0);
        let c2dt2 = 0.08f32;

        let mut prev = ops_dsl::Dat::<f32>::zeroed(&ab, "p_prev");
        let mut curr = ops_dsl::Dat::<f32>::zeroed(&ab, "p_curr");
        let mut speed = ops_dsl::Dat::<f32>::zeroed(&ab, "speed");
        speed.fill_with(|i, j, k| {
            1.0 + 0.2 * (((i + j + k).max(0) as f32) / (3.0 * ab.dims[0] as f32))
        });
        let src = (ab.dims[0] / 2) as i64;

        // The fused high-order kernel is long/branchy: OpenSYCL cannot
        // vectorise it on aarch64.
        let traits = KernelTraits {
            stride_one_inner: true,
            indirect_writes: false,
            complex_body: true,
            hard_on_neon: false,
        };

        // The source amplitude decays per iteration while the recorded
        // graphs stay fixed: the replay loop stores the amplitude here
        // and the recorded injection body loads it.
        let amp_bits = std::sync::atomic::AtomicU32::new(0);

        // Stage the three wavefield/model uploads (f32 fields).
        stage_uploads(session, &logical, &[prev.meta(), curr.meta(), speed.meta()]);

        // Two parity graphs encode the ping-pong swap (see `rtm`).
        {
            let cm = curr.meta();
            let pm = prev.meta();
            let vm = speed.meta();
            let cw = curr.writer();
            let pw = prev.writer();
            let v = speed.reader();
            let amp_bits = &amp_bits;

            let mut even = session.record();
            record_acoustic_iter(
                &mut even, &halo, cw, cm, pw, pm, v, vm, interior, nd, src, c2dt2, traits, amp_bits,
            );
            let even = even.finish();
            let mut odd = session.record();
            record_acoustic_iter(
                &mut odd, &halo, pw, pm, cw, cm, v, vm, interior, nd, src, c2dt2, traits, amp_bits,
            );
            let odd = odd.finish();

            let graphs = [even, odd];
            for it in 0..self.iterations {
                let amp = (1.0 - 0.1 * it as f32) * 0.5;
                amp_bits.store(amp.to_bits(), std::sync::atomic::Ordering::Relaxed);
                graphs[it % 2].replay(session);
            }
        }
        // After N swaps the wavefield lives in `curr` for even N.
        let field = if self.iterations.is_multiple_of(2) {
            &curr
        } else {
            &prev
        };

        // Read the final wavefield back for the host-side energy sum.
        read_back(session, &logical, &[field.meta()]);

        let _p = phase_span("energy");
        let validation = if session.executes() {
            let p = field.reader();
            ParLoop::new("energy", interior)
                .read(field.meta(), Stencil::point())
                .flops(2.0)
                .nd_shape(nd)
                .run_rows_reduce(
                    session,
                    0.0f64,
                    |a, b| a + b,
                    |acc, row| {
                        let mut s = acc;
                        for &v in p.row(row) {
                            let x = v as f64;
                            s += x * x;
                        }
                        s
                    },
                )
        } else {
            ParLoop::new("energy", interior)
                .read(field.meta(), Stencil::point())
                .flops(2.0)
                .nd_shape(nd)
                .run_reduce(session, 0.0f64, |a, b| a + b, |_| 0.0);
            f64::NAN
        };

        summarise(session, validation)
    }
}

/// Record one acoustic iteration: halo exchange, source injection into
/// `cur` (amplitude loaded from `amp_bits` at replay time), and the
/// density-weighted leap-frog step reading `cur` into `nxt`.
#[allow(clippy::too_many_arguments)]
fn record_acoustic_iter<'a>(
    g: &mut sycl_sim::GraphBuilder<'a>,
    halo: &HaloPlan,
    cur: WriteView<'a, f32>,
    cur_m: DatMeta,
    nxt: WriteView<'a, f32>,
    nxt_m: DatMeta,
    v: ReadView<'a, f32>,
    vm: DatMeta,
    interior: Range3,
    nd: [usize; 3],
    src: i64,
    c2dt2: f32,
    traits: KernelTraits,
    amp_bits: &'a std::sync::atomic::AtomicU32,
) {
    g.phase("halo_exchange");
    // Only the radius-4 stencil field needs fresh halos.
    halo.record_exchange_for(g, &[cur_m]);
    g.end_phase();

    // Continuous Ricker-style source injection (tiny loop).
    g.phase("inject_source");
    ParLoop::new(
        "inject_source",
        Range3::new_3d(src, src + 1, src, src + 1, src, src + 1),
    )
    .read_write(cur_m)
    .flops(3.0)
    .nd_shape(nd)
    .record(g, move |tile| {
        let amp = f32::from_bits(amp_bits.load(std::sync::atomic::Ordering::Relaxed));
        for (i, j, k) in tile.iter() {
            cur.set(i, j, k, cur.get(i, j, k) + amp);
        }
    });
    g.end_phase();

    // Leap-frog wave update.
    g.phase("acoustic_step");
    ParLoop::new("acoustic_step", interior)
        .read(cur_m, Stencil::star_3d(4))
        .read(vm, Stencil::point())
        .read_write(nxt_m)
        .flops(40.0)
        .traits(traits)
        .nd_shape(nd)
        .record_rows(g, move |row| {
            let pc = cur.row(row.grow_x(4));
            let pyn: [&[f32]; 4] = std::array::from_fn(|s| cur.row(row.shift(0, s as i64 + 1, 0)));
            let pys: [&[f32]; 4] =
                std::array::from_fn(|s| cur.row(row.shift(0, -(s as i64) - 1, 0)));
            let pzn: [&[f32]; 4] = std::array::from_fn(|s| cur.row(row.shift(0, 0, s as i64 + 1)));
            let pzs: [&[f32]; 4] =
                std::array::from_fn(|s| cur.row(row.shift(0, 0, -(s as i64) - 1)));
            let vr = v.row(row);
            let wr = nxt.row_mut(row);
            for x in 0..row.len() {
                let mut lap = 3.0 * LAP8[0] as f32 * pc[x + 4];
                for (s, &cf) in LAP8.iter().enumerate().skip(1) {
                    lap += cf as f32
                        * (pc[x + 4 + s]
                            + pc[x + 4 - s]
                            + pyn[s - 1][x]
                            + pys[s - 1][x]
                            + pzn[s - 1][x]
                            + pzs[s - 1][x]);
                }
                let c2 = vr[x] * vr[x];
                let next = 2.0 * pc[x + 4] - wr[x] + c2dt2 * c2 * lap;
                wr[x] = next;
            }
        });
    g.end_phase();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    #[test]
    fn source_injects_energy_and_it_spreads() {
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(apps::ACOUSTIC),
        )
        .unwrap();
        let run = Acoustic::test().run(&s);
        assert!(run.validation > 0.0);
        assert!(run.validation.is_finite());
    }

    #[test]
    fn paper_size_is_the_biggest_structured_problem() {
        // 1000³ f32 ≈ 4 GB per field: the dry-run path must not allocate.
        let s = Session::create(
            SessionConfig::new(PlatformId::Max1100, Toolchain::Dpcpp)
                .app(apps::ACOUSTIC)
                .dry_run(),
        )
        .unwrap();
        let run = Acoustic::paper().run(&s);
        assert!(run.elapsed > 0.0);
        // Source injection is a genuinely tiny launch.
        assert!(s
            .records()
            .iter()
            .any(|r| &*r.name == "inject_source" && r.boundary));
    }

    #[test]
    fn altra_opensycl_is_penalised_vs_openmp_at_paper_size() {
        // §4.2: "within 10-15% of MPI or OpenMP for most applications
        // except Acoustic, where auto-vectorization did not work".
        let run_with = |tc| {
            let s = Session::create(
                SessionConfig::new(PlatformId::Altra, tc)
                    .app(apps::ACOUSTIC)
                    .dry_run(),
            )
            .unwrap();
            Acoustic::paper().run(&s).elapsed
        };
        let omp = run_with(Toolchain::OpenMp);
        let sycl = run_with(Toolchain::OpenSycl);
        assert!(
            sycl > 1.2 * omp,
            "OpenSYCL must lose vectorisation on Altra: {sycl} vs {omp}"
        );
    }
}
