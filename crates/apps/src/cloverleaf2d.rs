//! CloverLeaf 2D — structured-mesh explicit Eulerian hydrodynamics.
//!
//! A faithful-in-structure, simplified-in-physics CloverLeaf: an ideal-gas
//! hydro step with equation of state, CFL reduction, acceleration from
//! pressure gradients, conservative donor-cell advection, and PdV work —
//! plus the reflective halo-update boundary loops whose launch cost the
//! paper uses to expose per-kernel overheads (§4.1/§4.2). Double
//! precision, paper size 7680², 50 iterations.

use crate::common::{alloc_block, phase_span, summarise, App, AppRun};
use ops_dsl::prelude::*;
use sycl_sim::{quirks::apps, Session};

const GAMMA: f64 = 1.4;

/// CloverLeaf 2D instance.
#[derive(Debug, Clone, Copy)]
pub struct CloverLeaf2d {
    pub n: usize,
    pub iterations: usize,
}

impl CloverLeaf2d {
    /// The paper's configuration: 7680², 50 iterations.
    pub fn paper() -> Self {
        CloverLeaf2d {
            n: 7680,
            iterations: 50,
        }
    }

    /// Reduced size for functional validation.
    pub fn test() -> Self {
        CloverLeaf2d {
            n: 48,
            iterations: 8,
        }
    }

    fn logical_block(&self) -> Block {
        Block::new_2d(self.n, self.n, 2)
    }
}

/// Field state for one run.
struct State {
    density: ops_dsl::Dat<f64>,
    energy: ops_dsl::Dat<f64>,
    pressure: ops_dsl::Dat<f64>,
    soundspeed: ops_dsl::Dat<f64>,
    xvel: ops_dsl::Dat<f64>,
    yvel: ops_dsl::Dat<f64>,
    flux_x: ops_dsl::Dat<f64>,
    flux_y: ops_dsl::Dat<f64>,
    viscosity: ops_dsl::Dat<f64>,
    work: ops_dsl::Dat<f64>,
}

impl State {
    fn new(b: &Block) -> State {
        let mut density = ops_dsl::Dat::zeroed(b, "density");
        let mut energy = ops_dsl::Dat::zeroed(b, "energy");
        let mut xvel = ops_dsl::Dat::zeroed(b, "xvel");
        let mut yvel = ops_dsl::Dat::zeroed(b, "yvel");
        let (nx, ny) = (b.dims[0] as f64, b.dims[1] as f64);
        // A dense, hot square in a light ambient gas (the classic
        // CloverLeaf setup), gentle background velocity field.
        density.fill_with(|i, j, _| {
            let (x, y) = (i as f64 / nx, j as f64 / ny);
            if x < 0.3 && y < 0.3 {
                2.0
            } else {
                1.0
            }
        });
        energy.fill_with(|i, j, _| {
            let (x, y) = (i as f64 / nx, j as f64 / ny);
            if x < 0.3 && y < 0.3 {
                2.5
            } else {
                1.0
            }
        });
        xvel.fill_with(|i, j, _| {
            0.05 * ((i as f64 / nx) * std::f64::consts::TAU).sin()
                * ((j as f64 / ny) * std::f64::consts::TAU).cos()
        });
        yvel.fill_with(|i, j, _| {
            -0.05
                * ((i as f64 / nx) * std::f64::consts::TAU).cos()
                * ((j as f64 / ny) * std::f64::consts::TAU).sin()
        });
        State {
            density,
            energy,
            pressure: ops_dsl::Dat::zeroed(b, "pressure"),
            soundspeed: ops_dsl::Dat::zeroed(b, "soundspeed"),
            xvel,
            yvel,
            flux_x: ops_dsl::Dat::zeroed(b, "flux_x"),
            flux_y: ops_dsl::Dat::zeroed(b, "flux_y"),
            viscosity: ops_dsl::Dat::zeroed(b, "viscosity"),
            work: ops_dsl::Dat::zeroed(b, "work"),
        }
    }
}

impl App for CloverLeaf2d {
    fn name(&self) -> &'static str {
        apps::CLOVERLEAF2D
    }

    fn nd_shape(&self) -> [usize; 3] {
        [128, 2, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let logical = self.logical_block();
        let ab = alloc_block(session, logical);
        let mut st = State::new(&ab);
        let interior = logical.interior();
        let nx = logical.dims[0] as i64;
        let ny = logical.dims[1] as i64;
        let dx = 1.0 / nx as f64;
        let halo = HaloPlan::for_session(&logical, session, 2, 8.0);
        let nd = self.nd_shape();

        let mut validation = f64::NAN;
        for _ in 0..self.iterations {
            // -- ideal_gas: equation of state ---------------------------
            {
                let _p = phase_span("ideal_gas");
                let d = st.density.reader();
                let e = st.energy.reader();
                let (pm, sm) = (st.pressure.meta(), st.soundspeed.meta());
                let p = st.pressure.writer();
                let ss = st.soundspeed.writer();
                ParLoop::new("ideal_gas", interior)
                    .read(st.density.meta(), Stencil::point())
                    .read(st.energy.meta(), Stencil::point())
                    .write(pm)
                    .write(sm)
                    .flops(8.0)
                    .transcendentals(1.0)
                    .nd_shape(nd)
                    .run_rows(session, |row| {
                        let dr = d.row(row);
                        let er = e.row(row);
                        let pr = p.row_mut(row);
                        let cr = ss.row_mut(row);
                        for x in 0..row.len() {
                            let rho = dr[x].max(1e-12);
                            let pv = (GAMMA - 1.0) * rho * er[x].max(0.0);
                            pr[x] = pv;
                            cr[x] = (GAMMA * pv / rho).sqrt();
                        }
                    });
            }

            // -- viscosity: artificial viscous pressure (compression
            //    limiter on velocity gradients) -------------------------
            {
                let _p = phase_span("viscosity");
                let d = st.density.reader();
                let u = st.xvel.reader();
                let v = st.yvel.reader();
                let vm = st.viscosity.meta();
                let q = st.viscosity.writer();
                ParLoop::new("viscosity", interior)
                    .read(st.density.meta(), Stencil::point())
                    .read(st.xvel.meta(), Stencil::star_2d(1))
                    .read(st.yvel.meta(), Stencil::star_2d(1))
                    .write(vm)
                    .flops(22.0)
                    .nd_shape(nd)
                    .run_rows(session, |row| {
                        let dr = d.row(row);
                        let uc = u.row(row.grow_x(1));
                        let vn = v.row(row.shift(0, 1, 0));
                        let vs = v.row(row.shift(0, -1, 0));
                        let qr = q.row_mut(row);
                        for x in 0..row.len() {
                            let div = uc[x + 2] - uc[x] + vn[x] - vs[x];
                            qr[x] = if div < 0.0 {
                                2.0 * dr[x] * div * div
                            } else {
                                0.0
                            };
                        }
                    });
            }

            // -- update_halo: reflective boundaries (the latency probe) --
            {
                let _p = phase_span("update_halo");
                update_halo(session, &logical, &mut st, nd);
                halo.exchange(session, 6);
            }

            // -- calc_dt: CFL reduction ----------------------------------
            let dt = {
                let _p = phase_span("calc_dt");
                let ss = st.soundspeed.reader();
                let u = st.xvel.reader();
                let v = st.yvel.reader();
                let local = ParLoop::new("calc_dt", interior)
                    .read(st.soundspeed.meta(), Stencil::point())
                    .read(st.xvel.meta(), Stencil::point())
                    .read(st.yvel.meta(), Stencil::point())
                    .flops(12.0)
                    .nd_shape(nd)
                    .run_rows_reduce(session, f64::INFINITY, f64::min, |acc, row| {
                        let sr = ss.row(row);
                        let ur = u.row(row);
                        let vr = v.row(row);
                        let mut m = acc;
                        for x in 0..row.len() {
                            let w = sr[x] + ur[x].abs() + vr[x].abs();
                            m = m.min(dx / w.max(1e-12));
                        }
                        m
                    });
                (0.2 * local).clamp(1e-9, 0.01)
            };

            // -- accelerate: pressure-gradient kick ----------------------
            {
                let _p = phase_span("accelerate");
                let p = st.pressure.reader();
                let d = st.density.reader();
                let (um, vm) = (st.xvel.meta(), st.yvel.meta());
                let u = st.xvel.writer();
                let v = st.yvel.writer();
                ParLoop::new("accelerate", interior)
                    .read(st.pressure.meta(), Stencil::star_2d(1))
                    .read(st.density.meta(), Stencil::point())
                    .read_write(um)
                    .read_write(vm)
                    .flops(16.0)
                    .nd_shape(nd)
                    .run(session, |tile| {
                        for (i, j, k) in tile.iter() {
                            let rho = d.at(i, j, k).max(1e-12);
                            let gx = (p.at(i + 1, j, k) - p.at(i - 1, j, k)) / (2.0 * dx);
                            let gy = (p.at(i, j + 1, k) - p.at(i, j - 1, k)) / (2.0 * dx);
                            u.set(i, j, k, u.get(i, j, k) - dt * gx / rho);
                            v.set(i, j, k, v.get(i, j, k) - dt * gy / rho);
                        }
                    });
            }

            // -- flux_calc: donor-cell face fluxes -----------------------
            {
                let _p = phase_span("flux_calc");
                let d = st.density.reader();
                let u = st.xvel.reader();
                let v = st.yvel.reader();
                let (fxm, fym) = (st.flux_x.meta(), st.flux_y.meta());
                let fx = st.flux_x.writer();
                let fy = st.flux_y.writer();
                // Faces between i and i+1 exist for i < nx-1 (wall fluxes
                // stay zero ⇒ exact conservation).
                let face_range = Range3::new_2d(0, nx - 1, 0, ny - 1);
                ParLoop::new("flux_calc", face_range)
                    .read(st.density.meta(), Stencil::star_2d(1))
                    .read(st.xvel.meta(), Stencil::star_2d(1))
                    .read(st.yvel.meta(), Stencil::star_2d(1))
                    .write(fxm)
                    .write(fym)
                    .flops(12.0)
                    .nd_shape(nd)
                    .run(session, |tile| {
                        for (i, j, k) in tile.iter() {
                            let ux = 0.5 * (u.at(i, j, k) + u.at(i + 1, j, k));
                            let upwind_x = if ux > 0.0 {
                                d.at(i, j, k)
                            } else {
                                d.at(i + 1, j, k)
                            };
                            fx.set(i, j, k, dt * ux * upwind_x / dx);
                            let vy = 0.5 * (v.at(i, j, k) + v.at(i, j + 1, k));
                            let upwind_y = if vy > 0.0 {
                                d.at(i, j, k)
                            } else {
                                d.at(i, j + 1, k)
                            };
                            fy.set(i, j, k, dt * vy * upwind_y / dx);
                        }
                    });
            }

            // -- advec_cell: conservative update -------------------------
            {
                let _p = phase_span("advec_cell");
                let fx = st.flux_x.reader();
                let fy = st.flux_y.reader();
                let dm = st.density.meta();
                let d = st.density.writer();
                ParLoop::new("advec_cell", interior)
                    .read(st.flux_x.meta(), Stencil::star_2d(1))
                    .read(st.flux_y.meta(), Stencil::star_2d(1))
                    .read_write(dm)
                    .flops(10.0)
                    .nd_shape(nd)
                    .run_rows(session, |row| {
                        let fxc = fx.row(row.grow_x(1));
                        let fys = fy.row(row.shift(0, -1, 0));
                        let fyc = fy.row(row);
                        let dr = d.row_mut(row);
                        for x in 0..row.len() {
                            let div = fxc[x] - fxc[x + 1] + fys[x] - fyc[x];
                            dr[x] += div;
                        }
                    });
            }

            // -- advec_mom: momentum advection (two sweeps: work array
            //    then velocity update, as the real CloverLeaf does) ------
            {
                let _p = phase_span("advec_mom");
                let d = st.density.reader();
                let u = st.xvel.reader();
                let wm = st.work.meta();
                let w = st.work.writer();
                ParLoop::new("advec_mom", interior)
                    .read(st.density.meta(), Stencil::star_2d(2))
                    .read(st.xvel.meta(), Stencil::star_2d(2))
                    .write(wm)
                    .flops(28.0)
                    .nd_shape(nd)
                    .run(session, |tile| {
                        for (i, j, k) in tile.iter() {
                            // Mass-weighted upwind average of momentum.
                            let m = 0.25
                                * (d.at(i - 1, j, k)
                                    + d.at(i + 1, j, k)
                                    + d.at(i, j - 1, k)
                                    + d.at(i, j + 1, k));
                            let mom = 0.25
                                * (u.at(i - 1, j, k)
                                    + u.at(i + 1, j, k)
                                    + u.at(i, j - 1, k)
                                    + u.at(i, j + 1, k));
                            w.set(i, j, k, m * mom);
                        }
                    });
                let wk = st.work.reader();
                let d2 = st.density.reader();
                let um = st.xvel.meta();
                let uv = st.xvel.writer();
                ParLoop::new("advec_mom", interior)
                    .read(st.work.meta(), Stencil::point())
                    .read(st.density.meta(), Stencil::point())
                    .read_write(um)
                    .flops(8.0)
                    .nd_shape(nd)
                    .run(session, |tile| {
                        for (i, j, k) in tile.iter() {
                            let rho = d2.at(i, j, k).max(1e-12);
                            let blended = 0.98 * uv.get(i, j, k) + 0.02 * wk.at(i, j, k) / rho;
                            uv.set(i, j, k, blended);
                        }
                    });
            }

            // Post-advection halo refresh (the real CloverLeaf updates
            // halos again before the PdV stage).
            {
                let _p = phase_span("update_halo");
                update_halo(session, &logical, &mut st, nd);
            }

            // -- pdv: compression work -----------------------------------
            {
                let _p = phase_span("pdv");
                let p = st.pressure.reader();
                let q = st.viscosity.reader();
                let d = st.density.reader();
                let u = st.xvel.reader();
                let v = st.yvel.reader();
                let em = st.energy.meta();
                let e = st.energy.writer();
                ParLoop::new("pdv", interior)
                    .read(st.pressure.meta(), Stencil::point())
                    .read(st.viscosity.meta(), Stencil::point())
                    .read(st.density.meta(), Stencil::point())
                    .read(st.xvel.meta(), Stencil::star_2d(1))
                    .read(st.yvel.meta(), Stencil::star_2d(1))
                    .read_write(em)
                    .flops(20.0)
                    .nd_shape(nd)
                    .run_rows(session, |row| {
                        let uc = u.row(row.grow_x(1));
                        let vn = v.row(row.shift(0, 1, 0));
                        let vs = v.row(row.shift(0, -1, 0));
                        let dr = d.row(row);
                        let pr = p.row(row);
                        let qr = q.row(row);
                        let er = e.row_mut(row);
                        for x in 0..row.len() {
                            let div = (uc[x + 2] - uc[x] + vn[x] - vs[x]) / (2.0 * dx);
                            let rho = dr[x].max(1e-12);
                            let de = -(pr[x] + qr[x]) * div * dt / rho;
                            er[x] = (er[x] + de).max(1e-9);
                        }
                    });
            }
        }

        // -- field_summary: conserved quantities -------------------------
        let _p = phase_span("field_summary");
        if session.executes() {
            let d = st.density.reader();
            let e = st.energy.reader();
            validation = ParLoop::new("field_summary", interior)
                .read(st.density.meta(), Stencil::point())
                .read(st.energy.meta(), Stencil::point())
                .flops(3.0)
                .nd_shape(nd)
                .run_reduce(
                    session,
                    0.0,
                    |a, b| a + b,
                    |tile| {
                        let mut s = 0.0;
                        for (i, j, k) in tile.iter() {
                            s += d.at(i, j, k);
                            let _ = e.at(i, j, k);
                        }
                        s
                    },
                );
        } else {
            // Still price the summary loop on dry runs.
            let lp = ParLoop::new("field_summary", interior)
                .read(st.density.meta(), Stencil::point())
                .read(st.energy.meta(), Stencil::point())
                .flops(3.0)
                .nd_shape(nd);
            lp.run_reduce(session, 0.0, |a, b| a + b, |_| 0.0);
        }

        summarise(session, validation)
    }
}

/// The reflective halo-update loops. As in the real CloverLeaf, each
/// (face × field) is its own kernel launch — these tiny, latency-bound
/// loops are the paper's per-kernel overhead probe (§4.1/§4.2).
fn update_halo(session: &Session, block: &Block, st: &mut State, nd: [usize; 3]) {
    let nx = block.dims[0] as i64;
    let ny = block.dims[1] as i64;
    for (dim, side, extent) in [(0usize, -1i64, nx), (0, 1, nx), (1, -1, ny), (1, 1, ny)] {
        let range = block.face(dim, side, 2);
        // A depth-2 reflective face reads its mirror up to 3 cells past
        // the face range in the face dimension.
        let mirror = Stencil::offset_1d(dim, 3);
        let metas = [st.density.meta(), st.energy.meta(), st.pressure.meta()];
        let fields = [
            st.density.writer(),
            st.energy.writer(),
            st.pressure.writer(),
        ];
        for (w, meta) in fields.into_iter().zip(metas) {
            ParLoop::new("update_halo", range)
                .read_write_stencil(meta, mirror)
                .flops(0.0)
                .nd_shape(nd)
                .run(session, |tile| {
                    for (i, j, k) in tile.iter() {
                        // Mirror index inside the domain for this face.
                        let (mi, mj) = match (dim, side > 0) {
                            (0, false) => (-1 - i, j),
                            (0, true) => (2 * extent - 1 - i, j),
                            (1, false) => (i, -1 - j),
                            _ => (i, 2 * extent - 1 - j),
                        };
                        // Corners mirror out of range; skip.
                        if mi < -2 || mi >= nx + 2 || mj < -2 || mj >= ny + 2 {
                            continue;
                        }
                        w.set(i, j, k, w.get(mi, mj, k));
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, SyclVariant, Toolchain};

    fn live_session() -> Session {
        Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(apps::CLOVERLEAF2D),
        )
        .unwrap()
    }

    #[test]
    fn mass_is_conserved_by_the_advection_scheme() {
        let app = CloverLeaf2d::test();
        let s = live_session();
        // Total mass before = interior sum of the initial condition.
        let b = app.logical_block();
        let init = State::new(&b);
        let mass0 = init.density.interior_sum(&b);
        let run = app.run(&s);
        assert!(
            (run.validation - mass0).abs() / mass0 < 1e-9,
            "mass {} -> {}",
            mass0,
            run.validation
        );
    }

    #[test]
    fn boundary_loops_show_up_in_the_ledger() {
        let app = CloverLeaf2d::test();
        let s = live_session();
        app.run(&s);
        let frac = s.boundary_fraction();
        assert!(frac > 0.0, "halo loops must be latency-accounted");
        let names: Vec<String> = s.records().iter().map(|r| r.name.to_string()).collect();
        assert!(names.iter().any(|n| n == "update_halo"));
        assert!(names.iter().any(|n| n == "advec_cell"));
    }

    #[test]
    fn dry_run_prices_the_paper_size_without_allocating() {
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app(apps::CLOVERLEAF2D)
                .variant(SyclVariant::NdRange([128, 2, 1]))
                .dry_run(),
        )
        .unwrap();
        let run = CloverLeaf2d::paper().run(&s);
        assert!(run.elapsed > 0.0);
        assert!(run.validation.is_nan());
        // A100 CloverLeaf 2D: paper reports up to 92% efficiency and
        // 1.5% boundary time — sanity-band the simulated numbers.
        let eff = run.effective_bandwidth / s.platform().mem.stream_bw;
        assert!(eff > 0.5 && eff < 1.2, "efficiency {eff}");
        assert!(run.boundary_fraction < 0.2);
    }

    #[test]
    fn energy_stays_positive() {
        let app = CloverLeaf2d::test();
        let s = live_session();
        app.run(&s);
        // validation is the density sum; rerun manually for energy:
        let b = app.logical_block();
        let st = State::new(&b);
        assert!(st.energy.interior_sum(&b) > 0.0);
    }
}
