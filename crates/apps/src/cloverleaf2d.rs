//! CloverLeaf 2D — structured-mesh explicit Eulerian hydrodynamics.
//!
//! A faithful-in-structure, simplified-in-physics CloverLeaf: an ideal-gas
//! hydro step with equation of state, CFL reduction, acceleration from
//! pressure gradients, conservative donor-cell advection, and PdV work —
//! plus the reflective halo-update boundary loops whose launch cost the
//! paper uses to expose per-kernel overheads (§4.1/§4.2). Double
//! precision, paper size 7680², 50 iterations.

use crate::common::{alloc_block, phase_span, read_back, stage_uploads, summarise, App, AppRun};
use ops_dsl::prelude::*;
use ops_dsl::{DatMeta, WriteView};
use sycl_sim::{quirks::apps, Session};

const GAMMA: f64 = 1.4;

/// CloverLeaf 2D instance.
#[derive(Debug, Clone, Copy)]
pub struct CloverLeaf2d {
    pub n: usize,
    pub iterations: usize,
}

impl CloverLeaf2d {
    /// The paper's configuration: 7680², 50 iterations.
    pub fn paper() -> Self {
        CloverLeaf2d {
            n: 7680,
            iterations: 50,
        }
    }

    /// Reduced size for functional validation.
    pub fn test() -> Self {
        CloverLeaf2d {
            n: 48,
            iterations: 8,
        }
    }

    fn logical_block(&self) -> Block {
        Block::new_2d(self.n, self.n, 2)
    }
}

/// Field state for one run.
struct State {
    density: ops_dsl::Dat<f64>,
    energy: ops_dsl::Dat<f64>,
    pressure: ops_dsl::Dat<f64>,
    soundspeed: ops_dsl::Dat<f64>,
    xvel: ops_dsl::Dat<f64>,
    yvel: ops_dsl::Dat<f64>,
    flux_x: ops_dsl::Dat<f64>,
    flux_y: ops_dsl::Dat<f64>,
    viscosity: ops_dsl::Dat<f64>,
    work: ops_dsl::Dat<f64>,
}

impl State {
    fn new(b: &Block) -> State {
        let mut density = ops_dsl::Dat::zeroed(b, "density");
        let mut energy = ops_dsl::Dat::zeroed(b, "energy");
        let mut xvel = ops_dsl::Dat::zeroed(b, "xvel");
        let mut yvel = ops_dsl::Dat::zeroed(b, "yvel");
        let (nx, ny) = (b.dims[0] as f64, b.dims[1] as f64);
        // A dense, hot square in a light ambient gas (the classic
        // CloverLeaf setup), gentle background velocity field.
        density.fill_with(|i, j, _| {
            let (x, y) = (i as f64 / nx, j as f64 / ny);
            if x < 0.3 && y < 0.3 {
                2.0
            } else {
                1.0
            }
        });
        energy.fill_with(|i, j, _| {
            let (x, y) = (i as f64 / nx, j as f64 / ny);
            if x < 0.3 && y < 0.3 {
                2.5
            } else {
                1.0
            }
        });
        xvel.fill_with(|i, j, _| {
            0.05 * ((i as f64 / nx) * std::f64::consts::TAU).sin()
                * ((j as f64 / ny) * std::f64::consts::TAU).cos()
        });
        yvel.fill_with(|i, j, _| {
            -0.05
                * ((i as f64 / nx) * std::f64::consts::TAU).cos()
                * ((j as f64 / ny) * std::f64::consts::TAU).sin()
        });
        State {
            density,
            energy,
            pressure: ops_dsl::Dat::zeroed(b, "pressure"),
            soundspeed: ops_dsl::Dat::zeroed(b, "soundspeed"),
            xvel,
            yvel,
            flux_x: ops_dsl::Dat::zeroed(b, "flux_x"),
            flux_y: ops_dsl::Dat::zeroed(b, "flux_y"),
            viscosity: ops_dsl::Dat::zeroed(b, "viscosity"),
            work: ops_dsl::Dat::zeroed(b, "work"),
        }
    }
}

impl App for CloverLeaf2d {
    fn name(&self) -> &'static str {
        apps::CLOVERLEAF2D
    }

    fn nd_shape(&self) -> [usize; 3] {
        [128, 2, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let logical = self.logical_block();
        let ab = alloc_block(session, logical);
        let mut st = State::new(&ab);
        let interior = logical.interior();
        let nx = logical.dims[0] as i64;
        let ny = logical.dims[1] as i64;
        let dx = 1.0 / nx as f64;
        let halo = HaloPlan::for_session(&logical, session, 2, 8.0);
        let nd = self.nd_shape();

        // The timestep crosses launch boundaries: the CFL reduction's
        // sink stores it here and later recorded bodies load it, so one
        // recorded iteration stays valid for every replay.
        let dt_bits = std::sync::atomic::AtomicU64::new(0.01f64.to_bits());
        let load_dt = || f64::from_bits(dt_bits.load(std::sync::atomic::Ordering::Relaxed));

        // Stage the initial field uploads. SYCL buffers copy host data
        // lazily when the first kernel touches them; recording the
        // staging graph makes that traffic explicit and priced.
        stage_uploads(
            session,
            &logical,
            &[
                st.density.meta(),
                st.energy.meta(),
                st.pressure.meta(),
                st.soundspeed.meta(),
                st.xvel.meta(),
                st.yvel.meta(),
                st.flux_x.meta(),
                st.flux_y.meta(),
                st.viscosity.meta(),
                st.work.meta(),
            ],
        );

        // Record one timestep, then replay it `iterations` times: the
        // graph prices and commits each replay under a single lock pair
        // instead of one per launch.
        {
            // Metas first (shared borrows), then one exclusive view per
            // dat shared by every recorded body — reads on written dats
            // go through the same view.
            let dm = st.density.meta();
            let em = st.energy.meta();
            let pm = st.pressure.meta();
            let sm = st.soundspeed.meta();
            let um = st.xvel.meta();
            let vm = st.yvel.meta();
            let fxm = st.flux_x.meta();
            let fym = st.flux_y.meta();
            let qm = st.viscosity.meta();
            let wm = st.work.meta();
            let d = st.density.writer();
            let e = st.energy.writer();
            let p = st.pressure.writer();
            let ss = st.soundspeed.writer();
            let u = st.xvel.writer();
            let v = st.yvel.writer();
            let fx = st.flux_x.writer();
            let fy = st.flux_y.writer();
            let q = st.viscosity.writer();
            let w = st.work.writer();
            let dt_bits = &dt_bits;
            let load_dt = &load_dt;

            let mut g = session.record();

            // -- ideal_gas: equation of state ---------------------------
            g.phase("ideal_gas");
            ParLoop::new("ideal_gas", interior)
                .read(dm, Stencil::point())
                .read(em, Stencil::point())
                .write(pm)
                .write(sm)
                .flops(8.0)
                .transcendentals(1.0)
                .nd_shape(nd)
                .record_rows(&mut g, move |row| {
                    let dr = d.row(row);
                    let er = e.row(row);
                    let pr = p.row_mut(row);
                    let cr = ss.row_mut(row);
                    for x in 0..row.len() {
                        let rho = dr[x].max(1e-12);
                        let pv = (GAMMA - 1.0) * rho * er[x].max(0.0);
                        pr[x] = pv;
                        cr[x] = (GAMMA * pv / rho).sqrt();
                    }
                });
            g.end_phase();

            // -- viscosity: artificial viscous pressure (compression
            //    limiter on velocity gradients) -------------------------
            g.phase("viscosity");
            ParLoop::new("viscosity", interior)
                .read(dm, Stencil::point())
                .read(um, Stencil::star_2d(1))
                .read(vm, Stencil::star_2d(1))
                .write(qm)
                .flops(22.0)
                .nd_shape(nd)
                .record_rows(&mut g, move |row| {
                    let dr = d.row(row);
                    let uc = u.row(row.grow_x(1));
                    let vn = v.row(row.shift(0, 1, 0));
                    let vs = v.row(row.shift(0, -1, 0));
                    let qr = q.row_mut(row);
                    for x in 0..row.len() {
                        let div = uc[x + 2] - uc[x] + vn[x] - vs[x];
                        qr[x] = if div < 0.0 {
                            2.0 * dr[x] * div * div
                        } else {
                            0.0
                        };
                    }
                });
            g.end_phase();

            // -- update_halo: reflective boundaries (the latency probe) --
            g.phase("update_halo");
            record_update_halo(&mut g, &logical, [(d, dm), (e, em), (p, pm)], nd);
            // The six stencil-read-after-write fields: density (flux_calc,
            // advec_mom), velocities (viscosity, pdv), pressure
            // (accelerate), and both face fluxes (advec_cell).
            halo.record_exchange_for(&mut g, &[dm, um, vm, pm, fxm, fym]);
            g.end_phase();

            // -- calc_dt: CFL reduction ----------------------------------
            g.phase("calc_dt");
            ParLoop::new("calc_dt", interior)
                .read(sm, Stencil::point())
                .read(um, Stencil::point())
                .read(vm, Stencil::point())
                .flops(12.0)
                .nd_shape(nd)
                .record_rows_reduce(
                    &mut g,
                    f64::INFINITY,
                    f64::min,
                    move |acc, row| {
                        let sr = ss.row(row);
                        let ur = u.row(row);
                        let vr = v.row(row);
                        let mut m = acc;
                        for x in 0..row.len() {
                            let w = sr[x] + ur[x].abs() + vr[x].abs();
                            m = m.min(dx / w.max(1e-12));
                        }
                        m
                    },
                    move |local| {
                        let dt = (0.2 * local).clamp(1e-9, 0.01);
                        dt_bits.store(dt.to_bits(), std::sync::atomic::Ordering::Relaxed);
                    },
                );
            g.end_phase();

            // -- accelerate: pressure-gradient kick ----------------------
            g.phase("accelerate");
            ParLoop::new("accelerate", interior)
                .read(pm, Stencil::star_2d(1))
                .read(dm, Stencil::point())
                .read_write(um)
                .read_write(vm)
                .flops(16.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    let dt = load_dt();
                    for (i, j, k) in tile.iter() {
                        let rho = d.get(i, j, k).max(1e-12);
                        let gx = (p.get(i + 1, j, k) - p.get(i - 1, j, k)) / (2.0 * dx);
                        let gy = (p.get(i, j + 1, k) - p.get(i, j - 1, k)) / (2.0 * dx);
                        u.set(i, j, k, u.get(i, j, k) - dt * gx / rho);
                        v.set(i, j, k, v.get(i, j, k) - dt * gy / rho);
                    }
                });
            g.end_phase();

            // -- flux_calc: donor-cell face fluxes -----------------------
            g.phase("flux_calc");
            // Faces between i and i+1 exist for i < nx-1 (wall fluxes
            // stay zero ⇒ exact conservation).
            let face_range = Range3::new_2d(0, nx - 1, 0, ny - 1);
            ParLoop::new("flux_calc", face_range)
                .read(dm, Stencil::star_2d(1))
                .read(um, Stencil::star_2d(1))
                .read(vm, Stencil::star_2d(1))
                .write(fxm)
                .write(fym)
                .flops(12.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    let dt = load_dt();
                    for (i, j, k) in tile.iter() {
                        let ux = 0.5 * (u.get(i, j, k) + u.get(i + 1, j, k));
                        let upwind_x = if ux > 0.0 {
                            d.get(i, j, k)
                        } else {
                            d.get(i + 1, j, k)
                        };
                        fx.set(i, j, k, dt * ux * upwind_x / dx);
                        let vy = 0.5 * (v.get(i, j, k) + v.get(i, j + 1, k));
                        let upwind_y = if vy > 0.0 {
                            d.get(i, j, k)
                        } else {
                            d.get(i, j + 1, k)
                        };
                        fy.set(i, j, k, dt * vy * upwind_y / dx);
                    }
                });
            g.end_phase();

            // -- advec_cell: conservative update -------------------------
            g.phase("advec_cell");
            ParLoop::new("advec_cell", interior)
                .read(fxm, Stencil::star_2d(1))
                .read(fym, Stencil::star_2d(1))
                .read_write(dm)
                .flops(10.0)
                .nd_shape(nd)
                .record_rows(&mut g, move |row| {
                    let fxc = fx.row(row.grow_x(1));
                    let fys = fy.row(row.shift(0, -1, 0));
                    let fyc = fy.row(row);
                    let dr = d.row_mut(row);
                    for x in 0..row.len() {
                        let div = fxc[x] - fxc[x + 1] + fys[x] - fyc[x];
                        dr[x] += div;
                    }
                });
            g.end_phase();

            // -- advec_mom: momentum advection (two sweeps: work array
            //    then velocity update, as the real CloverLeaf does) ------
            g.phase("advec_mom");
            ParLoop::new("advec_mom", interior)
                .read(dm, Stencil::star_2d(2))
                .read(um, Stencil::star_2d(2))
                .write(wm)
                .flops(28.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    for (i, j, k) in tile.iter() {
                        // Mass-weighted upwind average of momentum.
                        let m = 0.25
                            * (d.get(i - 1, j, k)
                                + d.get(i + 1, j, k)
                                + d.get(i, j - 1, k)
                                + d.get(i, j + 1, k));
                        let mom = 0.25
                            * (u.get(i - 1, j, k)
                                + u.get(i + 1, j, k)
                                + u.get(i, j - 1, k)
                                + u.get(i, j + 1, k));
                        w.set(i, j, k, m * mom);
                    }
                });
            ParLoop::new("advec_mom", interior)
                .read(wm, Stencil::point())
                .read(dm, Stencil::point())
                .read_write(um)
                .flops(8.0)
                .nd_shape(nd)
                .record(&mut g, move |tile| {
                    for (i, j, k) in tile.iter() {
                        let rho = d.get(i, j, k).max(1e-12);
                        let blended = 0.98 * u.get(i, j, k) + 0.02 * w.get(i, j, k) / rho;
                        u.set(i, j, k, blended);
                    }
                });
            g.end_phase();

            // Post-advection halo refresh (the real CloverLeaf updates
            // halos again before the PdV stage).
            g.phase("update_halo");
            record_update_halo(&mut g, &logical, [(d, dm), (e, em), (p, pm)], nd);
            g.end_phase();

            // -- pdv: compression work -----------------------------------
            g.phase("pdv");
            ParLoop::new("pdv", interior)
                .read(pm, Stencil::point())
                .read(qm, Stencil::point())
                .read(dm, Stencil::point())
                .read(um, Stencil::star_2d(1))
                .read(vm, Stencil::star_2d(1))
                .read_write(em)
                .flops(20.0)
                .nd_shape(nd)
                .record_rows(&mut g, move |row| {
                    let dt = load_dt();
                    let uc = u.row(row.grow_x(1));
                    let vn = v.row(row.shift(0, 1, 0));
                    let vs = v.row(row.shift(0, -1, 0));
                    let dr = d.row(row);
                    let pr = p.row(row);
                    let qr = q.row(row);
                    let er = e.row_mut(row);
                    for x in 0..row.len() {
                        let div = (uc[x + 2] - uc[x] + vn[x] - vs[x]) / (2.0 * dx);
                        let rho = dr[x].max(1e-12);
                        let de = -(pr[x] + qr[x]) * div * dt / rho;
                        er[x] = (er[x] + de).max(1e-9);
                    }
                });
            g.end_phase();

            let g = g.finish();
            for _ in 0..self.iterations {
                g.replay(session);
            }
        }

        // Read the summarised fields back: the device copies are the
        // valid ones after the timestep kernels wrote them.
        read_back(session, &logical, &[st.density.meta(), st.energy.meta()]);

        let mut validation = f64::NAN;

        // -- field_summary: conserved quantities -------------------------
        let _p = phase_span("field_summary");
        if session.executes() {
            let d = st.density.reader();
            let e = st.energy.reader();
            validation = ParLoop::new("field_summary", interior)
                .read(st.density.meta(), Stencil::point())
                .read(st.energy.meta(), Stencil::point())
                .flops(3.0)
                .nd_shape(nd)
                .run_reduce(
                    session,
                    0.0,
                    |a, b| a + b,
                    |tile| {
                        let mut s = 0.0;
                        for (i, j, k) in tile.iter() {
                            s += d.at(i, j, k);
                            let _ = e.at(i, j, k);
                        }
                        s
                    },
                );
        } else {
            // Still price the summary loop on dry runs.
            let lp = ParLoop::new("field_summary", interior)
                .read(st.density.meta(), Stencil::point())
                .read(st.energy.meta(), Stencil::point())
                .flops(3.0)
                .nd_shape(nd);
            lp.run_reduce(session, 0.0, |a, b| a + b, |_| 0.0);
        }

        summarise(session, validation)
    }
}

/// Record the reflective halo-update loops. As in the real CloverLeaf,
/// each (face × field) is its own kernel launch — these tiny, latency-
/// bound loops are the paper's per-kernel overhead probe (§4.1/§4.2).
fn record_update_halo<'a>(
    g: &mut sycl_sim::GraphBuilder<'a>,
    block: &Block,
    fields: [(WriteView<'a, f64>, DatMeta); 3],
    nd: [usize; 3],
) {
    let nx = block.dims[0] as i64;
    let ny = block.dims[1] as i64;
    for (dim, side, extent) in [(0usize, -1i64, nx), (0, 1, nx), (1, -1, ny), (1, 1, ny)] {
        let range = block.face(dim, side, 2);
        // A depth-2 reflective face reads its mirror up to 3 cells past
        // the face range in the face dimension.
        let mirror = Stencil::offset_1d(dim, 3);
        for (w, meta) in fields {
            ParLoop::new("update_halo", range)
                .read_write_stencil(meta, mirror)
                .flops(0.0)
                .nd_shape(nd)
                .record(g, move |tile| {
                    for (i, j, k) in tile.iter() {
                        // Mirror index inside the domain for this face.
                        let (mi, mj) = match (dim, side > 0) {
                            (0, false) => (-1 - i, j),
                            (0, true) => (2 * extent - 1 - i, j),
                            (1, false) => (i, -1 - j),
                            _ => (i, 2 * extent - 1 - j),
                        };
                        // Corners mirror out of range; skip.
                        if mi < -2 || mi >= nx + 2 || mj < -2 || mj >= ny + 2 {
                            continue;
                        }
                        w.set(i, j, k, w.get(mi, mj, k));
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, SyclVariant, Toolchain};

    fn live_session() -> Session {
        Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(apps::CLOVERLEAF2D),
        )
        .unwrap()
    }

    #[test]
    fn mass_is_conserved_by_the_advection_scheme() {
        let app = CloverLeaf2d::test();
        let s = live_session();
        // Total mass before = interior sum of the initial condition.
        let b = app.logical_block();
        let init = State::new(&b);
        let mass0 = init.density.interior_sum(&b);
        let run = app.run(&s);
        assert!(
            (run.validation - mass0).abs() / mass0 < 1e-9,
            "mass {} -> {}",
            mass0,
            run.validation
        );
    }

    #[test]
    fn boundary_loops_show_up_in_the_ledger() {
        let app = CloverLeaf2d::test();
        let s = live_session();
        app.run(&s);
        let frac = s.boundary_fraction();
        assert!(frac > 0.0, "halo loops must be latency-accounted");
        let names: Vec<String> = s.records().iter().map(|r| r.name.to_string()).collect();
        assert!(names.iter().any(|n| n == "update_halo"));
        assert!(names.iter().any(|n| n == "advec_cell"));
    }

    #[test]
    fn dry_run_prices_the_paper_size_without_allocating() {
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app(apps::CLOVERLEAF2D)
                .variant(SyclVariant::NdRange([128, 2, 1]))
                .dry_run(),
        )
        .unwrap();
        let run = CloverLeaf2d::paper().run(&s);
        assert!(run.elapsed > 0.0);
        assert!(run.validation.is_nan());
        // A100 CloverLeaf 2D: paper reports up to 92% efficiency and
        // 1.5% boundary time — sanity-band the simulated numbers.
        let eff = run.effective_bandwidth / s.platform().mem.stream_bw;
        assert!(eff > 0.5 && eff < 1.2, "efficiency {eff}");
        assert!(run.boundary_fraction < 0.2);
    }

    #[test]
    fn replayed_and_eager_launch_paths_are_bit_identical() {
        // The graph replay must leave the ledger (and the physics)
        // exactly as per-launch eager execution would.
        let app = CloverLeaf2d::test();
        let replayed = live_session();
        let eager = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app(apps::CLOVERLEAF2D)
                .eager_launches(),
        )
        .unwrap();
        let a = app.run(&replayed);
        let b = app.run(&eager);
        assert_eq!(replayed.ledger_digest(), eager.ledger_digest());
        assert_eq!(replayed.elapsed().to_bits(), eager.elapsed().to_bits());
        assert_eq!(a.validation.to_bits(), b.validation.to_bits());
    }

    #[test]
    fn energy_stays_positive() {
        let app = CloverLeaf2d::test();
        let s = live_session();
        app.run(&s);
        // validation is the density sum; rerun manually for energy:
        let b = app.logical_block();
        let st = State::new(&b);
        assert!(st.energy.interior_sum(&b) > 0.0);
    }
}
