//! # miniapps — the seven bandwidth-bound applications of the paper
//!
//! | App | Mesh | Precision | Paper problem | Character |
//! |-----|------|-----------|---------------|-----------|
//! | CloverLeaf 2D | structured | f64 | 7680², 50 it | low intensity, many boundary loops |
//! | CloverLeaf 3D | structured | f64 | 408³, 50 it | as above, 3-D |
//! | OpenSBLI SA | structured | f64 | 320³, 20 it | store-all: bandwidth-bound |
//! | OpenSBLI SN | structured | f64 | 320³, 20 it | store-none: recompute, higher intensity |
//! | RTM | structured | f32 | 320³, 10 it | 8th-order stencil, cache sensitive |
//! | Acoustic | structured | f32 | 1000³, 30 it | 8th-order wave propagation |
//! | MG-CFD | unstructured | f64 | Rotor37 8M vertices, 25 it | latency / indirect bound |
//!
//! Every application is implemented on the OPS/OP2 analogue DSLs with
//! *real* kernels — the numerics execute and are validated in the test
//! suite at reduced sizes (conservation, symmetry, positivity), while the
//! figure harness prices the paper-sized problems through dry-run
//! sessions (footprints depend only on sizes).

// Kernel bodies index several parallel arrays by the same element id —
// the HPC idiom clippy's needless_range_loop lint dislikes.
#![allow(clippy::needless_range_loop)]

pub mod acoustic;
pub mod cloverleaf2d;
pub mod cloverleaf3d;
pub mod common;
pub mod mgcfd;
pub mod opensbli;
pub mod rtm;

pub use acoustic::Acoustic;
pub use cloverleaf2d::CloverLeaf2d;
pub use cloverleaf3d::CloverLeaf3d;
pub use common::{App, AppRun};
pub use mgcfd::Mgcfd;
pub use opensbli::{OpenSbli, SbliVariant};
pub use rtm::Rtm;

/// The six structured-mesh apps at paper sizes, figure order.
pub fn paper_structured_apps() -> Vec<Box<dyn App>> {
    vec![
        Box::new(CloverLeaf2d::paper()),
        Box::new(CloverLeaf3d::paper()),
        Box::new(OpenSbli::paper(SbliVariant::StoreAll)),
        Box::new(OpenSbli::paper(SbliVariant::StoreNone)),
        Box::new(Rtm::paper()),
        Box::new(Acoustic::paper()),
    ]
}

/// The six structured-mesh apps at test sizes (functional validation).
pub fn test_structured_apps() -> Vec<Box<dyn App>> {
    vec![
        Box::new(CloverLeaf2d::test()),
        Box::new(CloverLeaf3d::test()),
        Box::new(OpenSbli::test(SbliVariant::StoreAll)),
        Box::new(OpenSbli::test(SbliVariant::StoreNone)),
        Box::new(Rtm::test()),
        Box::new(Acoustic::test()),
    ]
}
