//! Shared application plumbing.

use ops_dsl::{Block, DatMeta};
use sycl_sim::Session;

/// Result of one simulated application run.
#[derive(Debug, Clone, Copy)]
pub struct AppRun {
    /// Total simulated wall-clock seconds.
    pub elapsed: f64,
    /// Fraction of time in boundary-style loops (the paper's launch-
    /// overhead probe).
    pub boundary_fraction: f64,
    /// Effective bandwidth by the OP2 accounting rule, bytes/s.
    pub effective_bandwidth: f64,
    /// App-defined validation scalar (total energy, field norm, ...).
    /// NaN on dry runs (nothing executed).
    pub validation: f64,
}

/// A runnable application instance (size and iteration count baked in).
pub trait App: Send + Sync {
    /// Application id (matches `sycl_sim::quirks::apps`).
    fn name(&self) -> &'static str;
    /// The tuned work-group shape for the nd_range formulation — one
    /// shape per app, exactly as the paper tuned.
    fn nd_shape(&self) -> [usize; 3];
    /// Run the app on a session, returning the timing/validation summary.
    fn run(&self, session: &Session) -> AppRun;
}

/// RAII guard tracing one whole application run. Records a `RegionSpan`
/// named after the app when dropped (so early returns and panics during
/// a run still close the span); a no-op when telemetry is disabled.
pub struct AppSpan {
    timer: Option<telemetry::SpanTimer>,
    name: &'static str,
}

impl Drop for AppSpan {
    fn drop(&mut self) {
        if let Some(t) = self.timer.take() {
            t.finish(telemetry::SpanKind::Region, self.name, 0, 0.0);
        }
    }
}

/// Open the app-level span; hold the guard for the whole `run`.
pub fn app_span(name: &'static str) -> AppSpan {
    AppSpan {
        timer: telemetry::SpanTimer::start(),
        name,
    }
}

/// RAII guard tracing one named application phase — a group of launches
/// under one algorithmic step (`advec_cell`, `flux_calc`, ...). Emits a
/// `Phase` span when dropped; a single-branch no-op when telemetry is
/// disabled, so the functional fast path and its ledger stay untouched.
pub struct PhaseSpan {
    timer: Option<telemetry::SpanTimer>,
    name: &'static str,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(t) = self.timer.take() {
            t.finish(telemetry::SpanKind::Phase, self.name, 0, 0.0);
        }
    }
}

/// Open a phase-level span; hold the guard for the phase's launches.
pub fn phase_span(name: &'static str) -> PhaseSpan {
    PhaseSpan {
        timer: telemetry::SpanTimer::start(),
        name,
    }
}

/// The block used for *allocation*: full-size when the session executes
/// kernels, tiny when dry-running (footprints never look at the data).
pub fn alloc_block(session: &Session, logical: Block) -> Block {
    if session.executes() {
        logical
    } else {
        Block {
            dims: [
                logical.dims[0].min(4),
                logical.dims[1].min(4),
                logical.dims[2].clamp(1, 4),
            ],
            halo: logical.halo,
        }
    }
}

/// Bytes of one logically-sized field (interior + halo padding) —
/// computed from the *logical* block so dry runs, whose allocations are
/// shrunk by [`alloc_block`], still price the paper-size traffic.
pub fn field_bytes(logical: &Block, elem_bytes: f64) -> f64 {
    (logical.padded(0) * logical.padded(1) * logical.padded(2)) as f64 * elem_bytes
}

/// Record and replay the staging graph: the initial host→device uploads
/// a SYCL buffer runtime performs lazily when a kernel first touches
/// each buffer. One transfer node per dat, so the residency tracker
/// follows each dataset separately and the dataflow lint can see which
/// uploads are real. Priced through the interconnect model — nonzero on
/// CPUs too (an in-package copy), unless the session opted into
/// `eager_transfers()` legacy semantics.
pub fn stage_uploads(session: &Session, logical: &Block, dats: &[DatMeta]) {
    let mut g = session.record();
    g.phase("staging");
    for m in dats {
        g.upload_dats(field_bytes(logical, m.elem_bytes), vec![m.id]);
    }
    g.end_phase();
    g.finish().replay(session);
}

/// Record and replay the result readback: device→host downloads of the
/// fields the host-side summary reads. Elided per dat when the host
/// copy is still valid (nothing wrote the field on the device).
pub fn read_back(session: &Session, logical: &Block, dats: &[DatMeta]) {
    let mut g = session.record();
    g.phase("readback");
    for m in dats {
        g.download_dats(field_bytes(logical, m.elem_bytes), vec![m.id]);
    }
    g.end_phase();
    g.finish().replay(session);
}

/// Finish a run: collect the session ledger into an [`AppRun`].
pub fn summarise(session: &Session, validation: f64) -> AppRun {
    AppRun {
        elapsed: session.elapsed(),
        boundary_fraction: session.boundary_fraction(),
        effective_bandwidth: session.effective_bandwidth(),
        validation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    #[test]
    fn alloc_block_shrinks_only_for_dry_runs() {
        let live =
            Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("t"))
                .unwrap();
        let dry = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app("t")
                .dry_run(),
        )
        .unwrap();
        let logical = Block::new_3d(100, 100, 100, 2);
        assert_eq!(alloc_block(&live, logical).dims, [100, 100, 100]);
        assert_eq!(alloc_block(&dry, logical).dims, [4, 4, 4]);
    }
}
