//! RTM — reverse-time-migration forward pass, 320³, single precision.
//!
//! An 8th-order (radius 4) finite-difference acoustic wave propagator:
//! `p⁺ = 2p − p⁻ + dt²·c²·∇²p`, leap-frog in time over two ping-pong
//! fields plus a velocity model. The paper calls it "sensitive to cache
//! locality and vectorization" — in our model that is the radius-4 star
//! whose tile footprint overwhelms the MI250X's 16 KB L1.

use crate::common::{alloc_block, phase_span, read_back, stage_uploads, summarise, App, AppRun};
use ops_dsl::prelude::*;
use ops_dsl::{DatMeta, ReadView, WriteView};
use sycl_sim::{quirks::apps, Session};

/// 8th-order central second-derivative coefficients (h=1).
pub(crate) const LAP8: [f64; 5] = [
    -205.0 / 72.0,
    8.0 / 5.0,
    -1.0 / 5.0,
    8.0 / 315.0,
    -1.0 / 560.0,
];

/// An RTM forward-pass instance.
#[derive(Debug, Clone, Copy)]
pub struct Rtm {
    pub n: usize,
    pub iterations: usize,
}

impl Rtm {
    /// Paper configuration: 320³, 10 iterations.
    pub fn paper() -> Self {
        Rtm {
            n: 320,
            iterations: 10,
        }
    }

    /// Reduced size for functional validation.
    pub fn test() -> Self {
        Rtm {
            n: 24,
            iterations: 6,
        }
    }

    fn logical_block(&self) -> Block {
        Block::new_3d(self.n, self.n, self.n, 4)
    }
}

impl App for Rtm {
    fn name(&self) -> &'static str {
        apps::RTM
    }

    fn nd_shape(&self) -> [usize; 3] {
        [32, 8, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let logical = self.logical_block();
        let ab = alloc_block(session, logical);
        let interior = logical.interior();
        let nd = self.nd_shape();
        // RTM has "large communications volume over MPI": halo depth 4.
        let halo = HaloPlan::for_session(&logical, session, 4, 4.0);
        let n = logical.dims[0] as i64;
        let c2dt2 = 0.1f32; // (c·dt/h)² — stable for the 8th-order star.

        let mut prev = ops_dsl::Dat::<f32>::zeroed(&ab, "p_prev");
        let mut curr = ops_dsl::Dat::<f32>::zeroed(&ab, "p_curr");
        let mut vel = ops_dsl::Dat::<f32>::zeroed(&ab, "vel2");
        vel.fill_with(|_, _, k| 1.0 + 0.5 * (k.max(0) as f32 / ab.dims[2] as f32));
        // Point source at the centre.
        let c = (ab.dims[0] / 2) as i64;
        if session.executes() {
            curr.writer().set(c, c, c.min(ab.dims[2] as i64 - 1), 1.0);
        }

        // Stage the wavefields and the velocity model.
        stage_uploads(session, &logical, &[prev.meta(), curr.meta(), vel.meta()]);

        // The ping-pong swap is encoded as two parity graphs: the even
        // graph reads `curr` and writes `prev`, the odd graph the
        // reverse. Replaying them alternately reproduces the eager
        // swap-per-iteration loop with one ledger lock per iteration.
        {
            let cm = curr.meta();
            let pm = prev.meta();
            let vm = vel.meta();
            let cw = curr.writer();
            let pw = prev.writer();
            let v = vel.reader();

            let mut even = session.record();
            record_rtm_iter(
                &mut even, &halo, cw, cm, pw, pm, v, vm, &logical, nd, n, c2dt2,
            );
            let even = even.finish();
            let mut odd = session.record();
            record_rtm_iter(
                &mut odd, &halo, pw, pm, cw, cm, v, vm, &logical, nd, n, c2dt2,
            );
            let odd = odd.finish();

            let graphs = [even, odd];
            for it in 0..self.iterations {
                graphs[it % 2].replay(session);
            }
        }
        // After N swaps the wavefield lives in `curr` for even N.
        let field = if self.iterations.is_multiple_of(2) {
            &curr
        } else {
            &prev
        };

        // Read the final wavefield back for the host-side energy sum.
        read_back(session, &logical, &[field.meta()]);

        // Validation: wavefield energy (finite, non-zero once the source
        // has propagated).
        let _p = phase_span("image_energy");
        let validation = if session.executes() {
            let p = field.reader();
            ParLoop::new("image_energy", interior)
                .read(field.meta(), Stencil::point())
                .flops(2.0)
                .nd_shape(nd)
                .run_reduce(
                    session,
                    0.0f64,
                    |a, b| a + b,
                    |tile| {
                        let mut s = 0.0f64;
                        for (i, j, k) in tile.iter() {
                            let x = p.at(i, j, k) as f64;
                            s += x * x;
                        }
                        s
                    },
                )
        } else {
            ParLoop::new("image_energy", interior)
                .read(field.meta(), Stencil::point())
                .flops(2.0)
                .nd_shape(nd)
                .run_reduce(session, 0.0f64, |a, b| a + b, |_| 0.0);
            f64::NAN
        };

        summarise(session, validation)
    }
}

/// Record one leap-frog iteration: halo exchange, the 8th-order wave
/// step reading `cur` and updating `nxt` in place, then the sponge taper
/// over the freshly written field (which the eager loop reached *after*
/// its `mem::swap`).
#[allow(clippy::too_many_arguments)]
fn record_rtm_iter<'a>(
    g: &mut sycl_sim::GraphBuilder<'a>,
    halo: &HaloPlan,
    cur: WriteView<'a, f32>,
    cur_m: DatMeta,
    nxt: WriteView<'a, f32>,
    nxt_m: DatMeta,
    v: ReadView<'a, f32>,
    vm: DatMeta,
    logical: &Block,
    nd: [usize; 3],
    n: i64,
    c2dt2: f32,
) {
    let interior = logical.interior();
    g.phase("halo_exchange");
    // Only the radius-4 stencil field needs fresh halos.
    halo.record_exchange_for(g, &[cur_m]);
    g.end_phase();

    g.phase("wave_step");
    ParLoop::new("wave_step", interior)
        .read(cur_m, Stencil::star_3d(4))
        .read(vm, Stencil::point())
        .read_write(nxt_m)
        .flops(33.0)
        .nd_shape(nd)
        .record_rows(g, move |row| {
            // One grown row serves all x-shifted reads; the y/z legs are
            // their own (contiguous) rows.
            let pc = cur.row(row.grow_x(4));
            let pyn: [&[f32]; 4] = std::array::from_fn(|s| cur.row(row.shift(0, s as i64 + 1, 0)));
            let pys: [&[f32]; 4] =
                std::array::from_fn(|s| cur.row(row.shift(0, -(s as i64) - 1, 0)));
            let pzn: [&[f32]; 4] = std::array::from_fn(|s| cur.row(row.shift(0, 0, s as i64 + 1)));
            let pzs: [&[f32]; 4] =
                std::array::from_fn(|s| cur.row(row.shift(0, 0, -(s as i64) - 1)));
            let vr = v.row(row);
            let wr = nxt.row_mut(row);
            for x in 0..row.len() {
                let mut lap = 3.0 * LAP8[0] as f32 * pc[x + 4];
                for (s, &cf) in LAP8.iter().enumerate().skip(1) {
                    lap += cf as f32
                        * (pc[x + 4 + s]
                            + pc[x + 4 - s]
                            + pyn[s - 1][x]
                            + pys[s - 1][x]
                            + pzn[s - 1][x]
                            + pzs[s - 1][x]);
                }
                let next = 2.0 * pc[x + 4] - wr[x] + c2dt2 * vr[x] * lap;
                wr[x] = next;
            }
        });
    g.end_phase();

    // Sponge taper near the boundary (absorbing layer) on the freshly
    // written field.
    g.phase("taper");
    for dim in 0..3usize {
        for side in [-1i64, 1] {
            let range = logical.face(dim, side, 4);
            ParLoop::new("taper", range)
                .read_write(nxt_m)
                .flops(1.0)
                .nd_shape(nd)
                .record(g, move |tile| {
                    for (i, j, k) in tile.iter() {
                        let inb = |x: i64| (-4..n + 4).contains(&x);
                        if inb(i) && inb(j) && inb(k) {
                            nxt.set(i, j, k, 0.9 * nxt.get(i, j, k));
                        }
                    }
                });
        }
    }
    g.end_phase();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    fn live() -> Session {
        Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(apps::RTM))
            .unwrap()
    }

    #[test]
    fn the_wave_propagates_and_energy_is_finite() {
        let run = Rtm::test().run(&live());
        assert!(run.validation.is_finite());
        assert!(run.validation > 0.0, "the source must spread energy");
    }

    #[test]
    fn wavefield_stays_symmetric_around_the_source() {
        // The velocity model varies only in z, so the x/y symmetry of
        // the point source must be preserved exactly.
        let app = Rtm::test();
        let s = live();
        let logical = app.logical_block();
        let ab = logical; // live run: alloc == logical
        let mut prev = ops_dsl::Dat::<f32>::zeroed(&ab, "p_prev");
        let mut curr = ops_dsl::Dat::<f32>::zeroed(&ab, "p_curr");
        let mut vel = ops_dsl::Dat::<f32>::zeroed(&ab, "vel2");
        vel.fill_with(|_, _, k| 1.0 + 0.5 * (k.max(0) as f32 / ab.dims[2] as f32));
        let c = (ab.dims[0] / 2) as i64;
        curr.writer().set(c, c, c, 1.0);
        let nd = app.nd_shape();
        for _ in 0..4 {
            let pm = prev.meta();
            let p = curr.reader();
            let v = vel.reader();
            let w = prev.writer();
            ParLoop::new("wave_step", ab.interior())
                .read(curr.meta(), Stencil::star_3d(4))
                .read(vel.meta(), Stencil::point())
                .read_write(pm)
                .nd_shape(nd)
                .run(&s, |tile| {
                    for (i, j, k) in tile.iter() {
                        let mut lap = 3.0 * LAP8[0] as f32 * p.at(i, j, k);
                        for (sft, &cf) in LAP8.iter().enumerate().skip(1) {
                            let sft = sft as i64;
                            lap += cf as f32
                                * (p.at(i + sft, j, k)
                                    + p.at(i - sft, j, k)
                                    + p.at(i, j + sft, k)
                                    + p.at(i, j - sft, k)
                                    + p.at(i, j, k + sft)
                                    + p.at(i, j, k - sft));
                        }
                        let next = 2.0 * p.at(i, j, k) - w.get(i, j, k) + 0.1 * v.at(i, j, k) * lap;
                        w.set(i, j, k, next);
                    }
                });
            std::mem::swap(&mut prev, &mut curr);
        }
        // x/y mirror symmetry about the source.
        for off in 1..5i64 {
            let a = curr.at(c + off, c, c);
            let b = curr.at(c - off, c, c);
            assert!((a - b).abs() < 1e-6, "x asymmetry at {off}: {a} vs {b}");
            let a = curr.at(c, c + off, c);
            let b = curr.at(c, c - off, c);
            assert!((a - b).abs() < 1e-6, "y asymmetry at {off}: {a} vs {b}");
        }
        // And the wavefront must have moved off the source point.
        assert!(curr.at(c + 4, c, c).abs() > 0.0);
    }

    #[test]
    fn paper_size_dry_run_prices_every_kernel() {
        let s = Session::create(
            SessionConfig::new(PlatformId::Mi250x, Toolchain::NativeHip)
                .app(apps::RTM)
                .dry_run(),
        )
        .unwrap();
        let run = Rtm::paper().run(&s);
        assert!(run.elapsed > 0.0);
        let names: Vec<String> = s.records().iter().map(|r| r.name.to_string()).collect();
        assert!(names.iter().any(|n| n == "wave_step"));
        assert!(names.iter().any(|n| n == "taper"));
    }
}
