//! OpenSBLI — structured finite-difference Navier–Stokes, 320³, f64.
//!
//! The paper benchmarks two code-generation variants of the same solver:
//!
//! * **Store All (SA)** — derivative work arrays are computed once per
//!   Runge-Kutta stage and stored, so the time loop is a chain of cheap,
//!   bandwidth-bound sweeps over many datasets (92 % efficiency on the
//!   A100);
//! * **Store None (SN)** — derivatives are recomputed inside one fused
//!   kernel: ~3× the FLOPs, a third of the datasets, still mostly
//!   bandwidth bound (74 % on the A100). SN's fused body is long and
//!   branchy — it is the kernel that "failed to vectorize across all
//!   variants" on the Ampere Altra (§4.2).
//!
//! Physics: a 3-D advection–diffusion system over five conserved-style
//! fields, 4th-order central first derivatives (radius 2), 2nd-order
//! Laplacian, Williamson low-storage RK3 time integration, periodic
//! boundaries. Both variants implement *exactly* the same scheme, so
//! their results must agree to the bit — which the test suite asserts.

use crate::common::{alloc_block, phase_span, read_back, stage_uploads, summarise, App, AppRun};
use ops_dsl::prelude::*;
use ops_dsl::{DatMeta, WriteView};
use sycl_sim::{quirks::apps, KernelTraits, Session};

const N_VARS: usize = 5;
/// 4th-order central first-derivative coefficients (h=1):
/// f' ≈ (−f₊₂ + 8f₊₁ − 8f₋₁ + f₋₂)/12.
const C1: f64 = 8.0 / 12.0;
const C2: f64 = -1.0 / 12.0;
const NU: f64 = 0.02;
const ADV: [f64; 3] = [0.7, -0.4, 0.2];
/// Williamson low-storage RK3.
const RK_A: [f64; 3] = [0.0, -5.0 / 9.0, -153.0 / 128.0];
const RK_B: [f64; 3] = [1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0];

/// Which code-generation variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbliVariant {
    StoreAll,
    StoreNone,
}

/// An OpenSBLI instance.
#[derive(Debug, Clone, Copy)]
pub struct OpenSbli {
    pub n: usize,
    pub iterations: usize,
    pub variant: SbliVariant,
}

impl OpenSbli {
    /// Paper configuration: 320³, 20 iterations.
    pub fn paper(variant: SbliVariant) -> Self {
        OpenSbli {
            n: 320,
            iterations: 20,
            variant,
        }
    }

    /// Reduced size for functional validation.
    pub fn test(variant: SbliVariant) -> Self {
        OpenSbli {
            n: 16,
            iterations: 3,
            variant,
        }
    }

    fn logical_block(&self) -> Block {
        Block::new_3d(self.n, self.n, self.n, 2)
    }

    /// Record the periodic halo fill for one field.
    fn record_periodic_halo<'a>(
        g: &mut sycl_sim::GraphBuilder<'a>,
        block: &Block,
        w: WriteView<'a, f64>,
        meta: DatMeta,
        nd: [usize; 3],
    ) {
        let n = block.dims[0] as i64;
        for dim in 0..3usize {
            for side in [-1i64, 1] {
                let range = block.face(dim, side, 2);
                // The periodic wrap reads from the opposite side of the
                // domain: a full-extent offset in the face dimension.
                let wrap = Stencil::offset_1d(dim, n as usize);
                ParLoop::new("periodic_halo", range)
                    .read_write_stencil(meta, wrap)
                    .nd_shape(nd)
                    .record(g, move |tile| {
                        for (i, j, k) in tile.iter() {
                            let mut m = [i, j, k];
                            m[dim] = (m[dim] + n) % n;
                            let inb = |x: i64| (-2..n + 2).contains(&x);
                            if inb(m[0]) && inb(m[1]) && inb(m[2]) {
                                w.set(i, j, k, w.get(m[0], m[1], m[2]));
                            }
                        }
                    });
            }
        }
    }
}

/// The right-hand side of the scheme at one point, from values sampled
/// by `f(dir, shift)`. Shared verbatim by both variants so they stay
/// bit-identical.
#[inline]
fn rhs_at(centre: f64, f: impl Fn(usize, i64) -> f64) -> f64 {
    let mut adv = 0.0;
    let mut lap = 0.0;
    for dir in 0..3 {
        let g = C1 * (f(dir, 1) - f(dir, -1)) + C2 * (f(dir, 2) - f(dir, -2));
        adv += ADV[dir] * g;
        lap += f(dir, 1) - 2.0 * centre + f(dir, -1);
    }
    -adv + NU * lap
}

impl App for OpenSbli {
    fn name(&self) -> &'static str {
        match self.variant {
            SbliVariant::StoreAll => apps::OPENSBLI_SA,
            SbliVariant::StoreNone => apps::OPENSBLI_SN,
        }
    }

    fn nd_shape(&self) -> [usize; 3] {
        [64, 4, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let logical = self.logical_block();
        let ab = alloc_block(session, logical);
        let interior = logical.interior();
        let nd = self.nd_shape();
        let halo = HaloPlan::for_session(&logical, session, 2, 8.0);
        let dt = 1e-3;

        // Five conserved fields with smooth initial data.
        let mut q: Vec<ops_dsl::Dat<f64>> = (0..N_VARS)
            .map(|v| {
                let mut d = ops_dsl::Dat::zeroed(&ab, &format!("q{v}"));
                let n = ab.dims[0] as f64;
                d.fill_with(|i, j, k| {
                    1.0 + 0.1
                        * ((i as f64 / n * std::f64::consts::TAU).sin()
                            + (j as f64 / n * std::f64::consts::TAU + v as f64).cos()
                            + (k as f64 / n * std::f64::consts::TAU).sin())
                });
                d
            })
            .collect();
        // RK3 low-storage accumulators.
        let mut qk: Vec<ops_dsl::Dat<f64>> = (0..N_VARS)
            .map(|v| ops_dsl::Dat::zeroed(&ab, &format!("qk{v}")))
            .collect();
        // SA work arrays: stored RHS per variable.
        let mut rhs_store: Vec<ops_dsl::Dat<f64>> = (0..N_VARS)
            .map(|w| ops_dsl::Dat::zeroed(&ab, &format!("rhs{w}")))
            .collect();

        let sn_traits = KernelTraits {
            stride_one_inner: true,
            indirect_writes: false,
            complex_body: true,
            hard_on_neon: true,
        };

        // Stage the variant's working set: Store All uploads the RHS
        // work arrays too, Store None only the state and accumulators —
        // the dataset-count contrast the paper's variants are about.
        let mut staged: Vec<DatMeta> = q.iter().chain(qk.iter()).map(|d| d.meta()).collect();
        if self.variant == SbliVariant::StoreAll {
            staged.extend(rhs_store.iter().map(|d| d.meta()));
        }
        stage_uploads(session, &logical, &staged);

        // Record one full 3-stage RK iteration — the stage coefficients
        // bake into the recorded nodes — and replay it per iteration.
        {
            let qm: Vec<DatMeta> = q.iter().map(|d| d.meta()).collect();
            let km: Vec<DatMeta> = qk.iter().map(|d| d.meta()).collect();
            let rm: Vec<DatMeta> = rhs_store.iter().map(|d| d.meta()).collect();
            let qw: Vec<WriteView<'_, f64>> = q.iter_mut().map(|d| d.writer()).collect();
            let kw: Vec<WriteView<'_, f64>> = qk.iter_mut().map(|d| d.writer()).collect();
            let rw: Vec<WriteView<'_, f64>> = rhs_store.iter_mut().map(|d| d.writer()).collect();

            let mut g = session.record();
            for stage in 0..3 {
                g.phase("periodic_halo");
                for v in 0..N_VARS {
                    Self::record_periodic_halo(&mut g, &logical, qw[v], qm[v], nd);
                }
                // Each stage exchanges the five state fields the
                // derivative stencils read.
                halo.record_exchange_for(&mut g, &qm);
                g.end_phase();

                match self.variant {
                    SbliVariant::StoreAll => {
                        // Phase 1: three derivative sweeps per variable
                        // feeding a stored RHS (15 bandwidth-bound
                        // kernels per stage — the "store all" shape).
                        g.phase("sa_deriv");
                        for v in 0..N_VARS {
                            // One sweep per direction accumulating into
                            // the RHS store; the first sweep initialises.
                            for dir in 0..3usize {
                                let src = qw[v];
                                let r = rw[v];
                                let off: [i64; 3] = std::array::from_fn(|a| (a == dir) as i64);
                                ParLoop::new("sa_deriv", interior)
                                    .read(
                                        qm[v],
                                        Stencil::radii(
                                            2 * off[0] as usize,
                                            2 * off[1] as usize,
                                            2 * off[2] as usize,
                                        ),
                                    )
                                    .read_write(rm[v])
                                    .flops(11.0)
                                    .nd_shape(nd)
                                    .record(&mut g, move |tile| {
                                        for (i, j, k) in tile.iter() {
                                            let f = |s: i64| {
                                                src.get(
                                                    i + s * off[0],
                                                    j + s * off[1],
                                                    k + s * off[2],
                                                )
                                            };
                                            let centre = src.get(i, j, k);
                                            let g = C1 * (f(1) - f(-1)) + C2 * (f(2) - f(-2));
                                            let contrib =
                                                -ADV[dir] * g + NU * (f(1) - 2.0 * centre + f(-1));
                                            let prev = if dir == 0 { 0.0 } else { r.get(i, j, k) };
                                            r.set(i, j, k, prev + contrib);
                                        }
                                    });
                            }
                        }
                        g.end_phase();
                        // Phase 2: RK accumulate + state update from the
                        // stored RHS (5 cheap sweeps).
                        g.phase("sa_rk_update");
                        for v in 0..N_VARS {
                            let r = rw[v];
                            let acc = kw[v];
                            let state = qw[v];
                            let (rk_a, rk_b) = (RK_A[stage], RK_B[stage]);
                            ParLoop::new("sa_rk_update", interior)
                                .read(rm[v], Stencil::point())
                                .read_write(km[v])
                                .read_write(qm[v])
                                .flops(6.0)
                                .nd_shape(nd)
                                .record(&mut g, move |tile| {
                                    for (i, j, k) in tile.iter() {
                                        let knew = rk_a * acc.get(i, j, k) + dt * r.get(i, j, k);
                                        acc.set(i, j, k, knew);
                                        state.set(i, j, k, state.get(i, j, k) + rk_b * knew);
                                    }
                                });
                        }
                        g.end_phase();
                    }
                    SbliVariant::StoreNone => {
                        // Fused kernel per variable: recompute the whole
                        // RHS on the fly and fold it into the RK
                        // accumulator (reads q, writes qk — race-free),
                        // then a point-wise state update.
                        g.phase("sn_fused");
                        for v in 0..N_VARS {
                            let src = qw[v];
                            let acc = kw[v];
                            let rk_a = RK_A[stage];
                            ParLoop::new("sn_fused", interior)
                                .read(qm[v], Stencil::star_3d(2))
                                .read_write(km[v])
                                .flops(68.0)
                                .traits(sn_traits)
                                .nd_shape(nd)
                                .record(&mut g, move |tile| {
                                    for (i, j, k) in tile.iter() {
                                        let f = |dir: usize, sft: i64| {
                                            let off: [i64; 3] =
                                                std::array::from_fn(|a| (a == dir) as i64 * sft);
                                            src.get(i + off[0], j + off[1], k + off[2])
                                        };
                                        let rhs = rhs_at(src.get(i, j, k), f);
                                        let knew = rk_a * acc.get(i, j, k) + dt * rhs;
                                        acc.set(i, j, k, knew);
                                    }
                                });
                        }
                        g.end_phase();
                        g.phase("sn_update");
                        for v in 0..N_VARS {
                            let kview = kw[v];
                            let state = qw[v];
                            let rk_b = RK_B[stage];
                            ParLoop::new("sn_update", interior)
                                .read(km[v], Stencil::point())
                                .read_write(qm[v])
                                .flops(2.0)
                                .nd_shape(nd)
                                .record(&mut g, move |tile| {
                                    for (i, j, k) in tile.iter() {
                                        state.set(
                                            i,
                                            j,
                                            k,
                                            state.get(i, j, k) + rk_b * kview.get(i, j, k),
                                        );
                                    }
                                });
                        }
                        g.end_phase();
                    }
                }
            }
            let g = g.finish();
            for _ in 0..self.iterations {
                g.replay(session);
            }
        }

        // Read the checksummed field back before the host-side reduce.
        read_back(session, &logical, &[q[0].meta()]);

        // Validation: total of q0 (the scheme is conservative under
        // periodic boundaries).
        let _p = phase_span("checksum");
        let validation = if session.executes() {
            let r = q[0].reader();
            ParLoop::new("checksum", interior)
                .read(q[0].meta(), Stencil::point())
                .flops(1.0)
                .nd_shape(nd)
                .run_reduce(
                    session,
                    0.0,
                    |a, b| a + b,
                    |tile| {
                        let mut s = 0.0;
                        for (i, j, k) in tile.iter() {
                            s += r.at(i, j, k);
                        }
                        s
                    },
                )
        } else {
            ParLoop::new("checksum", interior)
                .read(q[0].meta(), Stencil::point())
                .flops(1.0)
                .nd_shape(nd)
                .run_reduce(session, 0.0, |a, b| a + b, |_| 0.0);
            f64::NAN
        };
        let _ = &mut rhs_store;
        summarise(session, validation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    fn live(app: &str) -> Session {
        Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app))
            .unwrap()
    }

    #[test]
    fn both_variants_run_and_stay_finite() {
        for v in [SbliVariant::StoreAll, SbliVariant::StoreNone] {
            let app = OpenSbli::test(v);
            let s = live(app.name());
            let run = app.run(&s);
            assert!(run.validation.is_finite(), "{v:?}");
            assert!(run.elapsed > 0.0);
        }
    }

    #[test]
    fn store_all_and_store_none_agree_bitwise() {
        // The two code-generation variants implement the same scheme;
        // their results must be identical to the last bit.
        let sa = OpenSbli::test(SbliVariant::StoreAll);
        let sn = OpenSbli::test(SbliVariant::StoreNone);
        let ra = sa.run(&live(sa.name())).validation;
        let rn = sn.run(&live(sn.name())).validation;
        assert_eq!(ra.to_bits(), rn.to_bits(), "SA {ra} vs SN {rn}");
    }

    #[test]
    fn sn_moves_fewer_bytes_but_more_flops_than_sa() {
        let mk = |v| {
            let app = OpenSbli::paper(v);
            let s = Session::create(
                SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                    .app(app.name())
                    .dry_run(),
            )
            .unwrap();
            app.run(&s);
            let recs = s.records();
            let bytes: f64 = recs.iter().map(|r| r.effective_bytes).sum();
            let flops: f64 = recs.iter().map(|r| r.time.compute).sum();
            (bytes, flops)
        };
        let (sa_bytes, _) = mk(SbliVariant::StoreAll);
        let (sn_bytes, _) = mk(SbliVariant::StoreNone);
        assert!(
            sa_bytes > 1.5 * sn_bytes,
            "store-all must move far more data: {sa_bytes:.3e} vs {sn_bytes:.3e}"
        );
    }

    #[test]
    fn advection_diffusion_conserves_the_total() {
        let app = OpenSbli::test(SbliVariant::StoreNone);
        let s = live(app.name());
        let b = app.logical_block();
        let mut d = ops_dsl::Dat::<f64>::zeroed(&b, "q0");
        let n = b.dims[0] as f64;
        d.fill_with(|i, j, k| {
            1.0 + 0.1
                * ((i as f64 / n * std::f64::consts::TAU).sin()
                    + (j as f64 / n * std::f64::consts::TAU).cos()
                    + (k as f64 / n * std::f64::consts::TAU).sin())
        });
        let before = d.interior_sum(&b);
        let run = app.run(&s);
        assert!(
            (run.validation - before).abs() / before.abs() < 1e-9,
            "{before} -> {}",
            run.validation
        );
    }

    #[test]
    fn rk3_coefficients_are_the_williamson_set() {
        // Sum of b over the stages with a-recursion integrates exactly
        // for a constant RHS: total weight must be 1.
        let mut k = 0.0;
        let mut y = 0.0;
        for s in 0..3 {
            k = RK_A[s] * k + 1.0;
            y += RK_B[s] * k;
        }
        assert!((y - 1.0).abs() < 1e-12, "RK weights integrate to {y}");
    }
}
