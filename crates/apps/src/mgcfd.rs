//! MG-CFD — unstructured-mesh finite-volume Euler solver with multigrid
//! (the Rolls-Royce Hydra proxy), NASA Rotor37 case, f64, 25 iterations.
//!
//! The computational core is an edge-based flux loop that gathers the
//! 5-component flow state of both endpoint vertices, computes a Rusanov
//! flux, and *indirectly increments* both endpoints' residuals — the
//! racy pattern the paper's three schemes (atomics / global colouring /
//! hierarchical colouring) resolve. Direct vertex loops apply the update
//! and compute the residual norm; restriction/prolongation sweeps move
//! the state across the multigrid hierarchy.

use crate::common::{summarise, App, AppRun};
use op2_dsl::parloop::ColoredMesh;
use op2_dsl::prelude::*;
use op2_dsl::DatU;
use sycl_sim::{quirks::apps, Precision, Scheme, Session};

const N_VARS: usize = 5;

/// An MG-CFD instance.
#[derive(Debug, Clone)]
pub struct Mgcfd {
    /// Finest-level mesh stats (dry/analytic runs).
    pub finest: MeshStats,
    /// Grid dims used when functional meshes are built.
    pub grid: Option<(usize, usize, usize)>,
    pub levels: usize,
    pub iterations: usize,
    pub ordering: Ordering,
}

impl Mgcfd {
    /// Paper configuration: Rotor37-like, 8M vertices, 4 levels, 25 it.
    pub fn paper() -> Self {
        Mgcfd {
            finest: MeshStats::rotor37(),
            grid: None,
            levels: 4,
            iterations: 25,
            ordering: Ordering::Natural,
        }
    }

    /// Reduced functional configuration.
    pub fn test() -> Self {
        Mgcfd {
            finest: MeshStats {
                n_vertices: 0, // filled from the real mesh
                n_edges: 0,
                locality: 0.0,
            },
            grid: Some((12, 12, 8)),
            levels: 3,
            iterations: 3,
            ordering: Ordering::Natural,
        }
    }

    /// Hierarchical block size: the paper tuned 256 on GPUs, 4096 on
    /// CPUs.
    fn block_size(session: &Session) -> usize {
        if session.config().platform.is_gpu() {
            256
        } else {
            4096
        }
    }

    /// Scheme from the session config (default: atomics).
    fn scheme(session: &Session) -> Scheme {
        session.config().scheme.unwrap_or(Scheme::Atomics)
    }
}

/// Rusanov-style numerical flux for one edge; antisymmetric by
/// construction so residuals are conservative.
#[inline]
fn rusanov(ql: &[f64; N_VARS], qr: &[f64; N_VARS], out: &mut [f64; N_VARS]) {
    let ul = ql[1] / ql[0].max(1e-12);
    let ur = qr[1] / qr[0].max(1e-12);
    let un = 0.5 * (ul + ur);
    let smax = un.abs() + 0.3;
    for v in 0..N_VARS {
        out[v] = 0.5 * un * (ql[v] + qr[v]) - 0.5 * smax * (qr[v] - ql[v]);
    }
}

/// One multigrid level's state.
struct Level {
    stats: MeshStats,
    colored: Option<ColoredMesh>,
    q: DatU<f64>,
    res: DatU<f64>,
}

impl App for Mgcfd {
    fn name(&self) -> &'static str {
        apps::MGCFD
    }

    fn nd_shape(&self) -> [usize; 3] {
        [256, 1, 1]
    }

    fn run(&self, session: &Session) -> AppRun {
        let _span = crate::common::app_span(self.name());
        let scheme = Self::scheme(session);
        let block = Self::block_size(session);
        let functional = session.executes() && self.grid.is_some();

        // Build the hierarchy: real meshes for functional runs, analytic
        // stats otherwise.
        let mut levels: Vec<Level> = if functional {
            let (ni, nj, nk) = self.grid.unwrap();
            let h = MgHierarchy::build(ni, nj, nk, self.levels, self.ordering);
            h.meshes
                .unwrap()
                .into_iter()
                .map(|mesh| {
                    let stats = mesh.stats();
                    let n = mesh.n_vertices;
                    let mut q = DatU::zeroed("q", n, N_VARS);
                    q.fill_with(|e, c| 1.0 + 0.01 * ((e * 7 + c * 3) % 17) as f64);
                    Level {
                        stats,
                        colored: Some(ColoredMesh::prepare(mesh, scheme, block)),
                        q,
                        res: DatU::zeroed("res", n, N_VARS),
                    }
                })
                .collect()
        } else {
            MgHierarchy::analytic(self.finest, self.levels)
                .levels
                .into_iter()
                .map(|stats| Level {
                    stats,
                    colored: None,
                    q: DatU::zeroed("q", 1, N_VARS),
                    res: DatU::zeroed("res", 1, N_VARS),
                })
                .collect()
        };

        let dt = 1e-3;
        let ranks = session.ranks();
        // The finest-level residual norm escapes the recorded graph
        // through this bit-cell (written by the reduction sink on every
        // replay; read back after the last one).
        let res_bits = std::sync::atomic::AtomicU64::new(f64::NAN.to_bits());

        // Stage the hierarchy's flow state and residuals. `DatU` carries
        // no shadow ids, so the uploads are anonymous (never elided) —
        // one per dat per level, sized from the analytic stats on dry
        // runs so the paper-size traffic is priced without allocating.
        {
            let mut g = session.record();
            g.phase("staging");
            for l in &levels {
                let n = if functional {
                    l.q.set_size()
                } else {
                    l.stats.n_vertices
                };
                let bytes = (n * N_VARS) as f64 * 8.0;
                g.transfer(bytes); // q: initial flow state
                g.transfer(bytes); // res: zeroed accumulator
            }
            g.end_phase();
            g.finish().replay(session);
        }

        // Record one V-cycle plus the residual reduction; replay it per
        // iteration.
        {
            let res_bits = &res_bits;
            // One exclusive view pair per level, shared by every recorded
            // body that touches that level (the flux loop's accumulator
            // is the same res view, re-cast).
            let lvls: Vec<_> = levels
                .iter_mut()
                .map(|l| {
                    (
                        l.stats,
                        l.colored.as_ref(),
                        l.q.set_size(),
                        l.q.writer(),
                        l.res.writer(),
                    )
                })
                .collect();

            let mut g = session.record();
            for l in 0..lvls.len() {
                let (stats, colored, q_n, qv, rv) = lvls[l];

                // MPI variants exchange the halo flow state before the
                // flux sweep (owner-compute, §3 of the paper).
                if ranks > 1 {
                    let cut = stats.estimated_cut_edges(ranks);
                    g.exchange(cut as f64 * N_VARS as f64 * 8.0 * 2.0, (ranks * 6) as u64);
                }

                // -- compute_flux: the racy edge loop --------------------
                g.phase("compute_flux");
                let lp = EdgeLoop::new("compute_flux", stats, scheme, Precision::F64)
                    .vertex_read(N_VARS)
                    .vertex_inc(N_VARS)
                    .flops(110.0)
                    .transcendentals(1.0)
                    .block_size(block);
                let atomic = lp.uses_atomics();
                if let Some(colored) = colored {
                    let edges = colored.mesh.edges.clone();
                    let acc = rv.to_accum(atomic);
                    lp.record(&mut g, Some(colored), move |e| {
                        let a = edges.at(e, 0);
                        let b = edges.at(e, 1);
                        let mut ql = [0.0; N_VARS];
                        let mut qb = [0.0; N_VARS];
                        for v in 0..N_VARS {
                            ql[v] = qv.get(a, v);
                            qb[v] = qv.get(b, v);
                        }
                        let mut f = [0.0; N_VARS];
                        rusanov(&ql, &qb, &mut f);
                        for v in 0..N_VARS {
                            acc.add(a, v, -f[v]);
                            acc.add(b, v, f[v]);
                        }
                    });
                } else {
                    lp.record(&mut g, None, |_| {});
                }
                g.end_phase();

                // -- time_step: apply and clear residuals ----------------
                g.phase("time_step");
                let n = if functional { q_n } else { stats.n_vertices };
                let lp = VertexLoop::new("time_step", n, Precision::F64)
                    .arg_rw(N_VARS)
                    .arg_rw(N_VARS)
                    .flops(3.0 * N_VARS as f64);
                if functional {
                    lp.record(&mut g, move |lo, hi| {
                        for e in lo..hi {
                            for v in 0..N_VARS {
                                qv.set(e, v, qv.get(e, v) + dt * rv.get(e, v));
                                rv.set(e, v, 0.0);
                            }
                        }
                    });
                } else {
                    lp.record(&mut g, |_, _| {});
                }
                g.end_phase();

                // -- restrict to the next level (injection) --------------
                if l + 1 < lvls.len() {
                    g.phase("restrict");
                    if functional {
                        let coarse_n_real = lvls[l + 1].2;
                        let fine_n = q_n;
                        let cq = lvls[l + 1].3;
                        let ratio_real = (fine_n / coarse_n_real.max(1)).max(1);
                        VertexLoop::new("restrict", coarse_n_real, Precision::F64)
                            .arg(N_VARS)
                            .arg(N_VARS)
                            .flops(N_VARS as f64)
                            .record(&mut g, move |lo, hi| {
                                for e in lo..hi {
                                    let src = (e * ratio_real).min(fine_n - 1);
                                    for v in 0..N_VARS {
                                        cq.set(e, v, qv.get(src, v));
                                    }
                                }
                            });
                    } else {
                        let coarse_n = lvls[l + 1].0.n_vertices;
                        VertexLoop::new("restrict", coarse_n, Precision::F64)
                            .arg(N_VARS)
                            .arg(N_VARS)
                            .flops(N_VARS as f64)
                            .record(&mut g, |_, _| {});
                    }
                    g.end_phase();
                }
            }

            // -- residual norm on the finest level (reduction) -----------
            g.phase("residual_norm");
            let (stats, _, q_n, qv, _) = lvls[0];
            let n = if functional { q_n } else { stats.n_vertices };
            let lp = VertexLoop::new("residual_norm", n, Precision::F64)
                .arg(N_VARS)
                .flops(2.0 * N_VARS as f64);
            if functional {
                lp.record_reduce(
                    &mut g,
                    0.0,
                    |a, b| a + b,
                    move |lo, hi| {
                        let mut s = 0.0;
                        for e in lo..hi {
                            for v in 0..N_VARS {
                                let x = qv.get(e, v);
                                s += x * x;
                            }
                        }
                        s
                    },
                    move |s| {
                        res_bits.store(s.to_bits(), std::sync::atomic::Ordering::Relaxed);
                    },
                );
            } else {
                lp.record_reduce(&mut g, 0.0, |a, b| a + b, |_, _| 0.0, |_| {});
            }
            g.end_phase();

            let g = g.finish();
            for _ in 0..self.iterations {
                g.replay(session);
            }
        }

        // Read the converged finest-level flow state back to the host.
        {
            let n = if functional {
                levels[0].q.set_size()
            } else {
                levels[0].stats.n_vertices
            };
            let mut g = session.record();
            g.phase("readback");
            g.transfer_dir(
                (n * N_VARS) as f64 * 8.0,
                Vec::new(),
                sycl_sim::TransferDir::D2H,
            );
            g.end_phase();
            g.finish().replay(session);
        }

        let last_residual = if functional {
            f64::from_bits(res_bits.load(std::sync::atomic::Ordering::Relaxed))
        } else {
            f64::NAN
        };
        summarise(session, last_residual)
    }
}

impl Mgcfd {
    /// The total of all residual increments must vanish (flux
    /// antisymmetry) — exposed for tests.
    pub fn residual_total_after_flux(scheme: Scheme) -> f64 {
        let mesh = Mesh::grid(10, 10, 6, Ordering::Natural);
        let stats = mesh.stats();
        let n = mesh.n_vertices;
        let session = Session::create(
            sycl_sim::SessionConfig::new(
                sycl_sim::PlatformId::A100,
                sycl_sim::Toolchain::NativeCuda,
            )
            .app(apps::MGCFD)
            .scheme(scheme),
        )
        .unwrap();
        let colored = ColoredMesh::prepare(mesh, scheme, 64);
        let mut q = DatU::<f64>::zeroed("q", n, N_VARS);
        q.fill_with(|e, c| 1.0 + 0.01 * ((e * 13 + c) % 23) as f64);
        let mut res = DatU::<f64>::zeroed("res", n, N_VARS);
        let lp = EdgeLoop::new("compute_flux", stats, scheme, Precision::F64)
            .vertex_read(N_VARS)
            .vertex_inc(N_VARS)
            .flops(110.0)
            .block_size(64);
        let atomic = lp.uses_atomics();
        let edges = colored.mesh.edges.clone();
        {
            let qr = q.reader();
            let acc = res.accum(atomic);
            lp.run(&session, Some(&colored), |e| {
                let a = edges.at(e, 0);
                let b = edges.at(e, 1);
                let mut ql = [0.0; N_VARS];
                let mut qb = [0.0; N_VARS];
                for v in 0..N_VARS {
                    ql[v] = qr.at(a, v);
                    qb[v] = qr.at(b, v);
                }
                let mut f = [0.0; N_VARS];
                rusanov(&ql, &qb, &mut f);
                for v in 0..N_VARS {
                    acc.add(a, v, -f[v]);
                    acc.add(b, v, f[v]);
                }
            });
        }
        res.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    #[test]
    fn fluxes_are_conservative_under_every_scheme() {
        for scheme in Scheme::all() {
            let total = Mgcfd::residual_total_after_flux(scheme);
            assert!(
                total.abs() < 1e-9,
                "{scheme:?}: residual total {total} must vanish"
            );
        }
    }

    #[test]
    fn functional_run_produces_a_finite_residual() {
        let s = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                .app(apps::MGCFD)
                .scheme(Scheme::HierColor),
        )
        .unwrap();
        let run = Mgcfd::test().run(&s);
        assert!(run.validation.is_finite());
        assert!(run.validation > 0.0);
        // Multigrid means multiple flux loops per iteration.
        let flux_launches = s
            .records()
            .iter()
            .filter(|r| &*r.name == "compute_flux")
            .count();
        assert!(flux_launches >= 3 * 3, "one per level per iteration");
    }

    #[test]
    fn replayed_and_eager_launch_paths_are_bit_identical_under_every_scheme() {
        for scheme in Scheme::all() {
            let make = |eager: bool| {
                let mut cfg = SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                    .app(apps::MGCFD)
                    .scheme(scheme);
                if eager {
                    cfg = cfg.eager_launches();
                }
                Session::create(cfg).unwrap()
            };
            let app = Mgcfd::test();
            let replayed = make(false);
            let eager = make(true);
            let a = app.run(&replayed);
            let b = app.run(&eager);
            assert_eq!(
                replayed.ledger_digest(),
                eager.ledger_digest(),
                "{scheme:?}: ledger digests diverge between replay and eager"
            );
            assert_eq!(replayed.elapsed().to_bits(), eager.elapsed().to_bits());
            assert_eq!(a.validation.to_bits(), b.validation.to_bits());
        }
    }

    #[test]
    fn schemes_agree_on_the_final_state() {
        let run_with = |scheme| {
            let s = Session::create(
                SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                    .app(apps::MGCFD)
                    .scheme(scheme),
            )
            .unwrap();
            Mgcfd::test().run(&s).validation
        };
        let a = run_with(Scheme::Atomics);
        let g = run_with(Scheme::GlobalColor);
        let h = run_with(Scheme::HierColor);
        // Colour schemes are deterministic; atomics reorder additions, so
        // compare within floating-point tolerance.
        assert!((g - h).abs() / g.abs() < 1e-12, "{g} vs {h}");
        assert!((a - g).abs() / g.abs() < 1e-9, "{a} vs {g}");
    }

    #[test]
    fn paper_size_dry_run_prices_the_hierarchy() {
        let s = Session::create(
            SessionConfig::new(PlatformId::Mi250x, Toolchain::NativeHip)
                .app(apps::MGCFD)
                .scheme(Scheme::Atomics)
                .dry_run(),
        )
        .unwrap();
        let run = Mgcfd::paper().run(&s);
        assert!(run.elapsed > 0.0);
        assert!(run.effective_bandwidth > 0.0);
    }

    #[test]
    fn mesh_ordering_matters_for_atomics() {
        // Ablation: a shuffled mesh must be slower under atomics (the
        // paper's locality analysis, §4.3).
        let run_with = |ordering| {
            let s = Session::create(
                SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
                    .app(apps::MGCFD)
                    .scheme(Scheme::Atomics)
                    .dry_run(),
            )
            .unwrap();
            let mut app = Mgcfd::paper();
            app.ordering = ordering;
            if let Ordering::Shuffled(_) = ordering {
                app.finest.locality = 0.3;
            }
            app.run(&s).elapsed
        };
        let good = run_with(Ordering::Natural);
        let bad = run_with(Ordering::Shuffled(1));
        assert!(bad > good, "shuffled {bad} vs natural {good}");
    }
}
