//! # babelstream — the memory-bandwidth yardstick (paper Table 1)
//!
//! BabelStream (Deakin et al.) measures attainable memory bandwidth with
//! five kernels over three large arrays: Copy (`c = a`), Mul (`b = s·c`),
//! Add (`c = a + b`), Triad (`a = b + s·c`), and Dot (`sum a·b`), plus
//! Nstream (`a += b + s·c`). The paper uses the Triad figure on each
//! platform as the denominator of "achieved architectural efficiency".
//!
//! This implementation runs the kernels through the simulated SYCL
//! runtime: functionally (validated element values) at whatever size the
//! caller picks, and with simulated timing from the platform models.

use parkit::global_pool;
use sycl_sim::{Kernel, KernelFootprint, Precision, Session};

/// Default array length (2^25 doubles/array, the BabelStream default).
pub const DEFAULT_N: usize = 1 << 25;

/// BabelStream guidance: arrays must total at least 4× the last-level
/// cache, or the benchmark measures the cache instead of DRAM. Returns
/// the per-array length honouring that rule for a platform.
pub fn table1_len(platform: &sycl_sim::Platform) -> usize {
    let min_total = 4.0 * platform.llc().size_bytes;
    let per_array = (min_total / 3.0 / 8.0).ceil() as usize;
    per_array.max(DEFAULT_N)
}

/// The BabelStream kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    Copy,
    Mul,
    Add,
    Triad,
    Dot,
    Nstream,
}

impl StreamKernel {
    /// All kernels in BabelStream order.
    pub fn all() -> [StreamKernel; 6] {
        [
            StreamKernel::Copy,
            StreamKernel::Mul,
            StreamKernel::Add,
            StreamKernel::Triad,
            StreamKernel::Dot,
            StreamKernel::Nstream,
        ]
    }

    /// Kernel label as BabelStream prints it.
    pub fn label(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Mul => "Mul",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
            StreamKernel::Dot => "Dot",
            StreamKernel::Nstream => "Nstream",
        }
    }

    /// Arrays moved per element (reads + writes), BabelStream accounting.
    pub fn arrays_moved(self) -> f64 {
        match self {
            StreamKernel::Copy | StreamKernel::Mul | StreamKernel::Dot => 2.0,
            StreamKernel::Add | StreamKernel::Triad | StreamKernel::Nstream => 3.0,
        }
    }

    /// FLOPs per element.
    pub fn flops(self) -> f64 {
        match self {
            StreamKernel::Copy => 0.0,
            StreamKernel::Mul => 1.0,
            StreamKernel::Add => 1.0,
            StreamKernel::Triad => 2.0,
            StreamKernel::Dot => 2.0,
            StreamKernel::Nstream => 3.0,
        }
    }
}

/// The classic scalar (BabelStream uses 0.4).
pub const SCALAR: f64 = 0.4;

/// A BabelStream instance bound to a session.
pub struct BabelStream {
    n: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl BabelStream {
    /// Allocate and initialise the three arrays (a=0.1, b=0.2, c=0.0, as
    /// in the reference implementation).
    pub fn new(n: usize) -> Self {
        BabelStream {
            n,
            a: vec![0.1; n],
            b: vec![0.2; n],
            c: vec![0.0; n],
        }
    }

    /// A pricing-only instance: footprints use `n` but no memory is
    /// allocated. Pair with a dry-run session.
    pub fn dry(n: usize) -> Self {
        BabelStream {
            n,
            a: Vec::new(),
            b: Vec::new(),
            c: Vec::new(),
        }
    }

    /// Array length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when zero-length (degenerate).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn kernel(&self, k: StreamKernel) -> Kernel {
        let bytes = k.arrays_moved() * 8.0 * self.n as f64;
        let mut fp = KernelFootprint::streaming(
            k.label(),
            self.n as u64,
            bytes,
            k.flops() * self.n as f64,
            Precision::F64,
        );
        if k == StreamKernel::Dot {
            fp.reductions = 1;
        }
        Kernel::new(fp)
    }

    /// Run one kernel once; returns the Dot result (0.0 otherwise).
    pub fn run(&mut self, session: &Session, k: StreamKernel) -> f64 {
        let kernel = self.kernel(k);
        let n = self.n;
        let (a, b, c) = (&mut self.a, &mut self.b, &mut self.c);
        match k {
            StreamKernel::Copy => {
                session.launch(&kernel, || {
                    if session.executes() {
                        par_map(c, |i| a[i]);
                    }
                });
                0.0
            }
            StreamKernel::Mul => {
                session.launch(&kernel, || {
                    if session.executes() {
                        par_map(b, |i| SCALAR * c[i]);
                    }
                });
                0.0
            }
            StreamKernel::Add => {
                session.launch(&kernel, || {
                    if session.executes() {
                        par_map(c, |i| a[i] + b[i]);
                    }
                });
                0.0
            }
            StreamKernel::Triad => {
                session.launch(&kernel, || {
                    if session.executes() {
                        par_map(a, |i| b[i] + SCALAR * c[i]);
                    }
                });
                0.0
            }
            StreamKernel::Nstream => {
                let a_ref: &mut Vec<f64> = a;
                session.launch(&kernel, || {
                    if session.executes() {
                        let b = &*b;
                        let c = &*c;
                        global_pool().for_each_chunk(a_ref, 1 << 14, |start, chunk| {
                            for (i, x) in chunk.iter_mut().enumerate() {
                                *x += b[start + i] + SCALAR * c[start + i];
                            }
                        });
                    }
                });
                0.0
            }
            StreamKernel::Dot => session.launch(&kernel, || {
                if !session.executes() {
                    return 0.0;
                }
                let a = &*a;
                let b = &*b;
                global_pool().reduce(
                    n,
                    1 << 14,
                    0.0,
                    |x, y| x + y,
                    |r| r.map(|i| a[i] * b[i]).sum::<f64>(),
                )
            }),
        }
    }

    /// Run the full suite `reps` times (BabelStream default is 100) and
    /// return per-kernel best-case bandwidth in bytes/s plus the final
    /// Dot value for validation.
    pub fn benchmark(&mut self, session: &Session, reps: usize) -> (Vec<(StreamKernel, f64)>, f64) {
        let mut dot = 0.0;
        let mut out = Vec::new();
        for k in StreamKernel::all() {
            session.reset();
            for _ in 0..reps.max(1) {
                dot = self.run(session, k);
            }
            let bytes = k.arrays_moved() * 8.0 * self.n as f64 * reps.max(1) as f64;
            out.push((k, bytes / session.elapsed()));
        }
        (out, dot)
    }

    /// The Triad bandwidth (Table 1's figure) in bytes/s.
    pub fn triad_bandwidth(session: &Session, n: usize, reps: usize) -> f64 {
        let mut bs = if session.executes() {
            BabelStream::new(n)
        } else {
            BabelStream::dry(n)
        };
        session.reset();
        for _ in 0..reps.max(1) {
            bs.run(session, StreamKernel::Triad);
        }
        StreamKernel::Triad.arrays_moved() * 8.0 * n as f64 * reps.max(1) as f64 / session.elapsed()
    }
}

/// Parallel elementwise map into `dst`.
fn par_map(dst: &mut [f64], f: impl Fn(usize) -> f64 + Sync) {
    global_pool().for_each_chunk(dst, 1 << 14, |start, chunk| {
        for (i, x) in chunk.iter_mut().enumerate() {
            *x = f(start + i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    fn session(p: PlatformId, tc: Toolchain) -> Session {
        Session::create(SessionConfig::new(p, tc).app("babelstream")).unwrap()
    }

    #[test]
    fn kernels_compute_correct_values() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let n = 10_000;
        let mut bs = BabelStream::new(n);
        bs.run(&s, StreamKernel::Copy); // c = a = 0.1
        assert_eq!(bs.c[17], 0.1);
        bs.run(&s, StreamKernel::Mul); // b = 0.4*c = 0.04
        assert!((bs.b[17] - 0.04).abs() < 1e-15);
        bs.run(&s, StreamKernel::Add); // c = a + b = 0.14
        assert!((bs.c[17] - 0.14).abs() < 1e-15);
        bs.run(&s, StreamKernel::Triad); // a = b + 0.4*c = 0.096
        assert!((bs.a[17] - 0.096).abs() < 1e-15);
        let dot = bs.run(&s, StreamKernel::Dot); // sum a*b
        assert!((dot - 0.096 * 0.04 * n as f64).abs() < 1e-9);
        bs.run(&s, StreamKernel::Nstream); // a += b + 0.4c = 0.096+0.096
        assert!((bs.a[17] - 0.192).abs() < 1e-15);
    }

    #[test]
    fn triad_bandwidth_reproduces_table1_within_10pct() {
        // Table 1 (GB/s): MI250X 1290, A100 1310, Max 803, Xeon 296,
        // Genoa-X 561, Altra 167 — measured with native toolchains.
        let cases = [
            (PlatformId::Mi250x, Toolchain::NativeHip, 1290.0),
            (PlatformId::A100, Toolchain::NativeCuda, 1310.0),
            (PlatformId::Max1100, Toolchain::Dpcpp, 803.0),
            (PlatformId::Xeon8360Y, Toolchain::MpiOpenMp, 296.0),
            (PlatformId::GenoaX, Toolchain::MpiOpenMp, 561.0),
            (PlatformId::Altra, Toolchain::OpenMp, 167.0),
        ];
        for (p, tc, expect) in cases {
            let s =
                Session::create(SessionConfig::new(p, tc).app("babelstream").dry_run()).unwrap();
            let n = table1_len(s.platform());
            let bw = BabelStream::triad_bandwidth(&s, n, 10) / 1e9;
            assert!(
                (bw - expect).abs() / expect < 0.10,
                "{p:?}: {bw:.0} GB/s vs Table 1 {expect:.0}"
            );
        }
    }

    #[test]
    fn benchmark_returns_all_six_kernels() {
        let s = session(PlatformId::A100, Toolchain::NativeCuda);
        let mut bs = BabelStream::new(4096);
        let (rows, _) = bs.benchmark(&s, 3);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|(_, bw)| *bw > 0.0));
    }

    #[test]
    fn accounting_metadata() {
        assert_eq!(StreamKernel::Triad.arrays_moved(), 3.0);
        assert_eq!(StreamKernel::Dot.arrays_moved(), 2.0);
        assert_eq!(StreamKernel::Copy.flops(), 0.0);
        assert_eq!(StreamKernel::all().len(), 6);
    }
}
