//! ASCII heatmap rendering for the efficiency grids (Figures 10–11).
//!
//! The paper presents efficiency as colour-coded grids; in a terminal we
//! shade each cell with a density glyph so the eye can pick out the same
//! patterns (the GPU columns' consistency, the CPU SYCL dip, the
//! Genoa-X >100 % band, the failure holes).

/// One heatmap cell: an efficiency or a failure marker.
#[derive(Debug, Clone, Copy)]
pub enum HeatCell {
    /// Efficiency as a fraction of peak (may exceed 1.0).
    Value(f64),
    /// Failed/unavailable configuration (rendered as a hole).
    Missing(&'static str),
}

/// Shade for an efficiency value: denser glyph = higher fraction.
pub fn shade(value: f64) -> char {
    const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
    let idx = ((value / 1.2) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Render a labelled grid: rows × columns of cells, each cell shown as
/// `NN% X` where X is the shade glyph.
pub fn render(title: &str, col_labels: &[String], rows: &[(String, Vec<HeatCell>)]) -> String {
    let row_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once(8))
        .max()
        .unwrap();
    let mut out = format!("## {title}\n{:row_w$}", "");
    for label in col_labels {
        out.push_str(&format!(" | {label:>9}"));
    }
    out.push('\n');
    for (name, cells) in rows {
        out.push_str(&format!("{name:row_w$}"));
        for cell in cells {
            match cell {
                HeatCell::Value(v) => {
                    out.push_str(&format!(" | {:>5.0}% {} ", v * 100.0, shade(*v)))
                }
                HeatCell::Missing(m) => out.push_str(&format!(" | {m:>8} ")),
            }
        }
        out.push('\n');
    }
    out
}

/// Build a heatmap from measurements grouped by a row key.
pub fn from_measurements(
    title: &str,
    ms: &[crate::study::Measurement],
    row_key: impl Fn(&crate::study::Measurement) -> String,
) -> String {
    let mut col_labels: Vec<String> = Vec::new();
    let mut rows: Vec<(String, Vec<(String, HeatCell)>)> = Vec::new();
    for m in ms {
        let col = m.variant.label();
        if !col_labels.contains(&col) {
            col_labels.push(col.clone());
        }
        let cell = match (&m.runtime, m.efficiency) {
            (Ok(_), Some(e)) => HeatCell::Value(e),
            (Err(k), _) => HeatCell::Missing(match k {
                sycl_sim::FailureKind::Unsupported => "n/a",
                sycl_sim::FailureKind::CompileError => "ICE",
                sycl_sim::FailureKind::RuntimeCrash => "crash",
                sycl_sim::FailureKind::IncorrectResult => "wrong",
                sycl_sim::FailureKind::VerificationFailed => "verify",
            }),
            _ => HeatCell::Missing("?"),
        };
        let key = row_key(m);
        match rows.iter_mut().find(|(k, _)| *k == key) {
            Some((_, cells)) => cells.push((col, cell)),
            None => rows.push((key, vec![(col, cell)])),
        }
    }
    let grid: Vec<(String, Vec<HeatCell>)> = rows
        .into_iter()
        .map(|(k, cells)| {
            let ordered = col_labels
                .iter()
                .map(|c| {
                    cells
                        .iter()
                        .find(|(l, _)| l == c)
                        .map(|(_, h)| *h)
                        .unwrap_or(HeatCell::Missing("-"))
                })
                .collect();
            (k, ordered)
        })
        .collect();
    render(title, &col_labels, &grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_is_monotone_in_value() {
        let ramp: Vec<char> = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2]
            .iter()
            .map(|&v| shade(v))
            .collect();
        // Non-decreasing density along the ramp.
        let density = |c: char| " .:-=+#@".find(c).unwrap();
        for pair in ramp.windows(2) {
            assert!(density(pair[1]) >= density(pair[0]), "{ramp:?}");
        }
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.2), '@');
    }

    #[test]
    fn render_includes_labels_values_and_holes() {
        let text = render(
            "demo",
            &["CUDA".into(), "DPC++".into()],
            &[
                (
                    "app_a".into(),
                    vec![HeatCell::Value(0.92), HeatCell::Missing("n/a")],
                ),
                (
                    "app_b".into(),
                    vec![HeatCell::Value(1.07), HeatCell::Value(0.4)],
                ),
            ],
        );
        assert!(text.contains("92%"));
        assert!(text.contains("107%"));
        assert!(text.contains("n/a"));
        assert!(text.contains("CUDA"));
    }

    #[test]
    fn heatmap_from_real_measurements_has_the_failure_holes() {
        let ms = crate::study::structured_measurements(sycl_sim::PlatformId::GenoaX);
        let text = from_measurements("genoax", &ms, |m| m.app.to_owned());
        assert!(text.contains("wrong"), "{text}");
        assert!(text.contains("cloverleaf2d"));
        assert!(
            text.contains('@') || text.contains('#'),
            "dense cells expected"
        );
    }
}
