//! Plain-text table and CSV rendering for the figure harness.

use crate::study::Measurement;
use sycl_sim::FailureKind;

/// Render measurements as an aligned text table, one row per app (or
/// scheme) and one column per variant — mirroring the paper's grouped
/// bar charts.
pub fn format_table(title: &str, rows: &[(&str, Vec<(String, MeasCell)>)]) -> String {
    let mut col_labels: Vec<String> = Vec::new();
    for (_, cells) in rows {
        for (label, _) in cells {
            if !col_labels.contains(label) {
                col_labels.push(label.clone());
            }
        }
    }
    let row_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once(8))
        .max()
        .unwrap();
    let col_w = col_labels
        .iter()
        .map(|l| l.len().max(9))
        .collect::<Vec<_>>();

    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{:row_w$}", ""));
    for (label, w) in col_labels.iter().zip(&col_w) {
        out.push_str(&format!(" | {label:>w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(row_w + col_w.iter().map(|w| w + 3).sum::<usize>()));
    out.push('\n');
    for (name, cells) in rows {
        out.push_str(&format!("{name:row_w$}"));
        for (label, w) in col_labels.iter().zip(&col_w) {
            let cell = cells
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, c)| c.render())
                .unwrap_or_else(|| "-".to_owned());
            out.push_str(&format!(" | {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// A renderable cell: a value or a failure marker.
#[derive(Debug, Clone, Copy)]
pub enum MeasCell {
    /// Runtime in seconds.
    Seconds(f64),
    /// Efficiency as a fraction of peak.
    Efficiency(f64),
    Failed(FailureKind),
}

impl MeasCell {
    fn render(&self) -> String {
        match self {
            MeasCell::Seconds(s) => format!("{s:.3}s"),
            MeasCell::Efficiency(e) => format!("{:.0}%", e * 100.0),
            MeasCell::Failed(k) => match k {
                FailureKind::Unsupported => "n/a".to_owned(),
                FailureKind::CompileError => "ICE".to_owned(),
                FailureKind::RuntimeCrash => "crash".to_owned(),
                FailureKind::IncorrectResult => "wrong".to_owned(),
                FailureKind::VerificationFailed => "verify".to_owned(),
            },
        }
    }
}

/// Serialize measurements to CSV (one line per measurement).
pub fn write_csv(measurements: &[Measurement]) -> String {
    let mut out = String::from("app,platform,variant,scheme,runtime_s,efficiency,status\n");
    for m in measurements {
        let (rt, eff, status) = match (&m.runtime, m.efficiency) {
            (Ok(t), Some(e)) => (format!("{t:.6}"), format!("{e:.4}"), "ok".to_owned()),
            (Ok(t), None) => (format!("{t:.6}"), String::new(), "ok".to_owned()),
            (Err(k), _) => (String::new(), String::new(), format!("{k:?}")),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            m.app,
            m.platform.label(),
            m.variant.label().replace(' ', "_"),
            m.scheme.map(|s| s.label()).unwrap_or(""),
            rt,
            eff,
            status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyVariant;
    use sycl_sim::{PlatformId, Toolchain};

    #[test]
    fn table_renders_all_columns_and_failures() {
        let rows = vec![
            (
                "app_a",
                vec![
                    ("CUDA".to_owned(), MeasCell::Seconds(1.25)),
                    (
                        "DPC++".to_owned(),
                        MeasCell::Failed(FailureKind::Unsupported),
                    ),
                ],
            ),
            (
                "app_b",
                vec![("CUDA".to_owned(), MeasCell::Efficiency(0.92))],
            ),
        ];
        let t = format_table("Fig X", &rows);
        assert!(t.contains("Fig X"));
        assert!(t.contains("1.250s"));
        assert!(t.contains("n/a"));
        assert!(t.contains("92%"));
        assert!(t.contains('-'), "missing cells render as dashes");
    }

    #[test]
    fn csv_round_trips_key_fields() {
        let m = Measurement {
            app: "rtm",
            platform: PlatformId::A100,
            variant: StudyVariant {
                toolchain: Toolchain::NativeCuda,
                nd_range: false,
            },
            scheme: None,
            runtime: Ok(0.5),
            efficiency: Some(0.48),
            boundary_fraction: Some(0.01),
        };
        let csv = write_csv(&[m]);
        assert!(csv.starts_with("app,platform"));
        assert!(csv.contains("rtm,a100,CUDA,,0.500000,0.4800,ok"));
    }

    #[test]
    fn csv_marks_failures() {
        let m = Measurement {
            app: "cloverleaf2d",
            platform: PlatformId::GenoaX,
            variant: StudyVariant {
                toolchain: Toolchain::OpenSycl,
                nd_range: true,
            },
            scheme: None,
            runtime: Err(FailureKind::IncorrectResult),
            efficiency: None,
            boundary_fraction: None,
        };
        let csv = write_csv(&[m]);
        assert!(csv.contains("IncorrectResult"));
    }
}
