//! # portability — the study harness and its metrics
//!
//! Orchestrates the full cross-product the paper measures — seven
//! applications × six platforms × the programming approaches available
//! on each — and computes the derived quantities its figures report:
//!
//! * **runtime** per (app, platform, variant) — Figures 2–9;
//! * **achieved architectural efficiency** = effective bandwidth /
//!   STREAM-Triad bandwidth (Table 1 denominators) — Figures 10–11;
//! * the **Pennycook–Sewall performance-portability metric** PP̄ (the
//!   harmonic mean of efficiencies over the platform set) — §4.4;
//! * means/standard deviations of efficiencies — the in-text aggregates.

pub mod heatmap;
pub mod metrics;
pub mod report;
pub mod study;

pub use heatmap::HeatCell;
pub use metrics::{harmonic_mean, mean, pennycook, std_dev};
pub use report::{format_table, write_csv, MeasCell};
pub use study::{
    cpu_platforms, gpu_platforms, measure_mgcfd, measure_structured, structured_measurements,
    unstructured_measurements, variants_for, Measurement, StudyVariant,
};
