//! Enumerating and running the paper's measurement cross-product.

use miniapps::{App, Mgcfd};
use sycl_sim::{
    quirks::apps, FailureKind, PlatformId, Scheme, Session, SessionConfig, SyclVariant, Toolchain,
};

/// One column of the paper's per-platform figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyVariant {
    pub toolchain: Toolchain,
    /// For SYCL toolchains: `true` = nd_range, `false` = flat.
    pub nd_range: bool,
}

impl StudyVariant {
    /// Column label, e.g. "DPC++ ndrange".
    pub fn label(&self) -> String {
        if self.toolchain.is_sycl() {
            format!(
                "{} {}",
                self.toolchain.label(),
                if self.nd_range { "ndrange" } else { "flat" }
            )
        } else {
            self.toolchain.label().to_owned()
        }
    }

    /// The SYCL formulation, given an app's tuned shape.
    fn sycl_variant(&self, nd_shape: [usize; 3]) -> SyclVariant {
        if self.toolchain.is_sycl() && self.nd_range {
            SyclVariant::NdRange(nd_shape)
        } else {
            SyclVariant::Flat
        }
    }

    /// Is this a native (non-SYCL) approach?
    pub fn is_native(&self) -> bool {
        self.toolchain.is_native()
    }
}

/// The GPU platforms, figure order.
pub fn gpu_platforms() -> [PlatformId; 3] {
    [PlatformId::A100, PlatformId::Mi250x, PlatformId::Max1100]
}

/// The CPU platforms, figure order.
pub fn cpu_platforms() -> [PlatformId; 3] {
    [PlatformId::Xeon8360Y, PlatformId::GenoaX, PlatformId::Altra]
}

/// The variant columns the paper shows for a platform (Figures 2–7).
pub fn variants_for(platform: PlatformId) -> Vec<StudyVariant> {
    use Toolchain::*;
    let mut v: Vec<StudyVariant> = Vec::new();
    let native: &[Toolchain] = match platform {
        PlatformId::A100 => &[NativeCuda],
        PlatformId::Mi250x => &[NativeHip, OmpOffload],
        PlatformId::Max1100 => &[OmpOffload],
        PlatformId::Xeon8360Y | PlatformId::GenoaX => &[Mpi, MpiOpenMp],
        PlatformId::Altra => &[Mpi, OpenMp],
    };
    for &tc in native {
        v.push(StudyVariant {
            toolchain: tc,
            nd_range: false,
        });
    }
    for tc in [Dpcpp, OpenSycl] {
        for nd in [false, true] {
            v.push(StudyVariant {
                toolchain: tc,
                nd_range: nd,
            });
        }
    }
    v
}

/// The result of one measured (or failed) configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub app: &'static str,
    pub platform: PlatformId,
    pub variant: StudyVariant,
    /// For MG-CFD: the race-resolution scheme.
    pub scheme: Option<Scheme>,
    /// Simulated runtime in seconds, or why there is none.
    pub runtime: Result<f64, FailureKind>,
    /// Achieved architectural efficiency (effective BW / STREAM), when
    /// the run succeeded.
    pub efficiency: Option<f64>,
    /// Fraction of time in boundary loops.
    pub boundary_fraction: Option<f64>,
}

impl Measurement {
    /// Efficiency for metric computations (`None` on failure).
    pub fn eff(&self) -> Option<f64> {
        self.efficiency
    }
}

/// Run one structured-mesh app configuration (dry-run pricing at paper
/// size).
pub fn measure_structured(
    app: &dyn App,
    platform: PlatformId,
    variant: StudyVariant,
) -> Measurement {
    let cfg = SessionConfig::new(platform, variant.toolchain)
        .variant(variant.sycl_variant(app.nd_shape()))
        .app(app.name())
        .dry_run();
    match Session::create(cfg) {
        Err(fail) => Measurement {
            app: leak_name(app.name()),
            platform,
            variant,
            scheme: None,
            runtime: Err(fail.kind),
            efficiency: None,
            boundary_fraction: None,
        },
        Ok(session) => {
            let run = app.run(&session);
            Measurement {
                app: leak_name(app.name()),
                platform,
                variant,
                scheme: None,
                runtime: Ok(run.elapsed),
                efficiency: Some(run.effective_bandwidth / session.platform().mem.stream_bw),
                boundary_fraction: Some(run.boundary_fraction),
            }
        }
    }
}

/// Run one MG-CFD configuration (dry-run pricing at Rotor37 size).
pub fn measure_mgcfd(platform: PlatformId, variant: StudyVariant, scheme: Scheme) -> Measurement {
    let app = Mgcfd::paper();
    let cfg = SessionConfig::new(platform, variant.toolchain)
        .variant(variant.sycl_variant(app.nd_shape()))
        .app(apps::MGCFD)
        .scheme(scheme)
        .dry_run();
    match Session::create(cfg) {
        Err(fail) => Measurement {
            app: apps::MGCFD,
            platform,
            variant,
            scheme: Some(scheme),
            runtime: Err(fail.kind),
            efficiency: None,
            boundary_fraction: None,
        },
        Ok(session) => {
            let run = app.run(&session);
            Measurement {
                app: apps::MGCFD,
                platform,
                variant,
                scheme: Some(scheme),
                runtime: Ok(run.elapsed),
                efficiency: Some(run.effective_bandwidth / session.platform().mem.stream_bw),
                boundary_fraction: Some(run.boundary_fraction),
            }
        }
    }
}

/// All structured-mesh measurements for one platform (one figure).
pub fn structured_measurements(platform: PlatformId) -> Vec<Measurement> {
    let apps = miniapps::paper_structured_apps();
    let mut out = Vec::new();
    for app in &apps {
        for variant in variants_for(platform) {
            out.push(measure_structured(app.as_ref(), platform, variant));
        }
    }
    out
}

/// All MG-CFD measurements for one platform (Figures 8/9): every
/// variant × every scheme.
pub fn unstructured_measurements(platform: PlatformId) -> Vec<Measurement> {
    let mut out = Vec::new();
    for variant in variants_for(platform) {
        for scheme in Scheme::all() {
            out.push(measure_mgcfd(platform, variant, scheme));
        }
    }
    out
}

fn leak_name(name: &str) -> &'static str {
    // App names come from the fixed `quirks::apps` table.
    for known in apps::ALL {
        if known == name {
            return known;
        }
    }
    "unknown"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_columns_match_the_figures() {
        // Fig 2 (A100): CUDA + 4 SYCL columns.
        assert_eq!(variants_for(PlatformId::A100).len(), 5);
        // Fig 3 (MI250X): HIP + Cray offload + 4 SYCL.
        assert_eq!(variants_for(PlatformId::Mi250x).len(), 6);
        // Fig 5 (Xeon): MPI + MPI+OpenMP + 4 SYCL.
        assert_eq!(variants_for(PlatformId::Xeon8360Y).len(), 6);
        // Fig 7 (Altra): MPI + OpenMP + 4 SYCL (DPC++ ones will fail).
        assert_eq!(variants_for(PlatformId::Altra).len(), 6);
    }

    #[test]
    fn labels_are_unique_per_platform() {
        for p in gpu_platforms().into_iter().chain(cpu_platforms()) {
            let labels: Vec<String> = variants_for(p).iter().map(|v| v.label()).collect();
            let mut dedup = labels.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(labels.len(), dedup.len(), "{p:?}: {labels:?}");
        }
    }

    #[test]
    fn unsupported_configs_surface_as_failures_not_panics() {
        let app = miniapps::CloverLeaf2d::paper();
        let m = measure_structured(
            &app,
            PlatformId::Altra,
            StudyVariant {
                toolchain: Toolchain::Dpcpp,
                nd_range: true,
            },
        );
        assert_eq!(m.runtime.unwrap_err(), FailureKind::Unsupported);
        assert!(m.eff().is_none());
    }

    #[test]
    fn a_quick_measurement_has_sane_efficiency() {
        let app = miniapps::Rtm::paper();
        let m = measure_structured(
            &app,
            PlatformId::A100,
            StudyVariant {
                toolchain: Toolchain::NativeCuda,
                nd_range: false,
            },
        );
        let eff = m.eff().unwrap();
        assert!(eff > 0.1 && eff < 1.3, "eff = {eff}");
    }
}
