//! Aggregate metrics: means, deviations, and the Pennycook–Sewall PP̄.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Harmonic mean; 0 if any sample is non-positive (unsupported ⇒ PP=0).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// The Pennycook–Sewall performance-portability metric for one
/// application across a platform set `H`:
///
/// `PP(a, p, H) = |H| / Σ_{i∈H} 1/e_i(a,p)` when the variant runs on
/// every platform in `H`, else 0. `efficiencies` holds `Some(e)` for
/// platforms where the variant produced a valid result and `None`
/// where it failed.
///
/// `ignore_failures` reproduces the paper's §4.4 "ignoring
/// failing/unavailable variants" reading: failed platforms are dropped
/// from `H` instead of zeroing the metric.
pub fn pennycook(efficiencies: &[Option<f64>], ignore_failures: bool) -> f64 {
    if ignore_failures {
        let ok: Vec<f64> = efficiencies.iter().flatten().copied().collect();
        harmonic_mean(&ok)
    } else {
        if efficiencies.iter().any(|e| e.is_none()) {
            return 0.0;
        }
        let all: Vec<f64> = efficiencies.iter().flatten().copied().collect();
        harmonic_mean(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_properties() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Harmonic ≤ arithmetic.
        let xs = [0.3, 0.9, 0.6];
        assert!(harmonic_mean(&xs) <= mean(&xs));
        // A zero (unsupported) zeroes the metric.
        assert_eq!(harmonic_mean(&[0.5, 0.0]), 0.0);
    }

    #[test]
    fn pennycook_zeroes_on_failure_unless_ignored() {
        let es = [Some(0.5), None, Some(0.8)];
        assert_eq!(pennycook(&es, false), 0.0);
        let ignored = pennycook(&es, true);
        assert!((ignored - harmonic_mean(&[0.5, 0.8])).abs() < 1e-12);
    }

    #[test]
    fn pennycook_full_support_is_harmonic_mean() {
        let es = [Some(0.4), Some(0.6)];
        let expect = 2.0 / (1.0 / 0.4 + 1.0 / 0.6);
        assert!((pennycook(&es, false) - expect).abs() < 1e-12);
        assert!((pennycook(&es, true) - expect).abs() < 1e-12);
    }

    #[test]
    fn pennycook_is_dominated_by_the_worst_platform() {
        let balanced = pennycook(&[Some(0.6), Some(0.6)], false);
        let skewed = pennycook(&[Some(1.0), Some(0.2)], false);
        assert!(balanced > skewed);
    }
}
