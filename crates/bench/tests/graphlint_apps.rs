//! End-to-end graphlint checks against the real applications.
//!
//! These mirror the `graphlint` binary's pipeline — dry-run session,
//! shadow registry on before the app allocates, graph observer, static
//! lint — and pin the two acceptance properties: the paper apps lint
//! clean, and the analysis finds the known-fusable CloverLeaf 2D
//! kernel pair with a modelled saving.

use bench_harness::{make_app, native_toolchain, APP_NAMES};
use std::sync::{Arc, Mutex, MutexGuard};
use sycl_sim::{AtomicKind, GraphSummary, PlatformId, Session, SessionConfig};
use telemetry::shadow;
use verify::dataflow::{lint_graph, LintContext};
use verify::{Diagnostic, Severity};

/// The shadow registry is process-global; tests that register dats must
/// not interleave.
static SHADOW_LOCK: Mutex<()> = Mutex::new(());

/// Run `app` at test size on a dry-run session and lint every graph it
/// records, exactly as the `graphlint` binary does.
fn lint_app(app_name: &str, platform: PlatformId) -> (Vec<Diagnostic>, MutexGuard<'static, ()>) {
    let guard = SHADOW_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let toolchain = native_toolchain(platform);
    let session = Session::create(
        SessionConfig::new(platform, toolchain)
            .app(app_name)
            .dry_run(),
    )
    .unwrap();
    shadow::reset_shadow();
    shadow::set_shadow(true);

    let summaries: Arc<Mutex<Vec<GraphSummary>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&summaries);
    session.set_graph_observer(Some(Arc::new(move |s: &GraphSummary| {
        let mut v = sink.lock().unwrap_or_else(|e| e.into_inner());
        if !v.iter().any(|g| g.id == s.id) {
            v.push(s.clone());
        }
    })));
    let app = make_app(app_name, false).expect("known app");
    app.run(&session);
    session.set_graph_observer(None);

    let ctx = LintContext {
        ranks: session.ranks(),
        stream_bw: session.platform().mem.stream_bw,
        launch_overhead: toolchain
            .backend(session.config().platform)
            .launch_overhead(session.platform()),
        cas_atomics: session.atomic_kind() == AtomicKind::CasLoop,
        platform: session.platform().name.to_owned(),
    };
    let summaries = summaries.lock().unwrap_or_else(|e| e.into_inner());
    let diags = summaries
        .iter()
        .flat_map(|g| lint_graph(g, &ctx, &|id| shadow::dat_name(id)))
        .collect();
    (diags, guard)
}

/// The acceptance fusion chain: CloverLeaf 2D's `ideal_gas` and
/// `viscosity` are adjacent, same-range, hazard-free point/stencil
/// launches sharing density, energy and pressure — the lint must
/// surface the pair with a modelled bytes-saved estimate.
#[test]
fn cloverleaf2d_reports_the_known_fusable_kernel_pair() {
    let (diags, _guard) = lint_app("cloverleaf2d", PlatformId::A100);
    assert!(
        !diags.iter().any(|d| d.severity == Severity::Error),
        "{diags:?}"
    );
    let fusion = diags
        .iter()
        .find(|d| d.kernel.contains("ideal_gas") && d.kernel.contains("viscosity"))
        .expect("ideal_gas+viscosity fusion candidate");
    assert_eq!(fusion.severity, Severity::Info);
    assert!(
        fusion.detail.contains("fusion candidate"),
        "{}",
        fusion.detail
    );
    assert!(fusion.detail.contains("MB"), "{}", fusion.detail);
}

/// Every app's recorded graphs lint free of Error-severity findings on
/// both a single-rank GPU and a multi-rank CPU decomposition (where the
/// halo-coverage lints are live).
#[test]
fn every_app_lints_clean_on_gpu_and_cpu() {
    for platform in [PlatformId::A100, PlatformId::Xeon8360Y] {
        for app_name in APP_NAMES {
            let (diags, _guard) = lint_app(app_name, platform);
            let errors: Vec<&Diagnostic> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(
                errors.is_empty(),
                "{app_name} on {}: {errors:?}",
                platform.label()
            );
        }
    }
}
