//! JSON plumbing for the harness binaries.
//!
//! The writer and validator live in [`telemetry::json`] (telemetry sits
//! at the bottom of the dependency DAG, so the trace exporters and the
//! bench binaries share one implementation); this module re-exports
//! them and adds the one filesystem helper every binary ends with.

pub use telemetry::json::{escape, validate, JsonWriter};

use std::io;
use std::path::{Path, PathBuf};

/// Write `contents` to `results/<name>`, creating the directory first.
/// Returns the path written.
pub fn write_results_file(name: &str, contents: &str) -> io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_writer_produces_valid_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("bench").string("engine");
        w.key("ok").bool(true);
        w.end_object();
        let doc = w.finish();
        validate(&doc).unwrap();
        assert_eq!(doc, r#"{"bench": "engine", "ok": true}"#);
    }
}
