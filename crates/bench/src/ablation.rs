//! Ablation studies for the design choices DESIGN.md calls out:
//! work-group shape, mesh ordering, cache capacity, hierarchical block
//! size. Each returns printable sweep data; binaries and criterion
//! benches wrap them.

use machine_model::{predict, Platform, PlatformId};
use miniapps::App;
use sycl_sim::{
    tune, AccessProfile, Kernel, KernelFootprint, Precision, Scheme, Session, SessionConfig,
    StencilProfile, SyclVariant, Toolchain,
};

/// The RTM wave kernel used as the shape-sweep subject (radius-4 star,
/// the shape-sensitive extreme of the suite).
pub fn rtm_wave_kernel() -> Kernel {
    let pts = 320usize.pow(3);
    Kernel::new(KernelFootprint {
        name: "wave_step".into(),
        items: pts as u64,
        effective_bytes: 4.0 * 4.0 * pts as f64,
        flops: 33.0 * pts as f64,
        transcendentals: 0.0,
        precision: Precision::F32,
        access: AccessProfile::Stencil(StencilProfile {
            domain: [320, 320, 320],
            radius: [4, 4, 4],
            dats_read: 2,
            dats_written: 1,
        }),
        atomics: None,
        reductions: 0,
    })
}

/// Work-group-shape sweep on the three GPUs: (platform, best shapes and
/// times, worst shape and time).
pub fn workgroup_sweep_text() -> String {
    let mut out = String::from("## Ablation: work-group shape sweep (RTM wave kernel)\n");
    let kernel = rtm_wave_kernel();
    for (p, tc) in [
        (PlatformId::A100, Toolchain::Dpcpp),
        (PlatformId::Mi250x, Toolchain::OpenSycl),
        (PlatformId::Max1100, Toolchain::Dpcpp),
    ] {
        let sweep = tune::sweep(p, tc, &kernel);
        let (best, t_best) = sweep.first().unwrap();
        let (worst, t_worst) = sweep.last().unwrap();
        out.push_str(&format!(
            "{:10} best {:?} = {:.3} ms | worst {:?} = {:.3} ms | spread {:.1}x\n",
            p.label(),
            best,
            t_best * 1e3,
            worst,
            t_worst * 1e3,
            t_worst / t_best
        ));
        for (shape, t) in sweep.iter().take(4) {
            out.push_str(&format!("    {shape:?} -> {:.3} ms\n", t * 1e3));
        }
    }
    out.push_str(
        "\nThe flat formulation delegates this choice to the runtime; the sweep\n\
         spread is the price of a bad heuristic (paper §4.1).\n",
    );
    out
}

/// Mesh-ordering sweep: MG-CFD atomics runtime as a function of the
/// ordering-locality score (1.0 = renumbered, 0.0 = random).
pub fn ordering_sweep(platform: PlatformId) -> Vec<(f64, f64)> {
    let tc = if platform.is_gpu() {
        Toolchain::Dpcpp
    } else {
        Toolchain::Mpi
    };
    [1.0, 0.9, 0.7, 0.5, 0.3, 0.1]
        .into_iter()
        .map(|loc| {
            let session = Session::create(
                SessionConfig::new(platform, tc)
                    .variant(SyclVariant::NdRange([256, 1, 1]))
                    .app("mgcfd")
                    .scheme(Scheme::Atomics)
                    .dry_run(),
            )
            .unwrap();
            let mut app = miniapps::Mgcfd::paper();
            app.finest.locality = loc;
            let run = app.run(&session);
            (loc, run.elapsed)
        })
        .collect()
}

/// Render the ordering sweep for GPUs and CPUs.
pub fn ordering_sweep_text() -> String {
    let mut out =
        String::from("## Ablation: mesh ordering vs MG-CFD atomics runtime (paper §4.3)\n");
    for p in [PlatformId::A100, PlatformId::Xeon8360Y] {
        out.push_str(&format!("{}:\n", Platform::get(p).name));
        for (loc, t) in ordering_sweep(p) {
            out.push_str(&format!("  locality {loc:.1} -> {t:.3} s\n"));
        }
    }
    out.push_str("\nAtomics depend on 'a good ordering of the mesh'; colouring schemes\n");
    out.push_str("destroy it by construction — this sweep shows how much that costs.\n");
    out
}

/// Cache-capacity sweep: scale the MI250X's L2 and watch the CloverLeaf
/// 3D / RTM efficiency recover toward A100/Max levels.
pub fn cache_sweep() -> Vec<(f64, f64, f64)> {
    let scales = [0.5, 1.0, 2.5, 5.0, 13.0];
    scales
        .into_iter()
        .map(|scale| {
            let mut platform = machine_model::platform::mi250x();
            platform.caches[0].size_bytes *= scale;
            let kernel = rtm_wave_kernel();
            let exec = Toolchain::NativeHip.exec_profile(
                &platform,
                SyclVariant::NdRange([32, 8, 1]),
                &kernel,
            );
            let t = predict(&platform, &kernel.footprint, &exec);
            let eff = kernel.footprint.effective_bytes / t.total / platform.mem.stream_bw;
            (scale, platform.caches[0].size_bytes / 1e6, eff)
        })
        .collect()
}

/// Render the cache sweep.
pub fn cache_sweep_text() -> String {
    let mut out =
        String::from("## Ablation: LLC capacity vs RTM efficiency (MI250X base, paper §4.1)\n");
    for (scale, mb, eff) in cache_sweep() {
        out.push_str(&format!(
            "  L2 x{scale:<4} = {mb:6.0} MB -> efficiency {:.0}%\n",
            eff * 100.0
        ));
    }
    out.push_str("\n208 MB is the Max 1100's L2 — the capacity mechanism behind its\n");
    out.push_str("cache-hit-rate sensitivity is reproduced by scaling alone.\n");
    out
}

/// Hierarchical block-size sweep for MG-CFD (the paper tuned 256 on
/// GPUs, 4096 on CPUs).
pub fn block_size_sweep(platform: PlatformId) -> Vec<(usize, f64)> {
    let tc = if platform.is_gpu() {
        Toolchain::Dpcpp
    } else {
        Toolchain::OpenSycl
    };
    [32usize, 64, 128, 256, 1024, 4096, 16384]
        .into_iter()
        .map(|block| {
            let platform_model = Platform::get(platform);
            let stats = op2_dsl::MeshStats::rotor37();
            let lp =
                op2_dsl::EdgeLoop::new("compute_flux", stats, Scheme::HierColor, Precision::F64)
                    .vertex_read(5)
                    .vertex_inc(5)
                    .flops(110.0)
                    .block_size(block);
            let session = Session::create(
                SessionConfig::new(platform, tc)
                    .variant(SyclVariant::NdRange([block.min(1024), 1, 1]))
                    .app("mgcfd")
                    .scheme(Scheme::HierColor)
                    .dry_run(),
            )
            .unwrap();
            lp.run(&session, None, |_| {});
            let _ = platform_model;
            (block, session.elapsed())
        })
        .collect()
}

/// Render the block-size sweep.
pub fn block_size_sweep_text() -> String {
    let mut out =
        String::from("## Ablation: hierarchical block size (paper: GPUs 256, CPUs 4096)\n");
    for p in [PlatformId::A100, PlatformId::Xeon8360Y] {
        out.push_str(&format!("{}:\n", Platform::get(p).name));
        for (block, t) in block_size_sweep(p) {
            out.push_str(&format!("  block {block:>6} -> {:.4} s\n", t));
        }
    }
    out
}

/// §4.1's consistency statistics: per platform, mean and standard
/// deviation of the best variant's efficiency over the structured apps.
pub fn consistency_rows() -> Vec<(PlatformId, f64, f64)> {
    use portability::{mean, std_dev, structured_measurements};
    portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
        .map(|p| {
            let ms = structured_measurements(p);
            let mut best_per_app: std::collections::HashMap<&str, f64> = Default::default();
            for m in &ms {
                if let Some(e) = m.efficiency {
                    let slot = best_per_app.entry(m.app).or_insert(0.0);
                    *slot = slot.max(e);
                }
            }
            let effs: Vec<f64> = best_per_app.values().copied().collect();
            (p, mean(&effs), std_dev(&effs))
        })
        .collect()
}

/// Render consistency rows with the paper's reference values.
pub fn consistency_text() -> String {
    let mut out = String::from(
        "## Consistency of best-variant efficiency (paper §4.1: Max 1100 has\n\
         ## the lowest std dev at 11.6%, Xeon next at 11.8%, rest above 17%)\n",
    );
    for (p, m, s) in consistency_rows() {
        out.push_str(&format!(
            "{:12} mean {:5.1}%  std {:5.1}%\n",
            p.label(),
            m * 100.0,
            s * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_sweep_is_monotone_in_locality() {
        let sweep = ordering_sweep(PlatformId::A100);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 * 0.999,
                "worse ordering must not be faster: {pair:?}"
            );
        }
    }

    #[test]
    fn cache_sweep_shows_monotone_efficiency_gain() {
        let sweep = cache_sweep();
        for pair in sweep.windows(2) {
            assert!(pair[1].2 >= pair[0].2 - 1e-9, "{pair:?}");
        }
        // Scaling the MI250X's L2 towards the Max 1100's must lift
        // efficiency substantially.
        assert!(sweep.last().unwrap().2 > 1.3 * sweep[0].2);
    }

    #[test]
    fn workgroup_sweep_has_meaningful_spread() {
        let text = workgroup_sweep_text();
        assert!(text.contains("a100"));
        assert!(text.contains("spread"));
    }

    #[test]
    fn consistency_rows_cover_all_platforms() {
        let rows = consistency_rows();
        assert_eq!(rows.len(), 6);
        for (p, m, s) in rows {
            assert!(m > 0.2 && m < 1.6, "{p:?} mean {m}");
            assert!((0.0..0.6).contains(&s), "{p:?} std {s}");
        }
    }
}
