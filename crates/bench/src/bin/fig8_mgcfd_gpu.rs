//! Regenerates Figure 8: MG-CFD (Rotor37) runtimes on the three GPUs.
fn main() {
    for p in portability::gpu_platforms() {
        println!("{}", bench_harness::figure_mgcfd_text(p));
    }
}
