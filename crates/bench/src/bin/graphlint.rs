//! `graphlint` — static dataflow and hazard/fusion linting over the
//! launch graphs the applications record.
//!
//! ```text
//! graphlint [--app <name>] [--platform <label>] [--smoke]
//!           [--deny-warnings] [--cross-check]
//! ```
//!
//! * default — lint all seven applications at their paper sizes
//!   (`mgcfd` under all three race-resolution schemes);
//! * `--app <name>` — lint one of `cloverleaf2d`, `cloverleaf3d`,
//!   `opensbli_sa`, `opensbli_sn`, `rtm`, `acoustic`, `mgcfd`;
//! * `--platform` — `a100` (default), `mi250x`, `max1100`, `xeon8360y`,
//!   `genoax`, `altra`; the platform's best native toolchain is used.
//!   Halo lints need a multi-rank decomposition, so run a CPU platform
//!   to exercise them;
//! * `--smoke` — all seven apps at their functional test sizes (CI);
//! * `--deny-warnings` — treat `Warning` findings like `Error`s;
//! * `--cross-check` — additionally run each app live (test size) under
//!   the shadow verifier and reconcile static verdicts with dynamic
//!   evidence: kernels that lint clean statically but race dynamically
//!   have under-declared stencils.
//!
//! The apps run under `dry_run` sessions: graphs are recorded, priced
//! and replayed, but no kernel body executes — linting the full paper
//! configuration takes well under a second per app. Each replayed graph
//! is snapshotted once (by process-unique graph id) through the
//! session's graph observer and analysed by `verify::dataflow`.
//!
//! Findings land on stdout and in `results/LINT_<app>.json`. Exit
//! status: 2 for an unknown app, 1 when any `Error`-severity finding
//! (or any warning under `--deny-warnings`) was found, 0 otherwise.

use bench_harness::json::{validate, write_results_file};
use bench_harness::{make_app, native_toolchain, APP_NAMES};
use std::sync::{Arc, Mutex};
use sycl_sim::{AtomicKind, GraphSummary, PlatformId, Scheme, Session, SessionConfig};
use telemetry::shadow;
use verify::dataflow::{cross_check, lint_graph, LintContext};
use verify::{report, Diagnostic, Severity, Verifier};

/// One lint target: an app, under one scheme if it has one.
struct Target {
    app: &'static str,
    scheme: Option<Scheme>,
}

fn targets_for(app: &str) -> Vec<Target> {
    if app == "mgcfd" {
        [Scheme::Atomics, Scheme::GlobalColor, Scheme::HierColor]
            .into_iter()
            .map(|s| Target {
                app: "mgcfd",
                scheme: Some(s),
            })
            .collect()
    } else {
        vec![Target {
            app: APP_NAMES
                .iter()
                .find(|n| **n == app)
                .expect("validated by make_app"),
            scheme: None,
        }]
    }
}

/// Collect each distinct recorded graph (by process-unique id) that the
/// app replays on `session`.
fn observe_graphs(session: &Session) -> Arc<Mutex<Vec<GraphSummary>>> {
    let summaries: Arc<Mutex<Vec<GraphSummary>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&summaries);
    session.set_graph_observer(Some(Arc::new(move |s: &GraphSummary| {
        let mut v = sink.lock().unwrap_or_else(|e| e.into_inner());
        if !v.iter().any(|g| g.id == s.id) {
            v.push(s.clone());
        }
    })));
    summaries
}

fn lint_context(session: &Session) -> LintContext {
    let platform = session.platform();
    let toolchain = session.config().toolchain;
    LintContext {
        ranks: session.ranks(),
        stream_bw: platform.mem.stream_bw,
        launch_overhead: toolchain
            .backend(session.config().platform)
            .launch_overhead(platform),
        cas_atomics: session.atomic_kind() == AtomicKind::CasLoop,
        platform: platform.name.to_owned(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let do_cross = args.iter().any(|a| a == "--cross-check");
    let platform = args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| PlatformId::parse(s))
        .unwrap_or(PlatformId::A100);
    let only = args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let app_names: Vec<&str> = match &only {
        Some(name) => match APP_NAMES.iter().find(|n| *n == name) {
            Some(n) => vec![n],
            None => {
                eprintln!(
                    "unknown app {name:?}; expected one of {}",
                    APP_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
        None => APP_NAMES.to_vec(),
    };
    // Paper configurations by default; `--smoke` lints the functional
    // test sizes (same graph structure, smaller ranges) for CI.
    let paper = !smoke;

    let toolchain = native_toolchain(platform);
    let mut failing = false;

    for app_name in app_names {
        let started = std::time::Instant::now();
        let mut app_diags: Vec<Diagnostic> = Vec::new();
        let mut graphs_seen = 0usize;

        for target in targets_for(app_name) {
            let mut cfg = SessionConfig::new(platform, toolchain)
                .app(target.app)
                .dry_run();
            if let Some(s) = target.scheme {
                cfg = cfg.scheme(s);
            }
            let session = match Session::create(cfg) {
                Ok(s) => s,
                Err(fail) => {
                    eprintln!("{app_name} does not run on {}: {fail}", platform.label());
                    std::process::exit(2);
                }
            };
            // Dats only acquire shadow ids (and names for diagnostics)
            // at creation time: enable the registry before the app
            // allocates. Dry-run bodies never execute, so no per-access
            // instrumentation ever runs.
            shadow::reset_shadow();
            shadow::set_shadow(true);

            let summaries = observe_graphs(&session);
            let app = make_app(target.app, paper).expect("validated above");
            app.run(&session);
            session.set_graph_observer(None);

            let ctx = lint_context(&session);
            let resolve = |id: u32| shadow::dat_name(id);
            let summaries = summaries.lock().unwrap_or_else(|e| e.into_inner());
            graphs_seen += summaries.len();
            for g in summaries.iter() {
                app_diags.extend(lint_graph(g, &ctx, &resolve));
            }

            if do_cross {
                app_diags.extend(cross_check_target(&target, platform, &summaries));
            }
            shadow::reset_shadow();
        }

        let unique = report::dedup(&app_diags);
        let (mut errors, mut warnings, mut infos) = (0usize, 0usize, 0usize);
        for (d, _) in &unique {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => infos += 1,
            }
        }
        println!(
            "# {app_name} on {} ({}): {graphs_seen} graph(s) linted in {:.0} ms — \
             {errors} error(s), {warnings} warning(s), {infos} info(s)",
            platform.label(),
            toolchain.label(),
            started.elapsed().as_secs_f64() * 1e3,
        );
        for (d, count) in &unique {
            let times = if *count > 1 {
                format!(" (x{count})")
            } else {
                String::new()
            };
            println!(
                "  [{}] {} `{}`: {}{times}",
                d.severity, d.pass, d.kernel, d.detail
            );
        }

        failing |= app_diags.iter().any(|d| {
            d.severity == Severity::Error || (deny_warnings && d.severity == Severity::Warning)
        });

        let doc = report::render_app_report(app_name, &app_diags);
        debug_assert!(validate(&doc).is_ok());
        let file = format!("LINT_{app_name}.json");
        match write_results_file(&file, &doc) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("could not write results/{file}: {e}");
                std::process::exit(1);
            }
        }
    }

    if failing {
        eprintln!("graphlint: failing findings (see above)");
        std::process::exit(1);
    }
    println!("graphlint OK: no Error-severity findings");
}

/// Re-run one target live at test size under the shadow verifier and
/// reconcile its dynamic findings with the statically linted graphs.
fn cross_check_target(
    target: &Target,
    platform: PlatformId,
    summaries: &[GraphSummary],
) -> Vec<Diagnostic> {
    let mut cfg = SessionConfig::new(platform, native_toolchain(platform)).app(target.app);
    if let Some(s) = target.scheme {
        cfg = cfg.scheme(s);
    }
    let Ok(session) = Session::create(cfg) else {
        return Vec::new();
    };
    let verifier = Verifier::attach(&session);
    let app = make_app(target.app, false).expect("validated above");
    app.run(&session);
    let dynamic = verifier.finish(&session);
    cross_check(summaries, &dynamic)
}
