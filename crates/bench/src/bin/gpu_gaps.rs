//! Regenerates the §4.1 in-text SYCL-vs-native runtime gap averages.
fn main() {
    print!("{}", bench_harness::gpu_gaps_text());
}
