//! `sycl-ls` analogue: list the simulated devices, their calibration
//! inputs, and which toolchains target them.
use sycl_sim::Toolchain;

fn main() {
    println!("# Simulated platform inventory (calibration per DESIGN.md)\n");
    for p in machine_model::all_platforms() {
        println!("[{}] {}", p.id.label(), p.name);
        println!(
            "    STREAM {:.0} GB/s | LLC {:.0} MB @ {:.1} TB/s | launch {:.1} us | fp32 {:.1} TF | fp64 {:.1} TF",
            p.mem.stream_bw / 1e9,
            p.llc().size_bytes / 1e6,
            p.llc().bandwidth / 1e12,
            p.native_launch * 1e6,
            p.fp32_flops / 1e12,
            p.fp64_flops / 1e12,
        );
        println!(
            "    ridge (f64): {:.1} FLOP/byte | atomics: {:.0} G/s FP, {:.0} G/s CAS",
            p.ridge_point(machine_model::Precision::F64),
            p.atomics.fp_add_per_s / 1e9,
            p.atomics.cas_per_s / 1e9,
        );
        let toolchains: Vec<&str> = [
            Toolchain::NativeCuda,
            Toolchain::NativeHip,
            Toolchain::OmpOffload,
            Toolchain::Mpi,
            Toolchain::MpiOpenMp,
            Toolchain::OpenMp,
            Toolchain::Dpcpp,
            Toolchain::OpenSycl,
        ]
        .into_iter()
        .filter(|tc| tc.supports(p.id))
        .map(|tc| tc.label())
        .collect();
        println!("    toolchains: {}\n", toolchains.join(", "));
    }
}
