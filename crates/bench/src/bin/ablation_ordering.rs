//! Ablation: mesh ordering quality vs MG-CFD atomics runtime.
fn main() {
    print!("{}", bench_harness::ablation::ordering_sweep_text());
}
