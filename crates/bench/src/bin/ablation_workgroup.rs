//! Ablation: work-group shape sweep for the radius-4 RTM kernel.
fn main() {
    print!("{}", bench_harness::ablation::workgroup_sweep_text());
}
