//! Roofline placement of the suite's main kernels on each platform —
//! checks the paper's premise that the apps are bandwidth-bound.
use machine_model::{roofline_text, KernelFootprint, Precision};

fn main() {
    let kernels: Vec<KernelFootprint> = vec![
        KernelFootprint::streaming(
            "triad",
            1 << 20,
            24.0 * (1u64 << 20) as f64,
            2.0 * (1u64 << 20) as f64,
            Precision::F64,
        ),
        KernelFootprint::streaming(
            "cloverleaf_advec",
            1 << 20,
            40.0 * (1u64 << 20) as f64,
            10.0 * (1u64 << 20) as f64,
            Precision::F64,
        ),
        KernelFootprint::streaming(
            "sbli_sn_fused",
            1 << 20,
            24.0 * (1u64 << 20) as f64,
            65.0 * (1u64 << 20) as f64,
            Precision::F64,
        ),
        KernelFootprint::streaming(
            "rtm_wave",
            1 << 20,
            16.0 * (1u64 << 20) as f64,
            33.0 * (1u64 << 20) as f64,
            Precision::F32,
        ),
        KernelFootprint::streaming(
            "mgcfd_flux",
            1 << 20,
            48.0 * (1u64 << 20) as f64,
            110.0 * (1u64 << 20) as f64,
            Precision::F64,
        ),
    ];
    let refs: Vec<&KernelFootprint> = kernels.iter().collect();
    for p in machine_model::all_platforms() {
        println!("{}", roofline_text(&p, &refs));
    }
}
