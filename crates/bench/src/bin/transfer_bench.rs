//! `transfer_bench` — the babelstream of the interconnect tier.
//!
//! ```text
//! transfer_bench [--smoke]
//! ```
//!
//! Calibrates the host↔device link of every platform by pricing a size
//! ladder of anonymous transfer nodes **through the product path** (a
//! session records and replays a one-node graph per point, exactly like
//! an app's staging traffic), for every direction (H2D/D2H/D2D) and
//! host-allocation kind (pinned/pageable). Each measured point is
//! cross-checked against [`Interconnect::transfer_time`] — a divergence
//! means the session's comm pricing drifted from the machine model and
//! the run exits nonzero.
//!
//! On top of the curves the bench reports what the interconnect costs
//! the *applications*: a per-app × platform kernel-vs-transfer split
//! (paper sizes, dry-run priced, native toolchains) and the CPU-vs-GPU
//! crossover table — how much of the GPUs' advantage survives once the
//! staging traffic they depend on is priced.
//!
//! Output: `results/BENCH_transfer.json`, schema `transfer-bench/v1`.
//! `--smoke` shrinks the ladder and runs the apps at test size (same
//! schema, same self-checks) so CI can exercise the whole path in
//! seconds.

use bench_harness::{json, make_app, native_toolchain, APP_NAMES};
use machine_model::{all_platforms, TransferDir};
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig};

const KIB: f64 = 1024.0;
const MIB: f64 = 1024.0 * KIB;

/// The calibration size ladder (bytes per copy).
fn ladder(smoke: bool) -> Vec<f64> {
    if smoke {
        vec![64.0 * KIB, 16.0 * MIB, 256.0 * MIB]
    } else {
        vec![
            4.0 * KIB,
            64.0 * KIB,
            1.0 * MIB,
            16.0 * MIB,
            64.0 * MIB,
            256.0 * MIB,
            1024.0 * MIB,
        ]
    }
}

/// One priced point of one curve.
struct Point {
    bytes: f64,
    secs: f64,
    gbps: f64,
}

/// One (platform × direction × allocation) calibration curve.
struct Curve {
    platform: &'static str,
    link: &'static str,
    dir: TransferDir,
    pinned: bool,
    latency: f64,
    points: Vec<Point>,
}

/// Price one anonymous copy through a session: record a one-node graph,
/// replay it, and read the comm-clock delta.
fn priced_copy(session: &Session, dir: TransferDir, bytes: f64) -> f64 {
    let before = session.comm_time();
    let mut g = session.record();
    g.transfer_dir(bytes, Vec::new(), dir);
    g.finish().replay(session);
    session.comm_time() - before
}

/// Calibrate every platform × direction × allocation over the ladder,
/// verifying each point against the machine model as it is measured.
fn calibrate(smoke: bool) -> Vec<Curve> {
    let sizes = ladder(smoke);
    let mut curves = Vec::new();
    for p in all_platforms() {
        for pinned in [true, false] {
            let cfg = SessionConfig::new(p.id, native_toolchain(p.id))
                .app("transfer-bench")
                .dry_run();
            let cfg = if pinned {
                cfg
            } else {
                cfg.pageable_transfers()
            };
            let session = Session::create(cfg).expect("native toolchains run everywhere");
            for dir in [TransferDir::H2D, TransferDir::D2H, TransferDir::D2D] {
                // The D2D rate has no host allocation to pin; one curve
                // is enough.
                if dir == TransferDir::D2D && !pinned {
                    continue;
                }
                let points = sizes
                    .iter()
                    .map(|&bytes| {
                        let secs = priced_copy(&session, dir, bytes);
                        let model = p.interconnect.transfer_time(dir, pinned, bytes);
                        let drift = (secs - model).abs() / model;
                        if drift > 1e-9 {
                            eprintln!(
                                "FAIL: {} {} pinned={pinned} {bytes:.0} B priced at {secs:.3e}s \
                                 but the interconnect model says {model:.3e}s",
                                p.id.label(),
                                dir.label(),
                            );
                            std::process::exit(1);
                        }
                        Point {
                            bytes,
                            secs,
                            gbps: bytes / secs / 1e9,
                        }
                    })
                    .collect();
                curves.push(Curve {
                    platform: p.id.label(),
                    link: p.interconnect.link,
                    dir,
                    pinned,
                    latency: p.interconnect.latency,
                    points,
                });
            }
        }
    }
    curves
}

/// One app × platform kernel-vs-transfer split.
struct AppSplit {
    app: String,
    platform: PlatformId,
    kernel_secs: f64,
    transfer_secs: f64,
    total_secs: f64,
}

/// Price every app on every platform's native toolchain and split the
/// clock into kernel time and interconnect time.
fn app_splits(smoke: bool) -> Vec<AppSplit> {
    let mut out = Vec::new();
    for name in APP_NAMES {
        let app = make_app(name, !smoke).expect("APP_NAMES entries are exhaustive");
        for p in all_platforms() {
            let mut cfg = SessionConfig::new(p.id, native_toolchain(p.id))
                .app(app.name())
                .dry_run();
            if app.name() == "mgcfd" {
                cfg = cfg.scheme(Scheme::Atomics);
            }
            let session = match Session::create(cfg) {
                Ok(s) => s,
                Err(fail) => {
                    eprintln!("skipping {name} on {}: {fail}", p.id.label());
                    continue;
                }
            };
            app.run(&session);
            let total = session.elapsed();
            let transfer = session.comm_time();
            out.push(AppSplit {
                app: name.to_owned(),
                platform: p.id,
                kernel_secs: total - transfer,
                transfer_secs: transfer,
                total_secs: total,
            });
        }
    }
    out
}

/// One row of the CPU-vs-GPU crossover table: the best CPU against the
/// best GPU, kernels-only (the historic free-transfer comparison)
/// against the full priced clock.
struct Crossover {
    app: String,
    best_cpu: PlatformId,
    best_gpu: PlatformId,
    cpu_kernel_secs: f64,
    cpu_total_secs: f64,
    gpu_kernel_secs: f64,
    gpu_total_secs: f64,
    /// GPU advantage under each model: `cpu / gpu` (> 1 = GPU wins).
    speedup_kernels: f64,
    speedup_total: f64,
}

fn crossovers(splits: &[AppSplit]) -> Vec<Crossover> {
    let mut out = Vec::new();
    for name in APP_NAMES {
        let best = |gpu: bool| -> Option<&AppSplit> {
            splits
                .iter()
                .filter(|s| s.app == name && s.platform.is_gpu() == gpu)
                .min_by(|a, b| a.total_secs.total_cmp(&b.total_secs))
        };
        let (Some(cpu), Some(gpu)) = (best(false), best(true)) else {
            continue;
        };
        out.push(Crossover {
            app: name.to_owned(),
            best_cpu: cpu.platform,
            best_gpu: gpu.platform,
            cpu_kernel_secs: cpu.kernel_secs,
            cpu_total_secs: cpu.total_secs,
            gpu_kernel_secs: gpu.kernel_secs,
            gpu_total_secs: gpu.total_secs,
            speedup_kernels: cpu.kernel_secs / gpu.kernel_secs,
            speedup_total: cpu.total_secs / gpu.total_secs,
        });
    }
    out
}

/// The pinned-over-pageable bandwidth factor per platform × direction
/// at the largest measured size (where the latency term is negligible).
fn pinned_deltas(curves: &[Curve]) -> Vec<(&'static str, TransferDir, f64, f64, f64)> {
    let mut out = Vec::new();
    for c in curves
        .iter()
        .filter(|c| c.pinned && c.dir != TransferDir::D2D)
    {
        let Some(pageable) = curves
            .iter()
            .find(|o| o.platform == c.platform && o.dir == c.dir && !o.pinned)
        else {
            continue;
        };
        let (pin, page) = (
            c.points.last().expect("ladder is never empty").gbps,
            pageable.points.last().expect("ladder is never empty").gbps,
        );
        out.push((c.platform, c.dir, pin, page, pin / page));
    }
    out
}

fn write_document(
    smoke: bool,
    curves: &[Curve],
    splits: &[AppSplit],
    cross: &[Crossover],
) -> String {
    let mut w = json::JsonWriter::new();
    w.begin_object();
    w.key("schema").string("transfer-bench/v1");
    w.key("gitRev").string(&metrics::manifest::git_rev());
    w.key("createdUnixSecs").int(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
    );
    w.key("smoke").bool(smoke);

    w.key("curves").begin_array();
    for c in curves {
        w.begin_object();
        w.key("platform").string(c.platform);
        w.key("link").string(c.link);
        w.key("dir").string(c.dir.label());
        w.key("alloc").string(if c.dir == TransferDir::D2D {
            "device"
        } else if c.pinned {
            "pinned"
        } else {
            "pageable"
        });
        w.key("latencySecs").number(c.latency);
        w.key("points").begin_array();
        for pt in &c.points {
            w.begin_object();
            w.key("bytes").number(pt.bytes);
            w.key("secs").number(pt.secs);
            w.key("gbps").number(pt.gbps);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();

    w.key("pinnedDelta").begin_array();
    for &(platform, dir, pin, page, speedup) in &pinned_deltas(curves) {
        w.begin_object();
        w.key("platform").string(platform);
        w.key("dir").string(dir.label());
        w.key("pinnedGbps").number(pin);
        w.key("pageableGbps").number(page);
        w.key("speedup").number(speedup);
        w.end_object();
    }
    w.end_array();

    w.key("apps").begin_array();
    for s in splits {
        w.begin_object();
        w.key("app").string(&s.app);
        w.key("platform").string(s.platform.label());
        w.key("chip")
            .string(if s.platform.is_gpu() { "gpu" } else { "cpu" });
        w.key("kernelSecs").number(s.kernel_secs);
        w.key("transferSecs").number(s.transfer_secs);
        w.key("totalSecs").number(s.total_secs);
        w.key("transferFraction")
            .number(s.transfer_secs / s.total_secs);
        w.end_object();
    }
    w.end_array();

    w.key("crossover").begin_array();
    for c in cross {
        w.begin_object();
        w.key("app").string(&c.app);
        w.key("bestCpu").string(c.best_cpu.label());
        w.key("bestGpu").string(c.best_gpu.label());
        w.key("cpuKernelSecs").number(c.cpu_kernel_secs);
        w.key("cpuTotalSecs").number(c.cpu_total_secs);
        w.key("gpuKernelSecs").number(c.gpu_kernel_secs);
        w.key("gpuTotalSecs").number(c.gpu_total_secs);
        w.key("gpuSpeedupKernels").number(c.speedup_kernels);
        w.key("gpuSpeedupTotal").number(c.speedup_total);
        // How far pricing the interconnect moved the crossover, in
        // percent of the free-transfer speedup (negative = the GPU
        // advantage shrank).
        w.key("shiftPct")
            .number((c.speedup_total / c.speedup_kernels - 1.0) * 100.0);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let curves = calibrate(smoke);
    println!(
        "calibrated {} curves ({} points each) against the session pricing path",
        curves.len(),
        ladder(smoke).len()
    );
    for (platform, dir, pin, page, speedup) in pinned_deltas(&curves) {
        println!(
            "  {platform:>10} {}: pinned {pin:6.1} GB/s vs pageable {page:6.1} GB/s ({speedup:.2}x)",
            dir.label()
        );
    }

    let splits = app_splits(smoke);
    let cross = crossovers(&splits);
    for c in &cross {
        println!(
            "  {:>12}: best GPU {:>8} vs best CPU {:>9} — speedup {:.2}x kernels-only, \
             {:.2}x with transfers priced",
            c.app,
            c.best_gpu.label(),
            c.best_cpu.label(),
            c.speedup_kernels,
            c.speedup_total
        );
    }
    // The acceptance bar: pricing transfers must *measurably* move at
    // least one app's CPU-vs-GPU crossover.
    let max_shift = cross
        .iter()
        .map(|c| (c.speedup_total / c.speedup_kernels - 1.0).abs())
        .fold(0.0f64, f64::max);
    if max_shift < 0.001 {
        eprintln!("FAIL: no app's CPU-vs-GPU crossover moved when transfers were priced");
        std::process::exit(1);
    }

    let doc = write_document(smoke, &curves, &splits, &cross);
    json::validate(&doc).expect("the writer emits valid JSON");
    match json::write_results_file("BENCH_transfer.json", &(doc + "\n")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write results/BENCH_transfer.json: {e}");
            std::process::exit(2);
        }
    }
}
