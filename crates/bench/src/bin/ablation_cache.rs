//! Ablation: LLC capacity vs stencil efficiency (MI250X -> Max 1100).
fn main() {
    print!("{}", bench_harness::ablation::cache_sweep_text());
}
