//! Regenerates the in-text aggregates of §4.1-§4.4 (means, stds, PP̄).
fn main() {
    print!("{}", bench_harness::summary_text());
}
