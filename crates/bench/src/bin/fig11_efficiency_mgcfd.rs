//! Regenerates Figure 11: MG-CFD architectural efficiency.
fn main() {
    print!("{}", bench_harness::figure11_text());
}
