//! One-command reproduction: regenerate every table, figure, in-text
//! aggregate and ablation into `results/` as plain text + CSV.
//!
//!     cargo run --release -p bench-harness --bin regenerate_all [outdir]

use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let outdir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| "results".into()));
    fs::create_dir_all(&outdir)?;
    let write = |name: &str, content: String| -> std::io::Result<()> {
        let path = outdir.join(name);
        fs::write(&path, content)?;
        println!("wrote {}", path.display());
        Ok(())
    };

    write("table1.txt", bench_harness::table1_text())?;
    for p in portability::gpu_platforms() {
        write(
            &format!("fig_structured_{}.txt", p.label()),
            bench_harness::figure_structured_text(p),
        )?;
    }
    for p in portability::cpu_platforms() {
        write(
            &format!("fig_structured_{}.txt", p.label()),
            bench_harness::figure_structured_text(p),
        )?;
    }
    let mut mgcfd_gpu = String::new();
    for p in portability::gpu_platforms() {
        mgcfd_gpu.push_str(&bench_harness::figure_mgcfd_text(p));
        mgcfd_gpu.push('\n');
    }
    write("fig8_mgcfd_gpu.txt", mgcfd_gpu)?;
    let mut mgcfd_cpu = String::new();
    for p in portability::cpu_platforms() {
        mgcfd_cpu.push_str(&bench_harness::figure_mgcfd_text(p));
        mgcfd_cpu.push('\n');
    }
    write("fig9_mgcfd_cpu.txt", mgcfd_cpu)?;
    write("fig10_efficiency.txt", bench_harness::figure10_text())?;
    write("fig11_efficiency_mgcfd.txt", bench_harness::figure11_text())?;
    write("summary_stats.txt", bench_harness::summary_text())?;
    write("gpu_gaps.txt", bench_harness::gpu_gaps_text())?;
    write("conclusions.txt", bench_harness::conclusions_text())?;
    write(
        "consistency_stats.txt",
        bench_harness::ablation::consistency_text(),
    )?;
    write(
        "boundary_fractions.txt",
        bench_harness::boundary_fractions_text(),
    )?;
    write(
        "ablation_workgroup.txt",
        bench_harness::ablation::workgroup_sweep_text(),
    )?;
    write(
        "ablation_ordering.txt",
        bench_harness::ablation::ordering_sweep_text(),
    )?;
    write(
        "ablation_cache.txt",
        bench_harness::ablation::cache_sweep_text(),
    )?;
    write(
        "ablation_blocksize.txt",
        bench_harness::ablation::block_size_sweep_text(),
    )?;
    let mut all = bench_harness::all_structured();
    all.extend(bench_harness::all_mgcfd());
    write("measurements.csv", portability::write_csv(&all))?;
    println!("\nAll artifacts regenerated into {}/", outdir.display());
    Ok(())
}
