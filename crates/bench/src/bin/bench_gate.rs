//! `bench_gate` — re-run the engine and app benchmarks and compare
//! against the committed baselines with a statistical test.
//!
//! ```text
//! bench_gate [--smoke] [--bless] [--quick] [--platform <label>]
//!            [--manifest engine|service|apps|transfer]
//! ```
//!
//! Four manifests are produced per run:
//!
//! * `BENCH_gate_engine.json` — wall-clock of the functional engine
//!   (cached/uncached stencil, row-sliced reduce), gated with the loose
//!   wall tolerance ([`Tolerance::wall`]): host timings are noisy, and
//!   baselines only transfer between runs on the *same* machine;
//! * `BENCH_gate_service.json` — wall-clock of the sharded service
//!   layer (concurrent eager submits and graph replays behind admission
//!   control), also gated with the wall tolerance;
//! * `BENCH_gate_apps_<platform>.json` — per-kernel **simulated**
//!   seconds of the mini-apps at test size, gated with the tight
//!   per-platform tolerance: the pricing model is deterministic, so any
//!   drift beyond the band is a model/engine change, not noise;
//! * `BENCH_gate_transfer.json` — simulated seconds of one 64 MiB copy
//!   per platform × direction × allocation, priced through the session's
//!   comm path, gated with the sim tolerance (the interconnect model is
//!   pure arithmetic — any drift is a deliberate calibration change).
//!
//! Modes:
//!
//! * default — compare both manifests against
//!   `results/baselines/BENCH_<name>.json`; exit 1 on a confirmed
//!   regression (both the IQR and the bootstrap test agree — see
//!   `metrics::gate`), 2 when a baseline is missing;
//! * `--bless` — overwrite the baselines with this run (after a
//!   deliberate perf change, commit the updated files);
//! * `--smoke` — CI self-test, no baselines involved: each manifest
//!   must pass against itself, and a fixture with a synthetic slowdown
//!   injected into one kernel (3× the tolerance band) must fail naming
//!   exactly that kernel. Exit nonzero if either direction misbehaves.
//!
//! `--manifest <name>` restricts any mode to one manifest. The use case
//! is CI: the wall-clock manifests only gate meaningfully against
//! baselines blessed on the same machine, but the transfer manifest is
//! pure interconnect arithmetic, so `--manifest transfer` gates it
//! against the committed baseline on any host.

use metrics::gate::compare;
use metrics::{GateConfig, Histogram, KernelSummary, RunManifest, Tolerance};
use ops_dsl::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig, Toolchain};
use telemetry::TelemetryConfig;

/// The platform's best native toolchain (the Table-1 pairing).
fn native_toolchain(p: PlatformId) -> Toolchain {
    match p {
        PlatformId::A100 => Toolchain::NativeCuda,
        PlatformId::Mi250x => Toolchain::NativeHip,
        PlatformId::Max1100 => Toolchain::Dpcpp,
        PlatformId::Xeon8360Y | PlatformId::GenoaX => Toolchain::MpiOpenMp,
        PlatformId::Altra => Toolchain::OpenMp,
    }
}

/// Mini-apps the gate re-runs (test size: functional, seconds-scale).
const GATE_APPS: [&str; 4] = ["cloverleaf2d", "mgcfd", "acoustic", "rtm"];

fn make_app(name: &str) -> Box<dyn miniapps::App> {
    use miniapps::*;
    match name {
        "cloverleaf2d" => Box::new(CloverLeaf2d::test()),
        "mgcfd" => Box::new(Mgcfd::test()),
        "acoustic" => Box::new(Acoustic::test()),
        "rtm" => Box::new(Rtm::test()),
        _ => unreachable!("GATE_APPS entries are exhaustive"),
    }
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

fn finish_manifest(
    name: String,
    platform: String,
    reps: u32,
    kernels: Vec<KernelSummary>,
    counters: telemetry::CounterSnapshot,
) -> RunManifest {
    RunManifest {
        name,
        git_rev: metrics::manifest::git_rev(),
        platform,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u32),
        repetitions: reps,
        created_unix_secs: now_unix(),
        kernels,
        counters,
    }
}

/// Per-kernel simulated seconds of the mini-apps, `reps` repetitions.
/// Telemetry is enabled for the duration; each repetition's flushed
/// launch spans are folded per kernel.
fn apps_manifest(platform: PlatformId, reps: u32, smoke: bool) -> RunManifest {
    let toolchain = native_toolchain(platform);
    let apps: &[&str] = if smoke { &GATE_APPS[..2] } else { &GATE_APPS };

    // name -> (samples of per-rep sim seconds, bytes/rep, gbps).
    let mut acc: BTreeMap<String, (Vec<f64>, f64, f64)> = BTreeMap::new();
    TelemetryConfig::enabled().install();
    let before = telemetry::counters().snapshot();
    for app_name in apps {
        for _ in 0..reps {
            let app = make_app(app_name);
            let mut cfg = SessionConfig::new(platform, toolchain).app(app.name());
            if app.name() == "mgcfd" {
                cfg = cfg.scheme(Scheme::Atomics);
            }
            let session = match Session::create(cfg) {
                Ok(s) => s,
                Err(fail) => {
                    eprintln!("skipping {app_name} on {}: {fail}", platform.label());
                    break;
                }
            };
            telemetry::flush(); // start the repetition from a clean trace
            let run = app.run(&session);
            let events = telemetry::flush();
            for ks in metrics::kernel_stats(&events) {
                let e =
                    acc.entry(format!("{app_name}/{}", ks.name))
                        .or_insert((Vec::new(), 0.0, 0.0));
                e.0.push(ks.sim_secs);
                e.1 = ks.bytes;
                e.2 = ks.sim_gbps();
            }
            acc.entry(format!("{app_name}/__total"))
                .or_insert((Vec::new(), 0.0, 0.0))
                .0
                .push(run.elapsed);
        }
    }
    let delta = telemetry::counters().snapshot().delta(&before);
    TelemetryConfig::disabled().install();
    if delta.spans_dropped > 0 {
        eprintln!(
            "warning: {} spans dropped during the app benchmark — per-kernel samples may be short",
            delta.spans_dropped
        );
    }

    let kernels = acc
        .into_iter()
        .map(|(name, (samples, bytes, gbps))| {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            KernelSummary {
                name,
                wall: h.summary(),
                sim_secs: metrics::median(&samples),
                samples,
                bytes,
                gbps,
                origin: None,
            }
        })
        .collect();
    finish_manifest(
        format!("gate_apps_{}", platform.label()),
        platform.label().to_owned(),
        reps,
        kernels,
        delta,
    )
}

/// Wall-clock of the functional engine: the cached row-sliced stencil
/// against the uncached per-point one, plus the row-sliced reduce.
fn engine_manifest(reps: u32, n: usize, launches: usize) -> RunManifest {
    let b = Block::new_2d(n, n, 1);
    let mut a = Dat::<f64>::zeroed(&b, "a");
    let mut c = Dat::<f64>::zeroed(&b, "c");
    a.fill_with(|i, j, _| ((i * 13 + j * 7) % 101) as f64 * 0.01);
    let interior = b.interior();
    let bytes = launches as f64 * (n * n) as f64 * 8.0 * 2.0;

    let session = |cached: bool| {
        let cfg = SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("bench-gate");
        let cfg = if cached { cfg } else { cfg.no_pricing_cache() };
        Session::create(cfg).unwrap()
    };
    let mut stencil_pass = |cached: bool| {
        let s = session(cached);
        for it in 0..launches {
            let (src, dst) = if it % 2 == 0 {
                (&a, &mut c)
            } else {
                (&c, &mut a)
            };
            let r = src.reader();
            let meta = dst.meta();
            let w = dst.writer();
            let lp = ParLoop::new("star1", interior)
                .read(src.meta(), Stencil::star_2d(1))
                .write(meta)
                .flops(4.0);
            if cached {
                lp.run_rows(&s, |row| {
                    let cen = r.row(row.grow_x(1));
                    let south = r.row(row.shift(0, -1, 0));
                    let north = r.row(row.shift(0, 1, 0));
                    let out = w.row_mut(row);
                    for x in 0..row.len() {
                        out[x] = 0.25 * (cen[x] + cen[x + 2] + south[x] + north[x]);
                    }
                });
            } else {
                lp.run(&s, |tile| {
                    for (i, j, k) in tile.iter() {
                        let v = r.at(i - 1, j, k)
                            + r.at(i + 1, j, k)
                            + r.at(i, j - 1, k)
                            + r.at(i, j + 1, k);
                        w.set(i, j, k, 0.25 * v);
                    }
                });
            }
        }
    };
    // One untimed warmup per workload (pool spin-up, page faults, cold
    // pricing walks), then the timed repetitions.
    let time = |f: &mut dyn FnMut()| -> Vec<f64> {
        f();
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect()
    };

    let baseline = time(&mut || stencil_pass(false));
    let fast = time(&mut || stencil_pass(true));

    let mut sink = 0.0f64;
    let u = a.reader();
    let reduce = time(&mut || {
        let s = session(true);
        for _ in 0..launches {
            sink += ParLoop::new("sum", interior)
                .read(a.meta(), Stencil::point())
                .run_rows_reduce(
                    &s,
                    0.0f64,
                    |x, y| x + y,
                    |acc, row| {
                        let mut t = acc;
                        for &v in u.row(row) {
                            t += v;
                        }
                        t
                    },
                );
        }
    });
    assert!(sink.is_finite());

    let kernels = [
        ("stencil/baseline", baseline, bytes),
        ("stencil/fast", fast, bytes),
        ("reduce/fast", reduce, bytes / 2.0),
    ]
    .into_iter()
    .map(|(name, samples, bytes)| {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
        KernelSummary {
            name: name.to_owned(),
            wall: h.summary(),
            samples,
            sim_secs: 0.0,
            bytes,
            gbps: bytes / best / 1e9,
            origin: None,
        }
    })
    .collect();
    finish_manifest(
        "gate_engine".to_owned(),
        "host-wall".to_owned(),
        reps,
        kernels,
        telemetry::CounterSnapshot::default(),
    )
}

/// Wall-clock of the service layer: per-shard threads driving eager
/// submits and graph replays over one parkit pool behind admission
/// control. Times the contended launch path end to end (admission +
/// per-shard ledger + pricing), so it is gated with the loose wall
/// tolerance like the engine manifest.
fn service_manifest(reps: u32, launches: usize) -> RunManifest {
    use sycl_sim::{Batch, Kernel, Service, ServiceConfig};
    const SHARDS: usize = 4;
    let svc = Service::new(ServiceConfig::new(SHARDS, 2), |_| {
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("gate-service")
    })
    .unwrap();
    let items = 1u64 << 14;
    let k = Kernel::streaming("svc", items, (items * 8) as f64, 0.0);
    let bytes = (SHARDS * launches) as f64 * (items * 8) as f64;

    let submit_pass = || {
        std::thread::scope(|scope| {
            for i in 0..SHARDS {
                let (svc, k) = (&svc, &k);
                scope.spawn(move || {
                    for _ in 0..launches {
                        svc.submit(i, k, || ()).unwrap();
                    }
                });
            }
        });
    };
    // The batched equivalent: the same launches per shard coalesced
    // into one submission (one admission slot, one ledger lock).
    let submit_batch_pass = || {
        std::thread::scope(|scope| {
            for i in 0..SHARDS {
                let (svc, k) = (&svc, &k);
                scope.spawn(move || {
                    let mut b = Batch::new();
                    for _ in 0..launches {
                        b.launch(k, |_| {});
                    }
                    svc.submit_batch(i, b).unwrap();
                });
            }
        });
    };
    // One graph of `launches` nodes per shard, recorded once; each pass
    // replays them concurrently (one admission slot + one ledger lock
    // per replay).
    let graphs: Vec<_> = (0..SHARDS)
        .map(|i| {
            let mut g = svc.shard(i).record();
            for _ in 0..launches {
                g.launch(&k, |_| {});
            }
            g.finish()
        })
        .collect();
    let replay_pass = || {
        std::thread::scope(|scope| {
            for (i, g) in graphs.iter().enumerate() {
                let svc = &svc;
                scope.spawn(move || svc.replay(i, g).unwrap());
            }
        });
    };

    let time = |f: &dyn Fn()| -> Vec<f64> {
        f(); // warmup: pool spin-up, cold pricing
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect()
    };
    let submit = time(&submit_pass);
    let submit_batch = time(&submit_batch_pass);
    let replay = time(&replay_pass);

    let kernels = [
        ("service/submit", submit),
        ("service/submit_batch", submit_batch),
        ("service/replay", replay),
    ]
    .into_iter()
    .map(|(name, samples)| {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
        KernelSummary {
            name: name.to_owned(),
            wall: h.summary(),
            samples,
            sim_secs: 0.0,
            bytes,
            gbps: bytes / best / 1e9,
            origin: None,
        }
    })
    .collect();
    finish_manifest(
        "gate_service".to_owned(),
        "host-wall".to_owned(),
        reps,
        kernels,
        telemetry::CounterSnapshot::default(),
    )
}

/// Deterministic simulated seconds of one 64 MiB copy per platform ×
/// direction × allocation, priced through the session path (record one
/// transfer node, replay, read the comm clock). The interconnect model
/// is pure arithmetic, so any drift beyond the sim tolerance is a model
/// or pricing-path change — exactly what this manifest gates.
fn transfer_manifest(reps: u32) -> RunManifest {
    use machine_model::TransferDir;
    const BYTES: f64 = 64.0 * 1024.0 * 1024.0;
    let mut kernels = Vec::new();
    for p in machine_model::all_platforms() {
        for pinned in [true, false] {
            let cfg = SessionConfig::new(p.id, native_toolchain(p.id))
                .app("bench-gate")
                .dry_run();
            let cfg = if pinned {
                cfg
            } else {
                cfg.pageable_transfers()
            };
            let session = Session::create(cfg).expect("native toolchains run everywhere");
            for dir in [TransferDir::H2D, TransferDir::D2H, TransferDir::D2D] {
                if dir == TransferDir::D2D && !pinned {
                    continue; // no host allocation to pin
                }
                let before = session.comm_time();
                let mut g = session.record();
                g.transfer_dir(BYTES, Vec::new(), dir);
                g.finish().replay(&session);
                let secs = session.comm_time() - before;
                let alloc = if dir == TransferDir::D2D {
                    "device"
                } else if pinned {
                    "pinned"
                } else {
                    "pageable"
                };
                let samples = vec![secs; reps as usize];
                let mut h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                kernels.push(KernelSummary {
                    name: format!("{}/{}/{alloc}", p.id.label(), dir.label()),
                    wall: h.summary(),
                    samples,
                    sim_secs: secs,
                    bytes: BYTES,
                    gbps: BYTES / secs / 1e9,
                    origin: None,
                });
            }
        }
    }
    finish_manifest(
        "gate_transfer".to_owned(),
        "all-platforms".to_owned(),
        reps,
        kernels,
        telemetry::CounterSnapshot::default(),
    )
}

/// Clone `m` with one kernel's samples slowed by `factor` — the smoke
/// fixture the gate must catch.
fn inject_slowdown(m: &RunManifest, kernel: &str, factor: f64) -> RunManifest {
    let mut out = m.clone();
    for k in out.kernels.iter_mut().filter(|k| k.name == kernel) {
        let mut h = Histogram::new();
        for s in k.samples.iter_mut() {
            *s *= factor;
            h.record(*s);
        }
        k.wall = h.summary();
        k.sim_secs *= factor;
    }
    out
}

/// Write `m` to `results/BENCH_<name>.json` (and echo the path).
fn persist(m: &RunManifest) -> PathBuf {
    let file = format!("BENCH_{}.json", m.name);
    match bench_harness::json::write_results_file(&file, &(m.to_json() + "\n")) {
        Ok(path) => {
            println!("wrote {}", path.display());
            path
        }
        Err(e) => {
            eprintln!("could not write results/{file}: {e}");
            std::process::exit(2);
        }
    }
}

/// `--smoke`: the gate must pass on identical runs and fail on the
/// injected-slowdown fixture, naming the slowed kernel.
fn smoke(manifests: &[(RunManifest, GateConfig)]) -> bool {
    let mut ok = true;
    for (m, cfg) in manifests {
        // Self-comparison must pass.
        let self_report = compare(m, m, cfg);
        if !self_report.passed() {
            eprintln!("smoke FAIL: {} did not pass against itself:", m.name);
            eprint!("{}", self_report.text());
            ok = false;
        }
        // A slowdown 3× the tolerance band on the largest kernel must
        // be caught and named.
        let Some(victim) = m.kernels.iter().find(|k| metrics::median(&k.samples) > 0.0) else {
            eprintln!("smoke FAIL: {} has no kernel with nonzero samples", m.name);
            ok = false;
            continue;
        };
        let factor = 1.0 + 3.0 * (cfg.tolerance.max_ratio - 1.0);
        let slowed = inject_slowdown(m, &victim.name, factor);
        let report = compare(&slowed, m, cfg);
        let caught = report.regressed().iter().any(|k| k.name == victim.name);
        if report.passed() || !caught {
            eprintln!(
                "smoke FAIL: injected {factor:.2}x slowdown on {}/{} was not confirmed:",
                m.name, victim.name
            );
            eprint!("{}", report.text());
            ok = false;
        } else {
            println!(
                "smoke: {} self-comparison passed; injected {factor:.2}x slowdown on '{}' \
                 confirmed as expected",
                m.name, victim.name
            );
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let bless = args.iter().any(|a| a == "--bless");
    let quick = args.iter().any(|a| a == "--quick");
    let platform = args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| PlatformId::parse(s))
        .unwrap_or(PlatformId::A100);
    let only = args
        .iter()
        .position(|a| a == "--manifest")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(o) = &only {
        if !["engine", "service", "apps", "transfer"].contains(&o.as_str()) {
            eprintln!("bench_gate: unknown --manifest '{o}' (engine|service|apps|transfer)");
            std::process::exit(2);
        }
    }
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);

    let (reps, n, launches) = if smoke_mode {
        (3, 32, 6)
    } else if quick {
        (5, 64, 20)
    } else {
        (7, 96, 40)
    };

    let engine_cfg = GateConfig {
        tolerance: Tolerance::wall(),
        ..GateConfig::default()
    };
    let apps_cfg = GateConfig {
        tolerance: Tolerance::for_platform(platform.label()),
        ..GateConfig::default()
    };

    // Wall-clock needs more repetitions than the deterministic sim
    // times to give the bootstrap a usable sample. The service pass
    // needs a floor on launches: the lock-free fast path is so cheap
    // that at smoke sizes thread-spawn jitter would drown the signal
    // the smoke fixture injects. The transfer manifest is fully
    // deterministic (pure interconnect arithmetic), so it gates with
    // the tight sim tolerance.
    let mut pairs: Vec<(RunManifest, GateConfig)> = Vec::new();
    if want("engine") {
        pairs.push((engine_manifest(reps * 3, n, launches), engine_cfg));
    }
    if want("service") {
        pairs.push((service_manifest(reps * 3, launches.max(48)), engine_cfg));
    }
    if want("apps") {
        pairs.push((apps_manifest(platform, reps, smoke_mode), apps_cfg));
    }
    if want("transfer") {
        pairs.push((transfer_manifest(reps), GateConfig::default()));
    }
    for (m, _) in &pairs {
        persist(m);
    }

    if smoke_mode {
        if smoke(&pairs) {
            println!("smoke OK: gate fails on injected slowdowns and passes on identical runs");
        } else {
            std::process::exit(1);
        }
        return;
    }

    let baseline_dir = Path::new("results").join("baselines");
    if bless {
        for (m, _) in &pairs {
            let path = baseline_dir.join(format!("BENCH_{}.json", m.name));
            if let Err(e) = m.save(&path) {
                eprintln!("could not bless {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("blessed {}", path.display());
        }
        return;
    }

    let mut failed = false;
    for (m, cfg) in &pairs {
        let path = baseline_dir.join(format!("BENCH_{}.json", m.name));
        let baseline = match RunManifest::load(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "no baseline for {} ({e}); run `bench_gate --bless` and commit {}",
                    m.name,
                    path.display()
                );
                std::process::exit(2);
            }
        };
        let report = compare(m, &baseline, cfg);
        print!("{}", report.text());
        println!(
            "  (baseline {} @ {}, current @ {})",
            path.display(),
            baseline.git_rev,
            m.git_rev
        );
        failed |= !report.passed();
    }
    if failed {
        std::process::exit(1);
    }
}
