//! Regenerates the §5 conclusion aggregates (best native vs best SYCL).
fn main() {
    print!("{}", bench_harness::conclusions_text());
}
