//! `analyze` — run every application under the `sycl-verify` passes.
//!
//! ```text
//! analyze [--app <name>] [--platform <label>] [--smoke] [--deny-warnings]
//! ```
//!
//! * default — verify all seven applications (`mgcfd` under all three
//!   race-resolution schemes);
//! * `--app <name>` — verify one of `cloverleaf2d`, `cloverleaf3d`,
//!   `opensbli_sa`, `opensbli_sn`, `rtm`, `acoustic`, `mgcfd`;
//! * `--platform` — `a100` (default), `mi250x`, `max1100`, `xeon8360y`,
//!   `genoax`, `altra`; the platform's best native toolchain is used;
//! * `--smoke` — the CI subset: CloverLeaf 2D plus MG-CFD under all
//!   three schemes;
//! * `--deny-warnings` — treat `Warning` findings like `Error`s for the
//!   exit status.
//!
//! Each app runs its functional test size with shadow-access recording
//! attached; the access / plan / footprint findings land on stdout and
//! in `results/VERIFY_<app>.json`. Exit status: 2 for an unknown app,
//! 1 when any `Error`-severity diagnostic was found, 0 otherwise.

use bench_harness::json::{validate, write_results_file};
use miniapps::{Acoustic, App, CloverLeaf2d, CloverLeaf3d, Mgcfd, OpenSbli, Rtm, SbliVariant};
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig, Toolchain};
use verify::{report, Diagnostic, Severity, Verifier};

/// The platform's best native toolchain (the Table-1 pairing).
fn native_toolchain(p: PlatformId) -> Toolchain {
    match p {
        PlatformId::A100 => Toolchain::NativeCuda,
        PlatformId::Mi250x => Toolchain::NativeHip,
        PlatformId::Max1100 => Toolchain::Dpcpp,
        PlatformId::Xeon8360Y | PlatformId::GenoaX => Toolchain::MpiOpenMp,
        PlatformId::Altra => Toolchain::OpenMp,
    }
}

fn make_app(name: &str) -> Option<Box<dyn App>> {
    Some(match name {
        "cloverleaf2d" => Box::new(CloverLeaf2d::test()),
        "cloverleaf3d" => Box::new(CloverLeaf3d::test()),
        "opensbli_sa" => Box::new(OpenSbli::test(SbliVariant::StoreAll)),
        "opensbli_sn" => Box::new(OpenSbli::test(SbliVariant::StoreNone)),
        "rtm" => Box::new(Rtm::test()),
        "acoustic" => Box::new(Acoustic::test()),
        "mgcfd" => Box::new(Mgcfd::test()),
        _ => return None,
    })
}

/// One verification target: an app, under one scheme if it has one.
struct Target {
    app: &'static str,
    scheme: Option<Scheme>,
}

fn targets_for(app: &str) -> Vec<Target> {
    if app == "mgcfd" {
        [Scheme::Atomics, Scheme::GlobalColor, Scheme::HierColor]
            .into_iter()
            .map(|s| Target {
                app: "mgcfd",
                scheme: Some(s),
            })
            .collect()
    } else {
        vec![Target {
            app: match app {
                "cloverleaf2d" => "cloverleaf2d",
                "cloverleaf3d" => "cloverleaf3d",
                "opensbli_sa" => "opensbli_sa",
                "opensbli_sn" => "opensbli_sn",
                "rtm" => "rtm",
                "acoustic" => "acoustic",
                _ => unreachable!(),
            },
            scheme: None,
        }]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let platform = args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| PlatformId::parse(s))
        .unwrap_or(PlatformId::A100);
    let only = args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let app_names: Vec<&str> = match (&only, smoke) {
        (Some(name), _) => match make_app(name) {
            Some(_) => vec![match name.as_str() {
                "cloverleaf2d" => "cloverleaf2d",
                "cloverleaf3d" => "cloverleaf3d",
                "opensbli_sa" => "opensbli_sa",
                "opensbli_sn" => "opensbli_sn",
                "rtm" => "rtm",
                "acoustic" => "acoustic",
                "mgcfd" => "mgcfd",
                _ => unreachable!(),
            }],
            None => {
                eprintln!(
                    "unknown app {name:?}; expected one of cloverleaf2d, cloverleaf3d, \
                     opensbli_sa, opensbli_sn, rtm, acoustic, mgcfd"
                );
                std::process::exit(2);
            }
        },
        (None, true) => vec!["cloverleaf2d", "mgcfd"],
        (None, false) => vec![
            "cloverleaf2d",
            "cloverleaf3d",
            "opensbli_sa",
            "opensbli_sn",
            "rtm",
            "acoustic",
            "mgcfd",
        ],
    };

    let toolchain = native_toolchain(platform);
    let mut any_errors = false;

    for app_name in app_names {
        let mut app_diags: Vec<Diagnostic> = Vec::new();
        for target in targets_for(app_name) {
            let mut cfg = SessionConfig::new(platform, toolchain).app(target.app);
            if let Some(s) = target.scheme {
                cfg = cfg.scheme(s);
            }
            let session = match Session::create(cfg) {
                Ok(s) => s,
                Err(fail) => {
                    eprintln!("{app_name} does not run on {}: {fail}", platform.label());
                    std::process::exit(2);
                }
            };
            // Attach before the app allocates: datasets only register
            // with the shadow layer at creation time.
            let verifier = Verifier::attach(&session);
            let app = make_app(target.app).expect("validated above");
            let run = app.run(&session);
            let diags = verifier.finish(&session);

            let (errors, warnings, infos) = report::tally(&diags);
            let label = match target.scheme {
                Some(s) => format!("{app_name} [{}]", s.label()),
                None => app_name.to_owned(),
            };
            println!(
                "# {label} on {} ({}): {} launches, validation {:.3e} — \
                 {errors} error(s), {warnings} warning(s), {infos} info(s)",
                session.platform().name,
                toolchain.label(),
                session.records().len(),
                run.validation,
            );
            for d in &diags {
                println!("  [{}] {} `{}`: {}", d.severity, d.pass, d.kernel, d.detail);
            }
            any_errors |= verify::has_errors(&diags)
                || (deny_warnings && diags.iter().any(|d| d.severity >= Severity::Warning));
            app_diags.extend(diags);
        }

        // mgcfd merges its three scheme runs into one document; the
        // writer collapses the repeats the schemes share into counted
        // entries.
        let doc = report::render_app_report(app_name, &app_diags);
        debug_assert!(validate(&doc).is_ok());
        let file = format!("VERIFY_{app_name}.json");
        match write_results_file(&file, &doc) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("could not write results/{file}: {e}");
                std::process::exit(1);
            }
        }
    }

    if any_errors {
        eprintln!("analyze: failing findings (see above)");
        std::process::exit(1);
    }
    println!("analyze OK: no Error-severity findings");
}
