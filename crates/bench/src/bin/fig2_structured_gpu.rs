//! Regenerates Figures 2-4: structured-mesh app runtimes on a GPU.
//! Usage: fig2_structured_gpu [a100|mi250x|max1100]  (default a100)
use sycl_sim::PlatformId;
fn main() {
    let p = bench_harness::parse_platform_arg(PlatformId::A100);
    print!("{}", bench_harness::figure_structured_text(p));
}
