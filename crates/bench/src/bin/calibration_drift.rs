//! `calibration_drift` — re-derive Table 1's STREAM-Triad numbers and
//! fail if the machine-model constants have drifted away from what the
//! pricing engine actually produces.
//!
//! ```text
//! calibration_drift [--tolerance <frac>]
//! ```
//!
//! For every platform in Table 1, a dry-run session under the
//! platform's native toolchain prices a BabelStream Triad at the
//! paper's array length (`table1_len`). The derived bandwidth must land
//! within `--tolerance` (default 10 %) of the platform's
//! `mem.stream_bw` constant — the calibration target every efficiency
//! figure in the reproduction divides by.
//!
//! The check closes a silent-drift loophole: the pricing model and the
//! platform table are maintained separately, so a change to either
//! (NUMA factors, sustained-bandwidth derating, a retyped constant) can
//! move priced bandwidth away from the calibrated roof without any
//! functional test noticing. Exit 1 names every drifted platform.

use babelstream::{table1_len, BabelStream};
use sycl_sim::{PlatformId, Session, SessionConfig, Toolchain};

/// The platform's best native toolchain (the Table-1 pairing).
fn native_toolchain(p: PlatformId) -> Toolchain {
    match p {
        PlatformId::A100 => Toolchain::NativeCuda,
        PlatformId::Mi250x => Toolchain::NativeHip,
        PlatformId::Max1100 => Toolchain::Dpcpp,
        PlatformId::Xeon8360Y | PlatformId::GenoaX => Toolchain::MpiOpenMp,
        PlatformId::Altra => Toolchain::OpenMp,
    }
}

const PLATFORMS: [PlatformId; 6] = [
    PlatformId::Mi250x,
    PlatformId::A100,
    PlatformId::Max1100,
    PlatformId::Xeon8360Y,
    PlatformId::GenoaX,
    PlatformId::Altra,
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.10);

    println!(
        "calibration drift check (tolerance ±{:.0} %):",
        tolerance * 100.0
    );
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "platform", "derived GB/s", "roof GB/s", "drift"
    );
    let mut drifted = Vec::new();
    for p in PLATFORMS {
        let cfg = SessionConfig::new(p, native_toolchain(p))
            .app("calibration-drift")
            .dry_run();
        let session = match Session::create(cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: cannot create dry-run session: {e}", p.label());
                drifted.push(p);
                continue;
            }
        };
        let n = table1_len(session.platform());
        let derived = BabelStream::triad_bandwidth(&session, n, 10) / 1e9;
        let roof = session.platform().mem.stream_bw / 1e9;
        let drift = derived / roof - 1.0;
        let flag = if drift.abs() > tolerance {
            "  <-- DRIFT"
        } else {
            ""
        };
        println!(
            "{:<12} {derived:>12.1} {roof:>12.1} {:>+7.1}%{flag}",
            p.label(),
            drift * 100.0,
        );
        if drift.abs() > tolerance {
            drifted.push(p);
        }
    }
    if drifted.is_empty() {
        println!("ok: priced Triad bandwidth matches the calibrated roofs on all six platforms");
    } else {
        eprintln!(
            "calibration drift: {} platform(s) out of band: {}",
            drifted.len(),
            drifted
                .iter()
                .map(|p| p.label())
                .collect::<Vec<_>>()
                .join(", "),
        );
        eprintln!("re-calibrate machine-model constants or fix the pricing regression");
        std::process::exit(1);
    }
}
