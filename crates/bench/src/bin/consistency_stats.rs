//! §4.1 consistency statistics: per-platform mean/std of best-variant
//! efficiency over the structured applications.
fn main() {
    print!("{}", bench_harness::ablation::consistency_text());
}
