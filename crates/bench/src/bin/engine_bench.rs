//! `engine_bench` — wall-clock benchmark of the functional execution
//! engine itself (not the simulated clocks): row-sliced kernels vs
//! per-point bodies, the launch-pricing cache vs cold pricing, and
//! static vs dynamic pool scheduling on an indirect scatter.
//!
//! Three bandwidth-bound kernel classes are timed in both engine
//! configurations:
//!
//! * `stencil`  — repeated launches of a 2-D star-1 average
//!   (baseline: per-point body + cold pricing; fast: `run_rows` +
//!   pricing cache);
//! * `reduce`   — repeated sum reductions over a field (baseline:
//!   `run_reduce` + cold pricing; fast: `run_rows_reduce` + cache);
//! * `indirect` — colour-ordered edge scatter on an unstructured mesh,
//!   comparing the pool's two scheduling modes (dynamic chunk cursor vs
//!   static partition). Colour regions are many and small, so this one
//!   documents the *tradeoff*: dynamic wins whenever a parked lane's
//!   wake latency would serialise a static span — static exists for
//!   lane-pinned determinism and cache affinity, not raw speed here.
//!
//! Results (GB/s of bytes actually moved, launches/sec, speedup) print
//! as a table, and the run is persisted as a `sycl-metrics` manifest at
//! `results/BENCH_engine.json` — per-entry repetition samples, wall
//! summaries and the engine counter delta — which is what `bench_gate`
//! compares against the committed baseline.

use metrics::{Histogram, KernelSummary, RunManifest};
use op2_dsl::color::HierColoring;
use op2_dsl::mesh::{Mesh, Ordering};
use op2_dsl::DatU;
use ops_dsl::prelude::*;
use parkit::Schedule;
use std::time::Instant;
use sycl_sim::{PlatformId, Session, SessionConfig, Toolchain};
use telemetry::TelemetryConfig;

/// One measured engine configuration for one kernel class.
struct Entry {
    class: &'static str,
    phase: &'static str,
    /// Per-repetition wall-clock seconds of one workload pass.
    samples: Vec<f64>,
    bytes_moved: f64,
    launches: usize,
}

impl Entry {
    /// Best (minimum) repetition.
    fn seconds(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn gbps(&self) -> f64 {
        self.bytes_moved / self.seconds() / 1e9
    }

    fn launches_per_sec(&self) -> f64 {
        self.launches as f64 / self.seconds()
    }

    /// `class/phase`, the name the gate matches kernels by.
    fn key(&self) -> String {
        format!("{}/{}", self.class, self.phase)
    }
}

fn session(cached: bool) -> Session {
    let cfg = SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("engine-bench");
    let cfg = if cached { cfg } else { cfg.no_pricing_cache() };
    Session::create(cfg).unwrap()
}

/// Wall-clock of `samples` repetitions of `f` (one run = one pass).
fn time_samples(samples: usize, mut f: impl FnMut()) -> Vec<f64> {
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// Repeated-launch star-1 stencil: the workload the pricing cache and
/// the row slices both target. Ping-pongs so every launch reads what
/// the previous one wrote.
fn stencil_class(n: usize, launches: usize, samples: usize) -> (Entry, Entry, f64) {
    let b = Block::new_2d(n, n, 1);
    let mut a = Dat::<f64>::zeroed(&b, "a");
    let mut c = Dat::<f64>::zeroed(&b, "c");
    a.fill_with(|i, j, _| ((i * 13 + j * 7) % 101) as f64 * 0.01);
    let interior = b.interior();
    // 1 dat read + 1 written per launch.
    let bytes = launches as f64 * (n * n) as f64 * 8.0 * 2.0;

    let baseline = time_samples(samples, || {
        let s = session(false);
        for it in 0..launches {
            let (src, dst) = if it % 2 == 0 {
                (&a, &mut c)
            } else {
                (&c, &mut a)
            };
            let r = src.reader();
            let meta = dst.meta();
            let w = dst.writer();
            ParLoop::new("star1", interior)
                .read(src.meta(), Stencil::star_2d(1))
                .write(meta)
                .flops(4.0)
                .run(&s, |tile| {
                    for (i, j, k) in tile.iter() {
                        let v = r.at(i - 1, j, k)
                            + r.at(i + 1, j, k)
                            + r.at(i, j - 1, k)
                            + r.at(i, j + 1, k);
                        w.set(i, j, k, 0.25 * v);
                    }
                });
        }
    });

    let fast = time_samples(samples, || {
        let s = session(true);
        for it in 0..launches {
            let (src, dst) = if it % 2 == 0 {
                (&a, &mut c)
            } else {
                (&c, &mut a)
            };
            let r = src.reader();
            let meta = dst.meta();
            let w = dst.writer();
            ParLoop::new("star1", interior)
                .read(src.meta(), Stencil::star_2d(1))
                .write(meta)
                .flops(4.0)
                .run_rows(&s, |row| {
                    let cen = r.row(row.grow_x(1));
                    let south = r.row(row.shift(0, -1, 0));
                    let north = r.row(row.shift(0, 1, 0));
                    let out = w.row_mut(row);
                    for x in 0..row.len() {
                        out[x] = 0.25 * (cen[x] + cen[x + 2] + south[x] + north[x]);
                    }
                });
        }
    });

    let speedup = baseline.iter().copied().fold(f64::INFINITY, f64::min)
        / fast.iter().copied().fold(f64::INFINITY, f64::min);
    (
        Entry {
            class: "stencil",
            phase: "baseline",
            samples: baseline,
            bytes_moved: bytes,
            launches,
        },
        Entry {
            class: "stencil",
            phase: "fast",
            samples: fast,
            bytes_moved: bytes,
            launches,
        },
        speedup,
    )
}

/// Repeated sum reductions (arena-backed partials on the fast path).
fn reduce_class(n: usize, launches: usize, samples: usize) -> (Entry, Entry, f64) {
    let b = Block::new_2d(n, n, 1);
    let mut u = Dat::<f64>::zeroed(&b, "u");
    u.fill_with(|i, j, _| ((i * 31 + j * 17) % 97) as f64 * 0.001);
    let interior = b.interior();
    let r = u.reader();
    let bytes = launches as f64 * (n * n) as f64 * 8.0;

    let mut sink = 0.0f64;
    let baseline = time_samples(samples, || {
        let s = session(false);
        for _ in 0..launches {
            sink += ParLoop::new("sum", interior)
                .read(u.meta(), Stencil::point())
                .run_reduce(
                    &s,
                    0.0f64,
                    |x, y| x + y,
                    |tile| {
                        let mut t = 0.0;
                        for (i, j, k) in tile.iter() {
                            t += r.at(i, j, k);
                        }
                        t
                    },
                );
        }
    });
    let mut sink2 = 0.0f64;
    let fast = time_samples(samples, || {
        let s = session(true);
        for _ in 0..launches {
            sink2 += ParLoop::new("sum", interior)
                .read(u.meta(), Stencil::point())
                .run_rows_reduce(
                    &s,
                    0.0f64,
                    |x, y| x + y,
                    |acc, row| {
                        let mut t = acc;
                        for &v in r.row(row) {
                            t += v;
                        }
                        t
                    },
                );
        }
    });
    assert_eq!(
        (sink / sink.round().max(1.0)).is_finite(),
        (sink2 / sink2.round().max(1.0)).is_finite()
    );

    let speedup = baseline.iter().copied().fold(f64::INFINITY, f64::min)
        / fast.iter().copied().fold(f64::INFINITY, f64::min);
    (
        Entry {
            class: "reduce",
            phase: "baseline",
            samples: baseline,
            bytes_moved: bytes,
            launches,
        },
        Entry {
            class: "reduce",
            phase: "fast",
            samples: fast,
            bytes_moved: bytes,
            launches,
        },
        speedup,
    )
}

/// Record-once/replay-many vs eager per-launch over the same sequence
/// of streaming kernels with trivial bodies. Neither path enters a pool
/// region, so this times the launch layers themselves: the eager loop
/// pays price-lookup + ledger lock + span per launch, the replay prices
/// the whole sequence under one cache lock and commits it under one
/// ledger lock.
fn replay_class(launches: usize, replays: usize, samples: usize) -> (Entry, Entry, f64) {
    use sycl_sim::Kernel;
    let ks: Vec<Kernel> = (0..launches)
        .map(|i| {
            let items = 1u64 << (10 + (i % 4));
            Kernel::streaming("graph_node", items, (items * 8) as f64, 0.0)
        })
        .collect();
    // Simulated footprint bytes: what each launch prices, per replay.
    let bytes = replays as f64 * (launches as f64) * ((1u64 << 11) * 8) as f64;
    let total_launches = replays * launches;
    let sink = std::sync::atomic::AtomicU64::new(0);

    let eager = time_samples(samples, || {
        let s = session(true);
        for _ in 0..replays {
            for k in &ks {
                s.launch(k, || {
                    sink.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        }
    });

    let replay = time_samples(samples, || {
        let s = session(true);
        let mut g = s.record();
        for k in &ks {
            let sink = &sink;
            g.launch(k, move |executes| {
                if executes {
                    sink.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        let g = g.finish();
        for _ in 0..replays {
            g.replay(&s);
        }
    });

    let speedup = eager.iter().copied().fold(f64::INFINITY, f64::min)
        / replay.iter().copied().fold(f64::INFINITY, f64::min);
    (
        Entry {
            class: "replay",
            phase: "eager",
            samples: eager,
            bytes_moved: bytes,
            launches: total_launches,
        },
        Entry {
            class: "replay",
            phase: "replayed",
            samples: replay,
            bytes_moved: bytes,
            launches: total_launches,
        },
        speedup,
    )
}

/// Colour-ordered indirect scatter: per-colour pool regions, dynamic
/// cursor vs static partition scheduling.
fn indirect_class(passes: usize, samples: usize) -> (Entry, Entry, f64) {
    let mesh = Mesh::grid(64, 64, 16, Ordering::Natural);
    let coloring = HierColoring::build(&mesh.edges, 256);
    let pool = parkit::ThreadPool::new(4);
    let n_edges = mesh.n_edges();
    // Per edge: read 2 endpoint ids (8 B) + accumulate 2 f64 (read+write).
    let bytes = (passes * n_edges) as f64 * (8.0 + 4.0 * 8.0);
    let launches: usize = passes * coloring.blocks_by_color.len();

    let run_with = |sched: Schedule| {
        let mut out = DatU::<f64>::zeroed("deg", mesh.n_vertices, 1);
        let acc = out.accum(false);
        time_samples(samples, || {
            for _ in 0..passes {
                for group in &coloring.blocks_by_color {
                    pool.run_region_sched(group.len(), sched, |_lane, gi| {
                        let (lo, hi) = coloring.block_range(group[gi] as usize, n_edges);
                        for e in lo..hi {
                            acc.add(mesh.edges.at(e, 0), 0, 1.0);
                            acc.add(mesh.edges.at(e, 1), 0, 1.0);
                        }
                    });
                }
            }
        })
    };
    let dynamic = run_with(Schedule::Dynamic);
    let static_ = run_with(Schedule::Static);

    let speedup = static_.iter().copied().fold(f64::INFINITY, f64::min)
        / dynamic.iter().copied().fold(f64::INFINITY, f64::min);
    (
        Entry {
            class: "indirect",
            phase: "dynamic",
            samples: dynamic,
            bytes_moved: bytes,
            launches,
        },
        Entry {
            class: "indirect",
            phase: "static",
            samples: static_,
            bytes_moved: bytes,
            launches,
        },
        speedup,
    )
}

/// What one observed launch costs: the same trivial streaming kernel
/// is launched `launches` times under three observation regimes —
/// telemetry off, counters+ring on, and ring plus the flight recorder
/// streaming to a file. The deltas are the per-launch telemetry cost
/// and the per-event recorder cost (each launch writes a span open +
/// close, so flight events = 2 × launches; the flight entry's
/// `launches` field holds the *event* count to keep ns/event derivable
/// from the committed manifest).
fn telemetry_class(launches: usize, samples: usize) -> (Entry, Entry, Entry, f64, f64) {
    use sycl_sim::Kernel;
    let items = 1u64 << 12;
    let k = Kernel::streaming("probe", items, (items * 8) as f64, 0.0);
    let bytes = launches as f64 * (items * 8) as f64;
    let sink = std::sync::atomic::AtomicU64::new(0);
    let body = |s: &sycl_sim::Session| {
        for _ in 0..launches {
            s.launch(&k, || {
                sink.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
    };

    TelemetryConfig::disabled().install();
    let off = time_samples(samples, || body(&session(true)));

    TelemetryConfig::enabled().install();
    let ring = time_samples(samples, || body(&session(true)));

    let path = std::env::temp_dir().join(format!("engine-bench-flight-{}.bin", std::process::id()));
    let flight = match telemetry::flight::start(&path, 0, "engine-bench") {
        Ok(()) => {
            let t = time_samples(samples, || body(&session(true)));
            telemetry::flight::stop();
            std::fs::remove_file(&path).ok();
            t
        }
        Err(e) => {
            eprintln!("flight recorder unavailable ({e}); reusing ring times");
            ring.clone()
        }
    };
    TelemetryConfig::disabled().install();
    telemetry::flush(); // counters only; drop the probe spans

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let ring_ns_per_launch = (best(&ring) - best(&off)) / launches as f64 * 1e9;
    let flight_ns_per_event = (best(&flight) - best(&ring)) / (2 * launches) as f64 * 1e9;
    let mk = |phase: &'static str, samples: Vec<f64>, launches: usize| Entry {
        class: "telemetry",
        phase,
        samples,
        bytes_moved: bytes,
        launches,
    };
    (
        mk("off", off, launches),
        mk("ring", ring, launches),
        mk("flight", flight, 2 * launches),
        ring_ns_per_launch,
        flight_ns_per_event,
    )
}

/// Persist the run as a `sycl-metrics` manifest.
fn manifest(entries: &[Entry], reps: u32, counters: telemetry::CounterSnapshot) -> RunManifest {
    let kernels = entries
        .iter()
        .map(|e| {
            let mut h = Histogram::new();
            for &s in &e.samples {
                h.record(s);
            }
            KernelSummary {
                name: e.key(),
                wall: h.summary(),
                samples: e.samples.clone(),
                sim_secs: 0.0,
                bytes: e.bytes_moved,
                gbps: e.gbps(),
                origin: None,
            }
        })
        .collect();
    RunManifest {
        name: "engine".to_owned(),
        git_rev: metrics::manifest::git_rev(),
        platform: "host-wall".to_owned(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u32),
        repetitions: reps,
        created_unix_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        kernels,
        counters,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let quick = args.iter().any(|a| a == "--quick");
    // --smoke: minimal sizes, one sample — a seconds-long CI sanity pass.
    let (n, launches, samples) = if smoke {
        (32, 6, 1)
    } else if quick {
        (96, 40, 2)
    } else {
        (192, 400, 3)
    };
    let passes = if smoke {
        1
    } else if quick {
        5
    } else {
        40
    };

    // Counters only bump with telemetry enabled; the overhead (one
    // relaxed add per site, one ring push per span) is identical for
    // the baseline and fast phases, so speedups are unaffected.
    TelemetryConfig::enabled().install();
    let before = telemetry::counters().snapshot();

    let (sb, sf, s_sp) = stencil_class(n, launches, samples);
    let (rb, rf, r_sp) = reduce_class(n, launches, samples);
    let (ib, if_, i_sp) = indirect_class(passes, samples);

    let delta = telemetry::counters().snapshot().delta(&before);
    TelemetryConfig::disabled().install();
    telemetry::flush(); // drop the trace; this bench keeps counters only

    // Replay runs with telemetry off: its phases differ only in the
    // launch layers, and a per-launch span (paid identically by both)
    // would dilute exactly the overhead this class measures.
    let (ge, gr, g_sp) = replay_class(launches.max(32), 4 * passes.max(8), samples);

    // Observation-cost probe: how much a launch pays for counters+ring,
    // and what each flight-recorder event costs on top.
    let probe_launches = if smoke {
        500
    } else if quick {
        5_000
    } else {
        20_000
    };
    let (to, tr, tf, ring_ns, flight_ns) = telemetry_class(probe_launches, samples);

    let entries = [sb, sf, rb, rf, ib, if_, ge, gr, to, tr, tf];
    println!(
        "{:10} {:9} {:>10} {:>9} {:>14}",
        "class", "phase", "seconds", "GB/s", "launches/s"
    );
    for e in &entries {
        println!(
            "{:10} {:9} {:>10.4} {:>9.2} {:>14.0}",
            e.class,
            e.phase,
            e.seconds(),
            e.gbps(),
            e.launches_per_sec()
        );
    }
    let speedups = [
        ("stencil", s_sp),
        ("reduce", r_sp),
        ("indirect_dynamic_over_static", i_sp),
        ("replay_over_eager", g_sp),
    ];
    for (class, sp) in &speedups {
        println!("speedup[{class}] = {sp:.2}x");
    }
    println!("overhead[ring] = {ring_ns:.1} ns/launch");
    println!("overhead[flight] = {flight_ns:.1} ns/event");
    println!(
        "counters: {} launches, cache {} hits / {} misses, {} regions, {} steals",
        delta.launches,
        delta.pricing_cache_hits,
        delta.pricing_cache_misses,
        delta.regions,
        delta.steals,
    );

    let m = manifest(&entries, samples as u32, delta);
    match bench_harness::json::write_results_file("BENCH_engine.json", &(m.to_json() + "\n")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results/BENCH_engine.json: {e}"),
    }
}
