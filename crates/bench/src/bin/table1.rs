//! Regenerates Table 1: STREAM Triad bandwidth on all six platforms.
fn main() {
    print!("{}", bench_harness::table1_text());
}
