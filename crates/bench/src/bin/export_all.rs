//! Export every measurement of the study (structured + MG-CFD, all
//! platforms, all variants) as CSV on stdout — for plotting pipelines.
fn main() {
    let mut all = bench_harness::all_structured();
    all.extend(bench_harness::all_mgcfd());
    print!("{}", portability::write_csv(&all));
}
