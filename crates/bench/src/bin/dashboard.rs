//! `dashboard` — build the self-contained HTML performance dashboard.
//!
//! ```text
//! dashboard [--apps <a,b,...>] [--platform <label>] [--out <path>] [--skip-study]
//! ```
//!
//! * `--apps` — comma-separated list of apps to trace for the per-kernel
//!   tables (default: all seven paper apps);
//! * `--platform` — platform whose native toolchain the traced apps run
//!   under (default `a100`);
//! * `--out` — output path (default `results/DASHBOARD.html`);
//! * `--skip-study` — omit the roofline scatter and portability heatmap
//!   (skips the cross-product study; the trace tables and baseline
//!   trajectory still render).
//!
//! The output is ONE html file with every byte inline — CSS, SVG charts
//! and a small sorting script — so it can be attached to a CI run or
//! mailed around and opened offline. Sections:
//!
//! 1. per-kernel wall/sim tables + counter deltas for each traced app,
//!    with a deep-link into the matching `PROFILE_<app>.json` Perfetto
//!    trace when one sits next to the dashboard;
//! 2. scheduler health: the registry histograms the pool and the op2
//!    colouring planner record while the apps run (steal latency,
//!    chunks per region, colours and bytes per wave, admission waits);
//! 3. service latency: the open-loop admission study from the last
//!    `service_bench` run — p50/p99/p999 wait vs offered load, the
//!    saturation knee, and the coalesced batch-size distribution;
//! 4. achieved-bandwidth scatter against each platform's STREAM roof;
//! 5. the portability (efficiency) heatmap and PP̄ table;
//! 6. data movement: the interconnect calibration from the last
//!    `transfer_bench` run (`BENCH_transfer.json`) — stacked
//!    kernel-vs-transfer time per app × platform, the pinned-vs-pageable
//!    bandwidth delta, and the CPU-vs-GPU crossover table;
//! 7. the cross-product study from the last `study` run (`STUDY.json`):
//!    per-cell status grid, retries, fleet utilisation and its PP̄ rows;
//! 8. graph lint: the static dataflow findings from the last
//!    `graphlint` run (`LINT_<app>.json`) — per-app severity tallies
//!    plus every Error/Warning and fusion-candidate finding;
//! 9. baseline trajectory across every stored `BENCH_*.json` manifest.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use bench_harness::{make_app, native_toolchain, APP_NAMES};
use machine_model::Platform;
use metrics::jsonv::{self, Json};
use metrics::{stats, RunManifest};
use portability::{
    cpu_platforms, gpu_platforms, pennycook, structured_measurements, unstructured_measurements,
    Measurement,
};
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig};
use telemetry::export::KernelAgg;
use telemetry::{CounterSnapshot, TelemetryConfig};

/// One traced application run feeding the per-kernel tables.
struct AppTrace {
    app: String,
    platform: String,
    toolchain: String,
    sim_secs: f64,
    validation: f64,
    aggs: Vec<KernelAgg>,
    delta: CounterSnapshot,
}

/// A manifest discovered on disk, tagged with where it came from.
struct StoredManifest {
    source: &'static str,
    path: PathBuf,
    manifest: RunManifest,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let skip_study = args.iter().any(|a| a == "--skip-study");
    let platform = flag_value("--platform")
        .and_then(|s| PlatformId::parse(&s))
        .unwrap_or(PlatformId::A100);
    let apps: Vec<String> = flag_value("--apps")
        .map(|s| s.split(',').map(|a| a.trim().to_owned()).collect())
        .unwrap_or_else(|| APP_NAMES.iter().map(|s| (*s).to_owned()).collect());
    let out = flag_value("--out").unwrap_or_else(|| "results/DASHBOARD.html".to_owned());

    for a in &apps {
        if !APP_NAMES.contains(&a.as_str()) {
            eprintln!("unknown app {a:?}; expected one of {APP_NAMES:?}");
            std::process::exit(2);
        }
    }

    let mut traces = Vec::new();
    for a in &apps {
        match trace_app(a, platform) {
            Some(t) => traces.push(t),
            None => eprintln!("note: {a} does not run on {}; skipped", platform.label()),
        }
    }
    // Everything the pool and the colouring planner recorded into the
    // metrics registry while the traces ran, merged across threads.
    let sched = metrics::registry().flush();

    let study: Vec<(PlatformId, Vec<Measurement>)> = if skip_study {
        Vec::new()
    } else {
        gpu_platforms()
            .into_iter()
            .chain(cpu_platforms())
            .map(|p| {
                let mut ms = structured_measurements(p);
                ms.extend(unstructured_measurements(p));
                (p, ms)
            })
            .collect()
    };

    let manifests = discover_manifests();

    let path = Path::new(&out);
    let out_dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let html = render(&traces, &sched, &study, &manifests, &out_dir);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("could not create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(path, &html) {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out} ({} traced apps, {} study platforms, {} stored manifests)",
        traces.len(),
        study.len(),
        manifests.len()
    );
}

/// Run one app (test size, functional) under telemetry and aggregate.
fn trace_app(name: &str, platform: PlatformId) -> Option<AppTrace> {
    let app = make_app(name, false)?;
    let toolchain = native_toolchain(platform);
    let mut cfg = SessionConfig::new(platform, toolchain).app(app.name());
    if app.name() == "mgcfd" {
        cfg = cfg.scheme(Scheme::Atomics);
    }
    let session = Session::create(cfg).ok()?;

    TelemetryConfig::enabled().install();
    let before = telemetry::counters().snapshot();
    let run = app.run(&session);
    let delta = telemetry::counters().snapshot().delta(&before);
    TelemetryConfig::disabled().install();
    let events = telemetry::flush();

    Some(AppTrace {
        app: name.to_owned(),
        platform: platform.label().to_owned(),
        toolchain: toolchain.label().to_owned(),
        sim_secs: run.elapsed,
        validation: run.validation,
        aggs: telemetry::export::aggregate(&events),
        delta,
    })
}

/// Every parseable `BENCH_*.json` under `results/` and
/// `results/baselines/`, oldest first.
fn discover_manifests() -> Vec<StoredManifest> {
    let mut out = Vec::new();
    for (source, dir) in [("current", "results"), ("baseline", "results/baselines")] {
        let Ok(entries) = std::fs::read_dir(dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with("BENCH_") || !name.ends_with(".json") {
                continue;
            }
            // The transfer microbench document has its own schema
            // (`transfer-bench/v1`) and its own dashboard section.
            if name == "BENCH_transfer.json" {
                continue;
            }
            match RunManifest::load(&path) {
                Ok(manifest) => out.push(StoredManifest {
                    source,
                    path,
                    manifest,
                }),
                Err(e) => eprintln!("note: skipping unreadable manifest {}: {e}", path.display()),
            }
        }
    }
    out.sort_by_key(|m| (m.manifest.name.clone(), m.manifest.created_unix_secs));
    out
}

/// Escape text for embedding in HTML bodies and attributes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Colour for an efficiency fraction: red (0) through green (≥1).
fn eff_colour(eff: f64) -> String {
    let t = (eff / 1.1).clamp(0.0, 1.0);
    let hue = 120.0 * t;
    format!("hsl({hue:.0}, 70%, {:.0}%)", 88.0 - 38.0 * t)
}

fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".to_owned()
    } else if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

fn render(
    traces: &[AppTrace],
    sched: &metrics::registry::Snapshot,
    study: &[(PlatformId, Vec<Measurement>)],
    manifests: &[StoredManifest],
    out_dir: &Path,
) -> String {
    let mut h = String::with_capacity(1 << 18);
    h.push_str(HEAD);
    let _ = write!(
        h,
        "<header><h1>sycl-sim performance dashboard</h1>\
         <p class=\"meta\">git <code>{}</code> · generated at unix \
         <span class=\"ts\" data-unix=\"{}\"></span> · self-contained, no network</p></header>",
        esc(&metrics::manifest::git_rev()),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    );

    render_traces(&mut h, traces, out_dir);
    render_scheduler(&mut h, sched);
    render_service_latency(&mut h, manifests);
    if !study.is_empty() {
        render_roofline(&mut h, study);
        render_heatmap(&mut h, study);
    }
    render_data_movement(&mut h, out_dir);
    render_study_run(&mut h, out_dir);
    render_fleet_forensics(&mut h, out_dir);
    render_graphlint(&mut h, out_dir);
    render_trajectory(&mut h, manifests);

    h.push_str(SCRIPT);
    h.push_str("</body></html>\n");
    h
}

/// Section 1: per-kernel aggregates and counter deltas per traced app.
fn render_traces(h: &mut String, traces: &[AppTrace], out_dir: &Path) {
    h.push_str("<section><h2>Per-kernel aggregates (functional runs)</h2>");
    if traces.is_empty() {
        h.push_str("<p>No apps traced.</p></section>");
        return;
    }
    for t in traces {
        let _ = write!(
            h,
            "<details open><summary><b>{}</b> on {} ({}) — sim {}, validation {:.6e}",
            esc(&t.app),
            esc(&t.platform),
            esc(&t.toolchain),
            fmt_secs(t.sim_secs),
            t.validation,
        );
        // Deep-link to the app's Chrome-trace document when `profile`
        // left one next to the dashboard: a relative href (the file is
        // a sibling), loadable in Perfetto / chrome://tracing.
        let trace_file = format!("PROFILE_{}.json", t.app);
        if out_dir.join(&trace_file).is_file() {
            let _ = write!(
                h,
                " — <a href=\"{0}\" download=\"{0}\">Perfetto trace</a>",
                esc(&trace_file),
            );
        }
        h.push_str("</summary>");
        if t.delta.spans_dropped > 0 {
            let _ = write!(
                h,
                "<p class=\"warn\">⚠ {} span(s) dropped by ring overwrite — \
                 the aggregates below are incomplete</p>",
                t.delta.spans_dropped
            );
        }
        h.push_str(
            "<table class=\"sortable\"><thead><tr><th>kernel</th><th>launches</th>\
             <th>total wall</th><th>p50</th><th>p95</th><th>p99</th>\
             <th>sim time</th><th>sim GB/s</th></tr></thead><tbody>",
        );
        for a in &t.aggs {
            let _ = write!(
                h,
                "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"n\" data-v=\"{}\">{}</td>\
                 <td class=\"n\" data-v=\"{}\">{}</td><td class=\"n\" data-v=\"{}\">{}</td>\
                 <td class=\"n\" data-v=\"{}\">{}</td><td class=\"n\" data-v=\"{}\">{}</td>\
                 <td class=\"n\">{:.1}</td></tr>",
                esc(&a.name),
                a.count,
                a.total_secs,
                fmt_secs(a.total_secs),
                a.p50_secs,
                fmt_secs(a.p50_secs),
                a.p95_secs,
                fmt_secs(a.p95_secs),
                a.p99_secs,
                fmt_secs(a.p99_secs),
                a.sim_secs,
                fmt_secs(a.sim_secs),
                a.sim_gbps(),
            );
        }
        h.push_str("</tbody></table></details>");
    }

    h.push_str(
        "<h3>Counter deltas per run</h3>\
         <table><thead><tr><th>app</th><th>launches</th><th>cache hits</th>\
         <th>cache misses</th><th>regions</th><th>steals</th><th>parks</th>\
         <th>wakes</th><th>bytes moved</th><th>spans dropped</th></tr></thead><tbody>",
    );
    for t in traces {
        let d = &t.delta;
        let _ = write!(
            h,
            "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
             <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
             <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
             <td class=\"n\">{}</td></tr>",
            esc(&t.app),
            d.launches,
            d.pricing_cache_hits,
            d.pricing_cache_misses,
            d.regions,
            d.steals,
            d.parks,
            d.wakes,
            d.bytes_moved,
            d.spans_dropped,
        );
    }
    h.push_str("</tbody></table></section>");
}

/// Section 2: scheduler health — the histograms the parkit pool, the
/// op2 colouring planner and the service layer record into the metrics
/// registry while the traced apps run.
fn render_scheduler(h: &mut String, snap: &metrics::registry::Snapshot) {
    h.push_str(
        "<section><h2>Scheduler health</h2>\
         <p>Registry histograms recorded during the traced runs: pool steal \
         latency and region chunking, colouring-planner colour counts and \
         bytes per conflict-free wave, service admission waits. Units are in \
         the metric name; a colour count or steal latency drifting up across \
         runs is scheduler degradation the per-kernel tables cannot show.</p>",
    );
    let keys = snap.hist_keys();
    if keys.is_empty() {
        h.push_str("<p>No scheduler metrics recorded.</p></section>");
        return;
    }
    h.push_str(
        "<table class=\"sortable\"><thead><tr><th>metric</th><th>label</th>\
         <th>count</th><th>mean</th><th>p50</th><th>p95</th><th>max</th></tr></thead><tbody>",
    );
    for key in keys {
        let Some(hist) = snap.hist(&key.0, &key.1) else {
            continue;
        };
        let _ = write!(
            h,
            "<tr><td>{}</td><td>{}</td><td class=\"n\">{}</td>\
             <td class=\"n\" data-v=\"{3}\">{3:.2}</td>\
             <td class=\"n\" data-v=\"{4}\">{4:.2}</td>\
             <td class=\"n\" data-v=\"{5}\">{5:.2}</td>\
             <td class=\"n\" data-v=\"{6}\">{6:.2}</td></tr>",
            esc(&key.0),
            esc(&key.1),
            hist.count(),
            hist.mean(),
            hist.quantile(0.5),
            hist.quantile(0.95),
            hist.max(),
        );
    }
    h.push_str("</tbody></table></section>");
}

/// Section 3: the open-loop admission-latency study from the last
/// `service_bench` run — wait quantiles against offered load on a log
/// scale, the saturation knee, and the batching/fast-path summary.
fn render_service_latency(h: &mut String, manifests: &[StoredManifest]) {
    h.push_str("<section><h2>Service latency</h2>");
    let Some(sm) = manifests
        .iter()
        .filter(|m| m.manifest.name == "service")
        .max_by_key(|m| (m.source == "current", m.manifest.created_unix_secs))
    else {
        h.push_str(
            "<p>No <code>BENCH_service.json</code> manifest found — run \
             <code>cargo run --release --bin service_bench</code> to produce the \
             open-loop admission study.</p></section>",
        );
        return;
    };
    let m = &sm.manifest;
    let _ = write!(
        h,
        "<p>Open-loop study from {} (git <code>{}</code>): each request arrives \
         on a fixed schedule and the recorded wait is \
         <i>completion − scheduled arrival − service time</i>, so queueing delay \
         is charged even when a blocked client issues late (coordinated-omission \
         corrected). Load is offered as a fraction of admission capacity.</p>",
        esc(&sm.path.display().to_string()),
        esc(&m.git_rev),
    );

    // Summary rows: the fast path, batching and shedding.
    h.push_str(
        "<table><thead><tr><th>measure</th><th>p50</th><th>p99</th><th>p999</th>\
         <th>max</th><th>count</th></tr></thead><tbody>",
    );
    for (label, name) in [
        ("submit fast path", "service/fastpath_submit"),
        ("bare session launch", "service/bare_launch"),
    ] {
        if let Some(k) = m.kernel(name) {
            let _ = write!(
                h,
                "<tr><td>{label}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
                 <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td></tr>",
                fmt_secs(k.wall.p50),
                fmt_secs(k.wall.p99),
                fmt_secs(k.wall.p999),
                fmt_secs(k.wall.max),
                k.wall.count,
            );
        }
    }
    if let Some(k) = m.kernel("service/batch_size") {
        let _ = write!(
            h,
            "<tr><td>coalesced batch size (requests)</td><td class=\"n\">{:.0}</td>\
             <td class=\"n\">{:.0}</td><td class=\"n\">{:.0}</td><td class=\"n\">{:.0}</td>\
             <td class=\"n\">{}</td></tr>",
            k.wall.p50, k.wall.p99, k.wall.p999, k.wall.max, k.wall.count,
        );
    }
    if let Some(k) = m.kernel("service/shed_total") {
        let _ = write!(
            h,
            "<tr><td>shed under overload (submissions)</td>\
             <td class=\"n\" colspan=\"5\">{:.0}</td></tr>",
            k.wall.max,
        );
    }
    h.push_str("</tbody></table>");

    // Open-loop sweep points, sorted by offered-load fraction (stored
    // in sim_secs by service_bench).
    let mut points: Vec<(f64, &metrics::Summary)> = m
        .kernels
        .iter()
        .filter(|k| k.name.starts_with("service/openloop@"))
        .map(|k| (k.sim_secs, &k.wall))
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let knee = m.kernel("service/saturation_knee").map(|k| k.sim_secs);
    if points.len() < 2 {
        h.push_str("<p>No open-loop sweep in the manifest.</p></section>");
        return;
    }

    const W: f64 = 560.0;
    const H: f64 = 260.0;
    const ML: f64 = 64.0;
    const MR: f64 = 120.0;
    const MT: f64 = 16.0;
    const MB: f64 = 40.0;
    let x_lo = points[0].0;
    let x_hi = points[points.len() - 1].0;
    // Log-scale y in microseconds: the knee is a orders-of-magnitude
    // jump, invisible on a linear axis.
    let us = |s: f64| (s * 1e6).max(1e-3);
    let mut y_lo = f64::INFINITY;
    let mut y_hi = f64::NEG_INFINITY;
    for (_, s) in &points {
        y_lo = y_lo.min(us(s.p50).log10());
        y_hi = y_hi.max(us(s.p999).log10());
    }
    y_lo = (y_lo - 0.2).floor();
    y_hi = (y_hi + 0.2).ceil();
    let sx = |f: f64| ML + (W - ML - MR) * (f - x_lo) / (x_hi - x_lo).max(1e-9);
    let sy = |v: f64| MT + (H - MT - MB) * (1.0 - (us(v).log10() - y_lo) / (y_hi - y_lo));

    let _ = write!(
        h,
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\">\
         <line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{0}\" class=\"axis\"/>\
         <line x1=\"{ML}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" class=\"axis\"/>",
        H - MB,
        W - MR,
    );
    let mut dec = y_lo;
    while dec <= y_hi {
        let y = MT + (H - MT - MB) * (1.0 - (dec - y_lo) / (y_hi - y_lo));
        let v = 10f64.powf(dec);
        let lab = if v >= 1e3 {
            format!("{:.0} ms", v / 1e3)
        } else {
            format!("{v:.0} µs")
        };
        let _ = write!(
            h,
            "<text x=\"{:.1}\" y=\"{y:.1}\" class=\"tick\" text-anchor=\"end\">{lab}</text>",
            ML - 4.0,
        );
        dec += 1.0;
    }
    for (f, _) in &points {
        let _ = write!(
            h,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{f:.2}×</text>",
            sx(*f),
            H - MB + 14.0,
        );
    }
    if let Some(knee) = knee.filter(|&f| f <= x_hi) {
        let _ = write!(
            h,
            "<line x1=\"{0:.1}\" y1=\"{MT}\" x2=\"{0:.1}\" y2=\"{1}\" class=\"roof\"/>\
             <text x=\"{0:.1}\" y=\"{2:.1}\" class=\"rooflab\" text-anchor=\"middle\">knee {knee:.2}×</text>",
            sx(knee),
            H - MB,
            MT + 10.0,
        );
    }
    for (si, (label, pick)) in [
        (
            "p50",
            (|s: &metrics::Summary| s.p50) as fn(&metrics::Summary) -> f64,
        ),
        ("p99", |s: &metrics::Summary| s.p99),
        ("p999", |s: &metrics::Summary| s.p999),
    ]
    .into_iter()
    .enumerate()
    {
        let colour = ["#1f77b4", "#ff7f0e", "#d62728"][si];
        let mut d = String::new();
        for (f, s) in &points {
            let _ = write!(d, "{:.1},{:.1} ", sx(*f), sy(pick(s)));
        }
        let _ = write!(
            h,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{colour}\" stroke-width=\"1.6\"/>",
            d.trim_end(),
        );
        for (f, s) in &points {
            let _ = write!(
                h,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{colour}\">\
                 <title>{label} wait at {f:.2}× capacity: {}</title></circle>",
                sx(*f),
                sy(pick(s)),
                fmt_secs(pick(s)),
            );
        }
        let _ = write!(
            h,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"leg\" fill=\"{colour}\">{label} wait</text>",
            W - MR + 8.0,
            MT + 12.0 + 13.0 * si as f64,
        );
    }
    h.push_str("</svg></section>");
}

/// Section 4: achieved GB/s per (app, variant) against the STREAM roof.
fn render_roofline(h: &mut String, study: &[(PlatformId, Vec<Measurement>)]) {
    h.push_str(
        "<section><h2>Achieved bandwidth vs STREAM roof</h2>\
         <p>Each point is one (app, variant) configuration priced at paper size; \
         the dashed line is the platform's STREAM-Triad roof (Table 1). \
         Blue = native toolchain, orange = SYCL. Hover points for details.</p>\
         <div class=\"panels\">",
    );
    const W: f64 = 380.0;
    const H: f64 = 230.0;
    const ML: f64 = 52.0;
    const MR: f64 = 10.0;
    const MT: f64 = 26.0;
    const MB: f64 = 56.0;
    for (pid, ms) in study {
        let plat = Platform::get(*pid);
        let roof = plat.mem.stream_bw / 1e9;
        let y_max = roof * 1.18;
        let apps: Vec<&str> = {
            let mut v: Vec<&str> = Vec::new();
            for m in ms {
                if !v.contains(&m.app) {
                    v.push(m.app);
                }
            }
            v
        };
        let sx = |slot: f64| ML + (W - ML - MR) * slot;
        let sy = |gbps: f64| MT + (H - MT - MB) * (1.0 - (gbps / y_max).clamp(0.0, 1.0));
        let _ = write!(
            h,
            "<svg viewBox=\"0 0 {W} {H}\" role=\"img\">\
             <text x=\"{}\" y=\"16\" class=\"title\">{}</text>\
             <line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" class=\"axis\"/>\
             <line x1=\"{ML}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"axis\"/>",
            W / 2.0,
            esc(plat.name),
            H - MB,
            H - MB,
            W - MR,
            H - MB,
        );
        // Roof line + y ticks.
        let _ = write!(
            h,
            "<line x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1}\" y2=\"{0:.1}\" class=\"roof\"/>\
             <text x=\"{1}\" y=\"{2:.1}\" class=\"rooflab\" text-anchor=\"end\">roof {3:.0} GB/s</text>",
            sy(roof),
            W - MR,
            sy(roof) - 4.0,
            roof,
        );
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = roof * frac;
            let _ = write!(
                h,
                "<text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{v:.0}</text>",
                ML - 4.0,
                sy(v) + 3.0,
            );
        }
        // X category labels.
        for (i, app) in apps.iter().enumerate() {
            let x = sx((i as f64 + 0.5) / apps.len() as f64);
            let _ = write!(
                h,
                "<text x=\"{x:.1}\" y=\"{:.1}\" class=\"tick\" \
                 transform=\"rotate(-35 {x:.1} {:.1})\" text-anchor=\"end\">{}</text>",
                H - MB + 12.0,
                H - MB + 12.0,
                esc(app),
            );
        }
        // Points.
        for m in ms {
            let (Ok(_), Some(eff)) = (&m.runtime, m.efficiency) else {
                continue;
            };
            let slot = apps.iter().position(|a| *a == m.app).unwrap_or(0);
            let vs = ms
                .iter()
                .filter(|x| x.app == m.app)
                .position(|x| std::ptr::eq(x, m))
                .unwrap_or(0);
            let n_var = ms.iter().filter(|x| x.app == m.app).count().max(1);
            let x = sx(
                (slot as f64 + 0.18 + 0.64 * (vs as f64 + 0.5) / n_var as f64) / apps.len() as f64,
            );
            let gbps = eff * roof;
            let class = if m.variant.is_native() {
                "pnat"
            } else {
                "psyc"
            };
            let scheme = m.scheme.map(|s| format!(" [{s:?}]")).unwrap_or_default();
            let _ = write!(
                h,
                "<circle cx=\"{x:.1}\" cy=\"{:.1}\" r=\"3.2\" class=\"{class}\">\
                 <title>{} · {}{}: {gbps:.0} GB/s ({:.0}% of roof)</title></circle>",
                sy(gbps),
                esc(m.app),
                esc(&m.variant.label()),
                esc(&scheme),
                eff * 100.0,
            );
        }
        h.push_str("</svg>");
    }
    h.push_str("</div></section>");
}

/// Best (highest-efficiency) cell for (app, variant label) on a platform.
fn best_cell<'m>(ms: &'m [Measurement], app: &str, variant: &str) -> Option<&'m Measurement> {
    ms.iter()
        .filter(|m| m.app == app && m.variant.label() == variant)
        .max_by(|a, b| {
            let ea = a.efficiency.unwrap_or(-1.0);
            let eb = b.efficiency.unwrap_or(-1.0);
            ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Section 5: efficiency heatmap per platform + Pennycook PP̄ table.
fn render_heatmap(h: &mut String, study: &[(PlatformId, Vec<Measurement>)]) {
    h.push_str(
        "<section><h2>Portability heatmap (achieved efficiency)</h2>\
         <p>Efficiency = effective bandwidth / STREAM roof, per (app, variant); \
         MG-CFD shows its best race-resolution scheme. Holes are failed or \
         unsupported configurations, as in Figures 10–11.</p>",
    );
    for (pid, ms) in study {
        let plat = Platform::get(*pid);
        let variants: Vec<String> = {
            let mut v = Vec::new();
            for m in ms {
                let l = m.variant.label();
                if !v.contains(&l) {
                    v.push(l);
                }
            }
            v
        };
        let apps: Vec<&str> = {
            let mut v: Vec<&str> = Vec::new();
            for m in ms {
                if !v.contains(&m.app) {
                    v.push(m.app);
                }
            }
            v
        };
        let _ = write!(
            h,
            "<h3>{}</h3><table class=\"heat\"><thead><tr><th></th>",
            esc(plat.name)
        );
        for v in &variants {
            let _ = write!(h, "<th>{}</th>", esc(v));
        }
        h.push_str("</tr></thead><tbody>");
        for app in &apps {
            let _ = write!(h, "<tr><td>{}</td>", esc(app));
            for v in &variants {
                match best_cell(ms, app, v) {
                    Some(m) => match (&m.runtime, m.efficiency) {
                        (Ok(_), Some(eff)) => {
                            let _ = write!(
                                h,
                                "<td class=\"n\" style=\"background:{}\">{:.0}%</td>",
                                eff_colour(eff),
                                eff * 100.0,
                            );
                        }
                        (Err(k), _) => {
                            let _ = write!(h, "<td class=\"hole\">{k:?}</td>");
                        }
                        _ => h.push_str("<td class=\"hole\">?</td>"),
                    },
                    None => h.push_str("<td class=\"hole\">-</td>"),
                }
            }
            h.push_str("</tr>");
        }
        h.push_str("</tbody></table>");
    }

    // PP̄ across the full platform set, per app: best-native vs best-SYCL.
    h.push_str(
        "<h3>Pennycook PP̄ across all six platforms</h3>\
         <table><thead><tr><th>app</th><th>best native</th><th>best SYCL</th></tr></thead><tbody>",
    );
    let apps: Vec<&str> = {
        let mut v: Vec<&str> = Vec::new();
        for (_, ms) in study {
            for m in ms {
                if !v.contains(&m.app) {
                    v.push(m.app);
                }
            }
        }
        v
    };
    for app in &apps {
        let best = |native: bool| -> Vec<Option<f64>> {
            study
                .iter()
                .map(|(_, ms)| {
                    ms.iter()
                        .filter(|m| m.app == *app && m.variant.is_native() == native)
                        .filter_map(|m| m.efficiency)
                        .fold(None, |acc: Option<f64>, e| {
                            Some(acc.map_or(e, |a| a.max(e)))
                        })
                })
                .collect()
        };
        let fmt_pp = |effs: Vec<Option<f64>>| {
            let pp = pennycook(&effs, false);
            if pp == 0.0 {
                "—".to_owned()
            } else {
                format!("{:.0}%", pp * 100.0)
            }
        };
        let _ = write!(
            h,
            "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td></tr>",
            esc(app),
            fmt_pp(best(true)),
            fmt_pp(best(false)),
        );
    }
    h.push_str("</tbody></table></section>");
}

/// Section 6 — "Data movement": what the interconnect costs every app,
/// from the last `transfer_bench` run (`BENCH_transfer.json`, schema
/// `transfer-bench/v1`) — stacked kernel-vs-transfer bars per app ×
/// platform, the pinned-vs-pageable bandwidth delta per link, and the
/// CPU-vs-GPU crossover table with and without transfers priced.
fn render_data_movement(h: &mut String, out_dir: &Path) {
    h.push_str("<section><h2>Data movement</h2>");
    let path = out_dir.join("BENCH_transfer.json");
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| jsonv::parse(&t).ok())
        .filter(|d| d.str_of("schema") == Some("transfer-bench/v1"));
    let Some(doc) = doc else {
        h.push_str(
            "<p>No <code>BENCH_transfer.json</code> next to the dashboard — run \
             <code>cargo run --release -p bench-harness --bin transfer_bench</code> \
             to calibrate the interconnect curves and price every app's \
             staging traffic.</p></section>",
        );
        return;
    };

    // Stacked kernel-vs-transfer bars, one panel per app, one bar per
    // platform (total run time, interconnect share on top).
    let splits: &[Json] = doc.get("apps").and_then(Json::as_arr).unwrap_or(&[]);
    let mut apps: Vec<&str> = Vec::new();
    for s in splits {
        if let Some(a) = s.str_of("app") {
            if !apps.contains(&a) {
                apps.push(a);
            }
        }
    }
    h.push_str(
        "<p>Per-app kernel vs interconnect time (native toolchains, paper sizes, \
         pinned allocations): <span style=\"color:#1f77b4\">&#9632;</span> kernels, \
         <span style=\"color:#ff7f0e\">&#9632;</span> transfers + halo exchanges. \
         The historic model gave the orange share away for free.</p>\
         <div class=\"panels\">",
    );
    for app in &apps {
        let rows: Vec<(&str, f64, f64)> = splits
            .iter()
            .filter(|s| s.str_of("app") == Some(app))
            .filter_map(|s| {
                Some((
                    s.str_of("platform")?,
                    s.f64_of("kernelSecs")?,
                    s.f64_of("transferSecs")?,
                ))
            })
            .collect();
        let max_total = rows.iter().map(|&(_, k, t)| k + t).fold(1e-12f64, f64::max);
        const W: f64 = 380.0;
        const H: f64 = 230.0;
        const ML: f64 = 10.0;
        const MT: f64 = 24.0;
        const MB: f64 = 30.0;
        let bw = (W - 2.0 * ML) / rows.len().max(1) as f64;
        let _ = write!(
            h,
            "<svg viewBox=\"0 0 {W} {H}\" role=\"img\">\
             <text x=\"{:.0}\" y=\"14\" class=\"title\">{}</text>",
            W / 2.0,
            esc(app),
        );
        for (i, (platform, kernel, transfer)) in rows.iter().enumerate() {
            let x = ML + bw * i as f64 + bw * 0.12;
            let wid = bw * 0.76;
            let hk = (H - MT - MB) * kernel / max_total;
            let ht = (H - MT - MB) * transfer / max_total;
            let y_t = H - MB - hk - ht;
            let _ = write!(
                h,
                "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"{wid:.1}\" height=\"{hk:.1}\" class=\"pnat\">\
                 <title>{platform} kernels: {}</title></rect>\
                 <rect x=\"{x:.1}\" y=\"{y_t:.1}\" width=\"{wid:.1}\" height=\"{ht:.1}\" class=\"psyc\">\
                 <title>{platform} transfers: {}</title></rect>\
                 <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{platform}</text>",
                H - MB - hk,
                fmt_secs(*kernel),
                fmt_secs(*transfer),
                x + wid / 2.0,
                H - MB + 12.0,
            );
        }
        h.push_str("</svg>");
    }
    h.push_str("</div>");

    // Pinned vs pageable: the allocation-kind delta per platform × dir.
    h.push_str(
        "<h3>Pinned vs pageable host allocations</h3>\
         <p>Sustained link bandwidth at the largest calibrated copy; in-package \
         (CPU) links have no allocation distinction.</p>\
         <table><thead><tr><th>platform</th><th>dir</th><th>pinned GB/s</th>\
         <th>pageable GB/s</th><th>pinned speedup</th></tr></thead><tbody>",
    );
    if let Some(Json::Arr(deltas)) = doc.get("pinnedDelta") {
        for d in deltas {
            let speedup = d.f64_of("speedup").unwrap_or(1.0);
            let _ = write!(
                h,
                "<tr><td>{}</td><td><code>{}</code></td><td class=\"n\">{:.1}</td>\
                 <td class=\"n\">{:.1}</td><td class=\"n\">{speedup:.2}&times;</td></tr>",
                esc(d.str_of("platform").unwrap_or("?")),
                esc(d.str_of("dir").unwrap_or("?")),
                d.f64_of("pinnedGbps").unwrap_or(0.0),
                d.f64_of("pageableGbps").unwrap_or(0.0),
            );
        }
    }
    h.push_str("</tbody></table>");

    // The crossover table: how pricing data movement shifts the best
    // CPU vs best GPU comparison per app.
    h.push_str(
        "<h3>CPU-vs-GPU crossover</h3>\
         <p>GPU speedup over the best CPU (&gt; 1 = GPU wins), kernels only \
         (the historic free-transfer comparison) against the full priced \
         clock. A negative shift means the GPU advantage shrank once its \
         staging traffic was priced.</p>\
         <table><thead><tr><th>app</th><th>best GPU</th><th>best CPU</th>\
         <th>speedup (kernels)</th><th>speedup (priced)</th><th>shift</th>\
         </tr></thead><tbody>",
    );
    if let Some(Json::Arr(rows)) = doc.get("crossover") {
        for c in rows {
            let kernels = c.f64_of("gpuSpeedupKernels").unwrap_or(0.0);
            let priced = c.f64_of("gpuSpeedupTotal").unwrap_or(0.0);
            let shift = c.f64_of("shiftPct").unwrap_or(0.0);
            // A crossover *flip* (GPU wins one model, loses the other)
            // is the headline finding — flag the row.
            let flipped = (kernels > 1.0) != (priced > 1.0);
            let cls = if flipped { "n bad" } else { "n" };
            let _ = write!(
                h,
                "<tr><td><code>{}</code></td><td>{}</td><td>{}</td>\
                 <td class=\"n\">{kernels:.2}&times;</td><td class=\"n\">{priced:.2}&times;</td>\
                 <td class=\"{cls}\">{shift:+.1}%{}</td></tr>",
                esc(c.str_of("app").unwrap_or("?")),
                esc(c.str_of("bestGpu").unwrap_or("?")),
                esc(c.str_of("bestCpu").unwrap_or("?")),
                if flipped { " (crossover flips)" } else { "" },
            );
        }
    }
    h.push_str("</tbody></table></section>");
}

/// Section 7: the cross-product study from the last `study` run — a
/// per-cell status grid (app × platform over every variant), the fleet
/// counters (retries, restarts, timeouts, utilisation) and the PP̄ rows
/// computed over exactly what that study executed.
///
/// Parsed generically from `STUDY.json` (schema `sycl-study/v1`): the
/// study crate sits *above* this one in the dependency graph, so the
/// dashboard reads the document rather than the types.
fn render_study_run(h: &mut String, out_dir: &Path) {
    h.push_str("<section><h2>Cross-product study</h2>");
    let path = out_dir.join("STUDY.json");
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| jsonv::parse(&t).ok());
    let Some(doc) = doc else {
        h.push_str(
            "<p>No <code>STUDY.json</code> next to the dashboard — run \
             <code>cargo run --release -p sycl-study --bin study -- --paper --workers 4</code> \
             to execute the full cross-product under the crash-tolerant \
             orchestrator.</p></section>",
        );
        return;
    };
    let records: Vec<&Json> = match doc.get("records") {
        Some(Json::Arr(a)) => a.iter().collect(),
        _ => Vec::new(),
    };
    if records.is_empty() || doc.str_of("schema") != Some("sycl-study/v1") {
        let _ = write!(
            h,
            "<p><code>{}</code> is not a readable study document.</p></section>",
            esc(&path.display().to_string()),
        );
        return;
    }

    let (mut ok, mut holes, mut crashed, mut retried) = (0usize, 0usize, 0usize, 0usize);
    for r in &records {
        match r.str_of("status") {
            Some("ok") => ok += 1,
            Some("hole") => holes += 1,
            _ => crashed += 1,
        }
        if r.u64_of("attempt").unwrap_or(1) > 1 {
            retried += 1;
        }
    }
    let _ = write!(
        h,
        "<p>Scope <b>{}</b> from <code>{}</code>: {} units — \
         <b>{ok}</b> measured, <b>{holes}</b> modelled paper holes, \
         <b>{crashed}</b> crashed after bounded retries; {retried} unit(s) \
         recovered on attempt &gt; 1.</p>",
        esc(doc.str_of("scope").unwrap_or("?")),
        esc(&path.display().to_string()),
        records.len(),
    );
    if let Some(s) = doc.get("stats") {
        let workers = s.u64_of("workers").unwrap_or(0);
        let elapsed = s.f64_of("elapsedSecs").unwrap_or(0.0);
        let busy = s.f64_of("busySecs").unwrap_or(0.0);
        let util = if workers > 0 && elapsed > 0.0 {
            busy / (workers as f64 * elapsed) * 100.0
        } else {
            0.0
        };
        let _ = write!(
            h,
            "<p>Fleet: {workers} worker process(es), elapsed {}, busy {}, \
             utilisation {util:.0}%, retries {}, worker restarts {}, \
             timeouts {}, resumed from journal {}.</p>",
            fmt_secs(elapsed),
            fmt_secs(busy),
            s.u64_of("retries").unwrap_or(0),
            s.u64_of("restarts").unwrap_or(0),
            s.u64_of("timeouts").unwrap_or(0),
            s.u64_of("resumed").unwrap_or(0),
        );
        let rss = s.u64_of("peakRssKb").unwrap_or(0);
        if rss > 0 {
            let _ = write!(
                h,
                "<p>Peak worker RSS (VmHWM from the exit frames): \
                 <b>{:.1} MiB</b>.</p>",
                rss as f64 / 1024.0
            );
        }
    }

    // Status grid: apps × platforms, each cell summarising that cell's
    // variant column ("measured/total", ✗ if any variant crashed, ⟲ if
    // any needed a retry; hover for the per-variant breakdown).
    let mut platforms: Vec<&str> = Vec::new();
    let mut apps: Vec<&str> = Vec::new();
    for r in &records {
        if let Some(p) = r.str_of("platform") {
            if !platforms.contains(&p) {
                platforms.push(p);
            }
        }
        if let Some(a) = r.str_of("app") {
            if !apps.contains(&a) {
                apps.push(a);
            }
        }
    }
    h.push_str("<table class=\"heat\"><thead><tr><th></th>");
    for p in &platforms {
        let _ = write!(h, "<th>{}</th>", esc(p));
    }
    h.push_str("</tr></thead><tbody>");
    for app in &apps {
        let _ = write!(h, "<tr><td>{}</td>", esc(app));
        for plat in &platforms {
            let cell: Vec<&&Json> = records
                .iter()
                .filter(|r| r.str_of("app") == Some(app) && r.str_of("platform") == Some(plat))
                .collect();
            if cell.is_empty() {
                h.push_str("<td class=\"hole\">-</td>");
                continue;
            }
            let c_ok = cell
                .iter()
                .filter(|r| r.str_of("status") == Some("ok"))
                .count();
            let c_crash = cell
                .iter()
                .filter(|r| r.str_of("status") == Some("crashed"))
                .count();
            let c_retry = cell
                .iter()
                .filter(|r| r.u64_of("attempt").unwrap_or(1) > 1)
                .count();
            let mut tip = String::new();
            for r in &cell {
                let _ = writeln!(
                    tip,
                    "{} {}{}: {}{}",
                    r.str_of("toolchain").unwrap_or("?"),
                    if r.get("ndRange").map(|b| matches!(b, Json::Bool(true))) == Some(true) {
                        "ndrange"
                    } else {
                        "flat"
                    },
                    r.str_of("scheme")
                        .map(|s| format!(" #{s}"))
                        .unwrap_or_default(),
                    r.str_of("status").unwrap_or("?"),
                    r.str_of("failure")
                        .map(|f| format!(" ({f})"))
                        .unwrap_or_default(),
                );
            }
            let bg = if c_crash > 0 {
                "#f3c2c2".to_owned()
            } else {
                eff_colour(c_ok as f64 / cell.len() as f64)
            };
            let _ = write!(
                h,
                "<td class=\"n\" style=\"background:{bg}\" title=\"{}\">{c_ok}/{}{}{}</td>",
                esc(tip.trim_end()),
                cell.len(),
                if c_crash > 0 { " ✗" } else { "" },
                if c_retry > 0 { " ⟲" } else { "" },
            );
        }
        h.push_str("</tr>");
    }
    h.push_str("</tbody></table>");

    if let Some(Json::Arr(pp)) = doc.get("pp") {
        if !pp.is_empty() {
            h.push_str(
                "<h3>PP̄ over the merged study</h3>\
                 <p>Harmonic-mean performance portability computed from the \
                 journaled records — exactly the cells this study ran, crashes \
                 excluded.</p>\
                 <table><thead><tr><th>configuration</th><th>PP̄</th></tr></thead><tbody>",
            );
            for row in pp {
                let _ = write!(
                    h,
                    "<tr><td>{}</td><td class=\"n\">{:.2}</td></tr>",
                    esc(row.str_of("label").unwrap_or("?")),
                    row.f64_of("value").unwrap_or(0.0),
                );
            }
            h.push_str("</tbody></table>");
        }
    }
    h.push_str("</section>");
}

/// Fleet forensics: the `blackbox` reconstruction of the last study —
/// kill-site attribution for every crashed/timed-out unit, the
/// straggler/tail kernel breakdown, and the per-process flight
/// recording inventory.
///
/// Parsed generically from `BLACKBOX_study.json` (schema
/// `sycl-blackbox/v1`) for the same layering reason as the study
/// section: the study crate depends on this one.
fn render_fleet_forensics(h: &mut String, out_dir: &Path) {
    h.push_str("<section><h2>Fleet forensics</h2>");
    let path = out_dir.join("BLACKBOX_study.json");
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|t| jsonv::parse(&t).ok())
        .filter(|d| d.str_of("schema") == Some("sycl-blackbox/v1"));
    let Some(doc) = doc else {
        h.push_str(
            "<p>No <code>BLACKBOX_study.json</code> next to the dashboard — \
             after a study, run <code>cargo run --release -p sycl-study \
             --bin blackbox</code> to reconstruct crashes and stragglers \
             from the flight recordings.</p></section>",
        );
        return;
    };

    let crashed = doc.u64_of("crashed").unwrap_or(0);
    let unattributed = doc.u64_of("unattributed").unwrap_or(0);
    let _ = write!(
        h,
        "<p>{} units ({} measured, {} holes, <b>{crashed}</b> crashed), \
         reconstructed from the resume journal plus the crash-surviving \
         flight recordings; the merged cross-process timeline is in \
         <code>TRACE_study.json</code> (open in Perfetto — flow arrows \
         join dispatch → execution → result across pids).</p>",
        doc.u64_of("units").unwrap_or(0),
        doc.u64_of("ok").unwrap_or(0),
        doc.u64_of("holes").unwrap_or(0),
    );
    if crashed > 0 {
        let _ = write!(
            h,
            "<p>Kill-site attribution: <b>{}</b> of {crashed} crashed \
             unit(s) traced to the span they died in{}.</p>",
            crashed - unattributed.min(crashed),
            if unattributed > 0 {
                format!(" — <b>{unattributed} unattributed</b>")
            } else {
                String::new()
            },
        );
    }

    if let Some(Json::Arr(attrs)) = doc.get("attributions") {
        if !attrs.is_empty() {
            h.push_str(
                "<table><thead><tr><th>unit</th><th>worker</th>\
                 <th>attempt</th><th>trace</th><th>died in</th>\
                 <th>after</th><th>note</th></tr></thead><tbody>",
            );
            for a in attrs {
                let site = match (a.str_of("spanKind"), a.str_of("spanName")) {
                    (Some(k), Some(n)) => format!("{} <code>{}</code>", esc(k), esc(n)),
                    _ => "<b>no recording</b>".to_owned(),
                };
                let _ = write!(
                    h,
                    "<tr><td><code>{}</code></td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td>\
                     <td>{site}</td><td class=\"n\">{}</td><td>{}</td></tr>",
                    esc(a.str_of("id").unwrap_or("?")),
                    a.u64_of("worker").unwrap_or(0),
                    a.u64_of("attempt").unwrap_or(0),
                    a.u64_of("trace").unwrap_or(0),
                    a.f64_of("inSpanSecs")
                        .map(fmt_secs)
                        .unwrap_or_else(|| "-".to_owned()),
                    esc(a.str_of("note").unwrap_or("")),
                );
            }
            h.push_str("</tbody></table>");
        }
    }

    if let Some(Json::Arr(tails)) = doc.get("tailKernels") {
        if !tails.is_empty() {
            let units = match doc.get("tailUnits") {
                Some(Json::Arr(u)) => u
                    .iter()
                    .filter_map(|v| match v {
                        Json::Str(s) => Some(esc(s)),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
                _ => String::new(),
            };
            let _ = write!(
                h,
                "<h3>Stragglers</h3><p>Units at or above the p99 wall time \
                 ({}): <code>{units}</code>. Launch time inside those \
                 windows, by kernel:</p>\
                 <table><thead><tr><th>kernel</th><th>seconds</th>\
                 <th>share</th></tr></thead><tbody>",
                fmt_secs(doc.f64_of("tailP99Secs").unwrap_or(0.0)),
            );
            for k in tails {
                let _ = write!(
                    h,
                    "<tr><td><code>{}</code></td><td class=\"n\">{}</td>\
                     <td class=\"n\">{:.1}%</td></tr>",
                    esc(k.str_of("name").unwrap_or("?")),
                    fmt_secs(k.f64_of("secs").unwrap_or(0.0)),
                    k.f64_of("share").unwrap_or(0.0) * 100.0,
                );
            }
            h.push_str("</tbody></table>");
        }
    }

    if let Some(Json::Arr(recs)) = doc.get("recordings") {
        if !recs.is_empty() {
            let _ = write!(
                h,
                "<h3>Flight recordings</h3><p>{} per-process recording(s); \
                 <i>torn</i> marks a file whose writer died mid-record — \
                 everything before the tear is still served.</p>\
                 <table><thead><tr><th>process</th><th>pid</th>\
                 <th>events</th><th>torn</th><th>peak RSS</th></tr></thead>\
                 <tbody>",
                recs.len()
            );
            for r in recs {
                let who = if matches!(r.get("orchestrator"), Some(Json::Bool(true))) {
                    "orchestrator".to_owned()
                } else {
                    format!("worker {}", r.u64_of("worker").unwrap_or(0))
                };
                let rss = r.u64_of("peakRssKb").unwrap_or(0);
                let _ = write!(
                    h,
                    "<tr><td>{} <code>{}</code></td><td class=\"n\">{}</td>\
                     <td class=\"n\">{}</td><td>{}</td>\
                     <td class=\"n\">{}</td></tr>",
                    who,
                    esc(r.str_of("label").unwrap_or("")),
                    r.u64_of("pid").unwrap_or(0),
                    r.u64_of("events").unwrap_or(0),
                    if matches!(r.get("torn"), Some(Json::Bool(true))) {
                        "✂ torn"
                    } else {
                        "intact"
                    },
                    if rss > 0 {
                        format!("{:.1} MiB", rss as f64 / 1024.0)
                    } else {
                        "-".to_owned()
                    },
                );
            }
            h.push_str("</tbody></table>");
        }
    }
    h.push_str("</section>");
}

/// Section 8: static graph-lint findings from the last `graphlint` run.
fn render_graphlint(h: &mut String, out_dir: &Path) {
    h.push_str("<section><h2>Graph lint</h2>");
    let docs: Vec<(&str, Json)> = APP_NAMES
        .iter()
        .filter_map(|app| {
            let path = out_dir.join(format!("LINT_{app}.json"));
            let doc = std::fs::read_to_string(path)
                .ok()
                .and_then(|t| jsonv::parse(&t).ok())?;
            Some((*app, doc))
        })
        .collect();
    if docs.is_empty() {
        h.push_str(
            "<p>No <code>LINT_*.json</code> next to the dashboard — run \
             <code>cargo run --release -p bench-harness --bin graphlint</code> \
             to statically lint every application's recorded launch \
             graphs.</p></section>",
        );
        return;
    }

    h.push_str(
        "<p>Static dataflow analysis over the recorded launch graphs: \
         hazards, halo-exchange coverage, dead code and fusion \
         candidates with modelled savings.</p>\
         <table><thead><tr><th>app</th><th>errors</th><th>warnings</th>\
         <th>infos</th></tr></thead><tbody>",
    );
    for (app, doc) in &docs {
        let errors = doc.u64_of("errors").unwrap_or(0);
        let cls = if errors > 0 { " class=\"bad\"" } else { "" };
        let _ = write!(
            h,
            "<tr><td><code>{}</code></td><td{cls}>{errors}</td><td>{}</td><td>{}</td></tr>",
            esc(app),
            doc.u64_of("warnings").unwrap_or(0),
            doc.u64_of("infos").unwrap_or(0),
        );
    }
    h.push_str("</tbody></table>");

    // Every Error/Warning, plus the fusion candidates: the findings a
    // reader acts on.
    let mut shown = false;
    for (app, doc) in &docs {
        let Some(Json::Arr(diags)) = doc.get("diagnostics") else {
            continue;
        };
        for d in diags {
            let severity = d.str_of("severity").unwrap_or("?");
            let detail = d.str_of("detail").unwrap_or("");
            let interesting = severity != "info" || detail.starts_with("fusion candidate");
            if !interesting {
                continue;
            }
            if !shown {
                h.push_str("<ul>");
                shown = true;
            }
            let count = d.u64_of("count").unwrap_or(1);
            let times = if count > 1 {
                format!(" (&times;{count})")
            } else {
                String::new()
            };
            let _ = write!(
                h,
                "<li><b>{}</b> <code>{}</code> <code>{}</code>: {}{times}</li>",
                esc(severity),
                esc(app),
                esc(d.str_of("kernel").unwrap_or("?")),
                esc(detail),
            );
        }
    }
    if shown {
        h.push_str("</ul>");
    } else {
        h.push_str("<p>No Error or Warning findings and no fusion candidates.</p>");
    }
    h.push_str("</section>");
}

/// Section 9: trajectory of per-kernel medians across stored manifests.
fn render_trajectory(h: &mut String, manifests: &[StoredManifest]) {
    h.push_str("<section><h2>Baseline trajectory</h2>");
    if manifests.is_empty() {
        h.push_str(
            "<p>No <code>BENCH_*.json</code> manifests found under <code>results/</code> — \
             run <code>bench_gate --quick --bless</code> to create baselines.</p></section>",
        );
        return;
    }

    h.push_str(
        "<table><thead><tr><th>manifest</th><th>source</th><th>git</th><th>platform</th>\
         <th>threads</th><th>reps</th><th>kernels</th><th>created</th></tr></thead><tbody>",
    );
    for sm in manifests {
        let m = &sm.manifest;
        let _ = write!(
            h,
            "<tr><td>{}</td><td>{}</td><td><code>{}</code></td><td>{}</td>\
             <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td>\
             <td><span class=\"ts\" data-unix=\"{}\"></span></td></tr>",
            esc(&m.name),
            sm.source,
            esc(&m.git_rev),
            esc(&m.platform),
            m.threads,
            m.repetitions,
            m.kernels.len(),
            m.created_unix_secs,
        );
    }
    h.push_str("</tbody></table>");

    // One chart per manifest name with ≥2 snapshots; otherwise a note.
    let mut names: Vec<&str> = Vec::new();
    for sm in manifests {
        if !names.contains(&sm.manifest.name.as_str()) {
            names.push(&sm.manifest.name);
        }
    }
    for name in names {
        let snaps: Vec<&StoredManifest> = manifests
            .iter()
            .filter(|m| m.manifest.name == name)
            .collect();
        let _ = write!(h, "<h3>{}</h3>", esc(name));
        if snaps.len() < 2 {
            let _ = write!(
                h,
                "<p>Only one snapshot stored ({}); the trajectory grows as baselines \
                 are re-blessed over time.</p>",
                esc(&snaps[0].path.display().to_string()),
            );
            render_snapshot_bars(h, snaps[0]);
            continue;
        }
        render_trajectory_chart(h, &snaps);
    }
    h.push_str("</section>");
}

/// Horizontal bars of per-kernel medians for a single snapshot.
fn render_snapshot_bars(h: &mut String, sm: &StoredManifest) {
    let mut rows: Vec<(&str, f64)> = sm
        .manifest
        .kernels
        .iter()
        .map(|k| (k.name.as_str(), stats::median(&k.samples)))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    rows.truncate(12);
    let max = rows.first().map(|r| r.1).unwrap_or(0.0).max(1e-12);
    h.push_str("<table class=\"bars\"><tbody>");
    for (name, med) in rows {
        let _ = write!(
            h,
            "<tr><td>{}</td><td class=\"n\">{}</td>\
             <td class=\"barcell\"><div class=\"bar\" style=\"width:{:.1}%\"></div></td></tr>",
            esc(name),
            fmt_secs(med),
            (med / max * 100.0).clamp(0.5, 100.0),
        );
    }
    h.push_str("</tbody></table>");
}

/// Line chart of per-kernel medians, normalised to the first snapshot.
fn render_trajectory_chart(h: &mut String, snaps: &[&StoredManifest]) {
    const W: f64 = 760.0;
    const H: f64 = 260.0;
    const ML: f64 = 46.0;
    const MR: f64 = 170.0;
    const MT: f64 = 14.0;
    const MB: f64 = 34.0;
    const PALETTE: [&str; 8] = [
        "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#17becf",
    ];

    // Kernels present in the first snapshot, largest medians first.
    let first = &snaps[0].manifest;
    let mut kernels: Vec<&str> = first.kernels.iter().map(|k| k.name.as_str()).collect();
    kernels.sort_by(|a, b| {
        let med = |n: &str| {
            first
                .kernel(n)
                .map(|k| stats::median(&k.samples))
                .unwrap_or(0.0)
        };
        med(b)
            .partial_cmp(&med(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    kernels.truncate(PALETTE.len());

    // Series of (snapshot index, ratio-vs-first).
    let mut series: Vec<(&str, Vec<(usize, f64)>)> = Vec::new();
    let mut y_lo: f64 = 0.9;
    let mut y_hi: f64 = 1.1;
    for name in &kernels {
        let base = first
            .kernel(name)
            .map(|k| stats::median(&k.samples))
            .unwrap_or(0.0);
        if base <= 0.0 {
            continue;
        }
        let pts: Vec<(usize, f64)> = snaps
            .iter()
            .enumerate()
            .filter_map(|(i, sm)| {
                sm.manifest
                    .kernel(name)
                    .map(|k| (i, stats::median(&k.samples) / base))
            })
            .collect();
        for &(_, r) in &pts {
            y_lo = y_lo.min(r);
            y_hi = y_hi.max(r);
        }
        series.push((name, pts));
    }
    y_lo = (y_lo - 0.05).max(0.0);
    y_hi += 0.05;

    let sx = |i: usize| ML + (W - ML - MR) * (i as f64 + 0.5) / snaps.len() as f64;
    let sy = |r: f64| MT + (H - MT - MB) * (1.0 - (r - y_lo) / (y_hi - y_lo));

    let _ = write!(
        h,
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\">\
         <line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{0}\" class=\"axis\"/>\
         <line x1=\"{ML}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" class=\"axis\"/>\
         <line x1=\"{ML}\" y1=\"{2:.1}\" x2=\"{1}\" y2=\"{2:.1}\" class=\"roof\"/>\
         <text x=\"{3:.1}\" y=\"{4:.1}\" class=\"tick\" text-anchor=\"end\">1.00×</text>",
        H - MB,
        W - MR,
        sy(1.0),
        ML - 4.0,
        sy(1.0) + 3.0,
    );
    for (i, sm) in snaps.iter().enumerate() {
        let _ = write!(
            h,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{} ({})</text>",
            sx(i),
            H - MB + 14.0,
            esc(&sm.manifest.git_rev),
            sm.source,
        );
    }
    for (si, (name, pts)) in series.iter().enumerate() {
        let colour = PALETTE[si % PALETTE.len()];
        let mut d = String::new();
        for &(i, r) in pts {
            let _ = write!(d, "{:.1},{:.1} ", sx(i), sy(r));
        }
        let _ = write!(
            h,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{colour}\" stroke-width=\"1.6\"/>",
            d.trim_end(),
        );
        for &(i, r) in pts {
            let _ = write!(
                h,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.6\" fill=\"{colour}\">\
                 <title>{}: {r:.3}× vs first snapshot</title></circle>",
                sx(i),
                sy(r),
                esc(name),
            );
        }
        let _ = write!(
            h,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"leg\" fill=\"{colour}\">{}</text>",
            W - MR + 8.0,
            MT + 12.0 + 13.0 * si as f64,
            esc(name),
        );
    }
    h.push_str("</svg>");
}

const HEAD: &str = r#"<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>sycl-sim performance dashboard</title>
<style>
body { font: 13px/1.45 system-ui, sans-serif; margin: 1.2rem 2rem; color: #1c2330; }
h1 { font-size: 1.3rem; margin: 0; }
h2 { font-size: 1.05rem; border-bottom: 1px solid #d5dbe4; padding-bottom: .25rem; margin-top: 1.6rem; }
h3 { font-size: .92rem; margin: 1rem 0 .3rem; }
.meta { color: #5a6575; margin: .2rem 0 0; }
code { background: #f0f2f6; padding: 0 .25em; border-radius: 3px; }
table { border-collapse: collapse; margin: .4rem 0 .8rem; }
th, td { border: 1px solid #d5dbe4; padding: .18rem .5rem; text-align: left; }
th { background: #f0f2f6; cursor: pointer; user-select: none; }
td.n { text-align: right; font-variant-numeric: tabular-nums; }
td.hole { background: #eceef2; color: #8a93a1; text-align: center; font-size: .82em; }
.warn { background: #fff3cd; border: 1px solid #e5c75a; padding: .3rem .6rem; border-radius: 4px; }
td.bad { background: #fde8e6; color: #c0392b; font-weight: 600; }
.panels { display: flex; flex-wrap: wrap; gap: .6rem; }
.panels svg { width: 380px; height: 230px; }
svg { background: #fbfcfe; border: 1px solid #d5dbe4; border-radius: 4px; }
svg .axis { stroke: #7a8494; stroke-width: 1; }
svg .roof { stroke: #c0392b; stroke-width: 1; stroke-dasharray: 5 3; }
svg .rooflab { fill: #c0392b; font-size: 9px; }
svg .title { font-size: 11px; font-weight: 600; text-anchor: middle; fill: #1c2330; }
svg .tick { font-size: 8.5px; fill: #5a6575; }
svg .leg { font-size: 9.5px; }
svg .pnat { fill: #1f77b4; opacity: .85; }
svg .psyc { fill: #ff7f0e; opacity: .85; }
details summary { margin: .5rem 0 .2rem; }
.bars td { border: none; padding: .08rem .5rem; }
.barcell { width: 340px; }
.bar { background: #6699cc; height: .65rem; border-radius: 2px; }
</style></head><body>
"#;

const SCRIPT: &str = r#"<script>
// Render unix timestamps in the reader's locale.
for (const el of document.querySelectorAll('.ts')) {
  const s = Number(el.dataset.unix);
  el.textContent = s ? new Date(s * 1000).toISOString().replace('T', ' ').slice(0, 19) + 'Z' : '?';
}
// Click-to-sort for kernel tables: numeric via data-v, else text.
for (const th of document.querySelectorAll('table.sortable th')) {
  th.addEventListener('click', () => {
    const table = th.closest('table');
    const idx = [...th.parentNode.children].indexOf(th);
    const dir = th.dataset.dir === 'asc' ? -1 : 1;
    th.dataset.dir = dir === 1 ? 'asc' : 'desc';
    const rows = [...table.tBodies[0].rows];
    rows.sort((a, b) => {
      const [ca, cb] = [a.cells[idx], b.cells[idx]];
      const [va, vb] = [ca.dataset.v ?? ca.textContent, cb.dataset.v ?? cb.textContent];
      const [na, nb] = [parseFloat(va), parseFloat(vb)];
      return (isNaN(na) || isNaN(nb)) ? dir * va.localeCompare(vb) : dir * (na - nb);
    });
    rows.forEach(r => table.tBodies[0].appendChild(r));
  });
}
</script>
"#;
