//! Regenerates Figure 9: MG-CFD (Rotor37) runtimes on the three CPUs.
fn main() {
    for p in portability::cpu_platforms() {
        println!("{}", bench_harness::figure_mgcfd_text(p));
    }
}
