//! Ablation: hierarchical-colouring block size on GPU vs CPU.
fn main() {
    print!("{}", bench_harness::ablation::block_size_sweep_text());
}
