//! `service_bench` — open-loop latency study of the service admission
//! path.
//!
//! ```text
//! service_bench [--smoke]
//! ```
//!
//! Four studies, all written to one `results/BENCH_service.json`
//! manifest (name `service`):
//!
//! * **fast path** — single uncontended thread, telemetry off: per-op
//!   wall time of `Service::submit` with a cached kernel, alongside a
//!   bare `Session::launch` of the same kernel so the admission
//!   overhead is the visible delta. The target is a sub-microsecond
//!   p50 for the whole submit (`service/fastpath_submit`).
//! * **open loop** — a sweep of offered load against the admission
//!   queue. Requests arrive on a fixed schedule (open loop: the
//!   schedule does not slow down when the service backs up), each holds
//!   a permit for a fixed service time, and the recorded latency is
//!   `completion − scheduled_arrival − service_time` — the
//!   coordinated-omission-corrected admission wait. One
//!   `service/openloop@<f>` kernel per load fraction `f` of capacity
//!   (`max_in_flight / service_time`).
//! * **saturation knee** — the lowest swept fraction whose p99 wait
//!   exceeds 5× the service time (`service/saturation_knee`, the
//!   fraction stored in `sim_secs`; 2.0 when no swept load saturated).
//! * **batching & shedding** — telemetry on: `submit_batch` calls with
//!   a deterministic spread of sizes populate the
//!   `service.batch_size` histogram (`service/batch_size`), and an
//!   overload against a `ShedOldest` service verifies load shedding
//!   fires and counts (`service/shed_total`).
//!
//! The manifest is a measurement record, not a gate baseline —
//! `bench_gate` owns `BENCH_gate_service.json`; this binary owns the
//! latency study the dashboard's "Service latency" section plots.

use metrics::{Histogram, KernelSummary, RunManifest, Summary};
use std::time::{Duration, Instant};
use sycl_sim::Toolchain;
use sycl_sim::{Batch, Kernel, PlatformId, Service, ServiceConfig, SessionConfig, ShedPolicy};
use telemetry::TelemetryConfig;

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

fn cfg(_i: usize) -> SessionConfig {
    SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("service-bench")
}

fn kernel() -> Kernel {
    let items = 1u64 << 12;
    Kernel::streaming("svcbench", items, (items * 8) as f64, 0.0)
}

fn summary_kernel(name: &str, wall: Summary, samples: Vec<f64>, sim_secs: f64) -> KernelSummary {
    KernelSummary {
        name: name.to_owned(),
        wall,
        samples,
        sim_secs,
        bytes: 0.0,
        gbps: 0.0,
        origin: None,
    }
}

/// Per-op wall time of the uncontended submit fast path vs a bare
/// session launch of the same kernel. `reps` chunks of `ops` operations
/// each; the manifest samples are per-chunk medians, the histogram
/// holds every operation (so p999 is per-op, not per-chunk).
fn fastpath(reps: usize, ops: usize) -> Vec<KernelSummary> {
    let svc = Service::new(ServiceConfig::new(1, 4), cfg).unwrap();
    let k = kernel();

    let time_ops = |f: &dyn Fn()| -> (Histogram, Vec<f64>) {
        let mut h = Histogram::new();
        let mut medians = Vec::with_capacity(reps);
        let mut chunk = vec![0.0f64; ops];
        for _ in 0..ops {
            f(); // warmup: pricing cache, admission tokens hot
        }
        for _ in 0..reps {
            for slot in chunk.iter_mut() {
                let t0 = Instant::now();
                f();
                *slot = t0.elapsed().as_secs_f64();
            }
            for &s in &chunk {
                h.record(s);
            }
            medians.push(metrics::median(&chunk));
        }
        (h, medians)
    };

    let (submit_h, submit_m) = time_ops(&|| {
        svc.submit(0, &k, || ()).unwrap();
    });
    let shard = svc.shard(0);
    let (bare_h, bare_m) = time_ops(&|| {
        shard.launch(&k, || ());
    });

    println!(
        "fast path: submit p50 {:.0} ns  p99 {:.0} ns  p999 {:.0} ns  (bare launch p50 {:.0} ns)",
        submit_h.quantile(0.50) * 1e9,
        submit_h.quantile(0.99) * 1e9,
        submit_h.quantile(0.999) * 1e9,
        bare_h.quantile(0.50) * 1e9,
    );
    vec![
        summary_kernel("service/fastpath_submit", submit_h.summary(), submit_m, 0.0),
        summary_kernel("service/bare_launch", bare_h.summary(), bare_m, 0.0),
    ]
}

/// One open-loop point: `n_req` requests scheduled at `load × capacity`
/// against a fresh service, `producers` threads sharing the schedule
/// round-robin. Returns the corrected-wait histogram and raw waits.
fn openloop_point(
    load: f64,
    n_req: usize,
    producers: usize,
    svc_time: Duration,
    max_in_flight: usize,
) -> (Histogram, Vec<f64>) {
    const SHARDS: usize = 2;
    let svc = Service::new(ServiceConfig::new(SHARDS, max_in_flight), cfg).unwrap();
    let k = kernel();
    // Capacity: the admission pool turns over max_in_flight permits
    // every service time.
    let rate = load * max_in_flight as f64 / svc_time.as_secs_f64();
    let gap = Duration::from_secs_f64(1.0 / rate);

    let waits: Vec<f64> = std::thread::scope(|scope| {
        let start = Instant::now() + Duration::from_millis(5);
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let (svc, k) = (&svc, &k);
                scope.spawn(move || {
                    let mut waits = Vec::new();
                    let mut req = p;
                    while req < n_req {
                        let sched = start + gap * req as u32;
                        let now = Instant::now();
                        if sched > now {
                            std::thread::sleep(sched - now);
                        }
                        svc.submit(req % SHARDS, k, || std::thread::sleep(svc_time))
                            .unwrap();
                        // Open-loop corrected wait: time past the
                        // *scheduled* arrival not explained by the
                        // service time itself. Late issue (this thread
                        // still draining a previous blocked submit)
                        // counts as wait — that is the coordinated
                        // omission correction.
                        let w = (Instant::now() - sched).as_secs_f64() - svc_time.as_secs_f64();
                        waits.push(w.max(1e-9));
                        req += producers;
                    }
                    waits
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut h = Histogram::new();
    for &w in &waits {
        h.record(w);
    }
    assert_eq!(svc.queue_depth(), 0, "admission drained after the sweep");
    (h, waits)
}

/// Sweep offered load and locate the saturation knee.
fn openloop(loads: &[f64], n_req: usize, svc_time: Duration) -> Vec<KernelSummary> {
    const MAX_IN_FLIGHT: usize = 2;
    const PRODUCERS: usize = 4;
    let mut kernels = Vec::new();
    let mut knee = f64::NAN;
    for &load in loads {
        let (h, waits) = openloop_point(load, n_req, PRODUCERS, svc_time, MAX_IN_FLIGHT);
        println!(
            "open loop @ {load:.2}: wait p50 {:.1} µs  p99 {:.1} µs  p999 {:.1} µs",
            h.quantile(0.50) * 1e6,
            h.quantile(0.99) * 1e6,
            h.quantile(0.999) * 1e6,
        );
        if knee.is_nan() && h.quantile(0.99) > 5.0 * svc_time.as_secs_f64() {
            knee = load;
        }
        kernels.push(summary_kernel(
            &format!("service/openloop@{load:.2}"),
            h.summary(),
            waits,
            load,
        ));
    }
    // 2.0 = "no swept load saturated" sentinel (loads stop at ~1.3).
    let knee = if knee.is_nan() { 2.0 } else { knee };
    println!("saturation knee: {knee:.2}× capacity");
    let mut h = Histogram::new();
    h.record(knee);
    kernels.push(summary_kernel(
        "service/saturation_knee",
        h.summary(),
        vec![knee],
        knee,
    ));
    kernels
}

/// Telemetry-on phase: populate `service.batch_size` with a
/// deterministic spread of coalesced sizes, then overload a
/// `ShedOldest` service to verify shedding fires.
fn batching_and_shedding(batches: usize) -> Vec<KernelSummary> {
    TelemetryConfig::enabled().install();
    metrics::registry().flush(); // start from a clean registry

    let svc = Service::new(ServiceConfig::new(2, 2), cfg).unwrap();
    let k = kernel();
    for b in 0..batches {
        let size = 1 + b % 16;
        let mut batch = Batch::new();
        for _ in 0..size {
            batch.launch(&k, |_| {});
        }
        svc.submit_batch(b % 2, batch).unwrap();
    }

    // Shed exercise: one permit held hostage, a burst of queued
    // submissions past the high-water mark must shed the oldest.
    let shed_svc = Service::new(
        ServiceConfig::new(1, 1).shedding(ShedPolicy::ShedOldest, 2),
        cfg,
    )
    .unwrap();
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let holding = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (svc, k, holding) = (&shed_svc, &k, &holding);
        scope.spawn(move || {
            svc.submit(0, k, || {
                holding.store(true, std::sync::atomic::Ordering::Release);
                gate_rx.recv().unwrap();
            })
            .unwrap();
        });
        // Wait for the hostage to hold the only permit; only then does
        // the burst queue up rather than race it for the token.
        while !holding.load(std::sync::atomic::Ordering::Acquire) {
            std::thread::yield_now();
        }
        let burst: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || svc.submit(0, k, || ()).is_err()))
            .collect();
        while svc.shed_count() == 0 {
            std::thread::yield_now();
        }
        gate_tx.send(()).unwrap();
        let rejected = burst
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&e| e)
            .count() as u64;
        assert_eq!(
            rejected,
            shed_svc.shed_count(),
            "every shed surfaced as an Err to its submitter"
        );
    });
    let sheds = shed_svc.shed_count();
    assert!(sheds > 0, "overload past high water must shed");
    assert_eq!(shed_svc.queue_depth(), 0, "shed service drained");

    let snap = metrics::registry().flush();
    TelemetryConfig::disabled().install();

    let batch_h = snap
        .hist("service.batch_size", "")
        .expect("submit_batch records service.batch_size")
        .clone();
    let shed_metric = snap.counter("service.shed_total", "submissions");
    assert_eq!(shed_metric, sheds, "shed metric matches the service count");
    println!(
        "batching: {} batches, size p50 {:.0} / max {:.0}; shed {} of 6 queued under overload",
        batch_h.count(),
        batch_h.quantile(0.5),
        batch_h.max(),
        sheds,
    );

    let mut shed_h = Histogram::new();
    shed_h.record(sheds as f64);
    vec![
        summary_kernel(
            "service/batch_size",
            batch_h.summary(),
            vec![batch_h.quantile(0.5)],
            0.0,
        ),
        summary_kernel(
            "service/shed_total",
            shed_h.summary(),
            vec![sheds as f64],
            0.0,
        ),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // Scaled for small CI boxes: the smoke sweep keeps the request
    // counts low and the service times large enough that the knee is
    // about scheduling, not about timer resolution.
    let (reps, ops, loads, n_req, svc_time, batches): (_, _, &[f64], _, _, _) = if smoke {
        (3, 2_000, &[0.4, 1.2], 60, Duration::from_millis(1), 64)
    } else {
        (
            5,
            20_000,
            &[0.2, 0.5, 0.8, 0.95, 1.1, 1.3],
            240,
            Duration::from_millis(2),
            256,
        )
    };

    TelemetryConfig::disabled().install();
    let mut kernels = fastpath(reps, ops);
    kernels.extend(openloop(loads, n_req, svc_time));
    kernels.extend(batching_and_shedding(batches));

    let manifest = RunManifest {
        name: "service".to_owned(),
        git_rev: metrics::manifest::git_rev(),
        platform: "host-wall".to_owned(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u32),
        repetitions: reps as u32,
        created_unix_secs: now_unix(),
        kernels,
        counters: telemetry::CounterSnapshot::default(),
    };
    match bench_harness::json::write_results_file(
        "BENCH_service.json",
        &(manifest.to_json() + "\n"),
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write results/BENCH_service.json: {e}");
            std::process::exit(2);
        }
    }

    let p50 = manifest
        .kernel("service/fastpath_submit")
        .map_or(f64::NAN, |k| k.wall.p50);
    if p50 >= 1e-6 {
        // The sub-µs target is part of the study's acceptance, but a
        // loaded shared box can miss it; report without failing CI.
        eprintln!(
            "note: fast-path submit p50 {:.0} ns is above the 1 µs target",
            p50 * 1e9
        );
    }
}
