//! Figures 10-11 as ASCII heatmaps: the paper's colour grids, shaded
//! with density glyphs. Usage: heatmap [platform] (default: all).
use portability::heatmap::from_measurements;

fn main() {
    let arg = std::env::args().nth(1);
    let platforms: Vec<sycl_sim::PlatformId> =
        match arg.as_deref().and_then(sycl_sim::PlatformId::parse) {
            Some(p) => vec![p],
            None => portability::gpu_platforms()
                .into_iter()
                .chain(portability::cpu_platforms())
                .collect(),
        };
    for p in platforms {
        let structured = portability::structured_measurements(p);
        println!(
            "{}",
            from_measurements(
                &format!(
                    "{} — structured efficiency",
                    sycl_sim::Platform::get(p).name
                ),
                &structured,
                |m| m.app.to_owned(),
            )
        );
        let mgcfd = portability::unstructured_measurements(p);
        println!(
            "{}",
            from_measurements(
                &format!("{} — MG-CFD efficiency", sycl_sim::Platform::get(p).name),
                &mgcfd,
                |m| m.scheme.map(|s| s.label().to_owned()).unwrap_or_default(),
            )
        );
    }
}
