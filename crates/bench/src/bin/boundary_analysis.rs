//! Boundary-loop time fractions: the kernel-launch-overhead probe the
//! paper uses throughout §4.1/§4.2.
fn main() {
    print!("{}", bench_harness::boundary_fractions_text());
}
