//! `profile` — run one application with the telemetry subsystem enabled
//! and export the trace.
//!
//! ```text
//! profile [<app>] [--platform <label>] [--paper] [--smoke]
//! ```
//!
//! * `<app>` — one of `cloverleaf2d` (default), `cloverleaf3d`,
//!   `opensbli_sa`, `opensbli_sn`, `rtm`, `acoustic`, `mgcfd`;
//! * `--platform` — `a100` (default), `mi250x`, `max1100`, `xeon8360y`,
//!   `genoax`, `altra`; the app runs under the platform's best native
//!   toolchain, like Table 1;
//! * `--paper` — price the paper-sized problem through a dry-run
//!   session instead of executing the test-sized one functionally;
//! * `--smoke` — self-checking mode for CI: after the run, exit
//!   non-zero unless the trace parses as JSON, contains at least one
//!   launch span, and the aggregate table is non-empty.
//!
//! Output: the per-kernel aggregate table on stdout, and
//! `results/PROFILE_<app>.json` — a Chrome `trace_event` document
//! (loadable as-is in Perfetto / `chrome://tracing`) whose extra
//! top-level keys carry the aggregate table and the engine counters.

use bench_harness::json::{validate, write_results_file, JsonWriter};
use bench_harness::{make_app, native_toolchain};
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig};
use telemetry::TelemetryConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let paper = args.iter().any(|a| a == "--paper");
    let platform = args
        .iter()
        .position(|a| a == "--platform")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| PlatformId::parse(s))
        .unwrap_or(PlatformId::A100);
    let app_name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .filter(|a| {
            Some(a.as_str())
                != args
                    .iter()
                    .position(|x| x == "--platform")
                    .and_then(|i| args.get(i + 1))
                    .map(|s| s.as_str())
        })
        .cloned()
        .unwrap_or_else(|| "cloverleaf2d".to_owned());

    let Some(app) = make_app(&app_name, paper) else {
        eprintln!(
            "unknown app {app_name:?}; expected one of cloverleaf2d, cloverleaf3d, \
             opensbli_sa, opensbli_sn, rtm, acoustic, mgcfd"
        );
        std::process::exit(2);
    };

    let toolchain = native_toolchain(platform);
    let mut cfg = SessionConfig::new(platform, toolchain).app(app.name());
    if app.name() == "mgcfd" {
        cfg = cfg.scheme(Scheme::Atomics);
    }
    if paper {
        cfg = cfg.dry_run();
    }
    let session = match Session::create(cfg) {
        Ok(s) => s,
        Err(fail) => {
            eprintln!("{app_name} does not run on {}: {fail}", platform.label());
            std::process::exit(2);
        }
    };

    TelemetryConfig::enabled().install();
    let before = telemetry::counters().snapshot();
    let run = app.run(&session);
    let delta = telemetry::counters().snapshot().delta(&before);
    TelemetryConfig::disabled().install();
    let events = telemetry::flush();

    let aggs = telemetry::export::aggregate(&events);
    let launch_spans = events
        .iter()
        .filter(|e| e.kind == telemetry::SpanKind::Launch)
        .count();

    println!(
        "# {} on {} ({}), {} — sim {:.3} ms, {} launches, {} trace events",
        app.name(),
        session.platform().name,
        toolchain.label(),
        if paper {
            "paper size (dry run)"
        } else {
            "test size (functional)"
        },
        run.elapsed * 1e3,
        session.records().len(),
        events.len(),
    );
    print!(
        "{}",
        telemetry::export::aggregate_text(&aggs, delta.spans_dropped)
    );
    println!(
        "cache {} hits / {} misses | {} regions, {} steals, {} parks, {} wakes | {} spans dropped",
        delta.pricing_cache_hits,
        delta.pricing_cache_misses,
        delta.regions,
        delta.steals,
        delta.parks,
        delta.wakes,
        delta.spans_dropped,
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("app").string(app.name());
    w.key("platform").string(platform.label());
    w.key("toolchain").string(toolchain.label());
    w.key("mode").string(if paper { "paper" } else { "test" });
    w.key("sim_elapsed_secs").number(run.elapsed);
    w.key("ledger_launches").int(session.records().len() as u64);
    w.key("validation").number(run.validation);
    w.key("counters");
    telemetry::export::counters_json(&mut w, &delta);
    w.key("aggregate");
    telemetry::export::aggregate_json(&mut w, &aggs, delta.spans_dropped);
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents");
    telemetry::export::chrome_trace_events(&mut w, &events);
    w.end_object();
    let doc = w.finish();

    let file = format!("PROFILE_{}.json", app.name());
    match write_results_file(&file, &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write results/{file}: {e}");
            std::process::exit(1);
        }
    }

    if smoke {
        if let Err(e) = validate(&doc) {
            eprintln!("smoke: trace document is malformed JSON: {e}");
            std::process::exit(1);
        }
        if launch_spans == 0 || aggs.is_empty() {
            eprintln!(
                "smoke: empty trace ({launch_spans} launch spans, {} aggregate rows)",
                aggs.len()
            );
            std::process::exit(1);
        }
        if launch_spans != session.records().len() {
            eprintln!(
                "smoke: {} ledger records but {launch_spans} launch spans",
                session.records().len()
            );
            std::process::exit(1);
        }
        println!(
            "smoke OK: {launch_spans} launch spans across {} kernels",
            aggs.len()
        );
    }
}
