//! Regenerates Figures 5-7: structured-mesh app runtimes on a CPU.
//! Usage: fig5_structured_cpu [xeon8360y|genoax|altra]  (default xeon8360y)
use sycl_sim::PlatformId;
fn main() {
    let p = bench_harness::parse_platform_arg(PlatformId::Xeon8360Y);
    print!("{}", bench_harness::figure_structured_text(p));
}
