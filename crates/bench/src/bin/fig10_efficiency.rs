//! Regenerates Figure 10: structured-mesh architectural efficiency.
fn main() {
    print!("{}", bench_harness::figure10_text());
}
