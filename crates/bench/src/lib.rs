//! # bench-harness — regenerates every table and figure of the paper
//!
//! Each `fig*` binary prints the rows/series of one artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — STREAM Triad bandwidth per platform |
//! | `fig2_structured_gpu -- a100\|mi250x\|max1100` | Figures 2–4 — structured app runtimes on GPUs |
//! | `fig5_structured_cpu -- xeon8360y\|genoax\|altra` | Figures 5–7 — structured app runtimes on CPUs |
//! | `fig8_mgcfd_gpu` | Figure 8 — MG-CFD runtimes on GPUs |
//! | `fig9_mgcfd_cpu` | Figure 9 — MG-CFD runtimes on CPUs |
//! | `fig10_efficiency` | Figure 10 — structured-mesh efficiency heatmap |
//! | `fig11_efficiency_mgcfd` | Figure 11 — MG-CFD efficiency heatmap |
//! | `summary_stats` | §4.1–§4.4 in-text aggregates and PP̄ values |
//!
//! The same functions are exercised by the criterion benches in
//! `benches/figures.rs`, so `cargo bench` regenerates everything too.

pub mod ablation;
pub mod json;

use babelstream::BabelStream;
use portability::{
    format_table, mean, pennycook, std_dev, structured_measurements, unstructured_measurements,
    MeasCell, Measurement,
};
use sycl_sim::{PlatformId, Scheme, Session, SessionConfig, Toolchain};

/// Table 1: (platform, native toolchain, simulated Triad GB/s).
pub fn table1_rows() -> Vec<(PlatformId, Toolchain, f64)> {
    let cases = [
        (PlatformId::Mi250x, Toolchain::NativeHip),
        (PlatformId::A100, Toolchain::NativeCuda),
        (PlatformId::Max1100, Toolchain::Dpcpp),
        (PlatformId::Xeon8360Y, Toolchain::MpiOpenMp),
        (PlatformId::GenoaX, Toolchain::MpiOpenMp),
        (PlatformId::Altra, Toolchain::OpenMp),
    ];
    cases
        .into_iter()
        .map(|(p, tc)| {
            let session = Session::create(SessionConfig::new(p, tc).app("babelstream").dry_run())
                .expect("the Table-1 toolchains run BabelStream everywhere");
            let n = babelstream::table1_len(session.platform());
            let bw = BabelStream::triad_bandwidth(&session, n, 20);
            (p, tc, bw / 1e9)
        })
        .collect()
}

/// Render Table 1 as text.
pub fn table1_text() -> String {
    let mut out = String::from("## Table 1: Achieved bandwidth on STREAM Triad (BabelStream)\n");
    for (p, tc, gbs) in table1_rows() {
        out.push_str(&format!(
            "{:32} {:12} {:7.0} GB/s\n",
            sycl_sim::Platform::get(p).name,
            tc.label(),
            gbs
        ));
    }
    out
}

/// Figures 2–7: structured-app runtime table for one platform.
pub fn figure_structured_text(platform: PlatformId) -> String {
    let ms = structured_measurements(platform);
    render_runtime_table(
        &format!(
            "Structured-mesh app runtimes on {} (simulated seconds)",
            sycl_sim::Platform::get(platform).name
        ),
        &ms,
        |m| m.app,
    )
}

/// Figures 8–9: MG-CFD runtime table for one platform (rows = schemes).
pub fn figure_mgcfd_text(platform: PlatformId) -> String {
    let ms = unstructured_measurements(platform);
    render_runtime_table(
        &format!(
            "MG-CFD (Rotor37) runtimes on {} (simulated seconds)",
            sycl_sim::Platform::get(platform).name
        ),
        &ms,
        |m| m.scheme.map(|s| s.label()).unwrap_or("-"),
    )
}

fn render_runtime_table(
    title: &str,
    ms: &[Measurement],
    row_key: impl Fn(&Measurement) -> &'static str,
) -> String {
    let mut rows: Vec<(&str, Vec<(String, MeasCell)>)> = Vec::new();
    for m in ms {
        let key = row_key(m);
        let cell = match (&m.runtime, m.efficiency) {
            (Ok(t), _) => MeasCell::Seconds(*t),
            (Err(k), _) => MeasCell::Failed(*k),
        };
        match rows.iter_mut().find(|(k, _)| *k == key) {
            Some((_, cells)) => cells.push((m.variant.label(), cell)),
            None => rows.push((key, vec![(m.variant.label(), cell)])),
        }
    }
    format_table(title, &rows)
}

/// Figure 10: efficiency (fraction of STREAM) per structured app ×
/// platform × variant.
pub fn figure10_text() -> String {
    let mut out = String::from("## Figure 10: achieved architectural efficiency (structured)\n");
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        let ms = structured_measurements(p);
        let mut rows: Vec<(&str, Vec<(String, MeasCell)>)> = Vec::new();
        for m in &ms {
            let cell = match (&m.runtime, m.efficiency) {
                (Ok(_), Some(e)) => MeasCell::Efficiency(e),
                (Err(k), _) => MeasCell::Failed(*k),
                _ => MeasCell::Failed(sycl_sim::FailureKind::RuntimeCrash),
            };
            match rows.iter_mut().find(|(k, _)| *k == m.app) {
                Some((_, cells)) => cells.push((m.variant.label(), cell)),
                None => rows.push((m.app, vec![(m.variant.label(), cell)])),
            }
        }
        out.push_str(&format_table(p.label(), &rows));
        out.push('\n');
    }
    out
}

/// Figure 11: MG-CFD efficiency per platform × variant × scheme.
pub fn figure11_text() -> String {
    let mut out = String::from("## Figure 11: achieved efficiency, MG-CFD (effective BW rule)\n");
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        let ms = unstructured_measurements(p);
        let mut rows: Vec<(&str, Vec<(String, MeasCell)>)> = Vec::new();
        for m in &ms {
            let key = m.scheme.map(|s| s.label()).unwrap_or("-");
            let cell = match (&m.runtime, m.efficiency) {
                (Ok(_), Some(e)) => MeasCell::Efficiency(e),
                (Err(k), _) => MeasCell::Failed(*k),
                _ => MeasCell::Failed(sycl_sim::FailureKind::RuntimeCrash),
            };
            match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, cells)) => cells.push((m.variant.label(), cell)),
                None => rows.push((key, vec![(m.variant.label(), cell)])),
            }
        }
        out.push_str(&format_table(p.label(), &rows));
        out.push('\n');
    }
    out
}

/// §4.4's headline aggregates, computed exactly as the paper describes.
#[derive(Debug, Clone)]
pub struct SummaryStats {
    /// Mean/std of best-native efficiency over structured (app, platform).
    pub native_eff: (f64, f64),
    /// Mean/std for DPC++ nd_range.
    pub dpcpp_nd_eff: (f64, f64),
    /// Mean/std for OpenSYCL nd_range.
    pub opensycl_nd_eff: (f64, f64),
    /// Mean for the flat variants.
    pub dpcpp_flat_eff: (f64, f64),
    pub opensycl_flat_eff: (f64, f64),
    /// PP̄ over all six platforms, failures ignored (paper §4.4):
    /// (DPC++ nd, OpenSYCL nd, DPC++ flat, OpenSYCL flat).
    pub pp_structured: [f64; 4],
    /// MG-CFD PP̄ for OpenSYCL+atomics, and for best-per-platform.
    pub pp_mgcfd_opensycl_atomics: f64,
    pub pp_mgcfd_best: f64,
}

/// Collect every structured measurement across all platforms.
pub fn all_structured() -> Vec<Measurement> {
    portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
        .flat_map(structured_measurements)
        .collect()
}

/// Collect every MG-CFD measurement across all platforms.
pub fn all_mgcfd() -> Vec<Measurement> {
    portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
        .flat_map(unstructured_measurements)
        .collect()
}

/// Compute the summary statistics.
pub fn summary_stats() -> SummaryStats {
    let all = all_structured();
    let apps: Vec<&str> = {
        let mut v: Vec<&str> = all.iter().map(|m| m.app).collect();
        v.sort();
        v.dedup();
        v
    };
    let platforms: Vec<PlatformId> = portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
        .collect();

    // Best-native efficiency per (app, platform).
    let mut native = Vec::new();
    for &app in &apps {
        for &p in &platforms {
            let best = all
                .iter()
                .filter(|m| m.app == app && m.platform == p && m.variant.is_native())
                .filter_map(|m| m.efficiency)
                .fold(f64::NAN, f64::max);
            if best.is_finite() {
                native.push(best);
            }
        }
    }

    let sycl_effs = |tc: Toolchain, nd: bool| -> Vec<f64> {
        all.iter()
            .filter(|m| m.variant.toolchain == tc && m.variant.nd_range == nd)
            .filter_map(|m| m.efficiency)
            .collect()
    };
    let d_nd = sycl_effs(Toolchain::Dpcpp, true);
    let o_nd = sycl_effs(Toolchain::OpenSycl, true);
    let d_fl = sycl_effs(Toolchain::Dpcpp, false);
    let o_fl = sycl_effs(Toolchain::OpenSycl, false);

    // PP̄ per app, averaged over apps (failures ignored, §4.4).
    let pp_for = |tc: Toolchain, nd: bool| -> f64 {
        let per_app: Vec<f64> = apps
            .iter()
            .map(|&app| {
                let es: Vec<Option<f64>> = platforms
                    .iter()
                    .map(|&p| {
                        all.iter()
                            .find(|m| {
                                m.app == app
                                    && m.platform == p
                                    && m.variant.toolchain == tc
                                    && m.variant.nd_range == nd
                            })
                            .and_then(|m| m.efficiency)
                    })
                    .collect();
                pennycook(&es, true)
            })
            .collect();
        mean(&per_app)
    };

    // MG-CFD PP̄s.
    let mg = all_mgcfd();
    let mg_eff = |p: PlatformId, tc: Toolchain, scheme: Scheme| -> Option<f64> {
        mg.iter()
            .filter(|m| m.platform == p && m.variant.toolchain == tc && m.scheme == Some(scheme))
            .filter_map(|m| m.efficiency)
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            })
    };
    let pp_osa = {
        let es: Vec<Option<f64>> = platforms
            .iter()
            .map(|&p| mg_eff(p, Toolchain::OpenSycl, Scheme::Atomics))
            .collect();
        pennycook(&es, false)
    };
    let pp_best = {
        let es: Vec<Option<f64>> = platforms
            .iter()
            .map(|&p| {
                mg.iter()
                    .filter(|m| m.platform == p && m.variant.toolchain.is_sycl())
                    .filter_map(|m| m.efficiency)
                    .fold(None, |acc: Option<f64>, e| {
                        Some(acc.map_or(e, |a| a.max(e)))
                    })
            })
            .collect();
        pennycook(&es, false)
    };

    SummaryStats {
        native_eff: (mean(&native), std_dev(&native)),
        dpcpp_nd_eff: (mean(&d_nd), std_dev(&d_nd)),
        opensycl_nd_eff: (mean(&o_nd), std_dev(&o_nd)),
        dpcpp_flat_eff: (mean(&d_fl), std_dev(&d_fl)),
        opensycl_flat_eff: (mean(&o_fl), std_dev(&o_fl)),
        pp_structured: [
            pp_for(Toolchain::Dpcpp, true),
            pp_for(Toolchain::OpenSycl, true),
            pp_for(Toolchain::Dpcpp, false),
            pp_for(Toolchain::OpenSycl, false),
        ],
        pp_mgcfd_opensycl_atomics: pp_osa,
        pp_mgcfd_best: pp_best,
    }
}

/// Render the summary with the paper's reference values alongside.
pub fn summary_text() -> String {
    let s = summary_stats();
    let pct = |x: f64| format!("{:.0}%", x * 100.0);
    let pair = |(m, sd): (f64, f64)| format!("{} (std {})", pct(m), pct(sd));
    format!(
        "## §4.4 summary aggregates (simulated vs paper)\n\
         native best          : {:24} paper: 59% (std 21%)\n\
         DPC++ nd_range       : {:24} paper: 54% (std 19%)\n\
         OpenSYCL nd_range    : {:24} paper: 52% (std 21%)\n\
         DPC++ flat           : {:24} paper: 47% (std 19%)\n\
         OpenSYCL flat        : {:24} paper: 41% (std 19%)\n\
         PP(DPC++ nd)         : {:<24.2} paper: 0.49\n\
         PP(OpenSYCL nd)      : {:<24.2} paper: 0.46\n\
         PP(DPC++ flat)       : {:<24.2} paper: 0.35\n\
         PP(OpenSYCL flat)    : {:<24.2} paper: 0.29\n\
         PP(MG-CFD OpenSYCL+atomics): {:<17.2} paper: 0.42\n\
         PP(MG-CFD best SYCL) : {:<24.2} paper: 0.67\n",
        pair(s.native_eff),
        pair(s.dpcpp_nd_eff),
        pair(s.opensycl_nd_eff),
        pair(s.dpcpp_flat_eff),
        pair(s.opensycl_flat_eff),
        s.pp_structured[0],
        s.pp_structured[1],
        s.pp_structured[2],
        s.pp_structured[3],
        s.pp_mgcfd_opensycl_atomics,
        s.pp_mgcfd_best,
    )
}

/// §4.1's average SYCL-vs-native runtime gaps on one GPU: the mean over
/// the structured apps of `t_sycl / t_native − 1` (positive = slower).
pub fn gpu_gap(platform: PlatformId, tc: Toolchain, nd: bool, baseline: Toolchain) -> f64 {
    let apps = miniapps::paper_structured_apps();
    let mut gaps = Vec::new();
    for app in &apps {
        let base = portability::measure_structured(
            app.as_ref(),
            platform,
            portability::StudyVariant {
                toolchain: baseline,
                nd_range: false,
            },
        );
        let sycl = portability::measure_structured(
            app.as_ref(),
            platform,
            portability::StudyVariant {
                toolchain: tc,
                nd_range: nd,
            },
        );
        if let (Ok(tb), Ok(ts)) = (base.runtime, sycl.runtime) {
            gaps.push(ts / tb - 1.0);
        }
    }
    mean(&gaps)
}

/// Render §4.1's gap aggregates with the paper's values alongside.
pub fn gpu_gaps_text() -> String {
    let pct = |x: f64| format!("{:+.1}%", x * 100.0);
    format!(
        "## §4.1 average SYCL nd_range runtime gap vs native (structured apps)
         A100    : DPC++ {:8} (paper +1.2%) | OpenSYCL {:8} (paper +5.3%)
         MI250X  : DPC++ {:8} (paper +15.9%) | OpenSYCL {:8} (paper +4.5%)
         MI250X vs Cray offload: DPC++ {:8} (paper +2.3%) | OpenSYCL {:8} (paper -9.1%)
         Max 1100 vs OMP offload: DPC++ {:8} (paper -30.2%) | OpenSYCL {:8} (paper -27.6%)
",
        pct(gpu_gap(
            PlatformId::A100,
            Toolchain::Dpcpp,
            true,
            Toolchain::NativeCuda
        )),
        pct(gpu_gap(
            PlatformId::A100,
            Toolchain::OpenSycl,
            true,
            Toolchain::NativeCuda
        )),
        pct(gpu_gap(
            PlatformId::Mi250x,
            Toolchain::Dpcpp,
            true,
            Toolchain::NativeHip
        )),
        pct(gpu_gap(
            PlatformId::Mi250x,
            Toolchain::OpenSycl,
            true,
            Toolchain::NativeHip
        )),
        pct(gpu_gap(
            PlatformId::Mi250x,
            Toolchain::Dpcpp,
            true,
            Toolchain::OmpOffload
        )),
        pct(gpu_gap(
            PlatformId::Mi250x,
            Toolchain::OpenSycl,
            true,
            Toolchain::OmpOffload
        )),
        pct(gpu_gap(
            PlatformId::Max1100,
            Toolchain::Dpcpp,
            true,
            Toolchain::OmpOffload
        )),
        pct(gpu_gap(
            PlatformId::Max1100,
            Toolchain::OpenSycl,
            true,
            Toolchain::OmpOffload
        )),
    )
}

/// §5's conclusion aggregates: best-native vs best-SYCL efficiency,
/// overall and split by GPU/CPU.
pub struct ConclusionStats {
    pub native_all: f64,
    pub sycl_all: f64,
    pub native_gpu: f64,
    pub sycl_gpu: f64,
    pub native_cpu: f64,
    pub sycl_cpu: f64,
}

/// Compute §5's numbers over all seven applications.
pub fn conclusion_stats() -> ConclusionStats {
    let mut structured = all_structured();
    structured.extend(all_mgcfd());
    let platforms: Vec<PlatformId> = portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
        .collect();
    let apps: Vec<&str> = {
        let mut v: Vec<&str> = structured.iter().map(|m| m.app).collect();
        v.sort();
        v.dedup();
        v
    };
    let best = |p: PlatformId, app: &str, native: bool| -> Option<f64> {
        structured
            .iter()
            .filter(|m| m.platform == p && m.app == app && m.variant.is_native() == native)
            .filter_map(|m| m.efficiency)
            .fold(None, |acc: Option<f64>, e| {
                Some(acc.map_or(e, |a| a.max(e)))
            })
    };
    let collect = |native: bool, gpus: Option<bool>| -> f64 {
        let vals: Vec<f64> = platforms
            .iter()
            .filter(|p| gpus.is_none_or(|g| p.is_gpu() == g))
            .flat_map(|&p| apps.iter().filter_map(move |&a| best(p, a, native)))
            .collect();
        mean(&vals)
    };
    ConclusionStats {
        native_all: collect(true, None),
        sycl_all: collect(false, None),
        native_gpu: collect(true, Some(true)),
        sycl_gpu: collect(false, Some(true)),
        native_cpu: collect(true, Some(false)),
        sycl_cpu: collect(false, Some(false)),
    }
}

/// Render §5's conclusions with the paper values alongside.
pub fn conclusions_text() -> String {
    let c = conclusion_stats();
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    format!(
        "## §5 conclusions (best variant per app × platform)
         all platforms : native {:6} vs SYCL {:6}   paper: 62.7% vs 59.1%
         GPUs          : native {:6} vs SYCL {:6}   paper: 57.6% vs 62.7%
         CPUs          : native {:6} vs SYCL {:6}   paper: 67.8% vs 55.5%
",
        pct(c.native_all),
        pct(c.sycl_all),
        pct(c.native_gpu),
        pct(c.sycl_gpu),
        pct(c.native_cpu),
        pct(c.sycl_cpu),
    )
}

/// Boundary-loop time fractions (the paper's kernel-launch probe):
/// CloverLeaf 2D/3D per platform and toolchain.
pub fn boundary_fractions_text() -> String {
    let mut out = String::from(
        "## Boundary-loop time fractions (paper anchors: A100 1.5%/7.8%,
         ## MI250X 2.6%/11.1%, Max 0.9%/4.8%; Xeon DPC++ 5.4-8.7% vs
         ## MPI+OpenMP 0.34% and OpenSYCL 1.2-2.5%)
",
    );
    let apps: [Box<dyn miniapps::App>; 2] = [
        Box::new(miniapps::CloverLeaf2d::paper()),
        Box::new(miniapps::CloverLeaf3d::paper()),
    ];
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        out.push_str(&format!(
            "{}:
",
            sycl_sim::Platform::get(p).name
        ));
        for variant in portability::variants_for(p) {
            let mut row = format!("  {:18}", variant.label());
            for app in &apps {
                let m = portability::measure_structured(app.as_ref(), p, variant);
                match m.boundary_fraction {
                    Some(f) => row.push_str(&format!(" {:>6.2}%", f * 100.0)),
                    None => row.push_str("    n/a"),
                }
            }
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

/// Parse a platform argument for the fig binaries.
pub fn parse_platform_arg(default: PlatformId) -> PlatformId {
    std::env::args()
        .nth(1)
        .and_then(|a| PlatformId::parse(&a))
        .unwrap_or(default)
}

/// The platform's best native toolchain (the Table-1 pairing), used by
/// the `profile` and `dashboard` binaries when tracing an app.
pub fn native_toolchain(p: PlatformId) -> Toolchain {
    match p {
        PlatformId::A100 => Toolchain::NativeCuda,
        PlatformId::Mi250x => Toolchain::NativeHip,
        PlatformId::Max1100 => Toolchain::Dpcpp,
        PlatformId::Xeon8360Y | PlatformId::GenoaX => Toolchain::MpiOpenMp,
        PlatformId::Altra => Toolchain::OpenMp,
    }
}

/// All app names `make_app` accepts, in paper order.
pub const APP_NAMES: [&str; 7] = [
    "cloverleaf2d",
    "cloverleaf3d",
    "opensbli_sa",
    "opensbli_sn",
    "rtm",
    "acoustic",
    "mgcfd",
];

/// Instantiate an app by CLI name at paper or test size.
pub fn make_app(name: &str, paper: bool) -> Option<Box<dyn miniapps::App>> {
    use miniapps::{Acoustic, CloverLeaf2d, CloverLeaf3d, Mgcfd, OpenSbli, Rtm, SbliVariant};
    Some(match (name, paper) {
        ("cloverleaf2d", true) => Box::new(CloverLeaf2d::paper()),
        ("cloverleaf2d", false) => Box::new(CloverLeaf2d::test()),
        ("cloverleaf3d", true) => Box::new(CloverLeaf3d::paper()),
        ("cloverleaf3d", false) => Box::new(CloverLeaf3d::test()),
        ("opensbli_sa", true) => Box::new(OpenSbli::paper(SbliVariant::StoreAll)),
        ("opensbli_sa", false) => Box::new(OpenSbli::test(SbliVariant::StoreAll)),
        ("opensbli_sn", true) => Box::new(OpenSbli::paper(SbliVariant::StoreNone)),
        ("opensbli_sn", false) => Box::new(OpenSbli::test(SbliVariant::StoreNone)),
        ("rtm", true) => Box::new(Rtm::paper()),
        ("rtm", false) => Box::new(Rtm::test()),
        ("acoustic", true) => Box::new(Acoustic::paper()),
        ("acoustic", false) => Box::new(Acoustic::test()),
        ("mgcfd", true) => Box::new(Mgcfd::paper()),
        ("mgcfd", false) => Box::new(Mgcfd::test()),
        _ => return None,
    })
}
