//! Plain-harness benches (`cargo bench` with `harness = false`): one
//! group per paper artifact so benching regenerates every table and
//! figure, plus micro-benches of the core runtime primitives (pool,
//! colouring, partitioner, model evaluation). Timing is a simple
//! best-of-N wall-clock loop — no external bench framework, so the
//! workspace builds offline.

use std::hint::black_box;
use std::time::Instant;

/// Run `f` for `iters` iterations, `samples` times; report the best
/// per-iteration time in a criterion-like line.
fn bench<F: FnMut()>(name: &str, samples: usize, iters: usize, mut f: F) {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64() / iters as f64;
        best = best.min(dt);
    }
    let (value, unit) = if best >= 1.0 {
        (best, "s")
    } else if best >= 1e-3 {
        (best * 1e3, "ms")
    } else if best >= 1e-6 {
        (best * 1e6, "µs")
    } else {
        (best * 1e9, "ns")
    };
    println!("{name:48} time: {value:10.3} {unit}/iter");
}

fn bench_table1() {
    bench("table1_stream_triad", 3, 1, || {
        black_box(bench_harness::table1_rows());
    });
}

fn bench_structured_figures() {
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        bench(&format!("fig_structured_{}", p.label()), 2, 1, || {
            black_box(portability::structured_measurements(p).len());
        });
    }
}

fn bench_mgcfd_figures() {
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        bench(&format!("fig_mgcfd_{}", p.label()), 2, 1, || {
            black_box(portability::unstructured_measurements(p).len());
        });
    }
}

fn bench_summary() {
    bench("summary_stats_section44", 2, 1, || {
        black_box(bench_harness::summary_stats().pp_structured);
    });
}

fn bench_primitives() {
    use op2_dsl::color::{GlobalColoring, HierColoring};
    use op2_dsl::mesh::{Mesh, Ordering};
    use op2_dsl::partition::Partition;

    let mesh = Mesh::grid(32, 32, 16, Ordering::Natural);
    bench("global_coloring_16k_vertices", 3, 5, || {
        black_box(GlobalColoring::build(&mesh.edges).n_colors());
    });
    bench("hier_coloring_16k_vertices", 3, 5, || {
        black_box(HierColoring::build(&mesh.edges, 256).n_colors());
    });
    bench("rcb_partition_16_parts", 3, 5, || {
        black_box(Partition::rcb(&mesh, 16).imbalance());
    });

    let pool = parkit::ThreadPool::new(4);
    let data: Vec<f64> = (0..1 << 16).map(|i| (i as f64).sin()).collect();
    bench("parkit_reduce_64k", 3, 50, || {
        black_box(pool.reduce(
            data.len(),
            4096,
            0.0f64,
            |a, x| a + x,
            |r| r.map(|i| data[i]).sum::<f64>(),
        ));
    });

    // One model evaluation (the innermost operation of every figure).
    let platform = sycl_sim::Platform::get(sycl_sim::PlatformId::A100);
    let fp = sycl_sim::KernelFootprint::streaming(
        "triad",
        1 << 25,
        3.0 * 8.0 * (1 << 25) as f64,
        2.0 * (1 << 25) as f64,
        sycl_sim::Precision::F64,
    );
    let exec = sycl_sim::ExecProfile::native(sycl_sim::PlatformId::A100);
    bench("machine_model_predict", 3, 10_000, || {
        black_box(machine_model::predict(&platform, &fp, &exec).total);
    });
}

fn bench_ablations() {
    bench("workgroup_sweep_rtm", 2, 1, || {
        black_box(sycl_sim::tune::sweep(
            sycl_sim::PlatformId::A100,
            sycl_sim::Toolchain::Dpcpp,
            &bench_harness::ablation::rtm_wave_kernel(),
        ));
    });
    bench("ordering_sweep_a100", 2, 1, || {
        black_box(bench_harness::ablation::ordering_sweep(
            sycl_sim::PlatformId::A100,
        ));
    });
    bench("cache_capacity_sweep", 2, 1, || {
        black_box(bench_harness::ablation::cache_sweep());
    });
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_table1();
    bench_structured_figures();
    bench_mgcfd_figures();
    bench_summary();
    bench_primitives();
    bench_ablations();
}
