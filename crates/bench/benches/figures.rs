//! Criterion benches: one group per paper artifact, so `cargo bench`
//! regenerates every table and figure, plus micro-benches of the core
//! runtime primitives (pool, colouring, partitioner, model evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_stream_triad", |b| {
        b.iter(|| black_box(bench_harness::table1_rows()))
    });
}

fn bench_structured_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("structured_figures");
    g.sample_size(10);
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        g.bench_function(format!("fig_structured_{}", p.label()), |b| {
            b.iter(|| black_box(portability::structured_measurements(p).len()))
        });
    }
    g.finish();
}

fn bench_mgcfd_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("mgcfd_figures");
    g.sample_size(10);
    for p in portability::gpu_platforms()
        .into_iter()
        .chain(portability::cpu_platforms())
    {
        g.bench_function(format!("fig_mgcfd_{}", p.label()), |b| {
            b.iter(|| black_box(portability::unstructured_measurements(p).len()))
        });
    }
    g.finish();
}

fn bench_summary(c: &mut Criterion) {
    let mut g = c.benchmark_group("summary");
    g.sample_size(10);
    g.bench_function("summary_stats_section44", |b| {
        b.iter(|| black_box(bench_harness::summary_stats().pp_structured))
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    use op2_dsl::color::{GlobalColoring, HierColoring};
    use op2_dsl::mesh::{Mesh, Ordering};
    use op2_dsl::partition::Partition;

    let mesh = Mesh::grid(32, 32, 16, Ordering::Natural);
    c.bench_function("global_coloring_16k_vertices", |b| {
        b.iter(|| black_box(GlobalColoring::build(&mesh.edges).n_colors()))
    });
    c.bench_function("hier_coloring_16k_vertices", |b| {
        b.iter(|| black_box(HierColoring::build(&mesh.edges, 256).n_colors()))
    });
    c.bench_function("rcb_partition_16_parts", |b| {
        b.iter(|| black_box(Partition::rcb(&mesh, 16).imbalance()))
    });

    let pool = parkit::ThreadPool::new(4);
    let data: Vec<f64> = (0..1 << 16).map(|i| (i as f64).sin()).collect();
    c.bench_function("parkit_reduce_64k", |b| {
        b.iter(|| {
            pool.reduce(data.len(), 4096, 0.0f64, |a, x| a + x, |r| {
                r.map(|i| data[i]).sum::<f64>()
            })
        })
    });

    // One model evaluation (the innermost operation of every figure).
    let platform = sycl_sim::Platform::get(sycl_sim::PlatformId::A100);
    let fp = sycl_sim::KernelFootprint::streaming(
        "triad",
        1 << 25,
        3.0 * 8.0 * (1 << 25) as f64,
        2.0 * (1 << 25) as f64,
        sycl_sim::Precision::F64,
    );
    let exec = sycl_sim::ExecProfile::native(sycl_sim::PlatformId::A100);
    c.bench_function("machine_model_predict", |b| {
        b.iter(|| black_box(machine_model::predict(&platform, &fp, &exec).total))
    });
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("workgroup_sweep_rtm", |b| {
        b.iter(|| {
            black_box(sycl_sim::tune::sweep(
                sycl_sim::PlatformId::A100,
                sycl_sim::Toolchain::Dpcpp,
                &bench_harness::ablation::rtm_wave_kernel(),
            ))
        })
    });
    g.bench_function("ordering_sweep_a100", |b| {
        b.iter(|| black_box(bench_harness::ablation::ordering_sweep(sycl_sim::PlatformId::A100)))
    });
    g.bench_function("cache_capacity_sweep", |b| {
        b.iter(|| black_box(bench_harness::ablation::cache_sweep()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_structured_figures,
    bench_mgcfd_figures,
    bench_summary,
    bench_primitives,
    bench_ablations
);
criterion_main!(figures);
