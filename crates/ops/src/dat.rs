//! Datasets: halo-padded fields over a block, with parallel-safe views.

use crate::block::Block;
use crate::range::Row;
use sycl_sim::Real;
use telemetry::shadow;

/// Metadata handed to loop descriptors (cheap to copy before borrowing
/// the data for views).
#[derive(Debug, Clone, Copy)]
pub struct DatMeta {
    /// Bytes per element.
    pub elem_bytes: f64,
    /// Shadow-registry id linking the declaration back to the dataset
    /// (0 = anonymous: shadow was off at creation, or the declaration
    /// was written without a dat in hand). Never enters pricing.
    pub id: u32,
}

impl DatMeta {
    /// A declaration-only meta not linked to any dataset. Pricing treats
    /// it exactly like [`Dat::meta`]; the verifier cannot match its
    /// accesses, so prefer `dat.meta()` where a dat exists.
    pub fn anon(elem_bytes: f64) -> Self {
        DatMeta { elem_bytes, id: 0 }
    }
}

/// A field over a block, stored with halo padding, x-fastest.
#[derive(Debug, Clone)]
pub struct Dat<T> {
    name: String,
    data: Vec<T>,
    /// Padded extents.
    pad: [usize; 3],
    /// Index offset per dimension (halo depth, 0 on degenerate dims).
    off: [i64; 3],
    /// Shadow-registry id (0 when shadow recording was off at creation).
    sid: u32,
}

impl<T: Real> Dat<T> {
    /// Allocate a zero field over `block`.
    pub fn zeroed(block: &Block, name: &str) -> Self {
        let pad = [block.padded(0), block.padded(1), block.padded(2)];
        let off = std::array::from_fn(|d| {
            if block.dims[d] > 1 {
                block.halo as i64
            } else {
                0
            }
        });
        let sid = shadow::register_dat(name, T::BYTES, shadow::DatGeom::Grid { pad, off });
        Dat {
            name: name.to_owned(),
            data: vec![T::zero(); pad[0] * pad[1] * pad[2]],
            pad,
            off,
            sid,
        }
    }

    /// Fill every (padded) point from an index function over *interior*
    /// coordinates (halo points receive their own negative/overflow
    /// indices, convenient for initialisation).
    pub fn fill_with(&mut self, mut f: impl FnMut(i64, i64, i64) -> T) {
        for z in 0..self.pad[2] {
            for y in 0..self.pad[1] {
                for x in 0..self.pad[0] {
                    let idx = (z * self.pad[1] + y) * self.pad[0] + x;
                    self.data[idx] = f(
                        x as i64 - self.off[0],
                        y as i64 - self.off[1],
                        z as i64 - self.off[2],
                    );
                }
            }
        }
        shadow::mark_all_init(self.sid);
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Metadata for loop descriptors.
    pub fn meta(&self) -> DatMeta {
        DatMeta {
            elem_bytes: T::BYTES,
            id: self.sid,
        }
    }

    /// Total allocation size in bytes (incl. halos).
    pub fn bytes(&self) -> f64 {
        self.data.len() as f64 * T::BYTES
    }

    #[inline]
    fn index(&self, i: i64, j: i64, k: i64) -> usize {
        let x = i + self.off[0];
        let y = j + self.off[1];
        let z = k + self.off[2];
        debug_assert!(
            x >= 0
                && (x as usize) < self.pad[0]
                && y >= 0
                && (y as usize) < self.pad[1]
                && z >= 0
                && (z as usize) < self.pad[2],
            "{}: index ({i},{j},{k}) out of padded bounds {:?}",
            self.name,
            self.pad
        );
        ((z as usize) * self.pad[1] + y as usize) * self.pad[0] + x as usize
    }

    /// Shared read view (usable concurrently from any number of tiles).
    pub fn reader(&self) -> ReadView<'_, T> {
        ReadView {
            ptr: self.data.as_ptr(),
            pad: self.pad,
            off: self.off,
            sid: self.sid,
            _marker: std::marker::PhantomData,
        }
    }

    /// Exclusive write view.
    ///
    /// The view is `Copy + Sync` so parallel tiles can use it; safety
    /// comes from the DSL's tiling contract: each loop point is written
    /// by exactly one tile, and no reader views of the same dat coexist
    /// with the writer (the `&mut` borrow enforces the latter).
    pub fn writer(&mut self) -> WriteView<'_, T> {
        WriteView {
            ptr: self.data.as_mut_ptr(),
            pad: self.pad,
            off: self.off,
            sid: self.sid,
            _marker: std::marker::PhantomData,
        }
    }

    /// Direct sampled access for tests/validation.
    pub fn at(&self, i: i64, j: i64, k: i64) -> T {
        self.data[self.index(i, j, k)]
    }

    /// Sum over the interior of `block` (for conservation checks).
    pub fn interior_sum(&self, block: &Block) -> f64 {
        let mut s = 0.0;
        for (i, j, k) in block.interior().iter() {
            s += self.at(i, j, k).to_f64();
        }
        s
    }
}

/// Shared read view into a [`Dat`]; `Copy` so closures can capture it.
pub struct ReadView<'a, T> {
    ptr: *const T,
    pad: [usize; 3],
    off: [i64; 3],
    sid: u32,
    _marker: std::marker::PhantomData<&'a [T]>,
}

impl<T> Copy for ReadView<'_, T> {}
impl<T> Clone for ReadView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
// SAFETY: read-only aliasing of a live immutable borrow.
unsafe impl<T: Sync> Send for ReadView<'_, T> {}
unsafe impl<T: Sync> Sync for ReadView<'_, T> {}

impl<T: Real> ReadView<'_, T> {
    /// Value at (i, j, k); halo indices are valid.
    #[inline]
    pub fn at(&self, i: i64, j: i64, k: i64) -> T {
        let x = i + self.off[0];
        let y = j + self.off[1];
        let z = k + self.off[2];
        debug_assert!(
            x >= 0
                && (x as usize) < self.pad[0]
                && y >= 0
                && (y as usize) < self.pad[1]
                && z >= 0
                && (z as usize) < self.pad[2],
            "read ({i},{j},{k}) out of padded bounds {:?}",
            self.pad
        );
        let idx = ((z as usize) * self.pad[1] + y as usize) * self.pad[0] + x as usize;
        if self.sid != 0 {
            shadow::record_read(self.sid, idx, self.pad[0] * self.pad[1] * self.pad[2]);
        }
        // SAFETY: bounds checked above (debug) / guaranteed by the loop
        // ranges the DSL constructs (release).
        unsafe { *self.ptr.add(idx) }
    }

    /// Contiguous slice of one x-row; halo spans are valid. The base
    /// index is computed once for the whole span — the fast path whose
    /// cost [`ReadView::at`] pays per element.
    #[inline]
    pub fn row(&self, r: Row) -> &[T] {
        let x = r.i0 + self.off[0];
        let y = r.j + self.off[1];
        let z = r.k + self.off[2];
        let len = r.len();
        debug_assert!(
            x >= 0
                && (x as usize) + len <= self.pad[0]
                && y >= 0
                && (y as usize) < self.pad[1]
                && z >= 0
                && (z as usize) < self.pad[2],
            "row [{}, {}) at ({}, {}) out of padded bounds {:?}",
            r.i0,
            r.i1,
            r.j,
            r.k,
            self.pad
        );
        let base = ((z as usize) * self.pad[1] + y as usize) * self.pad[0] + x as usize;
        if self.sid != 0 {
            shadow::record_read_span(self.sid, base, len, self.pad[0] * self.pad[1] * self.pad[2]);
        }
        // SAFETY: the whole span is in the padded allocation (debug-checked
        // above, guaranteed by the DSL's ranges in release).
        unsafe { std::slice::from_raw_parts(self.ptr.add(base), len) }
    }
}

/// Exclusive write view into a [`Dat`]; `Copy + Sync` under the tiling
/// contract (disjoint writes per tile).
pub struct WriteView<'a, T> {
    ptr: *mut T,
    pad: [usize; 3],
    off: [i64; 3],
    sid: u32,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

impl<T> Copy for WriteView<'_, T> {}
impl<T> Clone for WriteView<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
// SAFETY: tiles write disjoint points (DSL contract); the `&mut` borrow
// prevents any concurrent readers of the same dat.
unsafe impl<T: Send> Send for WriteView<'_, T> {}
unsafe impl<T: Send> Sync for WriteView<'_, T> {}

impl<T: Real> WriteView<'_, T> {
    #[inline]
    fn index(&self, i: i64, j: i64, k: i64) -> usize {
        let x = i + self.off[0];
        let y = j + self.off[1];
        let z = k + self.off[2];
        debug_assert!(
            x >= 0
                && (x as usize) < self.pad[0]
                && y >= 0
                && (y as usize) < self.pad[1]
                && z >= 0
                && (z as usize) < self.pad[2],
            "write ({i},{j},{k}) out of padded bounds {:?}",
            self.pad
        );
        ((z as usize) * self.pad[1] + y as usize) * self.pad[0] + x as usize
    }

    /// Store `v` at (i, j, k).
    #[inline]
    pub fn set(&self, i: i64, j: i64, k: i64, v: T) {
        let idx = self.index(i, j, k);
        if self.sid != 0 {
            shadow::record_write(self.sid, idx, self.pad[0] * self.pad[1] * self.pad[2]);
        }
        // SAFETY: disjoint-write contract; bounds as in `index`.
        unsafe { *self.ptr.add(idx) = v };
    }

    /// Read back a value this loop wrote (read-write dats).
    #[inline]
    pub fn get(&self, i: i64, j: i64, k: i64) -> T {
        let idx = self.index(i, j, k);
        if self.sid != 0 {
            shadow::record_read(self.sid, idx, self.pad[0] * self.pad[1] * self.pad[2]);
        }
        // SAFETY: as `set`.
        unsafe { *self.ptr.add(idx) }
    }

    /// Shared contiguous slice of one x-row: the read half of a
    /// read-write dat (base index computed once, as [`ReadView::row`]).
    /// Graph-recorded bodies capture one `WriteView` per read-write
    /// argument and use this for the reads, so replays need no separate
    /// `ReadView` aliasing the same dat.
    #[inline]
    pub fn row(&self, r: Row) -> &[T] {
        let x = r.i0 + self.off[0];
        let y = r.j + self.off[1];
        let z = r.k + self.off[2];
        let len = r.len();
        debug_assert!(
            x >= 0
                && (x as usize) + len <= self.pad[0]
                && y >= 0
                && (y as usize) < self.pad[1]
                && z >= 0
                && (z as usize) < self.pad[2],
            "row [{}, {}) at ({}, {}) out of padded bounds {:?}",
            r.i0,
            r.i1,
            r.j,
            r.k,
            self.pad
        );
        let base = ((z as usize) * self.pad[1] + y as usize) * self.pad[0] + x as usize;
        if self.sid != 0 {
            shadow::record_read_span(self.sid, base, len, self.pad[0] * self.pad[1] * self.pad[2]);
        }
        // SAFETY: span in bounds as above; shared reads of a view whose
        // writes are disjoint per the tiling contract.
        unsafe { std::slice::from_raw_parts(self.ptr.add(base), len) }
    }

    /// Mutable contiguous slice of one x-row, base index computed once
    /// for the span (see [`ReadView::row`]).
    ///
    /// Aliasing contract as for [`WriteView::set`]: the tiling contract
    /// makes every point belong to exactly one tile, and a kernel body
    /// must not hold two overlapping row slices at the same time.
    #[inline]
    #[allow(clippy::mut_from_ref)] // the view is the DSL's sanctioned aliasing hole, as `set` is
    pub fn row_mut(&self, r: Row) -> &mut [T] {
        let x = r.i0 + self.off[0];
        let y = r.j + self.off[1];
        let z = r.k + self.off[2];
        let len = r.len();
        debug_assert!(
            x >= 0
                && (x as usize) + len <= self.pad[0]
                && y >= 0
                && (y as usize) < self.pad[1]
                && z >= 0
                && (z as usize) < self.pad[2],
            "row [{}, {}) at ({}, {}) out of padded bounds {:?}",
            r.i0,
            r.i1,
            r.j,
            r.k,
            self.pad
        );
        let base = ((z as usize) * self.pad[1] + y as usize) * self.pad[0] + x as usize;
        if self.sid != 0 {
            // A mutable span may be both read and written by the body.
            shadow::record_write_span(self.sid, base, len, self.pad[0] * self.pad[1] * self.pad[2]);
        }
        // SAFETY: span in bounds as above; exclusivity per the
        // disjoint-write contract documented on the method.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(base), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_padding_and_indexing() {
        let b = Block::new_2d(4, 4, 2);
        let mut d = Dat::<f64>::zeroed(&b, "u");
        assert_eq!(d.bytes(), (8 * 8) as f64 * 8.0);
        d.fill_with(|i, j, _| (10 * i + j) as f64);
        assert_eq!(d.at(0, 0, 0), 0.0);
        assert_eq!(d.at(3, 2, 0), 32.0);
        assert_eq!(d.at(-2, -2, 0), -22.0, "halo points are addressable");
        assert_eq!(d.at(5, 5, 0), 55.0);
    }

    #[test]
    fn views_read_and_write() {
        let b = Block::new_3d(4, 4, 4, 1);
        let mut d = Dat::<f32>::zeroed(&b, "p");
        {
            let w = d.writer();
            w.set(2, 3, 1, 7.5);
            assert_eq!(w.get(2, 3, 1), 7.5);
        }
        assert_eq!(d.reader().at(2, 3, 1), 7.5);
    }

    #[test]
    fn row_slices_alias_per_point_access() {
        let b = Block::new_2d(6, 4, 2);
        let mut d = Dat::<f64>::zeroed(&b, "u");
        d.fill_with(|i, j, _| (10 * i + j) as f64);
        let row = Row {
            i0: -1,
            i1: 7,
            j: 2,
            k: 0,
        };
        let r = d.reader();
        let s = r.row(row);
        assert_eq!(s.len(), 8);
        for (x, &v) in s.iter().enumerate() {
            assert_eq!(v, r.at(row.i0 + x as i64, row.j, row.k));
        }
        // Mutation through the row is visible to per-point reads.
        let w = d.writer();
        let m = w.row_mut(Row {
            i0: 0,
            i1: 6,
            j: 1,
            k: 0,
        });
        for v in m.iter_mut() {
            *v = -1.0;
        }
        assert_eq!(d.at(3, 1, 0), -1.0);
        assert_eq!(d.at(3, 2, 0), 32.0, "neighbouring row untouched");
    }

    #[test]
    fn interior_sum_ignores_halo() {
        let b = Block::new_2d(3, 3, 1);
        let mut d = Dat::<f64>::zeroed(&b, "m");
        d.fill_with(|_, _, _| 1.0); // halo points are 1.0 too
        assert_eq!(d.interior_sum(&b), 9.0);
    }

    #[test]
    fn degenerate_z_has_no_padding() {
        let b = Block::new_2d(4, 4, 3);
        let d = Dat::<f64>::zeroed(&b, "u");
        // z index must be exactly 0 for 2-D dats.
        assert_eq!(d.at(0, 0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of padded bounds")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_reads_panic_in_debug() {
        let b = Block::new_2d(4, 4, 1);
        let d = Dat::<f64>::zeroed(&b, "u");
        let _ = d.at(6, 0, 0);
    }
}
