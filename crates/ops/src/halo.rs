//! MPI-style Cartesian decomposition and halo-exchange accounting.
//!
//! OPS decomposes a block over MPI ranks with a standard Cartesian grid.
//! Functionally our fields live in one address space, so an exchange is a
//! no-op; its *cost* (message latency + copied bytes) is charged to the
//! session's clock — on CPU platforms this is what separates pure-MPI
//! from MPI+OpenMP (fewer, fatter ranks ⇒ less halo traffic).

use crate::block::Block;
use sycl_sim::Session;

/// A rank decomposition of a block, plus per-exchange volumes.
#[derive(Debug, Clone, Copy)]
pub struct HaloPlan {
    /// Rank grid (px, py, pz).
    pub grid: [usize; 3],
    /// Bytes moved per exchanged dataset per exchange (both directions,
    /// all faces, all ranks).
    pub bytes_per_dat: f64,
    /// Point-to-point messages per exchange.
    pub messages: u64,
}

impl HaloPlan {
    /// Decompose `block` over `ranks` ranks (near-cubic rank grid) with
    /// halos of `depth` layers of `elem_bytes`-wide elements.
    pub fn new(block: &Block, ranks: usize, depth: usize, elem_bytes: f64) -> Self {
        let grid = rank_grid(block, ranks.max(1));
        let [nx, ny, nz] = block.dims.map(|d| d as f64);
        let d = depth as f64;
        // Internal cut planes per dimension × their area × halo depth,
        // exchanged in both directions.
        let cuts_x = (grid[0] - 1) as f64 * ny * nz;
        let cuts_y = (grid[1] - 1) as f64 * nx * nz;
        let cuts_z = (grid[2] - 1) as f64 * nx * ny;
        let bytes_per_dat = 2.0 * d * elem_bytes * (cuts_x + cuts_y + cuts_z);
        // Each rank messages each touching neighbour (up to 2 per dim).
        let neighbours = (0..3)
            .map(|i| if grid[i] > 1 { 2u64 } else { 0 })
            .sum::<u64>();
        let messages = ranks as u64 * neighbours;
        HaloPlan {
            grid,
            bytes_per_dat,
            messages,
        }
    }

    /// Build a plan matching the session's rank count.
    pub fn for_session(block: &Block, session: &Session, depth: usize, elem_bytes: f64) -> Self {
        HaloPlan::new(block, session.ranks(), depth, elem_bytes)
    }

    /// Charge one exchange of `n_dats` datasets to the session clock.
    pub fn exchange(&self, session: &Session, n_dats: usize) {
        if self.bytes_per_dat > 0.0 {
            session.exchange(self.bytes_per_dat * n_dats as f64, self.messages);
        }
    }

    /// Record one exchange of `n_dats` datasets into a launch graph.
    /// Mirrors [`HaloPlan::exchange`], including the zero-volume guard,
    /// so eager and replayed ledgers stay bit-identical.
    pub fn record_exchange(&self, g: &mut sycl_sim::GraphBuilder<'_>, n_dats: usize) {
        if self.bytes_per_dat > 0.0 {
            g.exchange(self.bytes_per_dat * n_dats as f64, self.messages);
        }
    }

    /// Record one exchange declaring *which* datasets it refreshes, so
    /// the static dataflow lint can prove halo-read coverage. Charges
    /// exactly what [`HaloPlan::record_exchange`] charges for
    /// `dats.len()` datasets — the declaration never changes pricing.
    pub fn record_exchange_for(&self, g: &mut sycl_sim::GraphBuilder<'_>, dats: &[crate::DatMeta]) {
        if self.bytes_per_dat > 0.0 {
            g.exchange_dats(
                self.bytes_per_dat * dats.len() as f64,
                self.messages,
                dats.iter().map(|m| m.id).collect(),
            );
        }
    }
}

/// Near-cubic factorisation of `ranks` honouring block dimensionality.
fn rank_grid(block: &Block, ranks: usize) -> [usize; 3] {
    let dims = if block.is_3d() { 3 } else { 2 };
    let mut best = [ranks, 1, 1];
    let mut best_cost = f64::INFINITY;
    let [nx, ny, nz] = block.dims.map(|d| d as f64);
    for px in 1..=ranks {
        if !ranks.is_multiple_of(px) {
            continue;
        }
        let rest = ranks / px;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            let pz = rest / py;
            if dims == 2 && pz != 1 {
                continue;
            }
            // Communication surface proxy.
            let cost =
                (px - 1) as f64 * ny * nz + (py - 1) as f64 * nx * nz + (pz - 1) as f64 * nx * ny;
            if cost < best_cost {
                best_cost = cost;
                best = [px, py, pz];
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    #[test]
    fn rank_grid_multiplies_back_and_respects_dimensionality() {
        let b2 = Block::new_2d(1000, 1000, 2);
        for ranks in [1usize, 2, 4, 8, 12, 64, 72] {
            let g = rank_grid(&b2, ranks);
            assert_eq!(g[0] * g[1] * g[2], ranks);
            assert_eq!(g[2], 1, "2-D blocks only split in x/y");
        }
        let b3 = Block::new_3d(100, 100, 100, 2);
        let g = rank_grid(&b3, 64);
        assert_eq!(g[0] * g[1] * g[2], 64);
        assert!(g.iter().all(|&p| p > 1), "64 ranks on a cube go 4×4×4");
    }

    #[test]
    fn single_rank_has_no_traffic() {
        let b = Block::new_2d(100, 100, 2);
        let plan = HaloPlan::new(&b, 1, 2, 8.0);
        assert_eq!(plan.bytes_per_dat, 0.0);
        assert_eq!(plan.messages, 0);
    }

    #[test]
    fn more_ranks_exchange_more_bytes() {
        let b = Block::new_3d(320, 320, 320, 2);
        let few = HaloPlan::new(&b, 2, 2, 8.0);
        let many = HaloPlan::new(&b, 64, 2, 8.0);
        assert!(many.bytes_per_dat > few.bytes_per_dat);
        assert!(many.messages > few.messages);
    }

    #[test]
    fn exchange_charges_mpi_sessions_only() {
        let b = Block::new_2d(1000, 1000, 2);
        let mpi = Session::create(
            SessionConfig::new(PlatformId::Xeon8360Y, Toolchain::Mpi).app("halo-test"),
        )
        .unwrap();
        let plan = HaloPlan::for_session(&b, &mpi, 2, 8.0);
        plan.exchange(&mpi, 4);
        assert!(mpi.comm_time() > 0.0);

        let gpu = Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("halo-test"),
        )
        .unwrap();
        let plan = HaloPlan::for_session(&b, &gpu, 2, 8.0);
        plan.exchange(&gpu, 4);
        assert_eq!(gpu.comm_time(), 0.0);
    }

    #[test]
    fn halo_volume_scales_with_depth_and_elem_size() {
        let b = Block::new_2d(512, 512, 4);
        let thin = HaloPlan::new(&b, 4, 1, 4.0);
        let thick = HaloPlan::new(&b, 4, 4, 8.0);
        assert!((thick.bytes_per_dat / thin.bytes_per_dat - 8.0).abs() < 1e-9);
    }
}
