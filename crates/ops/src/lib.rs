//! # ops-dsl — a structured-mesh stencil DSL (the OPS analogue)
//!
//! OPS lets an application describe its computation as parallel loops over
//! rectangular index ranges with per-argument access descriptors (dataset,
//! stencil, read/write mode); the library then generates MPI, OpenMP,
//! CUDA, HIP and SYCL variants. This crate reproduces the same abstraction
//! on top of the simulated SYCL runtime ([`sycl_sim`]):
//!
//! * [`Block`] — a 2-D/3-D Cartesian domain with halo depth;
//! * [`Dat`] — a field on a block, stored halo-padded, with read/write
//!   views safe to use from parallel tiles;
//! * [`Stencil`] — the access pattern of a loop argument;
//! * [`ParLoop`] — the `ops_par_loop` equivalent: collects argument
//!   descriptors into a [`sycl_sim::KernelFootprint`] (using the paper's
//!   effective-bytes accounting), prices the launch through the session's
//!   toolchain/platform models, and executes the body **functionally** in
//!   parallel tiles so the application's numerics are real;
//! * [`HaloPlan`] — Cartesian rank decomposition and halo-exchange volume
//!   accounting for the MPI and MPI+OpenMP execution models.
//!
//! ```
//! use ops_dsl::prelude::*;
//! use sycl_sim::prelude::*;
//!
//! let session = Session::create(
//!     SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("demo"),
//! ).unwrap();
//! let block = Block::new_2d(64, 64, 2);
//! let mut u = Dat::<f64>::zeroed(&block, "u");
//! let mut v = Dat::<f64>::zeroed(&block, "v");
//! v.fill_with(|i, j, _| (i + j) as f64);
//!
//! let u_meta = u.meta();
//! let w = u.writer();
//! let r = v.reader();
//! ParLoop::new("copy", block.interior())
//!     .read(v.meta(), Stencil::point())
//!     .write(u_meta)
//!     .run(&session, |tile| {
//!         for (i, j, k) in tile.iter() {
//!             w.set(i, j, k, r.at(i, j, k));
//!         }
//!     });
//! assert_eq!(u.reader().at(3, 4, 0), 7.0);
//! ```

pub mod block;
pub mod dat;
pub mod halo;
pub mod parloop;
pub mod range;
pub mod stencil;

pub use block::Block;
pub use dat::{Dat, DatMeta, ReadView, WriteView};
pub use halo::HaloPlan;
pub use parloop::ParLoop;
pub use range::{Range3, Row, TileIter};
pub use stencil::Stencil;

/// Convenience prelude for applications.
pub mod prelude {
    pub use crate::{Block, Dat, HaloPlan, ParLoop, Range3, Row, Stencil};
}
