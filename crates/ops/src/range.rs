//! Signed 3-D index ranges and their tiling.
//!
//! OPS loops may walk halo regions (negative indices), so ranges are in
//! `i64`. A [`Range3`] is half-open in every dimension; degenerate (2-D)
//! ranges simply have a single-element z extent.

/// A half-open box `[lo, hi)³` of loop indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range3 {
    pub lo: [i64; 3],
    pub hi: [i64; 3],
}

impl Range3 {
    /// A 2-D range (z extent of one).
    pub fn new_2d(x0: i64, x1: i64, y0: i64, y1: i64) -> Self {
        Range3 {
            lo: [x0, y0, 0],
            hi: [x1, y1, 1],
        }
    }

    /// A 3-D range.
    #[allow(clippy::too_many_arguments)]
    pub fn new_3d(x0: i64, x1: i64, y0: i64, y1: i64, z0: i64, z1: i64) -> Self {
        Range3 {
            lo: [x0, y0, z0],
            hi: [x1, y1, z1],
        }
    }

    /// Extent along dimension `d` (clamped at zero).
    pub fn extent(&self, d: usize) -> usize {
        (self.hi[d] - self.lo[d]).max(0) as usize
    }

    /// Extents as an array.
    pub fn extents(&self) -> [usize; 3] {
        [self.extent(0), self.extent(1), self.extent(2)]
    }

    /// Total points in the range.
    pub fn points(&self) -> usize {
        self.extent(0) * self.extent(1) * self.extent(2)
    }

    /// True when the range covers no points.
    pub fn is_empty(&self) -> bool {
        self.points() == 0
    }

    /// Split into tiles of at most `shape` points per dimension; returns
    /// the number of tiles.
    pub fn tile_count(&self, shape: [usize; 3]) -> usize {
        (0..3)
            .map(|d| self.extent(d).div_ceil(shape[d].max(1)).max(1))
            .product()
    }

    /// The `t`-th tile (x-fastest ordering) for the given tile shape.
    pub fn tile(&self, shape: [usize; 3], t: usize) -> Range3 {
        let shape = [shape[0].max(1), shape[1].max(1), shape[2].max(1)];
        let nt: [usize; 3] = std::array::from_fn(|d| self.extent(d).div_ceil(shape[d]).max(1));
        let ix = t % nt[0];
        let iy = (t / nt[0]) % nt[1];
        let iz = t / (nt[0] * nt[1]);
        let idx = [ix, iy, iz];
        let mut lo = [0i64; 3];
        let mut hi = [0i64; 3];
        for d in 0..3 {
            lo[d] = self.lo[d] + (idx[d] * shape[d]) as i64;
            hi[d] = (lo[d] + shape[d] as i64).min(self.hi[d]);
        }
        Range3 { lo, hi }
    }

    /// Iterate the points of this range (x-fastest).
    pub fn iter(&self) -> TileIter {
        TileIter {
            range: *self,
            cur: self.lo,
            done: self.is_empty(),
        }
    }

    /// Iterate the contiguous x-rows of this range, j-then-k ordered —
    /// the traversal [`run_rows`](../parloop/struct.ParLoop.html) uses,
    /// matching the point order of [`Range3::iter`].
    pub fn rows(self) -> impl Iterator<Item = Row> {
        let r = self;
        (r.lo[2]..r.hi[2]).flat_map(move |k| {
            (r.lo[1]..r.hi[1]).map(move |j| Row {
                i0: r.lo[0],
                i1: r.hi[0],
                j,
                k,
            })
        })
    }
}

/// One contiguous x-span of loop indices: the unit of work handed to
/// row-sliced kernel bodies (`ParLoop::run_rows`). `i0..i1` is
/// half-open; `j` and `k` are the fixed row coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    pub i0: i64,
    pub i1: i64,
    pub j: i64,
    pub k: i64,
}

impl Row {
    /// Points in the row.
    pub fn len(&self) -> usize {
        (self.i1 - self.i0).max(0) as usize
    }

    /// True when the span covers no points.
    pub fn is_empty(&self) -> bool {
        self.i1 <= self.i0
    }

    /// The same span translated by a stencil offset.
    pub fn shift(&self, di: i64, dj: i64, dk: i64) -> Row {
        Row {
            i0: self.i0 + di,
            i1: self.i1 + di,
            j: self.j + dj,
            k: self.k + dk,
        }
    }

    /// The span widened by `r` points on both ends (an x-stencil's halo),
    /// so one slice serves every x-shifted read of the row.
    pub fn grow_x(&self, r: i64) -> Row {
        Row {
            i0: self.i0 - r,
            i1: self.i1 + r,
            j: self.j,
            k: self.k,
        }
    }
}

/// Point iterator over a [`Range3`].
#[derive(Debug, Clone)]
pub struct TileIter {
    range: Range3,
    cur: [i64; 3],
    done: bool,
}

impl Iterator for TileIter {
    type Item = (i64, i64, i64);

    fn next(&mut self) -> Option<(i64, i64, i64)> {
        if self.done {
            return None;
        }
        let out = (self.cur[0], self.cur[1], self.cur[2]);
        self.cur[0] += 1;
        if self.cur[0] >= self.range.hi[0] {
            self.cur[0] = self.range.lo[0];
            self.cur[1] += 1;
            if self.cur[1] >= self.range.hi[1] {
                self.cur[1] = self.range.lo[1];
                self.cur[2] += 1;
                if self.cur[2] >= self.range.hi[2] {
                    self.done = true;
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_and_points() {
        let r = Range3::new_3d(-2, 10, 0, 5, 1, 4);
        assert_eq!(r.extents(), [12, 5, 3]);
        assert_eq!(r.points(), 180);
        assert!(!r.is_empty());
        assert!(Range3::new_2d(3, 3, 0, 5).is_empty());
    }

    #[test]
    fn tiles_partition_the_range() {
        let r = Range3::new_3d(-4, 33, 2, 19, 0, 7);
        let shape = [8, 4, 3];
        let n = r.tile_count(shape);
        let mut seen = std::collections::HashSet::new();
        for t in 0..n {
            let tile = r.tile(shape, t);
            for p in tile.iter() {
                assert!(seen.insert(p), "duplicate point {p:?}");
            }
        }
        assert_eq!(seen.len(), r.points());
    }

    #[test]
    fn iter_visits_x_fastest() {
        let r = Range3::new_2d(0, 2, 0, 2);
        let pts: Vec<_> = r.iter().collect();
        assert_eq!(pts, vec![(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]);
    }

    #[test]
    fn negative_ranges_iterate_correctly() {
        let r = Range3::new_2d(-2, 0, -1, 1);
        let pts: Vec<_> = r.iter().collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (-2, -1, 0));
    }

    #[test]
    fn rows_cover_the_range_in_point_order() {
        let r = Range3::new_3d(-2, 5, 1, 4, 0, 3);
        let via_rows: Vec<_> = r
            .rows()
            .flat_map(|row| (row.i0..row.i1).map(move |i| (i, row.j, row.k)))
            .collect();
        let via_iter: Vec<_> = r.iter().collect();
        assert_eq!(via_rows, via_iter);
        assert_eq!(r.rows().count(), 3 * 3);
        assert!(r.rows().all(|row| row.len() == 7));
    }

    #[test]
    fn row_shift_and_grow() {
        let row = Row {
            i0: 0,
            i1: 8,
            j: 3,
            k: 1,
        };
        assert_eq!(row.len(), 8);
        assert!(!row.is_empty());
        let s = row.shift(-1, 2, -1);
        assert_eq!((s.i0, s.i1, s.j, s.k), (-1, 7, 5, 0));
        let g = row.grow_x(4);
        assert_eq!((g.i0, g.i1), (-4, 12));
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn tile_of_degenerate_shape_is_clamped() {
        let r = Range3::new_2d(0, 10, 0, 10);
        assert_eq!(r.tile_count([0, 0, 0]), 100);
        let t = r.tile([0, 0, 0], 0);
        assert_eq!(t.points(), 1);
    }
}
