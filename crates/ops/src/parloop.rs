//! `ops_par_loop`: the heart of the DSL.
//!
//! A [`ParLoop`] collects the loop's argument descriptors, builds the
//! kernel footprint with the paper's effective-bytes rule, prices the
//! launch through the session, and executes the body functionally over
//! parallel tiles.

use crate::dat::DatMeta;
use crate::range::{Range3, Row};
use crate::stencil::Stencil;
use parkit::global_pool;
use sycl_sim::{
    AccessMode, AccessProfile, DatAccess, GraphBuilder, Kernel, KernelFootprint, KernelTraits,
    LaunchMeta, Precision, Session, StencilProfile,
};
use telemetry::shadow;

/// Functional tile shape for `range` (execution only — the *modelled*
/// work-group shape comes from the toolchain, so this choice never
/// affects timing, only how the real computation is spread over host
/// threads). Tiles hold full x-rows in 8×4-row blocks, so the
/// per-point and row-sliced paths share one decomposition — and hence
/// one reduction partial order, keeping the two bit-identical. Ranges
/// with too few rows to feed the pool (wide 1-D loops) split x instead.
fn exec_tile(range: &Range3) -> [usize; 3] {
    let ext = range.extents();
    let x = if ext[1].max(1) * ext[2].max(1) >= 32 {
        ext[0].max(1)
    } else {
        ext[0].clamp(1, 1024)
    };
    [x, 8, 4]
}

/// Builder for one structured-mesh parallel loop.
#[derive(Debug, Clone)]
pub struct ParLoop {
    name: String,
    range: Range3,
    reads: Vec<(DatMeta, Stencil)>,
    writes: Vec<DatMeta>,
    rws: Vec<(DatMeta, Stencil)>,
    flops_pp: f64,
    transc_pp: f64,
    traits: KernelTraits,
    nd_shape: Option<[usize; 3]>,
}

impl ParLoop {
    /// Start a loop over `range`.
    pub fn new(name: &str, range: Range3) -> Self {
        ParLoop {
            name: name.to_owned(),
            range,
            reads: Vec::new(),
            writes: Vec::new(),
            rws: Vec::new(),
            flops_pp: 0.0,
            transc_pp: 0.0,
            traits: KernelTraits::default(),
            nd_shape: None,
        }
    }

    /// Declare a read argument with its stencil.
    pub fn read(mut self, meta: DatMeta, stencil: Stencil) -> Self {
        self.reads.push((meta, stencil));
        self
    }

    /// Declare a write-only argument.
    pub fn write(mut self, meta: DatMeta) -> Self {
        self.writes.push(meta);
        self
    }

    /// Declare a read-write argument (counted twice, per the paper).
    pub fn read_write(mut self, meta: DatMeta) -> Self {
        self.rws.push((meta, Stencil::point()));
        self
    }

    /// Declare a read-write argument whose *reads* reach beyond the own
    /// point (e.g. halo mirrors). The stencil informs the verifier only;
    /// the priced footprint stays the paper's 2× rule for rw args and
    /// the priced radius still comes from the read stencils alone.
    pub fn read_write_stencil(mut self, meta: DatMeta, stencil: Stencil) -> Self {
        self.rws.push((meta, stencil));
        self
    }

    /// Floating-point operations per loop point.
    pub fn flops(mut self, per_point: f64) -> Self {
        self.flops_pp = per_point;
        self
    }

    /// Transcendental evaluations (sqrt, exp, ...) per loop point.
    pub fn transcendentals(mut self, per_point: f64) -> Self {
        self.transc_pp = per_point;
        self
    }

    /// Codegen traits (vectorisability etc.).
    pub fn traits(mut self, traits: KernelTraits) -> Self {
        self.traits = traits;
        self
    }

    /// Kernel-specific tuned nd_range shape.
    pub fn nd_shape(mut self, shape: [usize; 3]) -> Self {
        self.nd_shape = Some(shape);
        self
    }

    /// The iteration range.
    pub fn range(&self) -> Range3 {
        self.range
    }

    /// Build the backend-independent kernel description.
    pub fn kernel(&self) -> Kernel {
        let pts = self.range.points() as f64;
        let mut bytes = 0.0;
        let mut radius = Stencil::point();
        for (m, s) in &self.reads {
            bytes += pts * m.elem_bytes;
            radius = radius.merge(*s);
        }
        for m in &self.writes {
            bytes += pts * m.elem_bytes;
        }
        for (m, _) in &self.rws {
            bytes += 2.0 * pts * m.elem_bytes;
        }
        let precision = if self
            .reads
            .iter()
            .map(|(m, _)| m.elem_bytes)
            .chain(self.writes.iter().map(|m| m.elem_bytes))
            .chain(self.rws.iter().map(|(m, _)| m.elem_bytes))
            .any(|b| b >= 8.0)
        {
            Precision::F64
        } else {
            Precision::F32
        };
        let fp = KernelFootprint {
            name: self.name.clone(),
            items: self.range.points() as u64,
            effective_bytes: bytes,
            flops: self.flops_pp * pts,
            transcendentals: self.transc_pp * pts,
            precision,
            access: AccessProfile::Stencil(StencilProfile {
                domain: self.range.extents(),
                radius: radius.radius,
                dats_read: self.reads.len() + self.rws.len(),
                dats_written: self.writes.len() + self.rws.len(),
            }),
            atomics: None,
            reductions: 0,
        };
        let mut k = Kernel::new(fp).with_traits(self.traits);
        if let Some(s) = self.nd_shape {
            k = k.with_nd_shape(s);
        }
        k
    }

    /// The declaration as the shadow-access checker sees it. Unlike the
    /// priced radius, rw stencils *do* count here — the verifier checks
    /// actual reads against what each argument individually declared.
    fn loop_decl(&self) -> shadow::LoopDecl {
        let mut args = Vec::with_capacity(self.reads.len() + self.writes.len() + self.rws.len());
        for (m, s) in &self.reads {
            args.push(shadow::ArgDecl {
                dat: m.id,
                access: shadow::Access::Read,
                radius: s.radius,
            });
        }
        for m in &self.writes {
            args.push(shadow::ArgDecl {
                dat: m.id,
                access: shadow::Access::Write,
                radius: [0; 3],
            });
        }
        for (m, s) in &self.rws {
            args.push(shadow::ArgDecl {
                dat: m.id,
                access: shadow::Access::ReadWrite,
                radius: s.radius,
            });
        }
        shadow::LoopDecl {
            kernel: self.name.clone(),
            structured: true,
            lo: self.range.lo,
            hi: self.range.hi,
            args,
            flops_pp: self.flops_pp,
            transc_pp: self.transc_pp,
            scheme: None,
        }
    }

    /// The declarative access metadata recorded with launch-graph nodes
    /// for static dataflow analysis (`graphlint`). Mirrors
    /// [`ParLoop::loop_decl`] with element sizes attached; like the
    /// shadow declaration it never enters pricing.
    fn launch_meta(&self) -> LaunchMeta {
        let mut accesses =
            Vec::with_capacity(self.reads.len() + self.writes.len() + self.rws.len());
        for (m, s) in &self.reads {
            accesses.push(DatAccess {
                dat: m.id,
                mode: AccessMode::Read,
                radius: s.radius,
                elem_bytes: m.elem_bytes,
            });
        }
        for m in &self.writes {
            accesses.push(DatAccess {
                dat: m.id,
                mode: AccessMode::Write,
                radius: [0; 3],
                elem_bytes: m.elem_bytes,
            });
        }
        for (m, s) in &self.rws {
            accesses.push(DatAccess {
                dat: m.id,
                mode: AccessMode::ReadWrite,
                radius: s.radius,
                elem_bytes: m.elem_bytes,
            });
        }
        LaunchMeta::new(accesses, self.range.lo, self.range.hi)
    }

    /// Price the launch on `session` and run `body` over parallel tiles.
    ///
    /// `body` receives sub-ranges that partition the loop range; it must
    /// write only to its tile's points (the usual OPS contract).
    pub fn run(self, session: &Session, body: impl Fn(Range3) + Sync) {
        let kernel = self.kernel();
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let shadowing = shadow::shadow_on() && session.executes();
        if shadowing {
            shadow::begin_loop(self.loop_decl());
        }
        let range = self.range;
        session.launch(&kernel, || {
            if session.executes() {
                global_pool().run_region(tiles, |_lane, t| {
                    shadow::begin_unit();
                    body(range.tile(shape, t));
                    shadow::end_unit();
                });
            }
        });
        if shadowing {
            shadow::end_loop();
        }
    }

    /// The row-sliced fast path: price the launch and run `body` once
    /// per contiguous x-row span of each tile.
    ///
    /// Bodies pull contiguous slices out of their dats with
    /// [`ReadView::row`](crate::dat::ReadView::row) /
    /// [`WriteView::row_mut`](crate::dat::WriteView::row_mut), paying
    /// the index arithmetic once per row instead of once per point (and
    /// giving the compiler vectorisable slice loops). Tiles come from
    /// the same decomposition as [`ParLoop::run`], so both paths cover
    /// identical points in identical order.
    pub fn run_rows(self, session: &Session, body: impl Fn(Row) + Sync) {
        let kernel = self.kernel();
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let shadowing = shadow::shadow_on() && session.executes();
        if shadowing {
            shadow::begin_loop(self.loop_decl());
        }
        let range = self.range;
        session.launch(&kernel, || {
            if session.executes() {
                global_pool().run_region(tiles, |_lane, t| {
                    shadow::begin_unit();
                    for row in range.tile(shape, t).rows() {
                        body(row);
                    }
                    shadow::end_unit();
                });
            }
        });
        if shadowing {
            shadow::end_loop();
        }
    }

    /// Like [`ParLoop::run`] but the loop also produces a reduction:
    /// each tile folds into a partial, partials combine in a fixed
    /// binary tree (deterministic — and exactly the reduction structure
    /// the paper's SYCL CPU fallback used). Partials live in the pool's
    /// reusable arena, so the steady path allocates nothing.
    pub fn run_reduce<A>(
        self,
        session: &Session,
        identity: A,
        combine: impl Fn(A, A) -> A + Sync,
        body: impl Fn(Range3) -> A + Sync,
    ) -> A
    where
        A: Send + Clone,
    {
        let mut kernel = self.kernel();
        kernel.footprint.reductions = 1;
        let bytes = kernel.footprint.effective_bytes;
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let shadowing = shadow::shadow_on() && session.executes();
        if shadowing {
            shadow::begin_loop(self.loop_decl());
        }
        let range = self.range;
        let name = self.name;
        let out = session.launch(&kernel, || {
            if !session.executes() {
                return identity.clone();
            }
            let span = telemetry::SpanTimer::start();
            let out = global_pool().reduce_chunks(tiles, identity.clone(), &combine, |t| {
                shadow::begin_unit();
                let partial = body(range.tile(shape, t));
                shadow::end_unit();
                partial
            });
            finish_reduce_span(span, &name, tiles, bytes);
            out
        });
        if shadowing {
            shadow::end_loop();
        }
        out
    }

    /// Row-sliced reduction. `body` is a *fold*: it takes the tile's
    /// running accumulator and one row, and returns the updated
    /// accumulator — so a body that walks its row slice left-to-right
    /// performs exactly the operation sequence of a per-point
    /// [`ParLoop::run_reduce`] body, making the two paths bit-identical.
    pub fn run_rows_reduce<A>(
        self,
        session: &Session,
        identity: A,
        combine: impl Fn(A, A) -> A + Sync,
        body: impl Fn(A, Row) -> A + Sync,
    ) -> A
    where
        A: Send + Sync + Clone,
    {
        let mut kernel = self.kernel();
        kernel.footprint.reductions = 1;
        let bytes = kernel.footprint.effective_bytes;
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let shadowing = shadow::shadow_on() && session.executes();
        if shadowing {
            shadow::begin_loop(self.loop_decl());
        }
        let range = self.range;
        let name = self.name;
        let out = session.launch(&kernel, || {
            if !session.executes() {
                return identity.clone();
            }
            let span = telemetry::SpanTimer::start();
            let out = global_pool().reduce_chunks(tiles, identity.clone(), &combine, |t| {
                shadow::begin_unit();
                let mut acc = identity.clone();
                for row in range.tile(shape, t).rows() {
                    acc = body(acc, row);
                }
                shadow::end_unit();
                acc
            });
            finish_reduce_span(span, &name, tiles, bytes);
            out
        });
        if shadowing {
            shadow::end_loop();
        }
        out
    }

    /// Record this loop into a launch graph instead of launching it.
    ///
    /// The mirror of [`ParLoop::run`]: the same kernel descriptor is
    /// priced through the same cache, and on every
    /// [`LaunchGraph::replay`](sycl_sim::LaunchGraph::replay) the body
    /// runs over the identical tile decomposition — so eager and
    /// replayed ledgers are bit-identical. Shadow bracketing is
    /// evaluated at replay time, inside the recorded body.
    pub fn record<'a>(self, g: &mut GraphBuilder<'a>, body: impl Fn(Range3) + Sync + 'a) {
        let kernel = self.kernel();
        let meta = self.launch_meta();
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let decl = self.loop_decl();
        let range = self.range;
        g.launch_with_meta(&kernel, meta, move |executes| {
            let shadowing = shadow::shadow_on() && executes;
            if shadowing {
                shadow::begin_loop(decl.clone());
            }
            if executes {
                global_pool().run_region(tiles, |_lane, t| {
                    shadow::begin_unit();
                    body(range.tile(shape, t));
                    shadow::end_unit();
                });
            }
            if shadowing {
                shadow::end_loop();
            }
        });
    }

    /// Record the row-sliced fast path into a launch graph; the replay
    /// mirror of [`ParLoop::run_rows`].
    pub fn record_rows<'a>(self, g: &mut GraphBuilder<'a>, body: impl Fn(Row) + Sync + 'a) {
        let kernel = self.kernel();
        let meta = self.launch_meta();
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let decl = self.loop_decl();
        let range = self.range;
        g.launch_with_meta(&kernel, meta, move |executes| {
            let shadowing = shadow::shadow_on() && executes;
            if shadowing {
                shadow::begin_loop(decl.clone());
            }
            if executes {
                global_pool().run_region(tiles, |_lane, t| {
                    shadow::begin_unit();
                    for row in range.tile(shape, t).rows() {
                        body(row);
                    }
                    shadow::end_unit();
                });
            }
            if shadowing {
                shadow::end_loop();
            }
        });
    }

    /// Record a reducing loop into a launch graph; the replay mirror of
    /// [`ParLoop::run_reduce`].
    ///
    /// Recorded bodies cannot return values through the graph, so the
    /// reduction result is delivered to `sink` on every replay (the
    /// identity when the session does not execute, exactly as the eager
    /// path returns it). Sinks typically store the bits into an
    /// `AtomicU64` cell the iteration loop reads back after `replay`.
    pub fn record_reduce<'a, A>(
        self,
        g: &mut GraphBuilder<'a>,
        identity: A,
        combine: impl Fn(A, A) -> A + Sync + 'a,
        body: impl Fn(Range3) -> A + Sync + 'a,
        sink: impl Fn(A) + Sync + 'a,
    ) where
        A: Send + Sync + Clone + 'a,
    {
        let mut kernel = self.kernel();
        kernel.footprint.reductions = 1;
        let bytes = kernel.footprint.effective_bytes;
        let meta = self.launch_meta();
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let decl = self.loop_decl();
        let range = self.range;
        let name = self.name;
        g.launch_with_meta(&kernel, meta, move |executes| {
            let shadowing = shadow::shadow_on() && executes;
            if shadowing {
                shadow::begin_loop(decl.clone());
            }
            if !executes {
                sink(identity.clone());
            } else {
                let span = telemetry::SpanTimer::start();
                let out = global_pool().reduce_chunks(tiles, identity.clone(), &combine, |t| {
                    shadow::begin_unit();
                    let partial = body(range.tile(shape, t));
                    shadow::end_unit();
                    partial
                });
                finish_reduce_span(span, &name, tiles, bytes);
                sink(out);
            }
            if shadowing {
                shadow::end_loop();
            }
        });
    }

    /// Record a row-sliced reducing loop into a launch graph; the replay
    /// mirror of [`ParLoop::run_rows_reduce`] (see
    /// [`ParLoop::record_reduce`] for the sink contract).
    pub fn record_rows_reduce<'a, A>(
        self,
        g: &mut GraphBuilder<'a>,
        identity: A,
        combine: impl Fn(A, A) -> A + Sync + 'a,
        body: impl Fn(A, Row) -> A + Sync + 'a,
        sink: impl Fn(A) + Sync + 'a,
    ) where
        A: Send + Sync + Clone + 'a,
    {
        let mut kernel = self.kernel();
        kernel.footprint.reductions = 1;
        let bytes = kernel.footprint.effective_bytes;
        let meta = self.launch_meta();
        let shape = exec_tile(&self.range);
        let tiles = self.range.tile_count(shape);
        let decl = self.loop_decl();
        let range = self.range;
        let name = self.name;
        g.launch_with_meta(&kernel, meta, move |executes| {
            let shadowing = shadow::shadow_on() && executes;
            if shadowing {
                shadow::begin_loop(decl.clone());
            }
            if !executes {
                sink(identity.clone());
            } else {
                let span = telemetry::SpanTimer::start();
                let out = global_pool().reduce_chunks(tiles, identity.clone(), &combine, |t| {
                    shadow::begin_unit();
                    let mut acc = identity.clone();
                    for row in range.tile(shape, t).rows() {
                        acc = body(acc, row);
                    }
                    shadow::end_unit();
                    acc
                });
                finish_reduce_span(span, &name, tiles, bytes);
                sink(out);
            }
            if shadowing {
                shadow::end_loop();
            }
        });
    }
}

/// Record a `ReduceSpan` named `<kernel>.reduce` carrying the tile count
/// and the loop's effective bytes. The format allocates only when a span
/// was actually taken (telemetry enabled).
fn finish_reduce_span(span: Option<telemetry::SpanTimer>, kernel: &str, tiles: usize, bytes: f64) {
    if let Some(t) = span {
        let label: std::sync::Arc<str> = format!("{kernel}.reduce").into();
        t.finish(telemetry::SpanKind::Reduce, label, tiles as u64, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::dat::Dat;
    use sycl_sim::{PlatformId, SessionConfig, Toolchain};

    fn session() -> Session {
        Session::create(
            SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("parloop-test"),
        )
        .unwrap()
    }

    #[test]
    fn footprint_follows_the_effective_bytes_rule() {
        let b = Block::new_2d(100, 100, 1);
        let u = Dat::<f64>::zeroed(&b, "u");
        let lp = ParLoop::new("k", b.interior())
            .read(u.meta(), Stencil::star_2d(1))
            .read_write(u.meta())
            .write(u.meta())
            .flops(7.0);
        let k = lp.kernel();
        let pts = 100.0 * 100.0 * 8.0;
        // read 1× + rw 2× + write 1× = 4× dataset size.
        assert!((k.footprint.effective_bytes - 4.0 * pts).abs() < 1e-9);
        assert!((k.footprint.flops - 7.0 * 100.0 * 100.0).abs() < 1e-9);
        match &k.footprint.access {
            AccessProfile::Stencil(s) => {
                assert_eq!(s.radius, [1, 1, 0]);
                assert_eq!(s.dats_read, 2);
                assert_eq!(s.dats_written, 2);
            }
            _ => panic!("expected stencil access"),
        }
    }

    #[test]
    fn f32_args_give_f32_precision() {
        let b = Block::new_3d(8, 8, 8, 1);
        let u = Dat::<f32>::zeroed(&b, "u");
        let k = ParLoop::new("k", b.interior())
            .read(u.meta(), Stencil::point())
            .write(u.meta())
            .kernel();
        assert_eq!(k.footprint.precision, Precision::F32);
    }

    #[test]
    fn run_executes_every_point_once() {
        let s = session();
        let b = Block::new_2d(37, 23, 2);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        let meta = u.meta();
        let w = u.writer();
        ParLoop::new("fill", b.interior())
            .write(meta)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    w.set(i, j, k, w.get(i, j, k) + 1.0);
                }
            });
        assert_eq!(u.interior_sum(&b), (37 * 23) as f64);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn stencil_body_reads_neighbours_correctly() {
        let s = session();
        let b = Block::new_2d(16, 16, 1);
        let mut src = Dat::<f64>::zeroed(&b, "src");
        src.fill_with(|i, j, _| (i + 100 * j) as f64);
        let mut dst = Dat::<f64>::zeroed(&b, "dst");
        let dst_meta = dst.meta();
        let r = src.reader();
        let w = dst.writer();
        ParLoop::new("avg", b.interior())
            .read(src.meta(), Stencil::star_2d(1))
            .write(dst_meta)
            .flops(4.0)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    let v = r.at(i - 1, j, k)
                        + r.at(i + 1, j, k)
                        + r.at(i, j - 1, k)
                        + r.at(i, j + 1, k);
                    w.set(i, j, k, 0.25 * v);
                }
            });
        // Interior of a linear field is preserved by averaging.
        assert!((dst.at(5, 5, 0) - src.at(5, 5, 0)).abs() < 1e-12);
    }

    #[test]
    fn reductions_are_deterministic_and_counted() {
        let s = session();
        let b = Block::new_2d(64, 64, 1);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        u.fill_with(|i, j, _| ((i * 31 + j * 7) % 13) as f64 * 0.1);
        let r = u.reader();
        let total = ParLoop::new("sum", b.interior())
            .read(u.meta(), Stencil::point())
            .run_reduce(
                &s,
                0.0f64,
                |a, b| a + b,
                |tile| {
                    let mut t = 0.0;
                    for (i, j, k) in tile.iter() {
                        t += r.at(i, j, k);
                    }
                    t
                },
            );
        let expect = u.interior_sum(&b);
        assert!((total - expect).abs() < 1e-9);
        let rec = &s.records()[0];
        assert!(rec.time.reduction > 0.0 || rec.time.total > 0.0);
    }

    #[test]
    fn run_rows_executes_every_point_once() {
        let s = session();
        let b = Block::new_2d(37, 23, 2);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        let meta = u.meta();
        let w = u.writer();
        ParLoop::new("fill_rows", b.interior())
            .write(meta)
            .run_rows(&s, |row| {
                for v in w.row_mut(row) {
                    *v += 1.0;
                }
            });
        assert_eq!(u.interior_sum(&b), (37 * 23) as f64);
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn row_and_point_stencils_agree_bitwise() {
        let s = session();
        let b = Block::new_2d(41, 29, 1);
        let mut src = Dat::<f64>::zeroed(&b, "src");
        src.fill_with(|i, j, _| ((i * 13 + j * 7) % 31) as f64 * 0.37);
        let mut d_pt = Dat::<f64>::zeroed(&b, "d_pt");
        let mut d_row = Dat::<f64>::zeroed(&b, "d_row");
        let r = src.reader();
        {
            let meta = d_pt.meta();
            let w = d_pt.writer();
            ParLoop::new("avg", b.interior())
                .read(src.meta(), Stencil::star_2d(1))
                .write(meta)
                .run(&s, |tile| {
                    for (i, j, k) in tile.iter() {
                        let v = r.at(i - 1, j, k)
                            + r.at(i + 1, j, k)
                            + r.at(i, j - 1, k)
                            + r.at(i, j + 1, k);
                        w.set(i, j, k, 0.25 * v);
                    }
                });
        }
        {
            let meta = d_row.meta();
            let w = d_row.writer();
            ParLoop::new("avg_rows", b.interior())
                .read(src.meta(), Stencil::star_2d(1))
                .write(meta)
                .run_rows(&s, |row| {
                    let c = r.row(row.grow_x(1));
                    let south = r.row(row.shift(0, -1, 0));
                    let north = r.row(row.shift(0, 1, 0));
                    let out = w.row_mut(row);
                    for x in 0..row.len() {
                        let v = c[x] + c[x + 2] + south[x] + north[x];
                        out[x] = 0.25 * v;
                    }
                });
        }
        for (i, j, k) in b.interior().iter() {
            assert_eq!(
                d_pt.at(i, j, k).to_bits(),
                d_row.at(i, j, k).to_bits(),
                "mismatch at ({i},{j},{k})"
            );
        }
    }

    #[test]
    fn row_reduce_matches_point_reduce_bitwise() {
        let s = session();
        let b = Block::new_2d(67, 45, 1);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        u.fill_with(|i, j, _| ((i * 31 + j * 7) % 13) as f64 * 0.1);
        let r = u.reader();
        let by_point = ParLoop::new("sum", b.interior())
            .read(u.meta(), Stencil::point())
            .run_reduce(
                &s,
                0.0f64,
                |a, b| a + b,
                |tile| {
                    let mut t = 0.0;
                    for (i, j, k) in tile.iter() {
                        t += r.at(i, j, k);
                    }
                    t
                },
            );
        let by_row = ParLoop::new("sum_rows", b.interior())
            .read(u.meta(), Stencil::point())
            .run_rows_reduce(
                &s,
                0.0f64,
                |a, b| a + b,
                |acc, row| {
                    let mut t = acc;
                    for &v in r.row(row) {
                        t += v;
                    }
                    t
                },
            );
        assert_eq!(by_point.to_bits(), by_row.to_bits());
    }

    #[test]
    fn exec_tile_gives_full_rows_but_splits_wide_1d_loops() {
        // Tall 2-D range: full rows.
        let r2 = Range3::new_2d(0, 500, 0, 100);
        assert_eq!(exec_tile(&r2), [500, 8, 4]);
        assert_eq!(r2.tile_count(exec_tile(&r2)), 13);
        // Wide 1-row range: x splits so the pool still has work.
        let r1 = Range3::new_2d(0, 1 << 20, 0, 1);
        assert_eq!(exec_tile(&r1), [1024, 8, 4]);
        assert_eq!(r1.tile_count(exec_tile(&r1)), 1024);
    }

    #[test]
    fn recorded_loops_replay_bit_identically_to_eager_runs() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let build = |u: &mut Dat<f64>| {
            u.fill_with(|i, j, _| ((i * 31 + j * 7) % 13) as f64 * 0.1);
        };

        let b = Block::new_2d(48, 36, 1);
        let eager = session();
        let mut ue = Dat::<f64>::zeroed(&b, "u");
        build(&mut ue);
        let mut eager_sums = Vec::new();
        for _ in 0..3 {
            let meta = ue.meta();
            let r = ue.reader();
            ParLoop::new("touch", b.interior())
                .read(meta, Stencil::point())
                .run_rows(&eager, |row| {
                    let _ = r.row(row);
                });
            let total = ParLoop::new("sum", b.interior())
                .read(meta, Stencil::point())
                .run_reduce(
                    &eager,
                    0.0f64,
                    |a, b| a + b,
                    |tile| {
                        let mut t = 0.0;
                        for (i, j, k) in tile.iter() {
                            t += r.at(i, j, k);
                        }
                        t
                    },
                );
            eager_sums.push(total.to_bits());
        }

        let replayed = session();
        let mut ur = Dat::<f64>::zeroed(&b, "u");
        build(&mut ur);
        let meta = ur.meta();
        let r = ur.reader();
        let cell = AtomicU64::new(0);
        let mut g = replayed.record();
        ParLoop::new("touch", b.interior())
            .read(meta, Stencil::point())
            .record_rows(&mut g, |row| {
                let _ = r.row(row);
            });
        ParLoop::new("sum", b.interior())
            .read(meta, Stencil::point())
            .record_reduce(
                &mut g,
                0.0f64,
                |a, b| a + b,
                |tile| {
                    let mut t = 0.0;
                    for (i, j, k) in tile.iter() {
                        t += r.at(i, j, k);
                    }
                    t
                },
                |total| cell.store(total.to_bits(), Ordering::Relaxed),
            );
        let graph = g.finish();
        let mut replay_sums = Vec::new();
        for _ in 0..3 {
            graph.replay(&replayed);
            replay_sums.push(cell.load(Ordering::Relaxed));
        }

        assert_eq!(eager_sums, replay_sums, "reduction results must match");
        assert_eq!(
            eager.ledger_digest(),
            replayed.ledger_digest(),
            "eager and replayed ledgers must be bit-identical"
        );
    }

    #[test]
    fn boundary_loops_are_flagged() {
        let s = session();
        let b = Block::new_2d(512, 512, 2);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        let meta = u.meta();
        let w = u.writer();
        ParLoop::new("bc_left", b.face(0, -1, 2))
            .write(meta)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    w.set(i, j, k, 1.0);
                }
            });
        assert!(s.records()[0].boundary);
    }
}
