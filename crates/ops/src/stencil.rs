//! Stencils: the per-argument access patterns of OPS loops.

/// A stencil described by its access radius per dimension. OPS stencils
/// are point lists; for footprint purposes only the extents matter, so we
/// store radii (a 5-point 2-D star is `radius = [1, 1, 0]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stencil {
    pub radius: [usize; 3],
}

impl Stencil {
    /// Access only the loop's own point.
    pub fn point() -> Self {
        Stencil { radius: [0, 0, 0] }
    }

    /// A 2-D star of the given radius (2r+1 points per axis).
    pub fn star_2d(r: usize) -> Self {
        Stencil { radius: [r, r, 0] }
    }

    /// A 3-D star of the given radius.
    pub fn star_3d(r: usize) -> Self {
        Stencil { radius: [r, r, r] }
    }

    /// Anisotropic radii.
    pub fn radii(rx: usize, ry: usize, rz: usize) -> Self {
        Stencil {
            radius: [rx, ry, rz],
        }
    }

    /// Offset-only stencil in one direction (face/edge computations).
    pub fn offset_1d(d: usize, r: usize) -> Self {
        let mut radius = [0, 0, 0];
        radius[d] = r;
        Stencil { radius }
    }

    /// Number of points in the star.
    pub fn points(&self) -> usize {
        1 + 2 * (self.radius[0] + self.radius[1] + self.radius[2])
    }

    /// Elementwise max of two stencils (for merging a loop's args).
    pub fn merge(self, other: Stencil) -> Stencil {
        Stencil {
            radius: std::array::from_fn(|d| self.radius[d].max(other.radius[d])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Stencil::point().radius, [0, 0, 0]);
        assert_eq!(Stencil::star_2d(2).radius, [2, 2, 0]);
        assert_eq!(Stencil::star_3d(4).radius, [4, 4, 4]);
        assert_eq!(Stencil::offset_1d(1, 3).radius, [0, 3, 0]);
    }

    #[test]
    fn star_point_counts() {
        assert_eq!(Stencil::point().points(), 1);
        assert_eq!(Stencil::star_2d(1).points(), 5);
        assert_eq!(Stencil::star_3d(1).points(), 7);
        assert_eq!(Stencil::star_3d(4).points(), 25);
    }

    #[test]
    fn merge_takes_elementwise_max() {
        let m = Stencil::radii(1, 0, 2).merge(Stencil::radii(0, 3, 1));
        assert_eq!(m.radius, [1, 3, 2]);
    }
}
