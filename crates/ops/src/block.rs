//! Blocks: Cartesian domains that datasets live on.

use crate::range::Range3;

/// A structured block: interior extents plus a halo (ghost-cell) depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Interior extents; 2-D blocks have `dims[2] == 1`.
    pub dims: [usize; 3],
    /// Ghost layers on every face of every non-degenerate dimension.
    pub halo: usize,
}

impl Block {
    /// A 2-D block of `nx × ny` interior points.
    pub fn new_2d(nx: usize, ny: usize, halo: usize) -> Self {
        Block {
            dims: [nx, ny, 1],
            halo,
        }
    }

    /// A 3-D block of `nx × ny × nz` interior points.
    pub fn new_3d(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        Block {
            dims: [nx, ny, nz],
            halo,
        }
    }

    /// Is this a 3-D block?
    pub fn is_3d(&self) -> bool {
        self.dims[2] > 1
    }

    /// Interior points.
    pub fn points(&self) -> usize {
        self.dims.iter().product()
    }

    /// Padded extent (interior + halos) along `d`.
    pub fn padded(&self, d: usize) -> usize {
        if self.dims[d] > 1 {
            self.dims[d] + 2 * self.halo
        } else {
            1
        }
    }

    /// The interior iteration range `[0, n)` per dimension.
    pub fn interior(&self) -> Range3 {
        Range3 {
            lo: [0, 0, 0],
            hi: [
                self.dims[0] as i64,
                self.dims[1] as i64,
                self.dims[2] as i64,
            ],
        }
    }

    /// The whole padded range `[-h, n+h)` (used by halo-filling loops).
    pub fn whole(&self) -> Range3 {
        let h = self.halo as i64;
        let pad = |d: usize| -> (i64, i64) {
            if self.dims[d] > 1 {
                (-h, self.dims[d] as i64 + h)
            } else {
                (0, 1)
            }
        };
        let (x0, x1) = pad(0);
        let (y0, y1) = pad(1);
        let (z0, z1) = pad(2);
        Range3 {
            lo: [x0, y0, z0],
            hi: [x1, y1, z1],
        }
    }

    /// A boundary slab of thickness `depth` on the low (`side = -1`) or
    /// high (`side = +1`) face of dimension `d`, covering the padded
    /// extent of the other dimensions.
    pub fn face(&self, d: usize, side: i64, depth: usize) -> Range3 {
        let mut r = self.whole();
        if side < 0 {
            r.lo[d] = -(self.halo as i64);
            r.hi[d] = r.lo[d] + depth as i64;
        } else {
            r.hi[d] = self.dims[d] as i64 + self.halo as i64;
            r.lo[d] = r.hi[d] - depth as i64;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_shapes() {
        let b2 = Block::new_2d(100, 50, 2);
        assert!(!b2.is_3d());
        assert_eq!(b2.points(), 5000);
        assert_eq!(b2.padded(0), 104);
        assert_eq!(b2.padded(2), 1);

        let b3 = Block::new_3d(10, 20, 30, 1);
        assert!(b3.is_3d());
        assert_eq!(b3.padded(2), 32);
    }

    #[test]
    fn interior_and_whole_ranges() {
        let b = Block::new_2d(8, 8, 2);
        assert_eq!(b.interior().points(), 64);
        assert_eq!(b.whole().points(), 12 * 12);
        assert_eq!(b.whole().lo, [-2, -2, 0]);
    }

    #[test]
    fn faces_are_thin_slabs() {
        let b = Block::new_2d(8, 8, 2);
        let left = b.face(0, -1, 2);
        assert_eq!(left.extent(0), 2);
        assert_eq!(left.extent(1), 12);
        assert_eq!(left.lo[0], -2);
        let top = b.face(1, 1, 1);
        assert_eq!(top.extent(1), 1);
        assert_eq!(top.hi[1], 10);
    }
}
