//! Property tests for the structured-mesh DSL: footprint accounting,
//! tiling coverage, halo-plan arithmetic and parallel-loop correctness
//! over randomly sized blocks.

use ops_dsl::prelude::*;
use proptest::prelude::*;
use sycl_sim::{AccessProfile, PlatformId, Session, SessionConfig, Toolchain};

fn session() -> Session {
    Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("prop-structured"),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Effective bytes follow the paper's rule exactly: reads + writes
    /// once, read-writes twice, over the loop's range.
    #[test]
    fn effective_bytes_rule(
        nx in 1usize..200, ny in 1usize..200,
        reads in 0usize..4, writes in 0usize..3, rws in 0usize..3,
    ) {
        let b = Block::new_2d(nx, ny, 1);
        let meta = ops_dsl::DatMeta { elem_bytes: 8.0 };
        let mut lp = ParLoop::new("k", b.interior());
        for _ in 0..reads {
            lp = lp.read(meta, Stencil::point());
        }
        for _ in 0..writes {
            lp = lp.write(meta);
        }
        for _ in 0..rws {
            lp = lp.read_write(meta);
        }
        let k = lp.kernel();
        let expect = (reads + writes + 2 * rws) as f64 * (nx * ny) as f64 * 8.0;
        prop_assert!((k.footprint.effective_bytes - expect).abs() < 1e-6);
    }

    /// Footprints scale linearly with the iteration range.
    #[test]
    fn footprints_scale_linearly(nx in 8usize..128, scale in 2usize..5) {
        let meta = ops_dsl::DatMeta { elem_bytes: 8.0 };
        let mk = |n: usize| {
            ParLoop::new("k", Block::new_2d(n, n, 1).interior())
                .read(meta, Stencil::star_2d(1))
                .write(meta)
                .flops(7.0)
                .kernel()
        };
        let small = mk(nx);
        let big = mk(nx * scale);
        let factor = (scale * scale) as f64;
        prop_assert!(
            (big.footprint.effective_bytes / small.footprint.effective_bytes - factor).abs()
                < 1e-9
        );
        prop_assert!((big.footprint.flops / small.footprint.flops - factor).abs() < 1e-9);
    }

    /// Merged stencil radii are the max over the read args.
    #[test]
    fn stencil_radii_merge(r1 in 0usize..4, r2 in 0usize..4, r3 in 0usize..4) {
        let meta = ops_dsl::DatMeta { elem_bytes: 8.0 };
        let k = ParLoop::new("k", Block::new_3d(32, 32, 32, 4).interior())
            .read(meta, Stencil::radii(r1, 0, 0))
            .read(meta, Stencil::radii(0, r2, 0))
            .read(meta, Stencil::radii(0, 0, r3))
            .write(meta)
            .kernel();
        match k.footprint.access {
            AccessProfile::Stencil(s) => {
                prop_assert_eq!(s.radius, [r1, r2, r3]);
            }
            _ => prop_assert!(false, "expected stencil"),
        }
    }

    /// A parallel fill loop touches every interior point exactly once,
    /// whatever the block shape.
    #[test]
    fn par_loop_touches_each_point_once(
        nx in 1usize..48, ny in 1usize..48, nz in 1usize..8,
    ) {
        let s = session();
        let b = Block::new_3d(nx.max(1), ny.max(1), nz.max(1), 1);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        let meta = u.meta();
        let w = u.writer();
        ParLoop::new("fill", b.interior())
            .write(meta)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    w.set(i, j, k, w.get(i, j, k) + 1.0);
                }
            });
        prop_assert_eq!(u.interior_sum(&b), b.points() as f64);
    }

    /// Reduction results are independent of the (random) block shape's
    /// tiling and bit-stable across repeats.
    #[test]
    fn reductions_are_stable(nx in 4usize..64, ny in 4usize..64) {
        let s = session();
        let b = Block::new_2d(nx, ny, 1);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        u.fill_with(|i, j, _| ((i * 31 + j * 17) % 101) as f64 * 0.013);
        let r = u.reader();
        let run = || {
            ParLoop::new("sum", b.interior())
                .read(u.meta(), Stencil::point())
                .run_reduce(&s, 0.0f64, |a, b| a + b, |tile| {
                    let mut t = 0.0;
                    for (i, j, k) in tile.iter() {
                        t += r.at(i, j, k);
                    }
                    t
                })
        };
        prop_assert_eq!(run().to_bits(), run().to_bits());
    }

    /// Halo plans: volume grows with ranks and depth; a single rank
    /// never communicates.
    #[test]
    fn halo_plan_arithmetic(
        n in 16usize..256, ranks in 1usize..64, depth in 1usize..5,
    ) {
        let b = Block::new_2d(n, n, depth);
        let one = HaloPlan::new(&b, 1, depth, 8.0);
        prop_assert_eq!(one.bytes_per_dat, 0.0);
        let many = HaloPlan::new(&b, ranks, depth, 8.0);
        prop_assert!(many.bytes_per_dat >= 0.0);
        if ranks > 1 {
            prop_assert!(many.bytes_per_dat > 0.0);
            prop_assert!(many.messages > 0);
            let deeper = HaloPlan::new(&b, ranks, depth + 1, 8.0);
            prop_assert!(deeper.bytes_per_dat > many.bytes_per_dat);
        }
    }

    /// Face ranges are thin slabs fully inside the padded block.
    #[test]
    fn faces_stay_in_padded_bounds(
        nx in 4usize..64, ny in 4usize..64, halo in 1usize..4, depth in 1usize..4,
    ) {
        let b = Block::new_2d(nx, ny, halo);
        for dim in 0..2usize {
            for side in [-1i64, 1] {
                let f = b.face(dim, side, depth.min(halo));
                prop_assert_eq!(f.extent(dim), depth.min(halo));
                prop_assert!(f.lo[0] >= -(halo as i64));
                prop_assert!(f.hi[0] <= (nx + halo) as i64);
                prop_assert!(f.lo[1] >= -(halo as i64));
                prop_assert!(f.hi[1] <= (ny + halo) as i64);
            }
        }
    }
}
