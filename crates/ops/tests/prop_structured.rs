//! Property-style tests for the structured-mesh DSL: footprint
//! accounting, tiling coverage, halo-plan arithmetic and parallel-loop
//! correctness over swept block shapes. Inputs come from deterministic
//! parameter sweeps (no external property-test framework: the workspace
//! builds offline with the standard library alone).

use ops_dsl::prelude::*;
use sycl_sim::{AccessProfile, PlatformId, Session, SessionConfig, Toolchain};

fn session() -> Session {
    Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app("prop-structured"),
    )
    .unwrap()
}

/// Deterministic xorshift64* stream for test inputs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn int(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

#[test]
fn effective_bytes_rule() {
    let mut rng = XorShift::new(5);
    for _ in 0..48 {
        let nx = rng.int(1, 200);
        let ny = rng.int(1, 200);
        let reads = rng.int(0, 4);
        let writes = rng.int(0, 3);
        let rws = rng.int(0, 3);
        let b = Block::new_2d(nx, ny, 1);
        let meta = ops_dsl::DatMeta::anon(8.0);
        let mut lp = ParLoop::new("k", b.interior());
        for _ in 0..reads {
            lp = lp.read(meta, Stencil::point());
        }
        for _ in 0..writes {
            lp = lp.write(meta);
        }
        for _ in 0..rws {
            lp = lp.read_write(meta);
        }
        let k = lp.kernel();
        let expect = (reads + writes + 2 * rws) as f64 * (nx * ny) as f64 * 8.0;
        assert!((k.footprint.effective_bytes - expect).abs() < 1e-6);
    }
}

#[test]
fn footprints_scale_linearly() {
    let mut rng = XorShift::new(7);
    for _ in 0..48 {
        let nx = rng.int(8, 128);
        let scale = rng.int(2, 5);
        let meta = ops_dsl::DatMeta::anon(8.0);
        let mk = |n: usize| {
            ParLoop::new("k", Block::new_2d(n, n, 1).interior())
                .read(meta, Stencil::star_2d(1))
                .write(meta)
                .flops(7.0)
                .kernel()
        };
        let small = mk(nx);
        let big = mk(nx * scale);
        let factor = (scale * scale) as f64;
        assert!(
            (big.footprint.effective_bytes / small.footprint.effective_bytes - factor).abs() < 1e-9
        );
        assert!((big.footprint.flops / small.footprint.flops - factor).abs() < 1e-9);
    }
}

#[test]
fn stencil_radii_merge() {
    let meta = ops_dsl::DatMeta::anon(8.0);
    for r1 in 0..4usize {
        for r2 in 0..4usize {
            for r3 in 0..4usize {
                let k = ParLoop::new("k", Block::new_3d(32, 32, 32, 4).interior())
                    .read(meta, Stencil::radii(r1, 0, 0))
                    .read(meta, Stencil::radii(0, r2, 0))
                    .read(meta, Stencil::radii(0, 0, r3))
                    .write(meta)
                    .kernel();
                match k.footprint.access {
                    AccessProfile::Stencil(s) => assert_eq!(s.radius, [r1, r2, r3]),
                    _ => panic!("expected stencil"),
                }
            }
        }
    }
}

#[test]
fn par_loop_touches_each_point_once() {
    let mut rng = XorShift::new(11);
    for _ in 0..32 {
        let nx = rng.int(1, 48);
        let ny = rng.int(1, 48);
        let nz = rng.int(1, 8);
        let s = session();
        let b = Block::new_3d(nx, ny, nz, 1);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        let meta = u.meta();
        let w = u.writer();
        ParLoop::new("fill", b.interior())
            .write(meta)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    w.set(i, j, k, w.get(i, j, k) + 1.0);
                }
            });
        assert_eq!(u.interior_sum(&b), b.points() as f64);
    }
}

#[test]
fn reductions_are_stable() {
    let mut rng = XorShift::new(13);
    for _ in 0..24 {
        let nx = rng.int(4, 64);
        let ny = rng.int(4, 64);
        let s = session();
        let b = Block::new_2d(nx, ny, 1);
        let mut u = Dat::<f64>::zeroed(&b, "u");
        u.fill_with(|i, j, _| ((i * 31 + j * 17) % 101) as f64 * 0.013);
        let r = u.reader();
        let run = || {
            ParLoop::new("sum", b.interior())
                .read(u.meta(), Stencil::point())
                .run_reduce(
                    &s,
                    0.0f64,
                    |a, b| a + b,
                    |tile| {
                        let mut t = 0.0;
                        for (i, j, k) in tile.iter() {
                            t += r.at(i, j, k);
                        }
                        t
                    },
                )
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}

#[test]
fn halo_plan_arithmetic() {
    let mut rng = XorShift::new(17);
    for _ in 0..48 {
        let n = rng.int(16, 256);
        let ranks = rng.int(1, 64);
        let depth = rng.int(1, 5);
        let b = Block::new_2d(n, n, depth);
        let one = HaloPlan::new(&b, 1, depth, 8.0);
        assert_eq!(one.bytes_per_dat, 0.0);
        let many = HaloPlan::new(&b, ranks, depth, 8.0);
        assert!(many.bytes_per_dat >= 0.0);
        if ranks > 1 {
            assert!(many.bytes_per_dat > 0.0);
            assert!(many.messages > 0);
            let deeper = HaloPlan::new(&b, ranks, depth + 1, 8.0);
            assert!(deeper.bytes_per_dat > many.bytes_per_dat);
        }
    }
}

#[test]
fn faces_stay_in_padded_bounds() {
    let mut rng = XorShift::new(19);
    for _ in 0..48 {
        let nx = rng.int(4, 64);
        let ny = rng.int(4, 64);
        let halo = rng.int(1, 4);
        let depth = rng.int(1, 4);
        let b = Block::new_2d(nx, ny, halo);
        for dim in 0..2usize {
            for side in [-1i64, 1] {
                let f = b.face(dim, side, depth.min(halo));
                assert_eq!(f.extent(dim), depth.min(halo));
                assert!(f.lo[0] >= -(halo as i64));
                assert!(f.hi[0] <= (nx + halo) as i64);
                assert!(f.lo[1] >= -(halo as i64));
                assert!(f.hi[1] <= (ny + halo) as i64);
            }
        }
    }
}
