//! # metrics — watch the paper's numbers over time
//!
//! The paper's whole argument is quantitative: runtimes, achieved
//! fractions of STREAM-Triad bandwidth, the Pennycook–Sewall PP metric.
//! The rest of the workspace *produces* those numbers; this crate makes
//! them **trackable** — so a silent performance regression in `parkit`,
//! the pricing cache or a toolchain model ships as a red CI gate, not a
//! surprise three PRs later.
//!
//! Four pieces, std-only like everything else here:
//!
//! * **Histograms** ([`hist`]) — log-bucketed, mergeable distribution
//!   sketches with exact count/mean/CI and bucketed p50/p90/p99/max.
//!   Two histograms merge bucket-by-bucket, so per-thread shards or
//!   per-run summaries combine without keeping raw samples.
//! * **Registry** ([`registry`]) — a process-wide, lock-light home for
//!   named histograms and labelled gauges/counters. Recording goes to a
//!   per-thread shard behind the recorder's own (uncontended) mutex and
//!   is guarded by [`telemetry::enabled`], so the disabled path is the
//!   same single relaxed-atomic branch every other instrumentation site
//!   pays. [`registry::ingest_events`] folds a flushed telemetry trace
//!   (launch / region / reduce / phase spans) into the registry, and
//!   [`registry::kernel_stats`] summarises launch spans per kernel.
//! * **Manifests** ([`manifest`]) — one `BENCH_<name>.json` per bench
//!   run: git revision, host, thread count, repetitions, per-kernel
//!   histogram summaries *and* raw repetition samples, achieved GB/s,
//!   and a counter snapshot. Manifests round-trip through the crate's
//!   own small JSON value parser ([`jsonv`]), so the gate and the
//!   dashboard can read back what earlier runs wrote.
//! * **The gate** ([`gate`], [`stats`]) — compares a current manifest
//!   against a committed baseline with a proper statistical test:
//!   interquartile-range overlap plus bootstrap resampling of
//!   repetition medians, per kernel, under per-platform tolerance
//!   bands. A regression is only *confirmed* when both tests agree, so
//!   one noisy repetition cannot fail CI.
//!
//! The `bench_gate` and `dashboard` binaries in `bench-harness` are the
//! user-facing ends of this crate; `results/baselines/` is the
//! committed baseline store.

pub mod gate;
pub mod hist;
pub mod jsonv;
pub mod manifest;
pub mod registry;
pub mod stats;

pub use gate::{GateConfig, GateReport, KernelVerdict, Verdict};
pub use hist::{Histogram, Summary};
pub use manifest::{merge_manifests, KernelSummary, Provenance, RunManifest};
pub use registry::{ingest_events, kernel_stats, registry, Registry};
pub use stats::{bootstrap_ratio_ci, median, quartiles, Tolerance};
