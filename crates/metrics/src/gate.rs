//! The regression gate: compare a fresh run manifest against a
//! committed baseline, kernel by kernel.
//!
//! A kernel is only **confirmed regressed** when two independent tests
//! agree (see [`crate::stats`]):
//!
//! 1. the median slowdown ratio exceeds the tolerance band *and* the
//!    interquartile ranges have separated (current q1 above baseline
//!    q3 — the middle halves of the two samples do not touch), and
//! 2. the bootstrap 95 % CI on the ratio of medians lies entirely above
//!    the tolerance band.
//!
//! One test firing alone marks the kernel *suspect* — reported loudly,
//! but not a CI failure, so a single noisy repetition cannot go red.
//! Deterministic simulated runtimes (zero variance) degrade cleanly:
//! both tests reduce to an exact ratio check.

use crate::manifest::RunManifest;
use crate::stats::{bootstrap_ratio_ci, median, quartiles, Tolerance};
use std::fmt::Write as _;

/// How the gate compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    pub tolerance: Tolerance,
    /// Bootstrap resamples per kernel.
    pub bootstrap_iters: usize,
    /// Resampler seed (fixed → reproducible gate runs).
    pub seed: u64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            tolerance: Tolerance::sim(),
            bootstrap_iters: 2000,
            seed: 0x5eed_cafe,
        }
    }
}

/// Per-kernel outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the tolerance band.
    Pass,
    /// Confidently faster than baseline (CI entirely below 1).
    Improved,
    /// Exactly one of the two tests fired — worth a look, not a failure.
    Suspect,
    /// Both tests agree: slower beyond tolerance.
    Regressed,
    /// Not enough samples on one side to compare.
    NoData,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Improved => "improved",
            Verdict::Suspect => "SUSPECT",
            Verdict::Regressed => "REGRESSED",
            Verdict::NoData => "no-data",
        }
    }
}

/// One kernel's comparison, with the evidence behind the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelVerdict {
    pub name: String,
    pub verdict: Verdict,
    /// `median(current) / median(baseline)`.
    pub ratio: f64,
    /// Bootstrap 95 % CI on the ratio of medians.
    pub ci: (f64, f64),
    /// Did the interquartile ranges separate (current above baseline)?
    pub iqr_separated: bool,
    pub baseline_median: f64,
    pub current_median: f64,
}

/// The gate's full output for one manifest pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Manifest name compared.
    pub name: String,
    pub tolerance: Tolerance,
    pub kernels: Vec<KernelVerdict>,
    /// Baseline kernels the current run no longer measures.
    pub missing_in_current: Vec<String>,
    /// Current kernels the baseline has never seen.
    pub new_in_current: Vec<String>,
}

impl GateReport {
    /// Confirmed regressions, in baseline order.
    pub fn regressed(&self) -> Vec<&KernelVerdict> {
        self.kernels
            .iter()
            .filter(|k| k.verdict == Verdict::Regressed)
            .collect()
    }

    /// True when nothing regressed and no baseline kernel vanished.
    pub fn passed(&self) -> bool {
        self.regressed().is_empty() && self.missing_in_current.is_empty()
    }

    /// Human-readable table plus a one-line PASS/FAIL summary.
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gate: {} (tolerance +{:.1}%)",
            self.name,
            (self.tolerance.max_ratio - 1.0) * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>12} {:>8} {:>17}  verdict",
            "kernel", "base p50 s", "cur p50 s", "ratio", "ratio CI95"
        );
        for k in &self.kernels {
            let _ = writeln!(
                out,
                "  {:<28} {:>12.3e} {:>12.3e} {:>8.3} [{:.3}, {:.3}]  {}",
                k.name,
                k.baseline_median,
                k.current_median,
                k.ratio,
                k.ci.0,
                k.ci.1,
                k.verdict.label()
            );
        }
        for name in &self.missing_in_current {
            let _ = writeln!(out, "  {name:<28} MISSING from current run");
        }
        for name in &self.new_in_current {
            let _ = writeln!(out, "  {name:<28} new (no baseline; not gated)");
        }
        let regressed = self.regressed();
        if self.passed() {
            let _ = writeln!(out, "PASS: no confirmed regressions");
        } else if regressed.is_empty() {
            let _ = writeln!(
                out,
                "FAIL: baseline kernel(s) missing: {}",
                self.missing_in_current.join(", ")
            );
        } else {
            let names: Vec<&str> = regressed.iter().map(|k| k.name.as_str()).collect();
            let _ = writeln!(
                out,
                "FAIL: {} confirmed regression(s): {}",
                names.len(),
                names.join(", ")
            );
        }
        out
    }
}

fn judge(current: &[f64], baseline: &[f64], cfg: &GateConfig) -> KernelVerdict {
    let cur_med = median(current);
    let base_med = median(baseline);
    if current.is_empty() || baseline.is_empty() || base_med <= 0.0 {
        return KernelVerdict {
            name: String::new(),
            verdict: Verdict::NoData,
            ratio: 1.0,
            ci: (1.0, 1.0),
            iqr_separated: false,
            baseline_median: base_med,
            current_median: cur_med,
        };
    }
    let ratio = cur_med / base_med;
    let (cur_q1, _, _) = quartiles(current);
    let (_, _, base_q3) = quartiles(baseline);
    let iqr_separated = cur_q1 > base_q3;
    let ci = bootstrap_ratio_ci(current, baseline, cfg.bootstrap_iters, cfg.seed);
    let tol = cfg.tolerance.max_ratio;
    let iqr_test = ratio > tol && iqr_separated;
    let boot_test = ci.0 > tol;
    let verdict = match (iqr_test, boot_test) {
        (true, true) => Verdict::Regressed,
        (false, false) => {
            if ci.1 < 1.0 && ratio < 1.0 / tol {
                Verdict::Improved
            } else {
                Verdict::Pass
            }
        }
        _ => Verdict::Suspect,
    };
    KernelVerdict {
        name: String::new(),
        verdict,
        ratio,
        ci,
        iqr_separated,
        baseline_median: base_med,
        current_median: cur_med,
    }
}

/// Compare `current` against `baseline`, kernel by kernel (matched by
/// name; baseline order).
pub fn compare(current: &RunManifest, baseline: &RunManifest, cfg: &GateConfig) -> GateReport {
    let mut kernels = Vec::new();
    let mut missing = Vec::new();
    for bk in &baseline.kernels {
        match current.kernel(&bk.name) {
            Some(ck) => {
                let mut v = judge(&ck.samples, &bk.samples, cfg);
                v.name = bk.name.clone();
                kernels.push(v);
            }
            None => missing.push(bk.name.clone()),
        }
    }
    let new_in_current = current
        .kernels
        .iter()
        .filter(|ck| baseline.kernel(&ck.name).is_none())
        .map(|ck| ck.name.clone())
        .collect();
    GateReport {
        name: current.name.clone(),
        tolerance: cfg.tolerance,
        kernels,
        missing_in_current: missing,
        new_in_current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::manifest::KernelSummary;
    use telemetry::CounterSnapshot;

    fn manifest(kernels: Vec<(&str, Vec<f64>)>) -> RunManifest {
        RunManifest {
            name: "engine".into(),
            git_rev: "test".into(),
            platform: "xeon-8360y".into(),
            threads: 4,
            repetitions: 5,
            created_unix_secs: 1,
            kernels: kernels
                .into_iter()
                .map(|(name, samples)| {
                    let mut h = Histogram::new();
                    for &s in &samples {
                        h.record(s);
                    }
                    KernelSummary {
                        name: name.into(),
                        wall: h.summary(),
                        samples,
                        sim_secs: 0.0,
                        bytes: 0.0,
                        gbps: 0.0,
                        origin: None,
                    }
                })
                .collect(),
            counters: CounterSnapshot::default(),
        }
    }

    fn noisy(center: f64) -> Vec<f64> {
        (0..7)
            .map(|i| center * (1.0 + 0.01 * (i as f64 - 3.0)))
            .collect()
    }

    #[test]
    fn identical_runs_pass() {
        let m = manifest(vec![("triad", noisy(1e-3)), ("halo", noisy(2e-4))]);
        let report = compare(&m, &m, &GateConfig::default());
        assert!(report.passed());
        assert!(report
            .kernels
            .iter()
            .all(|k| k.verdict == Verdict::Pass || k.verdict == Verdict::Improved));
        assert!(report.text().contains("PASS"));
    }

    #[test]
    fn injected_slowdown_fails_naming_the_kernel() {
        let base = manifest(vec![("triad", noisy(1e-3)), ("halo", noisy(2e-4))]);
        let slow = manifest(vec![
            ("triad", noisy(1e-3)),
            // 3× the tolerance band beyond baseline.
            ("halo", noisy(2e-4 * (1.0 + 3.0 * 0.02))),
        ]);
        let report = compare(&slow, &base, &GateConfig::default());
        assert!(!report.passed());
        let regressed = report.regressed();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].name, "halo");
        assert!(regressed[0].iqr_separated);
        assert!(regressed[0].ci.0 > GateConfig::default().tolerance.max_ratio);
        let text = report.text();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("halo"), "{text}");
    }

    #[test]
    fn zero_variance_samples_gate_exactly() {
        let base = manifest(vec![("k", vec![1e-3; 5])]);
        let same = compare(&base, &base, &GateConfig::default());
        assert!(same.passed());
        let slow = manifest(vec![("k", vec![1.1e-3; 5])]);
        let report = compare(&slow, &base, &GateConfig::default());
        assert_eq!(report.regressed().len(), 1, "{}", report.text());
    }

    #[test]
    fn within_tolerance_drift_passes() {
        let base = manifest(vec![("k", vec![1e-3; 5])]);
        let drift = manifest(vec![("k", vec![1.01e-3; 5])]);
        let report = compare(&drift, &base, &GateConfig::default());
        assert!(report.passed(), "{}", report.text());
    }

    #[test]
    fn improvement_is_recognised() {
        let base = manifest(vec![("k", noisy(1e-3))]);
        let fast = manifest(vec![("k", noisy(0.8e-3))]);
        let report = compare(&fast, &base, &GateConfig::default());
        assert!(report.passed());
        assert_eq!(report.kernels[0].verdict, Verdict::Improved);
    }

    #[test]
    fn missing_and_new_kernels_are_reported() {
        let base = manifest(vec![("old", noisy(1e-3)), ("stable", noisy(1e-3))]);
        let cur = manifest(vec![("stable", noisy(1e-3)), ("fresh", noisy(1e-3))]);
        let report = compare(&cur, &base, &GateConfig::default());
        assert_eq!(report.missing_in_current, vec!["old".to_owned()]);
        assert_eq!(report.new_in_current, vec!["fresh".to_owned()]);
        assert!(!report.passed(), "a vanished baseline kernel must fail");
        assert!(report.text().contains("MISSING"));
    }

    #[test]
    fn empty_samples_yield_no_data_not_a_failure() {
        let base = manifest(vec![("k", vec![])]);
        let cur = manifest(vec![("k", vec![1.0])]);
        let report = compare(&cur, &base, &GateConfig::default());
        assert_eq!(report.kernels[0].verdict, Verdict::NoData);
        assert!(report.passed());
    }
}
