//! Run manifests: the `BENCH_<name>.json` files the bench binaries
//! write and the baseline store keeps.
//!
//! A manifest records everything the gate and the dashboard need to
//! re-interpret a run later: where it came from (git revision, platform
//! model, thread count), how hard it tried (repetitions), what it
//! measured (per-kernel wall summaries *and* the raw per-repetition
//! samples — the bootstrap needs the samples, the dashboard the
//! summaries), and what the engine did while measuring (a counter
//! snapshot delta). Manifests round-trip: [`RunManifest::to_json`]
//! writes through the shared `JsonWriter`, [`RunManifest::parse`] reads
//! back through [`crate::jsonv`].

use crate::hist::Summary;
use crate::jsonv::{self, Json};
use std::io;
use std::path::Path;
use telemetry::json::JsonWriter;
use telemetry::CounterSnapshot;

/// Schema tag written into every manifest.
pub const SCHEMA: &str = "sycl-metrics/manifest-v1";

/// Which process produced a kernel entry, and on which try.
///
/// Manifests merged from a fleet of worker processes (the `study`
/// orchestrator) keep this so a suspicious cell can be traced back to
/// the worker — and the attempt number — that measured it. Absent
/// (`None`) for single-process manifests; old documents without the
/// field parse as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Worker index within the fleet (0 for a serial run).
    pub worker: u32,
    /// 1-based attempt that produced the value (> 1 means the unit was
    /// retried after a crash or timeout).
    pub attempt: u32,
    /// Causal trace id the orchestrator stamped on the dispatch that
    /// produced this value — the join key into flight recordings and
    /// the merged fleet trace. 0 when the run predates tracing (or ran
    /// serially without an orchestrator).
    pub trace: u64,
}

/// One kernel's (or phase's) measurements within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    pub name: String,
    /// Distribution of the per-repetition timings (seconds).
    pub wall: Summary,
    /// Raw per-repetition timings, seconds — what the gate bootstraps.
    pub samples: Vec<f64>,
    /// Simulated seconds per repetition (0.0 when not priced).
    pub sim_secs: f64,
    /// Effective bytes moved per repetition.
    pub bytes: f64,
    /// Achieved bandwidth, GB/s (under the simulated clock when priced).
    pub gbps: f64,
    /// Worker/attempt that produced this entry (merged studies only).
    pub origin: Option<Provenance>,
}

/// One bench/profile run, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Manifest name — `BENCH_<name>.json`.
    pub name: String,
    pub git_rev: String,
    /// Platform model the run priced against (or "host" for wall-clock).
    pub platform: String,
    pub threads: u32,
    /// Repetitions each kernel was timed for.
    pub repetitions: u32,
    /// Seconds since the Unix epoch when the run finished.
    pub created_unix_secs: u64,
    pub kernels: Vec<KernelSummary>,
    /// Engine counter deltas over the measured interval.
    pub counters: CounterSnapshot,
}

/// Best-effort short git revision of the working tree ("unknown" when
/// git is unavailable).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn summary_json(w: &mut JsonWriter, s: &Summary) {
    w.begin_object();
    w.key("count").int(s.count);
    w.key("mean").number(s.mean);
    w.key("ci95").number(s.ci95);
    w.key("p50").number(s.p50);
    w.key("p90").number(s.p90);
    w.key("p99").number(s.p99);
    w.key("p999").number(s.p999);
    w.key("min").number(s.min);
    w.key("max").number(s.max);
    w.key("sum").number(s.sum);
    w.end_object();
}

fn summary_parse(j: &Json) -> Result<Summary, String> {
    let f = |k: &str| j.f64_of(k).ok_or_else(|| format!("summary missing '{k}'"));
    Ok(Summary {
        count: j.u64_of("count").ok_or("summary missing 'count'")?,
        mean: f("mean")?,
        ci95: f("ci95")?,
        p50: f("p50")?,
        p90: f("p90")?,
        p99: f("p99")?,
        // Optional: manifests written before the p999 field (committed
        // baselines among them) parse with 0.0 rather than erroring.
        p999: j.f64_of("p999").unwrap_or(0.0),
        min: f("min")?,
        max: f("max")?,
        sum: f("sum")?,
    })
}

fn counters_json(w: &mut JsonWriter, c: &CounterSnapshot) {
    w.begin_object();
    w.key("launches").int(c.launches);
    w.key("pricingCacheHits").int(c.pricing_cache_hits);
    w.key("pricingCacheMisses").int(c.pricing_cache_misses);
    w.key("regions").int(c.regions);
    w.key("steals").int(c.steals);
    w.key("parks").int(c.parks);
    w.key("wakes").int(c.wakes);
    w.key("bytesMoved").int(c.bytes_moved);
    w.key("spansDropped").int(c.spans_dropped);
    w.end_object();
}

fn counters_parse(j: &Json) -> Result<CounterSnapshot, String> {
    let g = |k: &str| j.u64_of(k).ok_or_else(|| format!("counters missing '{k}'"));
    Ok(CounterSnapshot {
        launches: g("launches")?,
        pricing_cache_hits: g("pricingCacheHits")?,
        pricing_cache_misses: g("pricingCacheMisses")?,
        regions: g("regions")?,
        steals: g("steals")?,
        parks: g("parks")?,
        wakes: g("wakes")?,
        bytes_moved: g("bytesMoved")?,
        spans_dropped: g("spansDropped")?,
    })
}

impl RunManifest {
    /// Serialise to the `BENCH_<name>.json` document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA);
        w.key("name").string(&self.name);
        w.key("gitRev").string(&self.git_rev);
        w.key("platform").string(&self.platform);
        w.key("threads").int(self.threads as u64);
        w.key("repetitions").int(self.repetitions as u64);
        w.key("createdUnixSecs").int(self.created_unix_secs);
        w.key("counters");
        counters_json(&mut w, &self.counters);
        w.key("kernels").begin_array();
        for k in &self.kernels {
            w.begin_object();
            w.key("name").string(&k.name);
            w.key("simSecs").number(k.sim_secs);
            w.key("bytes").number(k.bytes);
            w.key("gbps").number(k.gbps);
            if let Some(p) = k.origin {
                w.key("origin");
                w.begin_object();
                w.key("worker").int(p.worker as u64);
                w.key("attempt").int(p.attempt as u64);
                w.key("trace").int(p.trace);
                w.end_object();
            }
            w.key("samples").begin_array();
            for &s in &k.samples {
                w.number(s);
            }
            w.end_array();
            w.key("wall");
            summary_json(&mut w, &k.wall);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parse a manifest document (rejects unknown schema tags).
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let doc = jsonv::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.str_of("schema").ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("unknown manifest schema '{schema}'"));
        }
        let kernels = doc
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing 'kernels'")?
            .iter()
            .map(|k| -> Result<KernelSummary, String> {
                Ok(KernelSummary {
                    name: k.str_of("name").ok_or("kernel missing 'name'")?.to_owned(),
                    wall: summary_parse(k.get("wall").ok_or("kernel missing 'wall'")?)?,
                    samples: k
                        .get("samples")
                        .and_then(Json::as_arr)
                        .ok_or("kernel missing 'samples'")?
                        .iter()
                        .map(|v| v.as_f64().ok_or_else(|| "bad sample".to_owned()))
                        .collect::<Result<Vec<f64>, String>>()?,
                    sim_secs: k.f64_of("simSecs").ok_or("kernel missing 'simSecs'")?,
                    bytes: k.f64_of("bytes").ok_or("kernel missing 'bytes'")?,
                    gbps: k.f64_of("gbps").ok_or("kernel missing 'gbps'")?,
                    // Optional: single-process manifests (and all
                    // documents written before the study runner) have
                    // no origin.
                    origin: k.get("origin").and_then(|o| {
                        Some(Provenance {
                            worker: o.u64_of("worker")? as u32,
                            attempt: o.u64_of("attempt")? as u32,
                            // Pre-tracing documents carry no trace id.
                            trace: o.u64_of("trace").unwrap_or(0),
                        })
                    }),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunManifest {
            name: doc.str_of("name").ok_or("missing 'name'")?.to_owned(),
            git_rev: doc.str_of("gitRev").ok_or("missing 'gitRev'")?.to_owned(),
            platform: doc
                .str_of("platform")
                .ok_or("missing 'platform'")?
                .to_owned(),
            threads: doc.u64_of("threads").ok_or("missing 'threads'")? as u32,
            repetitions: doc.u64_of("repetitions").ok_or("missing 'repetitions'")? as u32,
            created_unix_secs: doc
                .u64_of("createdUnixSecs")
                .ok_or("missing 'createdUnixSecs'")?,
            kernels,
            counters: counters_parse(doc.get("counters").ok_or("missing 'counters'")?)?,
        })
    }

    /// Read and parse a manifest file.
    pub fn load(path: &Path) -> io::Result<RunManifest> {
        let text = std::fs::read_to_string(path)?;
        RunManifest::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
    }

    /// Write the manifest document (plus trailing newline) to `path`,
    /// creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// The kernel entry called `name`, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelSummary> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Field-wise sum of two counter snapshots (for merged manifests).
fn counters_sum(a: &CounterSnapshot, b: &CounterSnapshot) -> CounterSnapshot {
    CounterSnapshot {
        launches: a.launches + b.launches,
        pricing_cache_hits: a.pricing_cache_hits + b.pricing_cache_hits,
        pricing_cache_misses: a.pricing_cache_misses + b.pricing_cache_misses,
        regions: a.regions + b.regions,
        steals: a.steals + b.steals,
        parks: a.parks + b.parks,
        wakes: a.wakes + b.wakes,
        bytes_moved: a.bytes_moved + b.bytes_moved,
        spans_dropped: a.spans_dropped + b.spans_dropped,
    }
}

/// Merge `parts` (e.g. one manifest per worker or per CI shard) into one
/// manifest named `name`.
///
/// Kernels keep their part order (parts in argument order, kernels in
/// their part's order). When the same kernel name appears in several
/// parts, the entries collapse into one: the raw samples concatenate and
/// the wall summary is **rebuilt from the combined samples** — lossless,
/// because samples are the raw per-repetition values the summaries were
/// derived from (what makes a histogram re-derivable is exactly why
/// manifests carry the samples at all). `sim_secs`/`bytes`/`gbps` and
/// the origin come from the first part that reported the kernel (they
/// describe the deterministic priced run, identical across workers by
/// the determinism guarantee). Counters sum; `threads`/`repetitions`
/// take the max; `platform`/`git_rev` are kept when unanimous and
/// become `"mixed"` otherwise.
pub fn merge_manifests(name: &str, parts: &[RunManifest]) -> RunManifest {
    let mut kernels: Vec<KernelSummary> = Vec::new();
    let mut counters = CounterSnapshot::default();
    let mut threads = 0u32;
    let mut repetitions = 0u32;
    let mut created = 0u64;
    let unanimous = |pick: fn(&RunManifest) -> &str| -> String {
        let mut vals = parts.iter().map(pick);
        match vals.next() {
            None => "unknown".to_owned(),
            Some(first) if vals.all(|v| v == first) => first.to_owned(),
            Some(_) => "mixed".to_owned(),
        }
    };
    for part in parts {
        counters = counters_sum(&counters, &part.counters);
        threads = threads.max(part.threads);
        repetitions = repetitions.max(part.repetitions);
        created = created.max(part.created_unix_secs);
        for k in &part.kernels {
            match kernels.iter_mut().find(|m| m.name == k.name) {
                None => kernels.push(k.clone()),
                Some(merged) => {
                    merged.samples.extend_from_slice(&k.samples);
                    let mut h = crate::hist::Histogram::new();
                    for &s in &merged.samples {
                        h.record(s);
                    }
                    merged.wall = h.summary();
                }
            }
        }
    }
    RunManifest {
        name: name.to_owned(),
        git_rev: unanimous(|m| &m.git_rev),
        platform: unanimous(|m| &m.platform),
        threads,
        repetitions,
        created_unix_secs: created,
        kernels,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_manifest() -> RunManifest {
        let mut h = Histogram::new();
        for v in [1.0e-3, 1.1e-3, 0.9e-3] {
            h.record(v);
        }
        RunManifest {
            name: "engine".into(),
            git_rev: "abc1234".into(),
            platform: "xeon-8360y".into(),
            threads: 8,
            repetitions: 3,
            created_unix_secs: 1_700_000_000,
            kernels: vec![
                KernelSummary {
                    name: "triad \"hot\"".into(),
                    wall: h.summary(),
                    samples: vec![1.0e-3, 1.1e-3, 0.9e-3],
                    sim_secs: 2.5e-4,
                    bytes: 2.4e7,
                    gbps: 96.0,
                    origin: Some(Provenance {
                        worker: 3,
                        attempt: 2,
                        trace: 17,
                    }),
                },
                KernelSummary {
                    name: "halo".into(),
                    wall: Summary::default(),
                    samples: vec![],
                    sim_secs: 0.0,
                    bytes: 0.0,
                    gbps: 0.0,
                    origin: None,
                },
            ],
            counters: CounterSnapshot {
                launches: 42,
                bytes_moved: 1 << 30,
                spans_dropped: 0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let text = m.to_json();
        telemetry::json::validate(&text).unwrap();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = sample_manifest().to_json().replace(SCHEMA, "other/v9");
        let err = RunManifest::parse(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let m = sample_manifest();
        let text = m.to_json().replace("\"gitRev\"", "\"gitRevX\"");
        let err = RunManifest::parse(&text).unwrap_err();
        assert!(err.contains("gitRev"), "{err}");
    }

    #[test]
    fn manifests_without_p999_still_parse() {
        // Baselines written before the p999 field must keep loading.
        let text = sample_manifest()
            .to_json()
            .replace("\"p999\":", "\"pXXX\":");
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back.kernels[0].wall.p999, 0.0);
        assert!(back.kernels[0].wall.p99 > 0.0);
    }

    #[test]
    fn save_and_load_round_trip_via_disk() {
        let m = sample_manifest();
        let dir = std::env::temp_dir().join(format!("metrics-manifest-{}", std::process::id()));
        let path = dir.join("nested").join("BENCH_engine.json");
        m.save(&path).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kernel_lookup_by_name() {
        let m = sample_manifest();
        assert!(m.kernel("halo").is_some());
        assert!(m.kernel("absent").is_none());
    }

    #[test]
    fn git_rev_never_panics() {
        let r = git_rev();
        assert!(!r.is_empty());
    }

    #[test]
    fn manifests_without_origin_still_parse() {
        // Documents written before the provenance field must keep
        // loading, with `origin: None`.
        let text = sample_manifest().to_json();
        let stripped = {
            // Remove the whole origin object from the serialised form.
            let start = text.find("\"origin\":").unwrap();
            let end = text[start..].find('}').unwrap() + start + 1;
            let mut t = text.clone();
            t.replace_range(start..end + 1, ""); // `},` after the object
            t
        };
        let back = RunManifest::parse(&stripped).unwrap();
        assert_eq!(back.kernels[0].origin, None);
        assert_eq!(back.kernels[0].samples.len(), 3);
    }

    #[test]
    fn merge_disjoint_parts_is_concatenation() {
        let mut a = sample_manifest();
        a.name = "shard1".into();
        let mut b = sample_manifest();
        b.name = "shard2".into();
        b.kernels = vec![KernelSummary {
            name: "other".into(),
            wall: Summary::default(),
            samples: vec![],
            sim_secs: 1.0,
            bytes: 8.0,
            gbps: 8e-9,
            origin: Some(Provenance {
                worker: 1,
                attempt: 1,
                trace: 0,
            }),
        }];
        let merged = merge_manifests("study", &[a.clone(), b.clone()]);
        assert_eq!(merged.name, "study");
        assert_eq!(merged.kernels.len(), a.kernels.len() + 1);
        assert_eq!(merged.kernels[0], a.kernels[0], "part order preserved");
        assert_eq!(merged.kernels.last().unwrap().name, "other");
        assert_eq!(
            merged.counters.launches,
            a.counters.launches + b.counters.launches
        );
        assert_eq!(merged.platform, "xeon-8360y", "unanimous platform kept");
        // Round-trips with provenance intact.
        let back = RunManifest::parse(&merged.to_json()).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn merge_colliding_kernels_rebuilds_summary_losslessly() {
        // Split one sample set across two parts; the merged summary must
        // equal the summary of a histogram over all samples at once.
        let all: Vec<f64> = (1..=40).map(|i| i as f64 * 1e-4).collect();
        let mk = |samples: &[f64], worker: u32| {
            let mut h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            RunManifest {
                kernels: vec![KernelSummary {
                    name: "cell".into(),
                    wall: h.summary(),
                    samples: samples.to_vec(),
                    sim_secs: 0.5,
                    bytes: 0.0,
                    gbps: 0.0,
                    origin: Some(Provenance {
                        worker,
                        attempt: 1,
                        trace: 0,
                    }),
                }],
                ..sample_manifest()
            }
        };
        let merged = merge_manifests("m", &[mk(&all[..15], 0), mk(&all[15..], 1)]);
        let mut whole = Histogram::new();
        for &s in &all {
            whole.record(s);
        }
        assert_eq!(merged.kernels.len(), 1);
        let k = &merged.kernels[0];
        assert_eq!(k.samples, all, "samples concatenate in part order");
        assert_eq!(k.wall, whole.summary(), "summary rebuilt from raw samples");
        assert_eq!(
            k.origin,
            Some(Provenance {
                worker: 0,
                attempt: 1,
                trace: 0,
            }),
            "first reporter's provenance wins"
        );
        assert_eq!(k.sim_secs, 0.5);
    }

    #[test]
    fn merge_disagreeing_metadata_becomes_mixed() {
        let a = sample_manifest();
        let mut b = sample_manifest();
        b.platform = "a100".into();
        b.git_rev = "fff0000".into();
        b.threads = 64;
        let merged = merge_manifests("m", &[a, b]);
        assert_eq!(merged.platform, "mixed");
        assert_eq!(merged.git_rev, "mixed");
        assert_eq!(merged.threads, 64);
        assert!(merge_manifests("empty", &[]).kernels.is_empty());
    }
}
