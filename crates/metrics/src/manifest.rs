//! Run manifests: the `BENCH_<name>.json` files the bench binaries
//! write and the baseline store keeps.
//!
//! A manifest records everything the gate and the dashboard need to
//! re-interpret a run later: where it came from (git revision, platform
//! model, thread count), how hard it tried (repetitions), what it
//! measured (per-kernel wall summaries *and* the raw per-repetition
//! samples — the bootstrap needs the samples, the dashboard the
//! summaries), and what the engine did while measuring (a counter
//! snapshot delta). Manifests round-trip: [`RunManifest::to_json`]
//! writes through the shared `JsonWriter`, [`RunManifest::parse`] reads
//! back through [`crate::jsonv`].

use crate::hist::Summary;
use crate::jsonv::{self, Json};
use std::io;
use std::path::Path;
use telemetry::json::JsonWriter;
use telemetry::CounterSnapshot;

/// Schema tag written into every manifest.
pub const SCHEMA: &str = "sycl-metrics/manifest-v1";

/// One kernel's (or phase's) measurements within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    pub name: String,
    /// Distribution of the per-repetition timings (seconds).
    pub wall: Summary,
    /// Raw per-repetition timings, seconds — what the gate bootstraps.
    pub samples: Vec<f64>,
    /// Simulated seconds per repetition (0.0 when not priced).
    pub sim_secs: f64,
    /// Effective bytes moved per repetition.
    pub bytes: f64,
    /// Achieved bandwidth, GB/s (under the simulated clock when priced).
    pub gbps: f64,
}

/// One bench/profile run, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Manifest name — `BENCH_<name>.json`.
    pub name: String,
    pub git_rev: String,
    /// Platform model the run priced against (or "host" for wall-clock).
    pub platform: String,
    pub threads: u32,
    /// Repetitions each kernel was timed for.
    pub repetitions: u32,
    /// Seconds since the Unix epoch when the run finished.
    pub created_unix_secs: u64,
    pub kernels: Vec<KernelSummary>,
    /// Engine counter deltas over the measured interval.
    pub counters: CounterSnapshot,
}

/// Best-effort short git revision of the working tree ("unknown" when
/// git is unavailable).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn summary_json(w: &mut JsonWriter, s: &Summary) {
    w.begin_object();
    w.key("count").int(s.count);
    w.key("mean").number(s.mean);
    w.key("ci95").number(s.ci95);
    w.key("p50").number(s.p50);
    w.key("p90").number(s.p90);
    w.key("p99").number(s.p99);
    w.key("p999").number(s.p999);
    w.key("min").number(s.min);
    w.key("max").number(s.max);
    w.key("sum").number(s.sum);
    w.end_object();
}

fn summary_parse(j: &Json) -> Result<Summary, String> {
    let f = |k: &str| j.f64_of(k).ok_or_else(|| format!("summary missing '{k}'"));
    Ok(Summary {
        count: j.u64_of("count").ok_or("summary missing 'count'")?,
        mean: f("mean")?,
        ci95: f("ci95")?,
        p50: f("p50")?,
        p90: f("p90")?,
        p99: f("p99")?,
        // Optional: manifests written before the p999 field (committed
        // baselines among them) parse with 0.0 rather than erroring.
        p999: j.f64_of("p999").unwrap_or(0.0),
        min: f("min")?,
        max: f("max")?,
        sum: f("sum")?,
    })
}

fn counters_json(w: &mut JsonWriter, c: &CounterSnapshot) {
    w.begin_object();
    w.key("launches").int(c.launches);
    w.key("pricingCacheHits").int(c.pricing_cache_hits);
    w.key("pricingCacheMisses").int(c.pricing_cache_misses);
    w.key("regions").int(c.regions);
    w.key("steals").int(c.steals);
    w.key("parks").int(c.parks);
    w.key("wakes").int(c.wakes);
    w.key("bytesMoved").int(c.bytes_moved);
    w.key("spansDropped").int(c.spans_dropped);
    w.end_object();
}

fn counters_parse(j: &Json) -> Result<CounterSnapshot, String> {
    let g = |k: &str| j.u64_of(k).ok_or_else(|| format!("counters missing '{k}'"));
    Ok(CounterSnapshot {
        launches: g("launches")?,
        pricing_cache_hits: g("pricingCacheHits")?,
        pricing_cache_misses: g("pricingCacheMisses")?,
        regions: g("regions")?,
        steals: g("steals")?,
        parks: g("parks")?,
        wakes: g("wakes")?,
        bytes_moved: g("bytesMoved")?,
        spans_dropped: g("spansDropped")?,
    })
}

impl RunManifest {
    /// Serialise to the `BENCH_<name>.json` document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(SCHEMA);
        w.key("name").string(&self.name);
        w.key("gitRev").string(&self.git_rev);
        w.key("platform").string(&self.platform);
        w.key("threads").int(self.threads as u64);
        w.key("repetitions").int(self.repetitions as u64);
        w.key("createdUnixSecs").int(self.created_unix_secs);
        w.key("counters");
        counters_json(&mut w, &self.counters);
        w.key("kernels").begin_array();
        for k in &self.kernels {
            w.begin_object();
            w.key("name").string(&k.name);
            w.key("simSecs").number(k.sim_secs);
            w.key("bytes").number(k.bytes);
            w.key("gbps").number(k.gbps);
            w.key("samples").begin_array();
            for &s in &k.samples {
                w.number(s);
            }
            w.end_array();
            w.key("wall");
            summary_json(&mut w, &k.wall);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parse a manifest document (rejects unknown schema tags).
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let doc = jsonv::parse(text).map_err(|e| e.to_string())?;
        let schema = doc.str_of("schema").ok_or("missing 'schema'")?;
        if schema != SCHEMA {
            return Err(format!("unknown manifest schema '{schema}'"));
        }
        let kernels = doc
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing 'kernels'")?
            .iter()
            .map(|k| -> Result<KernelSummary, String> {
                Ok(KernelSummary {
                    name: k.str_of("name").ok_or("kernel missing 'name'")?.to_owned(),
                    wall: summary_parse(k.get("wall").ok_or("kernel missing 'wall'")?)?,
                    samples: k
                        .get("samples")
                        .and_then(Json::as_arr)
                        .ok_or("kernel missing 'samples'")?
                        .iter()
                        .map(|v| v.as_f64().ok_or_else(|| "bad sample".to_owned()))
                        .collect::<Result<Vec<f64>, String>>()?,
                    sim_secs: k.f64_of("simSecs").ok_or("kernel missing 'simSecs'")?,
                    bytes: k.f64_of("bytes").ok_or("kernel missing 'bytes'")?,
                    gbps: k.f64_of("gbps").ok_or("kernel missing 'gbps'")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunManifest {
            name: doc.str_of("name").ok_or("missing 'name'")?.to_owned(),
            git_rev: doc.str_of("gitRev").ok_or("missing 'gitRev'")?.to_owned(),
            platform: doc
                .str_of("platform")
                .ok_or("missing 'platform'")?
                .to_owned(),
            threads: doc.u64_of("threads").ok_or("missing 'threads'")? as u32,
            repetitions: doc.u64_of("repetitions").ok_or("missing 'repetitions'")? as u32,
            created_unix_secs: doc
                .u64_of("createdUnixSecs")
                .ok_or("missing 'createdUnixSecs'")?,
            kernels,
            counters: counters_parse(doc.get("counters").ok_or("missing 'counters'")?)?,
        })
    }

    /// Read and parse a manifest file.
    pub fn load(path: &Path) -> io::Result<RunManifest> {
        let text = std::fs::read_to_string(path)?;
        RunManifest::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
    }

    /// Write the manifest document (plus trailing newline) to `path`,
    /// creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// The kernel entry called `name`, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelSummary> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_manifest() -> RunManifest {
        let mut h = Histogram::new();
        for v in [1.0e-3, 1.1e-3, 0.9e-3] {
            h.record(v);
        }
        RunManifest {
            name: "engine".into(),
            git_rev: "abc1234".into(),
            platform: "xeon-8360y".into(),
            threads: 8,
            repetitions: 3,
            created_unix_secs: 1_700_000_000,
            kernels: vec![
                KernelSummary {
                    name: "triad \"hot\"".into(),
                    wall: h.summary(),
                    samples: vec![1.0e-3, 1.1e-3, 0.9e-3],
                    sim_secs: 2.5e-4,
                    bytes: 2.4e7,
                    gbps: 96.0,
                },
                KernelSummary {
                    name: "halo".into(),
                    wall: Summary::default(),
                    samples: vec![],
                    sim_secs: 0.0,
                    bytes: 0.0,
                    gbps: 0.0,
                },
            ],
            counters: CounterSnapshot {
                launches: 42,
                bytes_moved: 1 << 30,
                spans_dropped: 0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let text = m.to_json();
        telemetry::json::validate(&text).unwrap();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let text = sample_manifest().to_json().replace(SCHEMA, "other/v9");
        let err = RunManifest::parse(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let m = sample_manifest();
        let text = m.to_json().replace("\"gitRev\"", "\"gitRevX\"");
        let err = RunManifest::parse(&text).unwrap_err();
        assert!(err.contains("gitRev"), "{err}");
    }

    #[test]
    fn manifests_without_p999_still_parse() {
        // Baselines written before the p999 field must keep loading.
        let text = sample_manifest()
            .to_json()
            .replace("\"p999\":", "\"pXXX\":");
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back.kernels[0].wall.p999, 0.0);
        assert!(back.kernels[0].wall.p99 > 0.0);
    }

    #[test]
    fn save_and_load_round_trip_via_disk() {
        let m = sample_manifest();
        let dir = std::env::temp_dir().join(format!("metrics-manifest-{}", std::process::id()));
        let path = dir.join("nested").join("BENCH_engine.json");
        m.save(&path).unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kernel_lookup_by_name() {
        let m = sample_manifest();
        assert!(m.kernel("halo").is_some());
        assert!(m.kernel("absent").is_none());
    }

    #[test]
    fn git_rev_never_panics() {
        let r = git_rev();
        assert!(!r.is_empty());
    }
}
