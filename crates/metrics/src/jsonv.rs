//! A small JSON *value* parser.
//!
//! The workspace writes JSON through `telemetry::json::JsonWriter` and
//! validates it with `telemetry::json::validate`, but nothing so far
//! needed to *read* JSON back. Manifests do: the gate compares a fresh
//! run against a baseline file, and the dashboard folds every stored
//! `BENCH_*.json` into one page. This is a std-only recursive-descent
//! parser into a plain [`Json`] tree — strict enough for our own
//! writer's output (UTF-8, finite numbers, `\uXXXX` escapes), with a
//! depth limit so a malformed file cannot blow the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 96;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object, key-sorted (BTreeMap) so traversal is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)?.as_f64()`.
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// Convenience: `self.get(key)?.as_u64()`.
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// Convenience: `self.get(key)?.as_str()`.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

/// Parse failure: a message plus the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_owned(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_with_accessors() {
        let doc = parse(r#"{"a": [1, 2, {"b": "x"}], "n": 7, "t": 0.25}"#).unwrap();
        assert_eq!(doc.u64_of("n"), Some(7));
        assert_eq!(doc.f64_of("t"), Some(0.25));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].str_of("b"), Some("x"));
        assert_eq!(doc.str_of("missing"), None);
        assert_eq!(doc.get("n").unwrap().as_str(), None);
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let doc = parse(r#""a\n\t\"\\\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str().unwrap(), "a\n\t\"\\Aé😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "\"\\ud800\"",
            "\"\x01\"",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_protects_the_stack() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"));
        // Within the limit is fine.
        let ok = "[".repeat(90) + &"]".repeat(90);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn fractional_u64_is_rejected() {
        let doc = parse("{\"x\": 1.5}").unwrap();
        assert_eq!(doc.u64_of("x"), None);
        assert_eq!(doc.f64_of("x"), Some(1.5));
        let neg = parse("{\"x\": -2}").unwrap();
        assert_eq!(neg.u64_of("x"), None);
    }

    #[test]
    fn round_trips_writer_output() {
        let mut w = telemetry::json::JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("tri\tad \"q\"");
        w.key("vals");
        w.begin_array();
        for v in [1.0, 2.5, 3.25e-9] {
            w.number(v);
        }
        w.end_array();
        w.key("n");
        w.int(3);
        w.end_object();
        let doc = parse(&w.finish()).unwrap();
        assert_eq!(doc.str_of("name"), Some("tri\tad \"q\""));
        assert_eq!(doc.u64_of("n"), Some(3));
        let vals = doc.get("vals").unwrap().as_arr().unwrap();
        assert_eq!(vals[2].as_f64(), Some(3.25e-9));
    }
}
