//! The process-wide metrics registry: named histograms and labelled
//! gauges/counters, recorded into per-thread shards.
//!
//! Recording follows the same discipline as the telemetry rings: each
//! recording thread owns one shard behind its own mutex, uncontended in
//! the steady state because the only other party that ever locks it is
//! [`Registry::flush`]. Every recording entry point is guarded by
//! [`telemetry::enabled`], so with telemetry off a call site costs one
//! relaxed atomic load and branch — nothing is hashed, locked or
//! allocated, and nothing in the engine ever reads the registry back,
//! so enabling metrics cannot perturb a session ledger.
//!
//! [`ingest_events`] folds a flushed telemetry trace into the registry
//! (per-kernel launch-wall histograms, region/reduce/phase timings);
//! [`kernel_stats`] summarises the launch spans of a trace per kernel,
//! which is what run manifests store.

use crate::hist::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use telemetry::{Event, SpanKind};

/// Swallow poison, as the telemetry rings do: a panicked recorder
/// leaves a structurally intact shard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Metric identity: a name plus an optional label (kernel, phase,
/// platform, ... — empty when unlabelled).
pub type Key = (String, String);

#[derive(Default)]
struct Shard {
    hists: HashMap<Key, Histogram>,
    counters: HashMap<Key, u64>,
    /// Gauge value plus a global write ticket: merge keeps the latest.
    gauges: HashMap<Key, (f64, u64)>,
}

impl Shard {
    fn merge_into(&mut self, out: &mut Snapshot) {
        for (k, h) in self.hists.drain() {
            out.hists.entry(k).or_default().merge(&h);
        }
        for (k, n) in self.counters.drain() {
            *out.counters.entry(k).or_default() += n;
        }
        for (k, (v, seq)) in self.gauges.drain() {
            let e = out.gauges.entry(k).or_insert((v, seq));
            if seq >= e.1 {
                *e = (v, seq);
            }
        }
    }
}

/// A merged, plain-value view of the registry at one flush.
#[derive(Default)]
pub struct Snapshot {
    pub hists: HashMap<Key, Histogram>,
    pub counters: HashMap<Key, u64>,
    gauges: HashMap<Key, (f64, u64)>,
}

impl Snapshot {
    /// Histogram for (name, label), if recorded.
    pub fn hist(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.hists.get(&(name.to_owned(), label.to_owned()))
    }

    /// Counter value for (name, label), 0 when never bumped.
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .get(&(name.to_owned(), label.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Latest gauge value for (name, label).
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges
            .get(&(name.to_owned(), label.to_owned()))
            .map(|(v, _)| *v)
    }

    /// All histogram keys, sorted (for deterministic rendering).
    pub fn hist_keys(&self) -> Vec<&Key> {
        let mut keys: Vec<&Key> = self.hists.keys().collect();
        keys.sort();
        keys
    }
}

/// The registry: a list of per-thread shards plus the gauge ticket.
pub struct Registry {
    shards: Mutex<Vec<Arc<Mutex<Shard>>>>,
    gauge_seq: AtomicU64,
}

thread_local! {
    static TL_SHARD: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        let mut reg = lock(&registry().shards);
        reg.push(Arc::clone(&shard));
        shard
    };
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry {
        shards: Mutex::new(Vec::new()),
        gauge_seq: AtomicU64::new(0),
    };
    &REGISTRY
}

impl Registry {
    /// Record `value` into the histogram `name` (unlabelled). One
    /// branch when telemetry is disabled.
    #[inline]
    pub fn record(&self, name: &str, value: f64) {
        self.record_labelled(name, "", value);
    }

    /// Record `value` into the histogram (`name`, `label`).
    #[inline]
    pub fn record_labelled(&self, name: &str, label: &str, value: f64) {
        if !telemetry::enabled() {
            return;
        }
        self.record_always(name, label, value);
    }

    /// Record unconditionally (used when folding in an already-captured
    /// trace, where the enabled check happened at capture time).
    pub fn record_always(&self, name: &str, label: &str, value: f64) {
        TL_SHARD.with(|shard| {
            lock(shard)
                .hists
                .entry((name.to_owned(), label.to_owned()))
                .or_default()
                .record(value);
        });
    }

    /// Add `n` to the counter (`name`, `label`).
    #[inline]
    pub fn add(&self, name: &str, label: &str, n: u64) {
        if !telemetry::enabled() {
            return;
        }
        TL_SHARD.with(|shard| {
            *lock(shard)
                .counters
                .entry((name.to_owned(), label.to_owned()))
                .or_default() += n;
        });
    }

    /// Set the gauge (`name`, `label`). Last write (by a global
    /// ticket) wins at merge.
    #[inline]
    pub fn gauge(&self, name: &str, label: &str, value: f64) {
        if !telemetry::enabled() {
            return;
        }
        let seq = self.gauge_seq.fetch_add(1, Ordering::Relaxed);
        TL_SHARD.with(|shard| {
            lock(shard)
                .gauges
                .insert((name.to_owned(), label.to_owned()), (value, seq));
        });
    }

    /// Drain every thread's shard into one merged [`Snapshot`].
    /// Flushed values are removed from the shards (counters restart at
    /// zero), mirroring `telemetry::flush`.
    pub fn flush(&self) -> Snapshot {
        let shards: Vec<Arc<Mutex<Shard>>> = lock(&self.shards).iter().map(Arc::clone).collect();
        let mut out = Snapshot::default();
        for shard in shards {
            lock(&shard).merge_into(&mut out);
        }
        out
    }
}

/// Fold a flushed telemetry trace into the registry: wall-clock
/// histograms per span kind, labelled by kernel / phase name for
/// launches and phases.
pub fn ingest_events(events: &[Event]) {
    let r = registry();
    for e in events {
        let secs = e.dur_ns as f64 / 1e9;
        match e.kind {
            SpanKind::Launch => {
                r.record_always("launch.wall_secs", e.name.as_str(), secs);
                if e.sim_secs > 0.0 {
                    r.record_always("launch.sim_secs", e.name.as_str(), e.sim_secs);
                }
            }
            SpanKind::Region => r.record_always("region.wall_secs", "", secs),
            SpanKind::Reduce => r.record_always("reduce.wall_secs", "", secs),
            SpanKind::Phase => r.record_always("phase.wall_secs", e.name.as_str(), secs),
            SpanKind::Replay => r.record_always("replay.wall_secs", e.name.as_str(), secs),
            SpanKind::Shard => r.record_always("shard.wall_secs", e.name.as_str(), secs),
            SpanKind::Unit => r.record_always("unit.wall_secs", e.name.as_str(), secs),
        }
    }
}

/// Per-kernel summary of the launch spans of a trace: the wall-clock
/// distribution plus the priced seconds and effective bytes the
/// launches carried.
#[derive(Debug, Clone)]
pub struct KernelStats {
    pub name: String,
    pub wall: Histogram,
    pub sim_secs: f64,
    pub bytes: f64,
}

impl KernelStats {
    /// Achieved bandwidth under the simulated clock, GB/s.
    pub fn sim_gbps(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.bytes / self.sim_secs / 1e9
        } else {
            0.0
        }
    }
}

/// Summarise [`SpanKind::Launch`] spans per kernel, sorted by total
/// wall time, descending.
pub fn kernel_stats(events: &[Event]) -> Vec<KernelStats> {
    let mut by_name: HashMap<&str, KernelStats> = HashMap::new();
    for e in events.iter().filter(|e| e.kind == SpanKind::Launch) {
        let s = by_name
            .entry(e.name.as_str())
            .or_insert_with(|| KernelStats {
                name: e.name.as_str().to_owned(),
                wall: Histogram::new(),
                sim_secs: 0.0,
                bytes: 0.0,
            });
        s.wall.record(e.dur_ns as f64 / 1e9);
        s.sim_secs += e.sim_secs;
        s.bytes += e.bytes;
    }
    let mut out: Vec<KernelStats> = by_name.into_values().collect();
    out.sort_by(|a, b| b.wall.sum().total_cmp(&a.wall.sum()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{Name, TelemetryConfig};

    /// The registry and the telemetry enabled flag are process-global;
    /// serialise the tests that install configs or flush.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn ev(name: &'static str, kind: SpanKind, dur_ns: u64, bytes: f64, sim: f64) -> Event {
        Event {
            seq: 1,
            kind,
            name: Name::Static(name),
            start_ns: 0,
            dur_ns,
            thread: 0,
            items: 1,
            bytes,
            sim_secs: sim,
        }
    }

    #[test]
    fn disabled_recording_is_dropped_enabled_is_kept() {
        let _serial = lock(&SERIAL);
        TelemetryConfig::disabled().install();
        registry().record("t.disabled", 1.0);
        registry().add("t.disabled", "", 5);
        let snap = registry().flush();
        assert!(snap.hist("t.disabled", "").is_none());
        assert_eq!(snap.counter("t.disabled", ""), 0);

        TelemetryConfig::enabled().install();
        registry().record("t.enabled", 2.5);
        registry().add("t.enabled", "x", 5);
        registry().gauge("t.enabled.g", "", 7.0);
        TelemetryConfig::disabled().install();
        let snap = registry().flush();
        assert_eq!(snap.hist("t.enabled", "").unwrap().count(), 1);
        assert_eq!(snap.counter("t.enabled", "x"), 5);
        assert_eq!(snap.gauge("t.enabled.g", ""), Some(7.0));
        // Flush drained the shards.
        let again = registry().flush();
        assert!(again.hist("t.enabled", "").is_none());
    }

    #[test]
    fn shards_merge_across_threads() {
        let _serial = lock(&SERIAL);
        TelemetryConfig::enabled().install();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..100 {
                        registry().record_labelled("t.sharded", "k", (t * 100 + i) as f64 + 1.0);
                        registry().add("t.sharded.n", "", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        TelemetryConfig::disabled().install();
        let snap = registry().flush();
        let h = snap.hist("t.sharded", "k").unwrap();
        assert_eq!(h.count(), 400);
        assert_eq!(h.max(), 400.0);
        assert_eq!(snap.counter("t.sharded.n", ""), 400);
    }

    #[test]
    fn ingest_routes_span_kinds() {
        let _serial = lock(&SERIAL);
        let events = vec![
            ev("k1", SpanKind::Launch, 1000, 8e6, 1e-4),
            ev("k1", SpanKind::Launch, 2000, 8e6, 1e-4),
            ev("p", SpanKind::Phase, 5000, 0.0, 0.0),
            ev("r", SpanKind::Region, 100, 0.0, 0.0),
            ev("d", SpanKind::Reduce, 100, 0.0, 0.0),
        ];
        ingest_events(&events);
        let snap = registry().flush();
        assert_eq!(snap.hist("launch.wall_secs", "k1").unwrap().count(), 2);
        assert_eq!(snap.hist("launch.sim_secs", "k1").unwrap().count(), 2);
        assert_eq!(snap.hist("phase.wall_secs", "p").unwrap().count(), 1);
        assert_eq!(snap.hist("region.wall_secs", "").unwrap().count(), 1);
        assert_eq!(snap.hist("reduce.wall_secs", "").unwrap().count(), 1);
    }

    #[test]
    fn kernel_stats_aggregate_launches_only() {
        let events = vec![
            ev("hot", SpanKind::Launch, 10_000, 1e6, 1e-5),
            ev("hot", SpanKind::Launch, 30_000, 1e6, 1e-5),
            ev("cold", SpanKind::Launch, 5_000, 2e6, 2e-5),
            ev("noise", SpanKind::Region, 999_999, 0.0, 0.0),
        ];
        let stats = kernel_stats(&events);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "hot", "sorted by total wall");
        assert_eq!(stats[0].wall.count(), 2);
        assert!((stats[0].bytes - 2e6).abs() < 1.0);
        assert!((stats[1].sim_gbps() - 2e6 / 2e-5 / 1e9).abs() < 1e-9);
    }
}
