//! Order statistics and the bootstrap behind the regression gate.
//!
//! The gate never compares two single numbers: each benchmark runs
//! several repetitions, and the question "did it get slower?" is asked
//! of the two *samples*. Two complementary tests are used:
//!
//! * **Interquartile separation** — the current run's lower quartile
//!   sits above the baseline's upper quartile, i.e. the middle halves
//!   of the two distributions do not even touch. Robust and scale-free
//!   but blunt (small consistent shifts keep overlap).
//! * **Bootstrap ratio CI** ([`bootstrap_ratio_ci`]) — resample both
//!   repetition sets with replacement, form the ratio of medians, and
//!   take the 2.5 %/97.5 % percentiles of the resampled ratios. The
//!   resampler is a seeded xorshift64*, so a gate run is reproducible.
//!
//! Degenerate samples are first-class: deterministic simulated runtimes
//! repeat exactly, giving zero-variance samples whose bootstrap CI
//! collapses to a point — the ratio test still reads correctly.

/// Median of a sample (not required to be sorted). 0.0 when empty.
pub fn median(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut s = sample.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// (q1, median, q3) by linear interpolation. Zeros when empty.
pub fn quartiles(sample: &[f64]) -> (f64, f64, f64) {
    if sample.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut s = sample.to_vec();
    s.sort_by(f64::total_cmp);
    let at = |q: f64| -> f64 {
        let pos = q * (s.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    };
    (at(0.25), at(0.5), at(0.75))
}

/// xorshift64* — the workspace's stock seeded generator (no `rand`).
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: seed.max(1), // the all-zero state is absorbing
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index into `0..n`.
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Bootstrap confidence interval on `median(current) / median(baseline)`.
///
/// Draws `iters` resamples (with replacement) from each sample, forms
/// the ratio of resampled medians, and returns the (2.5 %, 97.5 %)
/// percentiles of those ratios. Deterministic for a given `seed`.
/// Returns `(1.0, 1.0)` when either sample is empty or the baseline
/// median is zero (nothing meaningful to compare).
pub fn bootstrap_ratio_ci(
    current: &[f64],
    baseline: &[f64],
    iters: usize,
    seed: u64,
) -> (f64, f64) {
    if current.is_empty() || baseline.is_empty() || median(baseline) == 0.0 {
        return (1.0, 1.0);
    }
    let mut rng = XorShift64::new(seed);
    let mut ratios = Vec::with_capacity(iters);
    let mut cur = vec![0.0; current.len()];
    let mut base = vec![0.0; baseline.len()];
    for _ in 0..iters {
        for c in cur.iter_mut() {
            *c = current[rng.index(current.len())];
        }
        for b in base.iter_mut() {
            *b = baseline[rng.index(baseline.len())];
        }
        let mb = median(&base);
        if mb > 0.0 {
            ratios.push(median(&cur) / mb);
        }
    }
    if ratios.is_empty() {
        return (1.0, 1.0);
    }
    ratios.sort_by(f64::total_cmp);
    let pick =
        |q: f64| ratios[((q * (ratios.len() - 1) as f64).round() as usize).min(ratios.len() - 1)];
    (pick(0.025), pick(0.975))
}

/// A per-platform tolerance band: the slowdown ratio a kernel may show
/// before the gate treats it as a candidate regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum acceptable `current / baseline` median ratio.
    pub max_ratio: f64,
}

impl Tolerance {
    /// A band allowing `pct` percent slowdown (`Tolerance::percent(5.0)`
    /// accepts ratios up to 1.05).
    pub fn percent(pct: f64) -> Tolerance {
        Tolerance {
            max_ratio: 1.0 + pct.max(0.0) / 100.0,
        }
    }

    /// For simulated (deterministic) runtimes: they repeat bit-exactly,
    /// so any drift is a model change — 2 %.
    pub fn sim() -> Tolerance {
        Tolerance::percent(2.0)
    }

    /// For wall-clock timings on shared CI hosts: noisy — 30 %.
    pub fn wall() -> Tolerance {
        Tolerance::percent(30.0)
    }

    /// Platform-class band for simulated runtimes: the deterministic
    /// model repeats exactly everywhere, but GPU platforms price from
    /// coarser STREAM/roofline figures, so give them a point more slack.
    pub fn for_platform(platform: &str) -> Tolerance {
        let p = platform.to_ascii_lowercase();
        let gpu = ["a100", "v100", "h100", "mi100", "mi250", "pvc", "gpu"]
            .iter()
            .any(|k| p.contains(k));
        if gpu {
            Tolerance::percent(3.0)
        } else {
            Tolerance::sim()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quartiles_interpolate() {
        let (q1, q2, q3) = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!((q1, q2, q3), (2.0, 3.0, 4.0));
        let (q1, _, q3) = quartiles(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q1, 1.75);
        assert_eq!(q3, 3.25);
        assert_eq!(quartiles(&[7.0]), (7.0, 7.0, 7.0));
    }

    #[test]
    fn bootstrap_is_deterministic_for_a_seed() {
        let cur = [1.1, 1.2, 1.15, 1.18, 1.12];
        let base = [1.0, 1.02, 0.98, 1.01, 0.99];
        let a = bootstrap_ratio_ci(&cur, &base, 500, 42);
        let b = bootstrap_ratio_ci(&cur, &base, 500, 42);
        assert_eq!(a, b);
        let c = bootstrap_ratio_ci(&cur, &base, 500, 43);
        // A different seed may move the endpoints a little, never a lot.
        assert!((a.0 - c.0).abs() < 0.1);
    }

    #[test]
    fn bootstrap_ci_brackets_a_real_slowdown() {
        let base = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0];
        let cur: Vec<f64> = base.iter().map(|v| v * 1.5).collect();
        let (lo, hi) = bootstrap_ratio_ci(&cur, &base, 1000, 7);
        assert!(lo > 1.2, "lower bound {lo} should be well above 1");
        assert!(hi < 1.8, "upper bound {hi} should bracket 1.5");
    }

    #[test]
    fn bootstrap_ci_straddles_one_for_identical_samples() {
        let s = [1.0, 1.05, 0.95, 1.02, 0.98];
        let (lo, hi) = bootstrap_ratio_ci(&s, &s, 1000, 7);
        assert!(lo <= 1.0 && hi >= 1.0, "({lo}, {hi}) should contain 1");
    }

    #[test]
    fn zero_variance_samples_collapse_to_a_point() {
        let base = [2.0, 2.0, 2.0];
        let cur = [2.5, 2.5, 2.5];
        let (lo, hi) = bootstrap_ratio_ci(&cur, &base, 200, 1);
        assert_eq!((lo, hi), (1.25, 1.25));
        let same = bootstrap_ratio_ci(&base, &base, 200, 1);
        assert_eq!(same, (1.0, 1.0));
    }

    #[test]
    fn degenerate_inputs_return_unit_ratio() {
        assert_eq!(bootstrap_ratio_ci(&[], &[1.0], 100, 1), (1.0, 1.0));
        assert_eq!(bootstrap_ratio_ci(&[1.0], &[], 100, 1), (1.0, 1.0));
        assert_eq!(bootstrap_ratio_ci(&[1.0], &[0.0], 100, 1), (1.0, 1.0));
    }

    #[test]
    fn tolerance_bands() {
        assert!((Tolerance::percent(5.0).max_ratio - 1.05).abs() < 1e-12);
        assert_eq!(Tolerance::percent(-3.0).max_ratio, 1.0);
        assert!(Tolerance::wall().max_ratio > Tolerance::sim().max_ratio);
        assert!(
            Tolerance::for_platform("nvidia-a100").max_ratio
                > Tolerance::for_platform("xeon-8360y").max_ratio
        );
    }
}
