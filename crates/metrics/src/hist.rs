//! Log-bucketed, mergeable histograms.
//!
//! A [`Histogram`] sketches a distribution of positive values in
//! logarithmic buckets: 8 sub-buckets per octave, covering 2⁻⁴⁰..2⁴⁰
//! (≈ 1e-12 .. 1e12), so a bucketed quantile is within ~9 % of the true
//! value (half a sub-bucket) at any scale — nanoseconds or gigabytes.
//! Count, sum, sum-of-squares, min and max are tracked exactly, so mean
//! and the 95 % confidence interval carry no bucketing error.
//!
//! Histograms **merge**: two sketches combine bucket-by-bucket
//! ([`Histogram::merge`]), which is what lets the registry keep one
//! shard per thread and fold them on flush, and lets manifests combine
//! per-repetition summaries without keeping raw samples.

/// Sub-buckets per power of two.
const SUB: usize = 8;
/// Lowest representable octave (2^MIN_OCT is the left edge of bucket 0).
const MIN_OCT: i64 = -40;
/// Octaves covered.
const OCTAVES: usize = 80;
/// Total bucket count.
const BUCKETS: usize = SUB * OCTAVES;

/// A mergeable log-bucketed distribution sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket occupancy; allocated on first record (empty = all zero).
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a positive finite value.
fn bucket_of(v: f64) -> usize {
    let oct = v.log2();
    let idx = (oct * SUB as f64).floor() as i64 - MIN_OCT * SUB as i64;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Geometric midpoint of a bucket.
fn representative(idx: usize) -> f64 {
    let oct = (idx as f64 + 0.5) / SUB as f64 + MIN_OCT as f64;
    oct.exp2()
}

impl Histogram {
    /// An empty histogram (no allocation until the first record).
    pub fn new() -> Histogram {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one value. Non-finite values are dropped; zero and
    /// negative values land in the lowest bucket (they still count
    /// exactly in mean/min/max).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        let idx = if v > 0.0 { bucket_of(v) } else { 0 };
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`, bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum / maximum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0.0 for n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
        var.max(0.0).sqrt()
    }

    /// Half-width of the 95 % confidence interval on the mean
    /// (1.96·σ/√n; 0.0 for n < 2).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Bucketed quantile, `q` in [0, 1]: the geometric midpoint of the
    /// bucket holding the ⌈q·n⌉-th value, clamped into [min, max] so a
    /// one-value histogram reports that value exactly.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return representative(idx).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Summarise for a manifest / table row.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            ci95: self.ci95(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            min: self.min(),
            max: self.max(),
            sum: self.sum(),
        }
    }
}

/// Plain-value summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    /// Half-width of the 95 % CI on the mean.
    pub ci95: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    /// 99.9th percentile — the tail the admission-latency study gates
    /// on. Parses as 0.0 from manifests written before it existed.
    pub p999: f64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-6); // 1µs .. 1ms
        }
        // Half a sub-bucket of slack either way: 2^(1/8) ≈ 1.09.
        let tol = 1.10;
        for (q, exact) in [(0.5, 500e-6), (0.9, 900e-6), (0.99, 990e-6)] {
            let got = h.quantile(q);
            assert!(
                got > exact / tol && got < exact * tol,
                "q{q}: {got} vs {exact}"
            );
        }
        assert_eq!(h.max(), 1000e-6);
        assert!((h.mean() - 500.5e-6).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..500 {
            let v = (i as f64 * 0.37).sin().abs() + 0.01;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            whole.record(v);
        }
        a.merge(&b);
        // Buckets and exact fields match; the float sums may differ in
        // the last ulp (different summation order).
        assert_eq!(a.counts, whole.counts);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.sum() - whole.sum()).abs() < 1e-9 * whole.sum().abs());
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut src = Histogram::new();
        src.record(3.0);
        src.record(5.0);
        let mut dst = Histogram::new();
        dst.merge(&src);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.min(), 3.0);
        assert_eq!(dst.max(), 5.0);
        // Merging an empty one changes nothing.
        dst.merge(&Histogram::new());
        assert_eq!(dst.count(), 2);
    }

    #[test]
    fn single_value_reports_exactly() {
        let mut h = Histogram::new();
        h.record(42.0);
        // Clamped into [min, max] — exact despite bucketing.
        assert_eq!(h.quantile(0.5), 42.0);
        assert_eq!(h.quantile(0.99), 42.0);
        assert_eq!(h.mean(), 42.0);
        assert_eq!(h.ci95(), 0.0);
    }

    #[test]
    fn extreme_and_bad_values_are_safe() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0, "non-finite values are dropped");
        h.record(0.0);
        h.record(-1.0);
        h.record(1e300); // clamps to the top bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 1e300);
    }

    #[test]
    fn ci_shrinks_with_sample_count() {
        let mut small = Histogram::new();
        let mut large = Histogram::new();
        for i in 0..10 {
            small.record(1.0 + (i % 3) as f64 * 0.1);
        }
        for i in 0..1000 {
            large.record(1.0 + (i % 3) as f64 * 0.1);
        }
        assert!(large.ci95() < small.ci95());
        assert!(small.ci95() > 0.0);
    }
}
