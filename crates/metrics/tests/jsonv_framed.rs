//! `metrics::jsonv` against hostile framed input.
//!
//! The study runner's worker protocol ships JSON documents over pipes
//! in length-prefixed frames. A crashing or killed worker can leave the
//! orchestrator holding *partially received* bytes, and a buggy peer
//! can claim absurd lengths — so the value parser behind
//! `RunManifest::parse` must reject every truncation of a valid
//! document with an error (never a panic or a wrong value), and must
//! stay robust when fed oversized-but-valid payloads.

use metrics::jsonv::{self, Json};
use metrics::{Histogram, KernelSummary, Provenance, RunManifest};
use telemetry::CounterSnapshot;

/// A realistic study-cell manifest: escapes, provenance, samples.
fn wire_manifest() -> RunManifest {
    let samples = vec![1.25e-3, 9.0e-4, 1.5e-3, 1.1e-3];
    let mut h = Histogram::new();
    for &s in &samples {
        h.record(s);
    }
    RunManifest {
        name: "study-shard1of2".into(),
        git_rev: "abc1234".into(),
        platform: "cross-product".into(),
        threads: 4,
        repetitions: 4,
        created_unix_secs: 1_750_000_000,
        kernels: vec![KernelSummary {
            name: "study/cloverleaf2d@a100/DPC++ \"ndrange\"".into(),
            wall: h.summary(),
            samples,
            sim_secs: 2.75,
            bytes: 1.9e11,
            gbps: 69.0,
            origin: Some(Provenance {
                worker: 2,
                attempt: 3,
                trace: 41,
            }),
        }],
        counters: CounterSnapshot {
            launches: 88,
            bytes_moved: 1 << 33,
            ..Default::default()
        },
    }
}

#[test]
fn every_truncation_of_a_manifest_errors_cleanly() {
    let doc = wire_manifest().to_json();
    // Cut at every byte boundary (skip cuts inside multi-byte UTF-8 —
    // the frame layer delivers whole UTF-8 strings or nothing).
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let partial = &doc[..cut];
        // The value parser must error (a truncated JSON document is
        // never a complete object)...
        let err = jsonv::parse(partial).expect_err("truncated doc must not parse");
        assert!(
            err.at <= partial.len(),
            "error offset {} beyond input length {}",
            err.at,
            partial.len()
        );
        // ...and the manifest layer must surface an error, not panic.
        assert!(RunManifest::parse(partial).is_err());
    }
    // The untruncated document still round-trips exactly.
    assert_eq!(RunManifest::parse(&doc).unwrap(), wire_manifest());
}

#[test]
fn truncation_inside_escapes_is_an_error_not_a_panic() {
    // Strings ending mid-escape are the nastiest cut points; exercise
    // them directly rather than relying on the sweep above to hit one.
    for bad in [
        "{\"name\": \"a\\",
        "{\"name\": \"a\\u",
        "{\"name\": \"a\\u00",
        "{\"name\": \"a\\ud83d",
        "{\"name\": \"a\\ud83d\\u",
        "{\"name\": \"a\\ud83d\\ude0",
    ] {
        assert!(jsonv::parse(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn oversized_sample_arrays_parse_without_issue() {
    // A worker streaming a large unit (100k repetition samples) is
    // legitimate; size alone must not break the parser.
    let mut m = wire_manifest();
    let big: Vec<f64> = (0..100_000).map(|i| 1e-6 + i as f64 * 1e-9).collect();
    let mut h = Histogram::new();
    for &s in &big {
        h.record(s);
    }
    m.kernels[0].wall = h.summary();
    m.kernels[0].samples = big;
    let doc = m.to_json();
    assert!(doc.len() > 1_000_000, "document is actually large");
    let back = RunManifest::parse(&doc).unwrap();
    assert_eq!(back.kernels[0].samples.len(), 100_000);
    assert_eq!(back, m);
}

#[test]
fn oversized_strings_and_numbers_are_handled() {
    // A 4 MiB kernel name (hostile but valid JSON) round-trips...
    let long = "k".repeat(4 << 20);
    let doc = format!("{{\"name\": \"{long}\"}}");
    assert_eq!(jsonv::parse(&doc).unwrap().str_of("name"), Some(&long[..]));
    // ...while an enormous exponent is rejected as out of range, and a
    // kilometre of digits parses to a finite value without slowdown.
    assert!(jsonv::parse("1e99999").is_err());
    let digits = "9".repeat(1000);
    assert!(jsonv::parse(&digits).is_err(), "overflows to non-finite");
    let frac = format!("0.{}", "3".repeat(1000));
    assert_eq!(
        jsonv::parse(&frac).unwrap(),
        Json::Num(frac.parse::<f64>().unwrap())
    );
}

#[test]
fn nesting_bombs_error_instead_of_overflowing_the_stack() {
    // A worker replaced by a fork bomb of '[' must not take the
    // orchestrator down with it. (jsonv's own unit test covers 2000
    // levels; a frame-sized payload is ~16 MiB of nesting.)
    for n in [200usize, 100_000, 1 << 22] {
        let bomb = "[".repeat(n);
        assert!(jsonv::parse(&bomb).is_err());
        let closed = format!("{}{}", "[".repeat(n), "]".repeat(n));
        assert!(jsonv::parse(&closed).is_err(), "depth {n} must be rejected");
    }
}

#[test]
fn garbage_prefixes_and_suffixes_error() {
    let doc = wire_manifest().to_json();
    for mangled in [
        format!("SYF1{doc}"),            // magic bytes leaked into payload
        format!("{doc}{doc}"),           // two frames glued together
        format!("{doc}\u{0}"),           // NUL-padded short read
        doc.replace("schema", "\u{8}x"), // control chars mid-document
    ] {
        assert!(RunManifest::parse(&mangled).is_err());
    }
}
