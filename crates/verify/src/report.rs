//! JSON rendering for verification results (`results/VERIFY_<app>.json`).

use crate::{Diagnostic, Severity};
use telemetry::json::JsonWriter;

/// Counts by severity.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut errors = 0;
    let mut warnings = 0;
    let mut infos = 0;
    for d in diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Info => infos += 1,
        }
    }
    (errors, warnings, infos)
}

/// Write one app's verification result as an object:
/// `{"app": ..., "errors": n, "warnings": n, "infos": n,
///   "diagnostics": [{"severity", "pass", "kernel", "detail"}, ...]}`.
pub fn write_app_report(w: &mut JsonWriter, app: &str, diags: &[Diagnostic]) {
    let (errors, warnings, infos) = tally(diags);
    w.begin_object();
    w.key("app").string(app);
    w.key("errors").int(errors as u64);
    w.key("warnings").int(warnings as u64);
    w.key("infos").int(infos as u64);
    w.key("diagnostics").begin_array();
    for d in diags {
        w.begin_object();
        w.key("severity").string(&d.severity.to_string());
        w.key("pass").string(&d.pass.to_string());
        w.key("kernel").string(&d.kernel);
        w.key("detail").string(&d.detail);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// Render a standalone single-app document.
pub fn render_app_report(app: &str, diags: &[Diagnostic]) -> String {
    let mut w = JsonWriter::new();
    write_app_report(&mut w, app, diags);
    w.finish()
}
