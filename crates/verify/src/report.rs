//! JSON rendering for verification results (`results/VERIFY_<app>.json`).

use crate::{Diagnostic, Severity};
use telemetry::json::JsonWriter;

/// Counts by severity.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut errors = 0;
    let mut warnings = 0;
    let mut infos = 0;
    for d in diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Info => infos += 1,
        }
    }
    (errors, warnings, infos)
}

/// Collapse repeated identical findings (same severity, pass, kernel and
/// detail — e.g. one per colour pass or per boundary face) into one
/// entry with a repeat count, preserving first-occurrence order.
pub fn dedup(diags: &[Diagnostic]) -> Vec<(&Diagnostic, usize)> {
    let mut out: Vec<(&Diagnostic, usize)> = Vec::new();
    for d in diags {
        if let Some(e) = out.iter_mut().find(|(p, _)| {
            p.severity == d.severity
                && p.pass == d.pass
                && p.kernel == d.kernel
                && p.detail == d.detail
        }) {
            e.1 += 1;
        } else {
            out.push((d, 1));
        }
    }
    out
}

/// Write one app's verification result as an object:
/// `{"app": ..., "errors": n, "warnings": n, "infos": n,
///   "diagnostics": [{"severity", "pass", "kernel", "detail", "count"}, ...]}`.
/// Identical repeated diagnostics collapse into one entry with a
/// `count`; the severity tallies count deduplicated entries.
pub fn write_app_report(w: &mut JsonWriter, app: &str, diags: &[Diagnostic]) {
    let unique = dedup(diags);
    let (mut errors, mut warnings, mut infos) = (0usize, 0usize, 0usize);
    for (d, _) in &unique {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Info => infos += 1,
        }
    }
    w.begin_object();
    w.key("app").string(app);
    w.key("errors").int(errors as u64);
    w.key("warnings").int(warnings as u64);
    w.key("infos").int(infos as u64);
    w.key("diagnostics").begin_array();
    for (d, count) in unique {
        w.begin_object();
        w.key("severity").string(&d.severity.to_string());
        w.key("pass").string(&d.pass.to_string());
        w.key("kernel").string(&d.kernel);
        w.key("detail").string(&d.detail);
        w.key("count").int(count as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// Render a standalone single-app document.
pub fn render_app_report(app: &str, diags: &[Diagnostic]) -> String {
    let mut w = JsonWriter::new();
    write_app_report(&mut w, app, diags);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pass;

    fn diag(kernel: &str, detail: &str) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            kernel: kernel.to_owned(),
            pass: Pass::Dataflow,
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn identical_diagnostics_collapse_with_a_count() {
        let diags = vec![
            diag("update_halo", "same thing"),
            diag("update_halo", "same thing"),
            diag("update_halo", "same thing"),
            diag("update_halo", "different thing"),
        ];
        let unique = dedup(&diags);
        assert_eq!(unique.len(), 2);
        assert_eq!(unique[0].1, 3);
        assert_eq!(unique[1].1, 1);
        let json = render_app_report("x", &diags);
        assert!(json.contains("\"count\": 3"), "{json}");
        assert!(json.contains("\"warnings\": 2"), "{json}");
    }
}
