//! Static dataflow analysis over recorded launch graphs.
//!
//! A [`GraphSummary`] is an owned, bodyless snapshot of a recorded
//! [`sycl_sim::LaunchGraph`]: the op sequence plus each launch's declared
//! per-dat accesses (mode, stencil radius, element width) and iteration
//! range. Because a graph is recorded once and replayed many times, a
//! single static pass over the summary covers *every* iteration of the
//! app's time loop — no kernel execution required.
//!
//! The linter builds the dat-level dependency timeline and reports:
//!
//! * structural defects — unbalanced `phase`/`end_phase` nesting
//!   captured at record time;
//! * intra-launch hazards — a single parallel launch that both reads and
//!   writes the same dat through separate arguments (work-items race),
//!   with the reflective-boundary read-write-stencil idiom downgraded to
//!   an Info;
//! * missing halo exchanges — a dat that some launch stencil-reads and
//!   some launch writes, on a multi-rank decomposition, with no recorded
//!   exchange refreshing it;
//! * stale-halo reads — a stencil read that follows a write of the same
//!   dat with no exchange in between (positional, cyclic);
//! * dead code — writes overwritten before any read, dats written but
//!   never read, transfers delivering bytes that are only overwritten,
//!   launches that neither write nor reduce;
//! * redundant back-to-back exchanges of the same dats;
//! * resident transfers — uploads/downloads of dats whose host/device
//!   residency (tracked from the graph's own transfers and writes)
//!   already matches: the runtime elides them, so the node is noise;
//! * per-platform scheme legality — f64 atomics on hardware that
//!   compiles them to CAS loops;
//! * fusion candidates — maximal chains of adjacent, same-range,
//!   hazard-free launches, with the bytes and launch overheads a fused
//!   kernel would save priced from the machine model.
//!
//! All analysis is *cyclic*: graphs are replayed in a loop, so the node
//! after the last is the first. A write whose next cyclic access is
//! another write really is dead on every iteration but the final one.
//!
//! [`cross_check`] reconciles the static verdicts with dynamic shadow
//! evidence: a kernel whose declaration lints clean but whose
//! instrumented run raced has under-declared its stencil.

use crate::{Diagnostic, Pass, Severity};
use std::collections::{BTreeMap, BTreeSet};
use sycl_sim::{AccessMode, GraphNodeInfo, GraphSummary, TransferDir};

/// Machine-model facts the lints price against.
#[derive(Debug, Clone)]
pub struct LintContext {
    /// MPI ranks of the session the graph was recorded for. Halo lints
    /// only apply when > 1 (single-rank plans exchange zero bytes and
    /// record no exchange nodes).
    pub ranks: usize,
    /// Streaming bandwidth (bytes/s) used to price fusion savings.
    pub stream_bw: f64,
    /// Per-launch overhead (s) of the platform/toolchain pair.
    pub launch_overhead: f64,
    /// True when the platform compiles f64 atomics to CAS loops.
    pub cas_atomics: bool,
    /// Platform label for messages.
    pub platform: String,
}

/// Resolves a shadow dat id to its registered name.
pub type DatResolver<'a> = dyn Fn(u32) -> Option<String> + 'a;

fn dat_label(resolve: &DatResolver, id: u32) -> String {
    resolve(id).unwrap_or_else(|| format!("dat#{id}"))
}

/// One launch's analysable view, indexed by op position.
struct L<'a> {
    op: usize,
    kernel: &'a str,
    meta: &'a sycl_sim::LaunchMeta,
    reductions: usize,
    fp64: bool,
    atomic_updates: u64,
}

/// What one op does to one dat, in op order.
#[derive(Clone, Copy, PartialEq)]
enum Ev {
    /// Pure read; `stencil` when the declared radius is non-zero.
    Read {
        stencil: bool,
    },
    Write,
    ReadWrite,
    Exchange,
    Transfer,
}

impl Ev {
    fn reads(self) -> bool {
        // An exchange sends the dat's boundary values (a read); a
        // transfer copies the whole dat (read + write).
        !matches!(self, Ev::Write)
    }
    fn pure_write(self) -> bool {
        matches!(self, Ev::Write)
    }
}

/// Run every lint over one recorded graph.
pub fn lint_graph(g: &GraphSummary, ctx: &LintContext, resolve: &DatResolver) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // -- structural phase defects (recorded by the builder) -------------
    for d in &g.phase_defects {
        out.push(Diagnostic {
            severity: Severity::Error,
            kernel: "<graph>".to_owned(),
            pass: Pass::Dataflow,
            detail: format!("unbalanced phase nesting: {d}"),
        });
    }

    let launches: Vec<L<'_>> = g
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(op, n)| match n {
            GraphNodeInfo::Launch {
                kernel,
                reductions,
                fp64,
                atomic_updates,
                meta,
                ..
            } => Some(L {
                op,
                kernel,
                meta,
                reductions: *reductions,
                fp64: *fp64,
                atomic_updates: *atomic_updates,
            }),
            _ => None,
        })
        .collect();

    let transparent = launches.iter().filter(|l| l.meta.transparent()).count();
    if transparent == 0 && !launches.is_empty() {
        out.push(Diagnostic {
            severity: Severity::Info,
            kernel: "<graph>".to_owned(),
            pass: Pass::Dataflow,
            detail: format!(
                "none of the {} recorded launches declares dat-level accesses; \
                 dataflow lints are vacuous for this graph",
                launches.len()
            ),
        });
    }
    // Opaque launches have unknown footprints: flow-sensitive lints
    // (dead code, staleness, redundancy) would report false positives
    // across them, so they only run on fully transparent graphs.
    let fully_transparent = transparent == launches.len();

    intra_launch_hazards(&launches, resolve, &mut out);
    scheme_legality(&launches, ctx, &mut out);

    // -- per-dat cyclic timelines ---------------------------------------
    let timelines = build_timelines(g);

    halo_coverage(g, &launches, &timelines, ctx, resolve, &mut out);
    if fully_transparent {
        stale_halo_reads(g, &timelines, ctx, resolve, &mut out);
        dead_code(g, &launches, &timelines, resolve, &mut out);
        redundant_exchanges(g, &timelines, resolve, &mut out);
        resident_transfers(g, resolve, &mut out);
    }
    fusion_candidates(g, &launches, ctx, resolve, &mut out);

    out.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.kernel.cmp(&b.kernel)));
    out
}

/// dat id → ordered (op index, event) list.
fn build_timelines(g: &GraphSummary) -> BTreeMap<u32, Vec<(usize, Ev)>> {
    let mut t: BTreeMap<u32, Vec<(usize, Ev)>> = BTreeMap::new();
    for (op, n) in g.nodes.iter().enumerate() {
        match n {
            GraphNodeInfo::Launch { meta, .. } if meta.transparent() => {
                for a in &meta.accesses {
                    let ev = match a.mode {
                        AccessMode::Read => Ev::Read {
                            stencil: a.stencil(),
                        },
                        AccessMode::Write => Ev::Write,
                        AccessMode::ReadWrite => Ev::ReadWrite,
                    };
                    t.entry(a.dat).or_default().push((op, ev));
                }
            }
            GraphNodeInfo::Exchange { dats, .. } => {
                for &d in dats {
                    t.entry(d).or_default().push((op, Ev::Exchange));
                }
            }
            GraphNodeInfo::Transfer { dats, dir, .. } => {
                // An upload (or on-device copy) writes the dat's device
                // copy; a download only observes it (a read).
                let ev = match dir {
                    TransferDir::D2H => Ev::Read { stencil: false },
                    _ => Ev::Transfer,
                };
                for &d in dats {
                    t.entry(d).or_default().push((op, ev));
                }
            }
            _ => {}
        }
    }
    t
}

/// Hazards *inside* one parallel launch: the recorded sequence orders
/// launches against each other, but nothing orders the work-items of a
/// single launch — two arguments naming the same dat where either
/// writes is a race.
fn intra_launch_hazards(launches: &[L<'_>], resolve: &DatResolver, out: &mut Vec<Diagnostic>) {
    for l in launches {
        if !l.meta.transparent() {
            continue;
        }
        let mut by_dat: BTreeMap<u32, Vec<AccessMode>> = BTreeMap::new();
        for a in &l.meta.accesses {
            by_dat.entry(a.dat).or_default().push(a.mode);
            if a.mode == AccessMode::ReadWrite && a.stencil() {
                out.push(Diagnostic {
                    severity: Severity::Info,
                    kernel: l.kernel.to_owned(),
                    pass: Pass::Dataflow,
                    detail: format!(
                        "read-write stencil access on {}: work-items read cells \
                         other work-items may write (boundary-mirror idiom; safe \
                         only when the read and write index sets are disjoint)",
                        dat_label(resolve, a.dat)
                    ),
                });
            }
        }
        for (dat, modes) in by_dat {
            let writes = modes.iter().filter(|&&m| m != AccessMode::Read).count();
            if modes.len() >= 2 && writes >= 1 {
                let hazard = if writes >= 2 {
                    "write-write"
                } else {
                    "read-write"
                };
                out.push(Diagnostic {
                    severity: Severity::Error,
                    kernel: l.kernel.to_owned(),
                    pass: Pass::Dataflow,
                    detail: format!(
                        "{} accesses {} through {} arguments ({} writing): a \
                         {hazard} hazard the recorded sequence cannot order \
                         because it races across work-items of one launch",
                        l.kernel,
                        dat_label(resolve, dat),
                        modes.len(),
                        writes,
                    ),
                });
            }
        }
    }
}

/// Per-platform scheme legality: f64 atomic RMWs on CAS-loop hardware.
fn scheme_legality(launches: &[L<'_>], ctx: &LintContext, out: &mut Vec<Diagnostic>) {
    if !ctx.cas_atomics {
        return;
    }
    for l in launches {
        if l.atomic_updates > 0 && l.fp64 {
            let scheme = l.meta.scheme.unwrap_or("unspecified");
            out.push(Diagnostic {
                severity: Severity::Warning,
                kernel: l.kernel.to_owned(),
                pass: Pass::Dataflow,
                detail: format!(
                    "{} f64 atomic updates per replay compile to CAS loops on \
                     {} (scheme `{scheme}`); a colouring scheme avoids the \
                     retry traffic",
                    l.atomic_updates, ctx.platform,
                ),
            });
        }
    }
}

/// The halo-coverage rule: a dat needs exchange coverage iff some launch
/// *pure*-reads it at non-zero radius and some launch writes it inside
/// the graph. Read-write stencils (reflective mirrors) refresh their own
/// halo and are exempt. Only meaningful on multi-rank decompositions —
/// single-rank plans exchange zero bytes and record nothing.
fn halo_coverage(
    g: &GraphSummary,
    launches: &[L<'_>],
    timelines: &BTreeMap<u32, Vec<(usize, Ev)>>,
    ctx: &LintContext,
    resolve: &DatResolver,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.ranks <= 1 {
        return;
    }
    // A legacy exchange with no dat list covers an unknown set: coverage
    // cannot be proven either way, so note it and stand down.
    let undeclared = g
        .nodes
        .iter()
        .any(|n| matches!(n, GraphNodeInfo::Exchange { dats, .. } if dats.is_empty()));
    if undeclared {
        out.push(Diagnostic {
            severity: Severity::Info,
            kernel: "<graph>".to_owned(),
            pass: Pass::Dataflow,
            detail: "an exchange declares no datasets; halo-coverage \
                     analysis is skipped for this graph"
                .to_owned(),
        });
        return;
    }
    let exchanged: BTreeSet<u32> = g
        .nodes
        .iter()
        .filter_map(|n| match n {
            GraphNodeInfo::Exchange { dats, .. } => Some(dats.iter().copied()),
            _ => None,
        })
        .flatten()
        .collect();
    for l in launches {
        if !l.meta.transparent() {
            continue;
        }
        for a in &l.meta.accesses {
            let needs = a.mode == AccessMode::Read
                && a.stencil()
                && timelines.get(&a.dat).is_some_and(|tl| {
                    tl.iter()
                        .any(|(_, e)| e.pure_write() || *e == Ev::ReadWrite)
                });
            if needs && !exchanged.contains(&a.dat) {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    kernel: l.kernel.to_owned(),
                    pass: Pass::Dataflow,
                    detail: format!(
                        "{} reads {} with a radius-{:?} stencil on {} ranks, the \
                         graph writes it, but no recorded exchange refreshes its \
                         halo",
                        l.kernel,
                        dat_label(resolve, a.dat),
                        a.radius,
                        ctx.ranks,
                    ),
                });
            }
        }
    }
}

fn kernel_at(g: &GraphSummary, op: usize) -> &str {
    match &g.nodes[op] {
        GraphNodeInfo::Launch { kernel, .. } => kernel,
        GraphNodeInfo::Exchange { .. } => "<exchange>",
        GraphNodeInfo::Transfer { .. } => "<transfer>",
        _ => "<phase>",
    }
}

/// Positional staleness: a stencil read whose closest preceding write
/// (cyclically) has no exchange in between reads stale halo cells on
/// every replay. Weaker than missing coverage — the dat *is* exchanged
/// somewhere — so an Info.
fn stale_halo_reads(
    g: &GraphSummary,
    timelines: &BTreeMap<u32, Vec<(usize, Ev)>>,
    ctx: &LintContext,
    resolve: &DatResolver,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.ranks <= 1 {
        return;
    }
    let mut seen = BTreeSet::new();
    for (&dat, tl) in timelines {
        if !tl.iter().any(|(_, e)| *e == Ev::Exchange) {
            continue; // no coverage at all: halo_coverage's department
        }
        let n = tl.len();
        for (i, &(_, ev)) in tl.iter().enumerate() {
            if !matches!(ev, Ev::Read { stencil: true }) {
                continue;
            }
            // Walk backwards (cyclically) to the nearest write; if we
            // hit an exchange first the read is fresh.
            for back in 1..n {
                let (op_j, ev_j) = tl[(i + n - back) % n];
                if ev_j == Ev::Exchange {
                    break;
                }
                if ev_j.pure_write() || ev_j == Ev::ReadWrite || ev_j == Ev::Transfer {
                    let (op_i, _) = tl[i];
                    let reader = kernel_at(g, op_i).to_owned();
                    if seen.insert((dat, reader.clone())) {
                        out.push(Diagnostic {
                            severity: Severity::Info,
                            kernel: reader,
                            pass: Pass::Dataflow,
                            detail: format!(
                                "stencil read of {} follows its write by {} with \
                                 no halo exchange in between: halo cells are one \
                                 exchange stale on {} ranks",
                                dat_label(resolve, dat),
                                kernel_at(g, op_j),
                                ctx.ranks,
                            ),
                        });
                    }
                    break;
                }
            }
        }
    }
}

/// Dead writes, dead stores, dead transfers, launches with no effect.
fn dead_code(
    g: &GraphSummary,
    launches: &[L<'_>],
    timelines: &BTreeMap<u32, Vec<(usize, Ev)>>,
    resolve: &DatResolver,
    out: &mut Vec<Diagnostic>,
) {
    for (&dat, tl) in timelines {
        let n = tl.len();
        let ever_read = tl.iter().any(|(_, e)| e.reads());
        if !ever_read {
            let (op, _) = tl[0];
            out.push(Diagnostic {
                severity: Severity::Warning,
                kernel: kernel_at(g, op).to_owned(),
                pass: Pass::Dataflow,
                detail: format!(
                    "{} is written but never read, exchanged or transferred \
                     anywhere in the graph (dead store)",
                    dat_label(resolve, dat)
                ),
            });
            continue;
        }
        for (i, &(op_i, ev)) in tl.iter().enumerate() {
            if !(ev.pure_write() || ev == Ev::Transfer) {
                continue;
            }
            // Next cyclic access from a *different* op decides whether
            // this value is ever observed.
            for fwd in 1..n {
                let (op_j, ev_j) = tl[(i + fwd) % n];
                if op_j == op_i {
                    continue;
                }
                if ev_j.reads() {
                    break;
                }
                // Overwritten before any read.
                let (what, sev) = if ev == Ev::Transfer {
                    ("transfer delivers", Severity::Error)
                } else {
                    ("write of", Severity::Error)
                };
                out.push(Diagnostic {
                    severity: sev,
                    kernel: kernel_at(g, op_i).to_owned(),
                    pass: Pass::Dataflow,
                    detail: format!(
                        "{what} {} in {} is overwritten by {} before anything \
                         reads it (dead on every replay)",
                        dat_label(resolve, dat),
                        kernel_at(g, op_i),
                        kernel_at(g, op_j),
                    ),
                });
                break;
            }
        }
    }
    for l in launches {
        let writes = l.meta.accesses.iter().any(|a| a.writes());
        if l.meta.transparent() && !writes && l.reductions == 0 {
            out.push(Diagnostic {
                severity: Severity::Warning,
                kernel: l.kernel.to_owned(),
                pass: Pass::Dataflow,
                detail: format!(
                    "{} writes no dat and performs no reduction: the launch \
                     has no observable effect (dead launch)",
                    l.kernel
                ),
            });
        }
    }
}

/// Back-to-back exchanges of the same dats with no intervening write
/// move the same halo bytes twice.
fn redundant_exchanges(
    g: &GraphSummary,
    timelines: &BTreeMap<u32, Vec<(usize, Ev)>>,
    resolve: &DatResolver,
    out: &mut Vec<Diagnostic>,
) {
    let exchanges: Vec<(usize, &Vec<u32>)> = g
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(op, n)| match n {
            GraphNodeInfo::Exchange { dats, .. } if !dats.is_empty() => Some((op, dats)),
            _ => None,
        })
        .collect();
    for w in exchanges.windows(2) {
        let [(op_a, dats_a), (op_b, dats_b)] = w else {
            continue;
        };
        if dats_a != dats_b {
            continue;
        }
        // Redundant iff none of the exchanged dats is written between
        // the two exchange ops.
        let written_between = dats_a.iter().any(|d| {
            timelines.get(d).is_some_and(|tl| {
                tl.iter().any(|&(op, e)| {
                    op > *op_a && op < *op_b && (e.pure_write() || e == Ev::ReadWrite)
                })
            })
        });
        if !written_between {
            let names: Vec<String> = dats_a.iter().map(|&d| dat_label(resolve, d)).collect();
            out.push(Diagnostic {
                severity: Severity::Warning,
                kernel: "<exchange>".to_owned(),
                pass: Pass::Dataflow,
                detail: format!(
                    "two consecutive exchanges refresh [{}] with no write in \
                     between: the second moves identical halo bytes",
                    names.join(", ")
                ),
            });
        }
    }
}

/// Transfers of dats whose residency already matches the destination.
/// The tracker starts from what the graph itself proves (its own
/// uploads, downloads and declared kernel writes) and flags a transfer
/// only when the destination copy is *known* valid at that point — the
/// runtime's residency tracker will elide it, so the recorded node
/// moves no bytes and should be dropped.
fn resident_transfers(g: &GraphSummary, resolve: &DatResolver, out: &mut Vec<Diagnostic>) {
    #[derive(Clone, Copy, PartialEq)]
    enum R {
        DeviceOnly,
        Shared,
    }
    let mut res: BTreeMap<u32, R> = BTreeMap::new();
    for n in &g.nodes {
        match n {
            GraphNodeInfo::Launch { meta, .. } => {
                for a in meta.accesses.iter().filter(|a| a.writes() && a.dat != 0) {
                    res.insert(a.dat, R::DeviceOnly);
                }
            }
            // Id 0 is anonymous (shared by every unregistered dat), so
            // it can never prove a transfer redundant.
            GraphNodeInfo::Transfer { dats, dir, .. } if dats.iter().any(|&d| d != 0) => {
                let redundant = match dir {
                    // Upload of dats all known device-valid.
                    TransferDir::H2D => dats.iter().all(|d| res.contains_key(d)),
                    // Download of dats all known host-valid (uploaded or
                    // downloaded here, never device-written since).
                    TransferDir::D2H => dats.iter().all(|d| res.get(d) == Some(&R::Shared)),
                    TransferDir::D2D => false,
                };
                if redundant {
                    let names: Vec<String> = dats.iter().map(|&d| dat_label(resolve, d)).collect();
                    let what = if *dir == TransferDir::H2D {
                        "upload"
                    } else {
                        "download"
                    };
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        kernel: "<transfer>".to_owned(),
                        pass: Pass::Dataflow,
                        detail: format!(
                            "{what} of [{}] whose residency already matches: the                              destination copy is valid at this point, the runtime                              elides the transfer, and the node moves no bytes",
                            names.join(", ")
                        ),
                    });
                }
                if *dir != TransferDir::D2D {
                    for &d in dats {
                        if d != 0 {
                            res.insert(d, R::Shared);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Maximal chains of adjacent launches a code generator could fuse:
/// identical iteration ranges, fully declared accesses, no reductions,
/// and no stencil-crossing hazard between any pair in the chain.
/// Phase markers are transparent to adjacency; exchanges, transfers and
/// opaque launches break chains.
fn fusion_candidates(
    g: &GraphSummary,
    launches: &[L<'_>],
    ctx: &LintContext,
    resolve: &DatResolver,
    out: &mut Vec<Diagnostic>,
) {
    // Map op index → launch index for adjacency over the op sequence.
    let mut chain: Vec<&L<'_>> = Vec::new();
    let mut chains: Vec<Vec<&L<'_>>> = Vec::new();
    let by_op: BTreeMap<usize, &L<'_>> = launches.iter().map(|l| (l.op, l)).collect();
    for (op, node) in g.nodes.iter().enumerate() {
        match node {
            GraphNodeInfo::PhaseBegin { .. } | GraphNodeInfo::PhaseEnd => continue,
            GraphNodeInfo::Launch { .. } => {
                let l = by_op[&op];
                if fusable_extension(&chain, l) {
                    chain.push(l);
                } else {
                    chains.push(std::mem::take(&mut chain));
                    if l.meta.transparent() && l.reductions == 0 {
                        chain.push(l);
                    }
                }
            }
            _ => chains.push(std::mem::take(&mut chain)),
        }
    }
    chains.push(chain);

    for c in chains.iter().filter(|c| c.len() >= 2) {
        let (lo, hi) = (c[0].meta.lo, c[0].meta.hi);
        let points: f64 = (0..3).map(|i| (hi[i] - lo[i]).max(0) as f64).product();
        // Every dat touched by more than one launch in the chain is
        // loaded from memory that many times; a fused kernel keeps it
        // in registers after the first access.
        let mut touches: BTreeMap<u32, (usize, f64)> = BTreeMap::new();
        for l in c {
            let dats: BTreeSet<u32> = l.meta.accesses.iter().map(|a| a.dat).collect();
            for d in dats {
                let eb = l
                    .meta
                    .accesses
                    .iter()
                    .find(|a| a.dat == d)
                    .map_or(8.0, |a| a.elem_bytes);
                let e = touches.entry(d).or_insert((0, eb));
                e.0 += 1;
            }
        }
        let shared: Vec<(u32, usize, f64)> = touches
            .iter()
            .filter(|(_, (n, _))| *n > 1)
            .map(|(&d, &(n, eb))| (d, n, eb))
            .collect();
        let bytes_saved = shared
            .iter()
            .map(|&(_, n, eb)| (n - 1) as f64 * points * eb)
            .sum::<f64>()
            .max(0.0);
        let launch_saved = (c.len() - 1) as f64 * ctx.launch_overhead;
        let bw_saved = bytes_saved / ctx.stream_bw;
        let names: Vec<&str> = c.iter().map(|l| l.kernel).collect();
        let share = if shared.is_empty() {
            "share no datasets".to_owned()
        } else {
            let dat_names: Vec<String> = shared
                .iter()
                .map(|&(d, _, _)| dat_label(resolve, d))
                .collect();
            format!("share [{}]", dat_names.join(", "))
        };
        out.push(Diagnostic {
            severity: Severity::Info,
            kernel: names.join("+"),
            pass: Pass::Dataflow,
            detail: format!(
                "fusion candidate: {} adjacent hazard-free launches over the \
                 same {:.0}-point range {share}; fusing saves ~{:.2} MB and \
                 ~{:.1} us per replay ({:.1} us bandwidth + {:.1} us launch \
                 overhead) on {}",
                c.len(),
                points,
                bytes_saved / 1e6,
                (bw_saved + launch_saved) * 1e6,
                bw_saved * 1e6,
                launch_saved * 1e6,
                ctx.platform,
            ),
        });
    }
}

/// Can `l` join the current chain? It must be transparent, reduction-
/// free, share the chain's range, and form no stencil-crossing hazard
/// with *any* chain member: after fusion all members run point-wise
/// interleaved, so a write in one paired with a stencil read of the
/// same dat in another reads neighbours mid-update. Point-wise RAW/WAW
/// within a chain is fine — per-point program order is preserved.
fn fusable_extension(chain: &[&L<'_>], l: &L<'_>) -> bool {
    if !l.meta.transparent() || l.reductions != 0 {
        return false;
    }
    let Some(first) = chain.first() else {
        return true;
    };
    if l.meta.lo != first.meta.lo || l.meta.hi != first.meta.hi {
        return false;
    }
    for m in chain {
        for a in &m.meta.accesses {
            for b in &l.meta.accesses {
                if a.dat != b.dat {
                    continue;
                }
                let cross_stencil = (a.writes() && b.reads() && b.stencil())
                    || (a.reads() && a.stencil() && b.writes());
                if cross_stencil {
                    return false;
                }
            }
        }
    }
    true
}

/// Reconcile static verdicts with dynamic shadow evidence: a kernel the
/// static linter saw as cleanly declared (transparent, no intra-launch
/// hazard) but whose instrumented run produced access-pass findings has
/// under-declared its footprint — the declaration the static analysis
/// trusted is the defect.
pub fn cross_check(summaries: &[GraphSummary], dynamic: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut declared: BTreeSet<&str> = BTreeSet::new();
    for g in summaries {
        for n in &g.nodes {
            if let GraphNodeInfo::Launch { kernel, meta, .. } = n {
                if meta.transparent() {
                    declared.insert(kernel);
                }
            }
        }
    }
    let mut out = Vec::new();
    for d in dynamic {
        if d.pass == Pass::Access
            && d.severity >= Severity::Warning
            && declared.contains(d.kernel.as_str())
        {
            out.push(Diagnostic {
                severity: Severity::Error,
                kernel: d.kernel.clone(),
                pass: Pass::Dataflow,
                detail: format!(
                    "statically clean but dynamically flagged: {} lints clean \
                     from its declaration, yet the shadow run reports \
                     \"{}\" — the declared stencil under-states the kernel's \
                     true footprint",
                    d.kernel, d.detail
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_sim::{DatAccess, LaunchMeta};

    fn ctx() -> LintContext {
        LintContext {
            ranks: 4,
            stream_bw: 1e12,
            launch_overhead: 5e-6,
            cas_atomics: false,
            platform: "test".to_owned(),
        }
    }

    fn acc(dat: u32, mode: AccessMode, r: usize) -> DatAccess {
        DatAccess {
            dat,
            mode,
            radius: [r, r, 0],
            elem_bytes: 8.0,
        }
    }

    fn launch(kernel: &str, accesses: Vec<DatAccess>) -> GraphNodeInfo {
        GraphNodeInfo::Launch {
            kernel: kernel.to_owned(),
            items: 100,
            effective_bytes: 800.0,
            reductions: 0,
            fp64: true,
            atomic_updates: 0,
            meta: LaunchMeta::new(accesses, [0, 0, 0], [10, 10, 1]),
        }
    }

    fn summary(nodes: Vec<GraphNodeInfo>) -> GraphSummary {
        GraphSummary {
            id: 1,
            nodes,
            phase_defects: Vec::new(),
        }
    }

    fn no_name(_: u32) -> Option<String> {
        None
    }

    #[test]
    fn a_clean_producer_consumer_graph_lints_clean() {
        let g = summary(vec![
            launch(
                "produce",
                vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
            ),
            GraphNodeInfo::Exchange {
                bytes: 64.0,
                messages: 4,
                dats: vec![2],
            },
            launch(
                "consume",
                vec![
                    acc(2, AccessMode::Read, 1),
                    acc(1, AccessMode::ReadWrite, 0),
                ],
            ),
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        assert!(
            !diags.iter().any(|d| d.severity >= Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn intra_launch_read_write_same_dat_is_an_error() {
        let g = summary(vec![launch(
            "racy",
            vec![acc(1, AccessMode::Read, 1), acc(1, AccessMode::Write, 0)],
        )]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("intra-launch hazard");
        assert_eq!(hit.kernel, "racy");
        assert!(hit.detail.contains("read-write hazard"), "{}", hit.detail);
    }

    #[test]
    fn missing_halo_exchange_is_an_error_on_multiple_ranks_only() {
        let nodes = vec![
            launch("writer", vec![acc(1, AccessMode::Write, 0)]),
            launch("stencil_reader", vec![acc(1, AccessMode::Read, 2)]),
        ];
        let g = summary(nodes);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .expect("missing exchange");
        assert_eq!(hit.kernel, "stencil_reader");
        let single = LintContext { ranks: 1, ..ctx() };
        let diags = lint_graph(&g, &single, &no_name);
        assert!(!crate::has_errors(&diags), "single rank needs no exchange");
    }

    #[test]
    fn overwritten_write_is_dead_and_named() {
        let g = summary(vec![
            launch("first_writer", vec![acc(1, AccessMode::Write, 0)]),
            launch("second_writer", vec![acc(1, AccessMode::Write, 0)]),
            launch(
                "reader",
                vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
            ),
            launch(
                "drain",
                vec![acc(2, AccessMode::Read, 0), acc(3, AccessMode::Write, 0)],
            ),
            launch(
                "sink",
                vec![acc(3, AccessMode::Read, 0), acc(1, AccessMode::Write, 0)],
            ),
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.detail.contains("dead on every replay"))
            .expect("dead write");
        assert_eq!(hit.severity, Severity::Error);
        assert_eq!(hit.kernel, "first_writer");
        assert!(hit.detail.contains("second_writer"), "{}", hit.detail);
        // The wrap-around write by `sink` is *not* dead: `first_writer`
        // is the same-dat writer, but `second_writer`'s value is read
        // next iteration... no — sink's write is overwritten by
        // first_writer cyclically, which is also flagged.
        assert!(
            diags.iter().any(|d| d.kernel == "sink"),
            "cyclic dead write must be seen too: {diags:?}"
        );
    }

    #[test]
    fn dead_store_is_a_warning() {
        let g = summary(vec![
            launch(
                "use",
                vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
            ),
            launch(
                "drain",
                vec![acc(2, AccessMode::Read, 0), acc(1, AccessMode::Write, 0)],
            ),
            launch(
                "wasted",
                vec![acc(1, AccessMode::Read, 0), acc(9, AccessMode::Write, 0)],
            ),
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.detail.contains("dead store"))
            .expect("dead store");
        assert_eq!(hit.severity, Severity::Warning);
        assert_eq!(hit.kernel, "wasted");
    }

    #[test]
    fn dead_transfer_is_an_error() {
        let g = summary(vec![
            GraphNodeInfo::Transfer {
                bytes: 800.0,
                dats: vec![1],
                dir: TransferDir::H2D,
            },
            launch("clobber", vec![acc(1, AccessMode::Write, 0)]),
            launch(
                "reader",
                vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
            ),
            launch(
                "drain",
                vec![acc(2, AccessMode::Read, 0), acc(1, AccessMode::Write, 0)],
            ),
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.detail.contains("transfer delivers"))
            .expect("dead transfer");
        assert_eq!(hit.severity, Severity::Error);
        assert!(hit.detail.contains("clobber"), "{}", hit.detail);
    }

    #[test]
    fn double_upload_of_a_resident_dat_warns() {
        // Seeded defect: the second upload of dat 1 moves nothing — the
        // device copy is already valid, so the runtime elides it.
        let up = |d: u32| GraphNodeInfo::Transfer {
            bytes: 800.0,
            dats: vec![d],
            dir: TransferDir::H2D,
        };
        let g = summary(vec![
            up(1),
            up(1),
            launch(
                "reader",
                vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
            ),
            GraphNodeInfo::Transfer {
                bytes: 800.0,
                dats: vec![2],
                dir: TransferDir::D2H,
            },
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.detail.contains("residency already matches"))
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].detail.contains("upload"), "{}", hits[0].detail);
    }

    #[test]
    fn download_right_after_upload_warns_but_readback_after_write_does_not() {
        let g = summary(vec![
            GraphNodeInfo::Transfer {
                bytes: 800.0,
                dats: vec![1],
                dir: TransferDir::H2D,
            },
            // Host copy still valid: this download is elided.
            GraphNodeInfo::Transfer {
                bytes: 800.0,
                dats: vec![1],
                dir: TransferDir::D2H,
            },
            launch("writer", vec![acc(1, AccessMode::ReadWrite, 0)]),
            // After a device write the readback is real: no warning.
            GraphNodeInfo::Transfer {
                bytes: 800.0,
                dats: vec![1],
                dir: TransferDir::D2H,
            },
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.detail.contains("residency already matches"))
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].detail.contains("download"), "{}", hits[0].detail);
    }

    #[test]
    fn transfers_of_unknown_state_dats_are_not_flagged() {
        // A graph that only downloads (a readback graph) proves nothing
        // about residency — the dats were written by earlier graphs.
        let g = summary(vec![GraphNodeInfo::Transfer {
            bytes: 800.0,
            dats: vec![9],
            dir: TransferDir::D2H,
        }]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        assert!(
            !diags.iter().any(|d| d.detail.contains("residency")),
            "{diags:?}"
        );
    }

    #[test]
    fn redundant_back_to_back_exchanges_warn() {
        let ex = || GraphNodeInfo::Exchange {
            bytes: 64.0,
            messages: 4,
            dats: vec![1],
        };
        let g = summary(vec![
            launch("writer", vec![acc(1, AccessMode::Write, 0)]),
            ex(),
            ex(),
            launch("reader", vec![acc(1, AccessMode::Read, 1)]),
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Warning
                    && d.detail.contains("identical halo bytes")),
            "{diags:?}"
        );
    }

    #[test]
    fn fusion_chain_reports_modelled_savings() {
        let g = summary(vec![
            launch(
                "a",
                vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
            ),
            launch(
                "b",
                vec![acc(1, AccessMode::Read, 0), acc(3, AccessMode::Write, 0)],
            ),
            launch(
                "sink",
                vec![
                    acc(2, AccessMode::Read, 0),
                    acc(3, AccessMode::Read, 0),
                    acc(1, AccessMode::Write, 0),
                ],
            ),
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.detail.contains("fusion candidate"))
            .expect("fusion chain");
        assert!(hit.kernel.starts_with("a+b"), "{}", hit.kernel);
        assert!(hit.detail.contains("MB"), "{}", hit.detail);
    }

    #[test]
    fn stencil_crossing_breaks_fusion() {
        let g = summary(vec![
            launch(
                "producer",
                vec![acc(2, AccessMode::Write, 0), acc(1, AccessMode::Read, 0)],
            ),
            launch(
                "stencil_consumer",
                vec![
                    acc(2, AccessMode::Read, 1),
                    acc(1, AccessMode::ReadWrite, 0),
                ],
            ),
            GraphNodeInfo::Exchange {
                bytes: 64.0,
                messages: 4,
                dats: vec![2],
            },
        ]);
        let diags = lint_graph(&g, &ctx(), &no_name);
        assert!(
            !diags.iter().any(|d| d.detail.contains("fusion candidate")),
            "a write feeding a stencil read cannot fuse: {diags:?}"
        );
    }

    #[test]
    fn phase_defects_surface_as_errors() {
        let mut g = summary(vec![launch(
            "k",
            vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
        )]);
        g.nodes.push(launch(
            "drain",
            vec![acc(2, AccessMode::Read, 0), acc(1, AccessMode::Write, 0)],
        ));
        g.phase_defects
            .push("phase `halo` opened but never closed".to_owned());
        let diags = lint_graph(&g, &ctx(), &no_name);
        let hit = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .unwrap();
        assert!(hit.detail.contains("unbalanced phase nesting"));
        assert!(hit.detail.contains("halo"));
    }

    #[test]
    fn cas_atomics_flag_fp64_atomic_launches() {
        let mut node = launch("edge_kernel", vec![]);
        if let GraphNodeInfo::Launch {
            atomic_updates,
            meta,
            ..
        } = &mut node
        {
            *atomic_updates = 1000;
            *meta = LaunchMeta::opaque().with_scheme("atomics");
        }
        let g = summary(vec![node]);
        let cas = LintContext {
            cas_atomics: true,
            ..ctx()
        };
        let diags = lint_graph(&g, &cas, &no_name);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Warning && d.detail.contains("CAS")),
            "{diags:?}"
        );
    }

    #[test]
    fn cross_check_blames_under_declared_stencils() {
        let g = summary(vec![launch(
            "under_declared",
            vec![acc(1, AccessMode::Read, 0), acc(2, AccessMode::Write, 0)],
        )]);
        let dynamic = vec![Diagnostic {
            severity: Severity::Warning,
            kernel: "under_declared".to_owned(),
            pass: Pass::Access,
            detail: "read outside the declared stencil".to_owned(),
        }];
        let out = cross_check(&[g], &dynamic);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[0].kernel, "under_declared");
        assert!(out[0].detail.contains("under-states"));
        // A kernel the graphs never declared is not blamed.
        let other = vec![Diagnostic {
            severity: Severity::Error,
            kernel: "eager_only".to_owned(),
            pass: Pass::Access,
            detail: "whatever".to_owned(),
        }];
        assert!(cross_check(&[], &other).is_empty());
    }
}
