//! The shadow-access checker: one finished [`LoopTrace`] in, findings
//! out. Structured (OPS) traces carry a real iteration box and dat-
//! linked arg declarations, so they get the full comparison; op2 traces
//! contribute conflicts, notes, and uninit counts.

use crate::{Collector, Pass, Severity};
use telemetry::shadow::{Access, ArgDecl, ConflictKind, DatTrace, LoopTrace, NoteKind};

pub(crate) fn check_trace(trace: &LoopTrace, out: &mut Collector) {
    for note in &trace.notes {
        let (pass, tag) = match note.kind {
            NoteKind::PlanViolation => (Pass::Plan, "plan-violation"),
            NoteKind::DeclDefect => (Pass::Access, "decl-defect"),
        };
        out.emit(
            Severity::Error,
            &trace.decl.kernel,
            pass,
            format!("{tag}: {}", note.text),
            note.text.clone(),
        );
    }

    check_conflicts(trace, out);
    check_decl_lints(trace, out);

    for d in &trace.dats {
        if d.uninit_reads > 0 {
            let example = d
                .uninit_example
                .map(|i| d.geom.locate(i))
                .unwrap_or_default();
            out.emit(
                Severity::Info,
                &trace.decl.kernel,
                Pass::Access,
                format!("uninit:{}", d.name),
                format!(
                    "reads {} cell(s) of `{}` never initialised by a fill, setup \
                     write, or earlier loop (e.g. {example})",
                    d.uninit_reads, d.name
                ),
            );
        }
        if trace.decl.structured {
            check_structured_dat(trace, d, out);
        }
    }
}

/// Overlap between execution units. For op2 loops the race-resolution
/// scheme was supposed to prevent exactly this, so it is a plan failure;
/// for structured loops the tiling itself raced, an access failure.
fn check_conflicts(trace: &LoopTrace, out: &mut Collector) {
    for c in &trace.conflicts {
        let dat = trace.dats.iter().find(|d| d.id == c.dat);
        let (name, at) = match dat {
            Some(d) => (d.name.as_str(), d.geom.locate(c.cell)),
            None => ("?", format!("index {}", c.cell)),
        };
        let kind = match c.kind {
            ConflictKind::WriteWrite => "write-write",
            ConflictKind::ReadWrite => "read-write",
            ConflictKind::AtomicPlain => "atomic/plain",
        };
        let (pass, detail) = match trace.decl.scheme {
            Some("atomics") => (
                Pass::Plan,
                format!(
                    "non-atomic RMW overlap under the atomics scheme: {kind} \
                     conflict on `{name}` at {at} between execution units"
                ),
            ),
            Some(s) => (
                Pass::Plan,
                format!(
                    "{s} colouring failed to serialise updates: {kind} conflict \
                     on `{name}` at {at} between units of one colour group"
                ),
            ),
            None => (
                Pass::Access,
                format!(
                    "{kind} conflict on `{name}` at {at} between execution \
                     units (tiles) that no race-resolution scheme covers"
                ),
            ),
        };
        out.emit(
            Severity::Error,
            &trace.decl.kernel,
            pass,
            format!("conflict:{kind}:{name}"),
            detail,
        );
    }
}

/// Structural lints that need only the declaration.
fn check_decl_lints(trace: &LoopTrace, out: &mut Collector) {
    let decl = &trace.decl;
    if decl.transc_pp > 0.0 && decl.flops_pp <= 0.0 {
        out.emit(
            Severity::Warning,
            &decl.kernel,
            Pass::Footprint,
            "transc-no-flops".to_owned(),
            format!(
                "declares {} transcendental(s) per point but zero flops — a \
                 transcendental is flops too, so the compute cost model is \
                 inconsistent",
                decl.transc_pp
            ),
        );
    }
    if !decl.structured {
        return;
    }
    for (dim, name) in ["x", "y", "z"].iter().enumerate() {
        let extent = decl.hi[dim] - decl.lo[dim];
        if extent == 1 {
            for arg in &decl.args {
                if arg.radius[dim] > 0 {
                    out.emit(
                        Severity::Warning,
                        &decl.kernel,
                        Pass::Footprint,
                        format!("zero-extent-radius:{name}"),
                        format!(
                            "declares stencil radius {} in {name} but the \
                             iteration range has extent 1 there — the priced \
                             halo in {name} costs bytes no kernel touches",
                            arg.radius[dim]
                        ),
                    );
                    break;
                }
            }
        }
    }
    // Same dat declared separately as read and as write: the effective-
    // bytes rule prices that as 1+1 instead of the 2x a read_write
    // declaration makes explicit, and hides the RMW from race analysis.
    let mut ids: Vec<u32> = Vec::new();
    for arg in &decl.args {
        if arg.dat == 0 || ids.contains(&arg.dat) {
            continue;
        }
        ids.push(arg.dat);
        let reads = decl
            .args
            .iter()
            .any(|a| a.dat == arg.dat && a.access == Access::Read);
        let writes = decl
            .args
            .iter()
            .any(|a| a.dat == arg.dat && a.access == Access::Write);
        if reads && writes {
            let name = trace
                .dats
                .iter()
                .find(|d| d.id == arg.dat)
                .map(|d| d.name.as_str())
                .unwrap_or("?");
            out.emit(
                Severity::Warning,
                &decl.kernel,
                Pass::Access,
                format!("split-rw:{name}"),
                format!(
                    "declares `{name}` as a separate read and write argument; \
                     declare it read_write so the 2x pricing and the race \
                     analysis see the RMW"
                ),
            );
        }
    }
}

/// Max declared read radius per dim for `dat`, or `None` when no arg
/// declares it readable.
fn read_radius(args: &[ArgDecl], dat: u32) -> Option<[usize; 3]> {
    let mut r: Option<[usize; 3]> = None;
    for a in args {
        if a.dat == dat && matches!(a.access, Access::Read | Access::ReadWrite) {
            let acc = r.get_or_insert([0; 3]);
            for (m, &radius) in acc.iter_mut().zip(&a.radius) {
                *m = (*m).max(radius);
            }
        }
    }
    r
}

fn check_structured_dat(trace: &LoopTrace, d: &DatTrace, out: &mut Collector) {
    let decl = &trace.decl;
    let kernel = &decl.kernel;
    let args: Vec<&ArgDecl> = decl.args.iter().filter(|a| a.dat == d.id).collect();

    if args.is_empty() {
        // Touched but never declared: the pricing never saw this dat.
        if d.write.any() || d.atomic.any() {
            let at = d
                .write
                .ones()
                .chain(d.atomic.ones())
                .next()
                .map(|i| d.geom.locate(i))
                .unwrap_or_default();
            out.emit(
                Severity::Error,
                kernel,
                Pass::Access,
                format!("undeclared-write:{}", d.name),
                format!(
                    "writes `{}` (e.g. at {at}) without declaring it — the \
                     footprint prices zero bytes for it and dependency \
                     analysis cannot see the update",
                    d.name
                ),
            );
        } else if d.read.any() {
            let at = d
                .read
                .ones()
                .next()
                .map(|i| d.geom.locate(i))
                .unwrap_or_default();
            out.emit(
                Severity::Warning,
                kernel,
                Pass::Access,
                format!("undeclared-read:{}", d.name),
                format!(
                    "reads `{}` (e.g. at {at}) without declaring it — the \
                     footprint prices zero bytes for the gather",
                    d.name
                ),
            );
        }
        return;
    }

    let declared_write = args
        .iter()
        .any(|a| matches!(a.access, Access::Write | Access::ReadWrite));
    let radius = read_radius(&decl.args, d.id);

    // Writes: must be declared, and must stay inside the iteration box
    // (every unit writes only its own points; anything else races with
    // the tile that owns the cell).
    if d.write.any() && !declared_write {
        let at = d
            .write
            .ones()
            .next()
            .map(|i| d.geom.locate(i))
            .unwrap_or_default();
        out.emit(
            Severity::Error,
            kernel,
            Pass::Access,
            format!("undeclared-write:{}", d.name),
            format!(
                "writes `{}` (e.g. at {at}) but declares it read-only",
                d.name
            ),
        );
    } else if declared_write {
        for i in d.write.ones() {
            let Some(c) = d.geom.grid_coords(i) else {
                break;
            };
            if (0..3).any(|dim| c[dim] < decl.lo[dim] || c[dim] >= decl.hi[dim]) {
                out.emit(
                    Severity::Error,
                    kernel,
                    Pass::Access,
                    format!("write-out-of-range:{}", d.name),
                    format!(
                        "writes `{}` at {} outside the iteration range \
                         {:?}..{:?} — an out-of-range write belongs to a \
                         different point's tile and races with it",
                        d.name,
                        d.geom.locate(i),
                        decl.lo,
                        decl.hi
                    ),
                );
                break;
            }
        }
    }

    // Reads: every read must land inside range +/- the declared radius.
    let allow = radius.unwrap_or([0; 3]);
    let mut excess = [0usize; 3];
    let mut example = None;
    let mut used_halo = false;
    for i in d.read.ones() {
        let Some(c) = d.geom.grid_coords(i) else {
            break;
        };
        let mut outside = false;
        for dim in 0..3 {
            if c[dim] < decl.lo[dim] || c[dim] >= decl.hi[dim] {
                used_halo = true;
            }
            let r = allow[dim] as i64;
            let below = (decl.lo[dim] - r) - c[dim];
            let above = c[dim] - (decl.hi[dim] - 1 + r);
            let over = below.max(above).max(0) as usize;
            if over > 0 {
                outside = true;
                excess[dim] = excess[dim].max(over);
            }
        }
        if outside {
            example.get_or_insert(i);
        }
    }
    if let Some(i) = example {
        if radius.is_some() {
            out.emit(
                Severity::Error,
                kernel,
                Pass::Access,
                format!("under-declared-stencil:{}", d.name),
                format!(
                    "reads `{}` at {} — up to {:?} point(s) beyond the \
                     declared stencil radius {:?}; the priced halo and the \
                     dependency region are both too small",
                    d.name,
                    d.geom.locate(i),
                    excess,
                    allow
                ),
            );
        } else {
            out.emit(
                Severity::Error,
                kernel,
                Pass::Access,
                format!("under-declared-stencil:{}", d.name),
                format!(
                    "reads `{}` at {} beyond its own point, but the \
                     declaration only grants write access at the iteration \
                     point",
                    d.name,
                    d.geom.locate(i)
                ),
            );
        }
    } else if let Some(r) = radius {
        if r.iter().any(|&x| x > 0) && d.read.any() && !used_halo {
            out.emit(
                Severity::Warning,
                kernel,
                Pass::Footprint,
                format!("over-declared-stencil:{}", d.name),
                format!(
                    "declares stencil radius {:?} on `{}` but every observed \
                     read stayed inside the iteration range — the priced halo \
                     may be larger than needed",
                    r, d.name
                ),
            );
        }
    }

    // Declared readable but never read at all: dead argument, priced
    // bytes for a gather that never happens.
    if radius.is_some() && !d.read.any() && !d.write.any() && !d.atomic.any() {
        out.emit(
            Severity::Warning,
            kernel,
            Pass::Footprint,
            format!("dead-arg:{}", d.name),
            format!(
                "declares `{}` readable but the kernel never touches it — \
                 the footprint prices a gather that does not happen",
                d.name
            ),
        );
    }
}
