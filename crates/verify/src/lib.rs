//! # sycl-verify — static/dynamic analysis over the DSL declarations
//!
//! The execution engine *trusts* every loop declaration: `ops::ParLoop`
//! stencils size the priced footprint, `op2::EdgeLoop` args price the
//! gather volume, and the colouring plans justify unsynchronised writes.
//! This crate checks those contracts instead of assuming them, with
//! three passes over an instrumented ("shadow") run:
//!
//! * **Access** — per-dat touched-index bitmaps (recorded by
//!   `telemetry::shadow` inside the views) are compared against the
//!   declaration: undeclared writes, stencil under-declaration, reads of
//!   never-initialised cells, and write–write / read–write overlap
//!   between execution units that no race-resolution scheme covers.
//! * **Plan** — every `GlobalColoring` / `HierColoring` attached to a
//!   loop is proven conflict-free (block-locally too), and atomics-
//!   scheme loops whose trace shows non-atomic RMW overlap are flagged.
//! * **Footprint** — the declared-bytes `KernelFootprint` (observed via
//!   [`Session::set_launch_observer`]) is cross-checked against shadow-
//!   counted unique bytes with a per-scheme tolerance, plus structural
//!   lints on the declaration itself.
//!
//! Attach a [`Verifier`] around an app run:
//!
//! ```no_run
//! # use sycl_sim::{Session, SessionConfig, PlatformId, Toolchain};
//! let session = Session::create(SessionConfig::new(
//!     PlatformId::A100, Toolchain::NativeCuda)).unwrap();
//! let verifier = verify::Verifier::attach(&session);
//! // ... run the app against `session` ...
//! let diags = verifier.finish(&session);
//! assert!(!verify::has_errors(&diags));
//! ```
//!
//! Shadow instrumentation only observes memory the kernels touch anyway,
//! so an instrumented run is bit-identical to a fast-path run (proved in
//! `tests/equivalence.rs`); the cost is one branch per access when off,
//! and one bitmap bit per access when on.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use sycl_sim::{LaunchRecord, Session};
use telemetry::shadow;

mod access;
pub mod dataflow;
pub mod plan;
pub mod report;

pub use plan::{check_global_coloring, check_hier_coloring};

/// How bad a finding is. `Error` findings fail `analyze` (and CI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    Access,
    Plan,
    Footprint,
    /// Static dataflow analysis over recorded launch graphs (graphlint).
    Dataflow,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Access => "access",
            Pass::Plan => "plan",
            Pass::Footprint => "footprint",
            Pass::Dataflow => "dataflow",
        })
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Kernel (loop) name the finding is about.
    pub kernel: String,
    pub pass: Pass,
    pub detail: String,
}

/// Does the set contain any `Error`-severity finding?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Which passes a [`Verifier`] runs (all on by default).
#[derive(Debug, Clone, Copy)]
pub struct Passes {
    pub access: bool,
    pub plan: bool,
    pub footprint: bool,
}

impl Default for Passes {
    fn default() -> Self {
        Passes {
            access: true,
            plan: true,
            footprint: true,
        }
    }
}

/// Findings accumulated while the instrumented run executes. Loops
/// repeat every iteration, so findings dedup on (kernel, pass, tag).
pub(crate) struct Collector {
    passes: Passes,
    diags: Vec<Diagnostic>,
    seen: HashSet<(String, Pass, String)>,
    /// kernel → (shadow-counted unique bytes, traces seen).
    touched: HashMap<String, (f64, u64)>,
    /// kernel → op2 scheme label, for footprint tolerances.
    schemes: HashMap<String, &'static str>,
}

impl Collector {
    fn new(passes: Passes) -> Self {
        Collector {
            passes,
            diags: Vec::new(),
            seen: HashSet::new(),
            touched: HashMap::new(),
            schemes: HashMap::new(),
        }
    }

    pub(crate) fn emit(
        &mut self,
        severity: Severity,
        kernel: &str,
        pass: Pass,
        tag: String,
        detail: String,
    ) {
        let on = match pass {
            Pass::Access => self.passes.access,
            Pass::Plan => self.passes.plan,
            Pass::Footprint => self.passes.footprint,
            // Dataflow findings come from the static linter, not the
            // instrumented run; nothing routes them through a Collector
            // today, but accept them if something does.
            Pass::Dataflow => true,
        };
        if on && self.seen.insert((kernel.to_owned(), pass, tag)) {
            self.diags.push(Diagnostic {
                severity,
                kernel: kernel.to_owned(),
                pass,
                detail,
            });
        }
    }

    fn absorb_trace(&mut self, trace: &shadow::LoopTrace) {
        // Unique bytes this loop actually moved: reads and plain writes
        // once, atomic RMWs twice (the paper's counting for increments).
        let mut bytes = 0.0;
        for d in &trace.dats {
            bytes +=
                (d.read.count() + d.write.count() + 2 * d.atomic.count()) as f64 * d.elem_bytes;
        }
        let e = self
            .touched
            .entry(trace.decl.kernel.clone())
            .or_insert((0.0, 0));
        e.0 += bytes;
        e.1 += 1;
        if let Some(s) = trace.decl.scheme {
            self.schemes.insert(trace.decl.kernel.clone(), s);
        }
        access::check_trace(trace, self);
    }
}

/// Serialises shadow-instrumented runs: the shadow registry is process-
/// global, so two concurrently attached verifiers would mix traces.
static VERIFY_LOCK: Mutex<()> = Mutex::new(());

/// An attached verification context. Create with [`Verifier::attach`]
/// *before* the app allocates its datasets (datasets only register with
/// the shadow layer at creation time), run the app, then call
/// [`Verifier::finish`] for the findings.
pub struct Verifier {
    collector: Arc<Mutex<Collector>>,
    /// kernel → (priced effective bytes, launches) from the ledger.
    priced: Arc<Mutex<HashMap<String, (f64, u64)>>>,
    _exclusive: MutexGuard<'static, ()>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Verifier {
    /// Attach all passes to `session`.
    pub fn attach(session: &Session) -> Verifier {
        Verifier::attach_passes(session, Passes::default())
    }

    /// Attach a chosen subset of passes to `session`.
    pub fn attach_passes(session: &Session, passes: Passes) -> Verifier {
        let exclusive = VERIFY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        shadow::reset_shadow();
        shadow::set_shadow(true);

        let collector = Arc::new(Mutex::new(Collector::new(passes)));
        let sink_collector = Arc::clone(&collector);
        shadow::install_sink(Box::new(move |trace| {
            lock(&sink_collector).absorb_trace(&trace);
        }));

        let priced = Arc::new(Mutex::new(HashMap::new()));
        if passes.footprint {
            let observer_priced = Arc::clone(&priced);
            session.set_launch_observer(Some(Arc::new(move |r: &LaunchRecord| {
                let mut p = lock(&observer_priced);
                let e = p.entry(r.name.to_string()).or_insert((0.0, 0u64));
                e.0 += r.effective_bytes;
                e.1 += 1;
            })));
        }

        Verifier {
            collector,
            priced,
            _exclusive: exclusive,
        }
    }

    /// Detach from `session`, run the deferred footprint cross-check,
    /// and return all findings sorted most-severe first.
    pub fn finish(self, session: &Session) -> Vec<Diagnostic> {
        session.set_launch_observer(None);
        shadow::reset_shadow();

        let mut c = lock(&self.collector);
        let priced = lock(&self.priced);
        footprint_cross_check(&mut c, &priced);

        let mut diags = std::mem::take(&mut c.diags);
        diags.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.kernel.cmp(&b.kernel)));
        diags
    }
}

/// Per-scheme tolerance band for priced / shadow-counted bytes. The
/// declared footprint counts whole datasets (the paper's rule) while the
/// shadow count sees unique touched cells plus halo shells, and op2
/// footprints include map tables the shadow cannot see — so agreement
/// within a small factor is the contract, not equality.
fn tolerance(scheme: Option<&str>) -> (f64, f64) {
    match scheme {
        // Atomics keeps one launch per loop; tightest band.
        Some("atomics") => (0.4, 2.5),
        // Colour passes split the dataset unevenly across launches.
        Some(_) => (0.3, 3.0),
        // Structured loops: halo shells and rw double-counting.
        None => (0.3, 3.0),
    }
}

fn footprint_cross_check(c: &mut Collector, priced: &HashMap<String, (f64, u64)>) {
    if !c.passes.footprint {
        return;
    }
    let touched = std::mem::take(&mut c.touched);
    let schemes = std::mem::take(&mut c.schemes);
    for (kernel, (shadow_bytes, traces)) in touched {
        if shadow_bytes <= 0.0 {
            continue;
        }
        let Some(&(priced_bytes, launches)) = priced.get(&kernel) else {
            continue;
        };
        // Colour schemes launch several passes per traced loop; compare
        // whole loops (all launches vs all traces).
        let ratio = priced_bytes / shadow_bytes;
        let scheme = schemes.get(kernel.as_str()).copied();
        let (lo, hi) = tolerance(scheme);
        if ratio < lo || ratio > hi {
            c.emit(
                Severity::Warning,
                &kernel,
                Pass::Footprint,
                "bytes-mismatch".to_owned(),
                format!(
                    "declared footprint prices {priced_bytes:.0} bytes over {launches} launches \
                     but the shadow trace touched {shadow_bytes:.0} unique bytes over {traces} \
                     loops (ratio {ratio:.2}, tolerance {lo}..{hi})"
                ),
            );
        }
    }
}

/// A stable digest of a session ledger (names, bit-exact times, items,
/// bit-exact bytes) for shadow-vs-fast-path equivalence tests.
pub fn ledger_digest(records: &[LaunchRecord]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for r in records {
        eat(r.name.as_bytes());
        eat(&r.time.total.to_bits().to_le_bytes());
        eat(&r.items.to_le_bytes());
        eat(&r.effective_bytes.to_bits().to_le_bytes());
        eat(&[r.boundary as u8]);
    }
    h
}
