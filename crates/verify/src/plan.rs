//! The plan validator: prove colouring plans conflict-free before (or
//! without) running anything.
//!
//! These checks are *static* — they need only the plan and the mesh
//! map, so fixtures and property tests can exercise them directly. The
//! dynamic half (atomics loops whose shadow trace shows non-atomic RMW
//! overlap, colour groups that still raced) flows through the shadow
//! sink in `access.rs`, because it needs an instrumented run.

use crate::{Diagnostic, Pass, Severity};
use op2_dsl::{GlobalColoring, HierColoring, Map};

/// Prove `coloring` conflict-free over `map`: no two edges of one
/// colour may share a target vertex, or the colour group's unordered
/// scatter loses an increment.
pub fn check_global_coloring(
    kernel: &str,
    coloring: &GlobalColoring,
    map: &Map,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Some((a, b, v)) = coloring.first_conflict(map) {
        out.push(Diagnostic {
            severity: Severity::Error,
            kernel: kernel.to_owned(),
            pass: Pass::Plan,
            detail: format!(
                "global colouring is not conflict-free: edges {a} and {b} \
                 share a colour and both scatter to vertex {v}"
            ),
        });
    }
    out
}

/// Prove `coloring` conflict-free over `map` at both levels: blocks of
/// one block-colour must not share vertices (they run concurrently),
/// and inside each block no two edges of one intra-colour may share a
/// vertex either.
pub fn check_hier_coloring(kernel: &str, coloring: &HierColoring, map: &Map) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Some((a, b, v)) = coloring.first_block_conflict(map) {
        out.push(Diagnostic {
            severity: Severity::Error,
            kernel: kernel.to_owned(),
            pass: Pass::Plan,
            detail: format!(
                "hierarchical colouring is not conflict-free: blocks {a} and \
                 {b} share a block colour and both touch vertex {v}"
            ),
        });
    }
    if let Some((a, b, v)) = coloring.first_intra_conflict(map) {
        out.push(Diagnostic {
            severity: Severity::Error,
            kernel: kernel.to_owned(),
            pass: Pass::Plan,
            detail: format!(
                "hierarchical colouring is not conflict-free inside a block: \
                 edges {a} and {b} share an intra-block colour and both \
                 scatter to vertex {v}"
            ),
        });
    }
    out
}
