//! Regression fixtures: seeded defects the verifier must catch, with
//! the right severity and the offending kernel named.
//!
//! Each fixture plants exactly one defect — a tampered colouring plan,
//! an under-declared stencil, an undeclared write — and asserts the
//! corresponding pass reports it as an Error naming the kernel.

use op2_dsl::{GlobalColoring, HierColoring, Mesh, Ordering};
use ops_dsl::prelude::*;
use sycl_sim::{PlatformId, Session, SessionConfig, Toolchain};
use verify::{has_errors, Pass, Severity, Verifier};

fn live(app: &str) -> Session {
    Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app)).unwrap()
}

#[test]
fn a_tampered_global_colouring_is_a_plan_error_naming_the_kernel() {
    let mesh = Mesh::grid(6, 6, 2, Ordering::Natural);
    let mut g = GlobalColoring::build(&mesh.edges);
    assert!(g.is_valid(&mesh.edges), "builder must start conflict-free");
    assert!(verify::check_global_coloring("res_calc", &g, &mesh.edges).is_empty());

    // Force a vertex-sharing edge into edge 0's colour group.
    let v = mesh.edges.row(0)[0];
    let c0 = g.color[0] as usize;
    let other = (1..mesh.n_edges())
        .find(|&e| g.color[e] as usize != c0 && mesh.edges.row(e).contains(&v))
        .expect("a grid mesh has a vertex-sharing edge of another colour");
    let c_old = g.color[other] as usize;
    g.color[other] = c0 as u32;
    g.by_color[c_old].retain(|&e| e as usize != other);
    g.by_color[c0].push(other as u32);

    let diags = verify::check_global_coloring("res_calc", &g, &mesh.edges);
    assert!(has_errors(&diags), "the tampered plan must be rejected");
    let d = &diags[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pass, Pass::Plan);
    assert_eq!(d.kernel, "res_calc");
    assert!(d.detail.contains("share a colour"), "{}", d.detail);
}

#[test]
fn a_tampered_hierarchical_colouring_is_a_plan_error() {
    let mesh = Mesh::grid(6, 6, 2, Ordering::Natural);
    let mut h = HierColoring::build(&mesh.edges, 8);
    assert!(h.is_valid(&mesh.edges) && h.is_valid_intra(&mesh.edges));
    assert!(verify::check_hier_coloring("res_calc", &h, &mesh.edges).is_empty());

    // Within block 0, force two vertex-sharing edges onto one intra
    // colour — the block's sequential-by-colour schedule now races.
    let (lo, hi) = h.block_range(0, mesh.n_edges());
    let mut pair = None;
    'outer: for a in lo..hi {
        for b in (a + 1)..hi {
            let shares = mesh
                .edges
                .row(a)
                .iter()
                .any(|v| mesh.edges.row(b).contains(v));
            if shares && h.intra_color[a] != h.intra_color[b] {
                pair = Some((a, b));
                break 'outer;
            }
        }
    }
    let (a, b) = pair.expect("block 0 has adjacent edges on different intra colours");
    h.intra_color[b] = h.intra_color[a];

    let diags = verify::check_hier_coloring("res_calc", &h, &mesh.edges);
    assert!(has_errors(&diags), "the tampered plan must be rejected");
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error
            && d.pass == Pass::Plan
            && d.kernel == "res_calc"
            && d.detail.contains("intra-block")),
        "{diags:?}"
    );
}

#[test]
fn an_under_declared_stencil_is_an_access_error_naming_the_kernel() {
    let s = live("fixture_stencil");
    let block = Block::new_3d(8, 8, 1, 2);
    // Dats allocated before attach are invisible to the shadow pass, so
    // the fixture allocates after.
    let v = Verifier::attach(&s);
    let mut a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let mut b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    a.fill_with(|i, j, _| (i + j) as f64);
    {
        let bm = b.meta();
        let r = a.reader();
        let w = b.writer();
        // Declared as a point read of `a`, but the body reads i+1.
        ParLoop::new("bad_stencil", block.interior())
            .read(a.meta(), Stencil::point())
            .write(bm)
            .flops(1.0)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    w.set(i, j, k, r.at(i + 1, j, k));
                }
            });
    }
    let diags = v.finish(&s);
    assert!(has_errors(&diags), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error
            && d.pass == Pass::Access
            && d.kernel == "bad_stencil"
            && d.detail.contains("declared stencil")),
        "{diags:?}"
    );
}

#[test]
fn an_undeclared_write_is_an_access_error_naming_the_kernel() {
    let s = live("fixture_write");
    let block = Block::new_3d(8, 8, 1, 2);
    let v = Verifier::attach(&s);
    let mut a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let mut b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    a.fill_with(|_, _, _| 1.0);
    {
        let r = a.reader();
        let w = b.writer();
        // `b` is written but never declared at all.
        ParLoop::new("sneaky_write", block.interior())
            .read(a.meta(), Stencil::point())
            .flops(1.0)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    w.set(i, j, k, 2.0 * r.at(i, j, k));
                }
            });
    }
    let diags = v.finish(&s);
    assert!(has_errors(&diags), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error
            && d.pass == Pass::Access
            && d.kernel == "sneaky_write"
            && d.detail.contains("`b`")),
        "{diags:?}"
    );
}

#[test]
fn a_correctly_declared_loop_passes_clean() {
    let s = live("fixture_clean");
    let block = Block::new_3d(8, 8, 1, 2);
    let v = Verifier::attach(&s);
    let mut a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let mut b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    a.fill_with(|i, j, _| (i * j) as f64);
    b.fill_with(|_, _, _| 0.0);
    {
        let bm = b.meta();
        let r = a.reader();
        let w = b.writer();
        ParLoop::new("good_stencil", block.interior())
            .read(a.meta(), Stencil::star_2d(1))
            .write(bm)
            .flops(4.0)
            .run(&s, |tile| {
                for (i, j, k) in tile.iter() {
                    let sum = r.at(i + 1, j, k)
                        + r.at(i - 1, j, k)
                        + r.at(i, j + 1, k)
                        + r.at(i, j - 1, k);
                    w.set(i, j, k, 0.25 * sum);
                }
            });
    }
    let diags = v.finish(&s);
    assert!(
        diags.iter().all(|d| d.severity < Severity::Error),
        "a correct loop must not error: {diags:?}"
    );
}
