//! Graph-lint regression fixtures: each test records a real launch
//! graph through the DSL with exactly one seeded defect — a dead
//! transfer, a removed halo exchange, a tampered write-write ordering,
//! unbalanced phases, a duplicated exchange — and asserts the static
//! dataflow lint reports it at the right severity naming the offending
//! kernel.
//!
//! Unlike the unit tests in `verify::dataflow`, these go through the
//! full record pipeline: `ParLoop::record` derives the declarative
//! metadata, `GraphBuilder` snapshots it, and `lint_graph` analyses the
//! summary — so a regression anywhere in that chain trips them.

use ops_dsl::prelude::*;
use std::sync::{Mutex, MutexGuard};
use sycl_sim::{GraphSummary, PlatformId, Session, SessionConfig, Toolchain};
use telemetry::shadow;
use verify::dataflow::{lint_graph, LintContext};
use verify::{has_errors, Diagnostic, Severity};

/// The shadow registry is process-global; fixtures that register dats
/// must not interleave.
static SHADOW_LOCK: Mutex<()> = Mutex::new(());

fn shadow_session(app: &str) -> (Session, MutexGuard<'static, ()>) {
    let guard = SHADOW_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    shadow::reset_shadow();
    shadow::set_shadow(true);
    let s = Session::create(
        SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda)
            .app(app)
            .dry_run(),
    )
    .unwrap();
    (s, guard)
}

fn ctx() -> LintContext {
    LintContext {
        ranks: 4,
        stream_bw: 1e12,
        launch_overhead: 5e-6,
        cas_atomics: false,
        platform: "fixture".to_owned(),
    }
}

fn lint(summary: &GraphSummary) -> Vec<Diagnostic> {
    lint_graph(summary, &ctx(), &|id| shadow::dat_name(id))
}

/// `a -> exchange -> stencil read`, with `b` draining the result: the
/// healthy shape every defect fixture perturbs.
#[test]
fn the_healthy_fixture_graph_lints_clean() {
    let (s, _guard) = shadow_session("fix_clean");
    let block = Block::new_2d(8, 8, 2);
    let a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    let (am, bm) = (a.meta(), b.meta());
    let mut g = s.record();
    ParLoop::new("producer", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    g.exchange_dats(64.0, 4, vec![am.id]);
    ParLoop::new("consumer", block.interior())
        .read(am, Stencil::star_2d(1))
        .write(bm)
        .flops(1.0)
        .record(&mut g, |_t| {});
    let summary = g.finish().summary();
    drop(s);

    // Lint while the registry still holds the dat names.
    let diags = lint(&summary);
    assert!(
        !diags.iter().any(|d| d.severity >= Severity::Warning),
        "{diags:?}"
    );
}

#[test]
fn an_injected_dead_transfer_is_an_error_naming_the_clobbering_kernel() {
    let (s, _guard) = shadow_session("fix_transfer");
    let block = Block::new_2d(8, 8, 2);
    let a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    let (am, bm) = (a.meta(), b.meta());
    let mut g = s.record();
    // The defect: a transfer delivers `a`, then `clobber` overwrites it
    // before anything reads the transferred bytes.
    g.transfer_dats(512.0, vec![am.id]);
    ParLoop::new("clobber", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    ParLoop::new("drain", block.interior())
        .read(am, Stencil::point())
        .write(bm)
        .flops(1.0)
        .record(&mut g, |_t| {});
    let summary = g.finish().summary();
    drop(s);

    // Lint while the registry still holds the dat names.
    let diags = lint(&summary);
    assert!(has_errors(&diags), "{diags:?}");
    let d = diags
        .iter()
        .find(|d| d.detail.contains("transfer delivers"))
        .expect("dead transfer finding");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.detail.contains(" a "), "{}", d.detail);
    assert!(d.detail.contains("clobber"), "{}", d.detail);
}

#[test]
fn a_removed_halo_exchange_is_an_error_naming_the_stencil_reader() {
    let (s, _guard) = shadow_session("fix_halo");
    let block = Block::new_2d(8, 8, 2);
    let a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    let (am, bm) = (a.meta(), b.meta());
    let mut g = s.record();
    // Same shape as the healthy graph minus its exchange.
    ParLoop::new("producer", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    ParLoop::new("halo_reader", block.interior())
        .read(am, Stencil::star_2d(2))
        .write(bm)
        .flops(1.0)
        .record(&mut g, |_t| {});
    let summary = g.finish().summary();
    drop(s);

    // Lint while the registry still holds the dat names.
    let diags = lint(&summary);
    assert!(has_errors(&diags), "{diags:?}");
    let d = diags
        .iter()
        .find(|d| d.severity == Severity::Error)
        .unwrap();
    assert_eq!(d.kernel, "halo_reader");
    assert!(d.detail.contains("no recorded exchange"), "{}", d.detail);

    // On a single rank there is no halo to refresh: the same graph is
    // clean.
    let single = LintContext { ranks: 1, ..ctx() };
    let diags = lint_graph(&summary, &single, &|_| None);
    assert!(!has_errors(&diags), "{diags:?}");
}

#[test]
fn a_tampered_write_write_ordering_is_a_dead_write_error() {
    let (s, _guard) = shadow_session("fix_waw");
    let block = Block::new_2d(8, 8, 2);
    let a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    let (am, bm) = (a.meta(), b.meta());
    let mut g = s.record();
    // The defect: `stale_writer`'s output is clobbered by `fresh_writer`
    // before any launch reads it — a WAW pair the recorded order makes
    // pointless on every replay.
    ParLoop::new("stale_writer", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    ParLoop::new("fresh_writer", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    ParLoop::new("drain", block.interior())
        .read(am, Stencil::point())
        .write(bm)
        .flops(1.0)
        .record(&mut g, |_t| {});
    let summary = g.finish().summary();
    drop(s);

    // Lint while the registry still holds the dat names.
    let diags = lint(&summary);
    assert!(has_errors(&diags), "{diags:?}");
    let d = diags
        .iter()
        .find(|d| d.detail.contains("dead on every replay"))
        .expect("dead write finding");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.kernel, "stale_writer");
    assert!(d.detail.contains("fresh_writer"), "{}", d.detail);
}

#[test]
fn unbalanced_phases_recorded_by_the_builder_are_lint_errors() {
    let (s, _guard) = shadow_session("fix_phase");
    let block = Block::new_2d(8, 8, 2);
    let a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    let (am, bm) = (a.meta(), b.meta());
    let mut g = s.record();
    g.phase("left_open");
    ParLoop::new("producer", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    ParLoop::new("drain", block.interior())
        .read(am, Stencil::point())
        .write(bm)
        .flops(1.0)
        .record(&mut g, |_t| {});
    // No end_phase: the builder records the structural defect.
    let summary = g.finish().summary();
    drop(s);

    // Lint while the registry still holds the dat names.
    let diags = lint(&summary);
    assert!(has_errors(&diags), "{diags:?}");
    let d = diags
        .iter()
        .find(|d| d.detail.contains("unbalanced phase nesting"))
        .expect("phase defect finding");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.detail.contains("left_open"), "{}", d.detail);
}

#[test]
fn a_duplicated_exchange_is_a_redundancy_warning() {
    let (s, _guard) = shadow_session("fix_redundant");
    let block = Block::new_2d(8, 8, 2);
    let a = ops_dsl::Dat::<f64>::zeroed(&block, "a");
    let b = ops_dsl::Dat::<f64>::zeroed(&block, "b");
    let (am, bm) = (a.meta(), b.meta());
    let mut g = s.record();
    ParLoop::new("producer", block.interior())
        .read(bm, Stencil::point())
        .write(am)
        .flops(1.0)
        .record(&mut g, |_t| {});
    g.exchange_dats(64.0, 4, vec![am.id]);
    g.exchange_dats(64.0, 4, vec![am.id]);
    ParLoop::new("consumer", block.interior())
        .read(am, Stencil::star_2d(1))
        .write(bm)
        .flops(1.0)
        .record(&mut g, |_t| {});
    let summary = g.finish().summary();
    drop(s);

    // Lint while the registry still holds the dat names.
    let diags = lint(&summary);
    assert!(!has_errors(&diags), "redundancy is a warning: {diags:?}");
    assert!(
        diags.iter().any(|d| d.severity == Severity::Warning
            && d.detail.contains("identical halo bytes")
            && d.detail.contains("[a]")),
        "{diags:?}"
    );
}
