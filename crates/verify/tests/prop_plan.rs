//! Property tests for the plan validator: colourings built from random
//! meshes must always be conflict-free, and the §4.3 bytes-per-wave
//! model must preserve the paper's scheme ordering on the Rotor37 mesh.

use op2_dsl::{EdgeLoop, GlobalColoring, HierColoring, Mesh, MeshStats, Ordering};
use sycl_sim::{Precision, Scheme};

/// Seeded xorshift64* — deterministic across runs, no external RNG.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn random_meshes_always_colour_conflict_free() {
    let mut rng = XorShift::new(0x5EED_CAFE_F00D);
    for trial in 0..40 {
        let ni = 2 + (rng.next_u64() % 7) as usize;
        let nj = 2 + (rng.next_u64() % 7) as usize;
        let nk = 1 + (rng.next_u64() % 4) as usize;
        let ordering = if rng.next_u64().is_multiple_of(2) {
            Ordering::Natural
        } else {
            Ordering::Shuffled(rng.next_u64())
        };
        let mesh = Mesh::grid(ni, nj, nk, ordering);

        let g = GlobalColoring::build(&mesh.edges);
        assert!(
            g.is_valid(&mesh.edges),
            "trial {trial} ({ni}x{nj}x{nk}): global colouring invalid"
        );
        assert!(
            verify::check_global_coloring("k", &g, &mesh.edges).is_empty(),
            "trial {trial}: validator disagrees with is_valid"
        );

        let block_size = 1 + (rng.next_u64() % 16) as usize;
        let h = HierColoring::build(&mesh.edges, block_size);
        assert!(
            h.is_valid(&mesh.edges),
            "trial {trial} (bs {block_size}): block colouring invalid"
        );
        assert!(
            h.is_valid_intra(&mesh.edges),
            "trial {trial} (bs {block_size}): intra-block colouring invalid"
        );
        assert!(
            verify::check_hier_coloring("k", &h, &mesh.edges).is_empty(),
            "trial {trial}: validator disagrees with is_valid"
        );
    }
}

#[test]
fn bytes_per_wave_preserves_the_papers_scheme_ordering() {
    // §4.3 on the MI250X: atomics gather the fewest DRAM bytes per
    // 64-item wave, hierarchical colouring more, global colouring the
    // most (3 500 / 8 600 / 39 000 B measured).
    let stats = MeshStats::rotor37();
    let bpw = |s: Scheme| {
        EdgeLoop::new("flux", stats, s, Precision::F64)
            .vertex_read(5)
            .vertex_inc(5)
            .bytes_per_wave(64.0)
    };
    let atomics = bpw(Scheme::Atomics);
    let hier = bpw(Scheme::HierColor);
    let global = bpw(Scheme::GlobalColor);
    assert!(
        atomics < hier && hier < global,
        "ordering must be atomics < hierarchical < global: {atomics} {hier} {global}"
    );
}
