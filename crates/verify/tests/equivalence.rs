//! Shadow-instrumented runs must be bit-identical to the fast path:
//! same validation scalar, same launch ledger (digest over kernel
//! names, priced times, item counts, and effective bytes).
//!
//! This is the verifier's "first, do no harm" guarantee — attaching it
//! may cost time, but it must never change what the session computes
//! or prices.

use miniapps::{App, CloverLeaf2d, Mgcfd};
use sycl_sim::{quirks::apps, PlatformId, Session, SessionConfig, Toolchain};
use verify::{ledger_digest, Verifier};

fn live(app: &str) -> Session {
    Session::create(SessionConfig::new(PlatformId::A100, Toolchain::NativeCuda).app(app)).unwrap()
}

#[test]
fn cloverleaf2d_shadow_run_is_bit_identical_to_the_fast_path() {
    let plain_s = live(apps::CLOVERLEAF2D);
    let plain = CloverLeaf2d::test().run(&plain_s);

    let shadow_s = live(apps::CLOVERLEAF2D);
    let verifier = Verifier::attach(&shadow_s);
    let shadow = CloverLeaf2d::test().run(&shadow_s);
    let diags = verifier.finish(&shadow_s);

    assert!(!verify::has_errors(&diags), "{diags:?}");
    assert_eq!(
        plain.validation.to_bits(),
        shadow.validation.to_bits(),
        "instrumentation changed the computed result"
    );
    assert_eq!(
        ledger_digest(&plain_s.records()),
        ledger_digest(&shadow_s.records()),
        "instrumentation changed the priced ledger"
    );
}

#[test]
fn mgcfd_shadow_run_is_bit_identical_to_the_fast_path() {
    let plain_s = live(apps::MGCFD);
    let plain = Mgcfd::test().run(&plain_s);

    let shadow_s = live(apps::MGCFD);
    let verifier = Verifier::attach(&shadow_s);
    let shadow = Mgcfd::test().run(&shadow_s);
    let diags = verifier.finish(&shadow_s);

    assert!(!verify::has_errors(&diags), "{diags:?}");
    assert_eq!(
        plain.validation.to_bits(),
        shadow.validation.to_bits(),
        "instrumentation changed the computed result"
    );
    assert_eq!(
        ledger_digest(&plain_s.records()),
        ledger_digest(&shadow_s.records()),
        "instrumentation changed the priced ledger"
    );
}
