//! Kernel descriptions handed to the runtime at launch.

use machine_model::{AccessProfile, KernelFootprint, Precision, StencilProfile};

/// Source-level properties of a kernel body that determine how well compilers
/// vectorise it. Set by the DSL code generators (which can see the loop
/// body), consumed by the toolchain vectorisation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTraits {
    /// Innermost loop walks memory with stride one.
    pub stride_one_inner: bool,
    /// Kernel scatters through a mapping table (blocks vectorisation of
    /// racy loops for most compilers).
    pub indirect_writes: bool,
    /// Long, branchy or deeply-nested body (OpenSYCL's CPU pipeline gives
    /// up on these; armclang fails on the OpenSBLI store-none kernels).
    pub complex_body: bool,
    /// Known auto-vectorisation failure on NEON/aarch64 regardless of
    /// compiler (paper §4.2: OpenSBLI SN "failed to vectorize across all
    /// variants" on the Ampere Altra).
    pub hard_on_neon: bool,
}

impl Default for KernelTraits {
    fn default() -> Self {
        KernelTraits {
            stride_one_inner: true,
            indirect_writes: false,
            complex_body: false,
            hard_on_neon: false,
        }
    }
}

/// A launchable kernel: footprint + codegen traits + tuning hints.
#[derive(Debug, Clone)]
pub struct Kernel {
    pub footprint: KernelFootprint,
    pub traits: KernelTraits,
    /// Work-group shape the *nd_range* formulation uses (tuned once per
    /// application, exactly as the paper did). `None` falls back to the
    /// toolchain's flat heuristic even under `SyclVariant::NdRange`.
    pub nd_shape: Option<[usize; 3]>,
}

impl Kernel {
    /// Build from an explicit footprint.
    pub fn new(footprint: KernelFootprint) -> Self {
        Kernel {
            footprint,
            traits: KernelTraits::default(),
            nd_shape: None,
        }
    }

    /// Convenience constructor for simple streaming kernels (f64).
    pub fn streaming(name: &str, items: u64, bytes: f64, flops: f64) -> Self {
        Kernel::new(KernelFootprint::streaming(
            name,
            items,
            bytes,
            flops,
            Precision::F64,
        ))
    }

    /// Set codegen traits.
    pub fn with_traits(mut self, traits: KernelTraits) -> Self {
        self.traits = traits;
        self
    }

    /// Set the tuned nd_range shape.
    pub fn with_nd_shape(mut self, shape: [usize; 3]) -> Self {
        self.nd_shape = Some(shape);
        self
    }

    /// The iteration-space extents (for work-group heuristics).
    pub fn domain(&self) -> [usize; 3] {
        match &self.footprint.access {
            AccessProfile::Stencil(StencilProfile { domain, .. }) => *domain,
            _ => [self.footprint.items as usize, 1, 1],
        }
    }

    /// Number of meaningful dimensions in the iteration space.
    pub fn dims(&self) -> usize {
        self.domain().iter().filter(|&&d| d > 1).count().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_kernel_is_one_dimensional() {
        let k = Kernel::streaming("copy", 1024, 2.0 * 8.0 * 1024.0, 0.0);
        assert_eq!(k.dims(), 1);
        assert_eq!(k.domain(), [1024, 1, 1]);
    }

    #[test]
    fn stencil_kernel_reports_its_domain() {
        let fp = KernelFootprint {
            name: "diff".into(),
            items: 64 * 64 * 64,
            effective_bytes: 1.0,
            flops: 1.0,
            transcendentals: 0.0,
            precision: Precision::F64,
            access: AccessProfile::Stencil(StencilProfile {
                domain: [64, 64, 64],
                radius: [1, 1, 1],
                dats_read: 1,
                dats_written: 1,
            }),
            atomics: None,
            reductions: 0,
        };
        let k = Kernel::new(fp).with_nd_shape([32, 4, 1]);
        assert_eq!(k.dims(), 3);
        assert_eq!(k.nd_shape, Some([32, 4, 1]));
    }

    #[test]
    fn default_traits_are_vector_friendly() {
        let t = KernelTraits::default();
        assert!(t.stride_one_inner);
        assert!(!t.indirect_writes);
        assert!(!t.complex_body);
        assert!(!t.hard_on_neon);
    }
}
