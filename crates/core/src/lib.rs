//! # sycl-sim — a SYCL-like portable programming model with simulated
//! performance on six HPC platforms
//!
//! This crate is the reproduction's analogue of "SYCL + its two compilers".
//! It provides:
//!
//! * a **portable execution model** — queues, buffers, 1/2/3-D ranges,
//!   `parallel_for` in both the *flat* (`range`) and *nd_range*
//!   (work-group-shaped) formulations, and reductions — mirroring the SYCL
//!   constructs the paper contrasts;
//! * **functional execution**: every launch really runs its kernel body on
//!   a host thread pool ([`parkit`]), so all application numerics are real
//!   and validated;
//! * **toolchain models** ([`Toolchain`]): DPC++ and OpenSYCL (plus the
//!   native baselines CUDA / HIP / OpenMP offload / MPI / MPI+OpenMP),
//!   each with its own work-group-shape heuristic for the flat
//!   formulation, launch-path overheads (DPC++ reaches CPUs only through
//!   OpenCL; OpenSYCL compiles to OpenMP), vectorisation behaviour, and
//!   reduction strategy;
//! * a **quirk matrix** ([`quirks`]) reproducing the categorical failures
//!   the paper reports (compiler ICEs, wrong results, unsupported
//!   targets), which are facts about specific toolchain releases and
//!   cannot be derived from first principles;
//! * **simulated timing**: each launch's [`machine_model::KernelFootprint`]
//!   is priced by the calibrated platform models, and the session
//!   accumulates a per-kernel timing ledger.
//!
//! ```
//! use sycl_sim::prelude::*;
//!
//! let cfg = SessionConfig::new(PlatformId::A100, Toolchain::Dpcpp)
//!     .variant(SyclVariant::NdRange([256, 1, 1]))
//!     .app("quickstart");
//! let session = Session::create(cfg).unwrap();
//! let n = 1 << 16;
//! let mut a = vec![0.0f64; n];
//! let b = vec![2.0f64; n];
//!
//! let kernel = Kernel::streaming("axpy", n as u64, 3.0 * 8.0 * n as f64, 2.0 * n as f64);
//! session.launch(&kernel, || {
//!     parkit::global_pool().for_each_chunk(&mut a, 4096, |start, chunk| {
//!         for (i, x) in chunk.iter_mut().enumerate() {
//!             *x += 1.5 * b[start + i];
//!         }
//!     });
//! });
//! assert_eq!(a[17], 3.0);
//! assert!(session.elapsed() > 0.0);
//! ```

pub mod buffer;
pub mod error;
pub mod graph;
pub mod kernel;
pub mod launch;
pub mod quirks;
pub mod real;
pub mod service;
pub mod session;
pub mod toolchain;
pub mod tune;

pub use buffer::Buffer;
pub use error::{Failure, FailureKind};
pub use graph::{replay_all, GraphBuilder, GraphNodeInfo, GraphSummary, LaunchGraph};
pub use kernel::{Kernel, KernelTraits};
pub use launch::{AccessMode, DatAccess, LaunchMeta, LaunchNode, Residency, TransferStats};
pub use real::Real;
pub use service::{Batch, Rejected, Service, ServiceConfig, ServiceShard, ShedPolicy};
pub use session::{GraphObserver, LaunchRecord, Records, Session, SessionConfig};
pub use toolchain::{Scheme, SyclVariant, Toolchain};

// Re-export the hardware model so downstream crates need only one import.
pub use machine_model::{
    AccessProfile, AtomicKind, AtomicProfile, BackendKind, ExecProfile, IndirectProfile,
    Interconnect, KernelFootprint, KernelTime, LinkBandwidth, Platform, PlatformId, Precision,
    ReductionStrategy, StencilProfile, TransferDir,
};

/// Convenience prelude for examples and apps.
pub mod prelude {
    pub use crate::{
        Buffer, Failure, FailureKind, Kernel, KernelTraits, PlatformId, Precision, Real, Scheme,
        Session, SessionConfig, SyclVariant, Toolchain,
    };
}
